//! # sailing
//!
//! A Rust reproduction of *Sailing the Information Ocean with Awareness of
//! Currents: Discovery and Application of Source Dependence* (Berti-Équille,
//! Das Sarma, Dong, Marian, Srivastava — CIDR 2009).
//!
//! The Web makes it as easy to spread false information as true information,
//! and naive majority voting over conflicting sources is defeated the moment
//! sources copy from each other. This workspace implements the paper's
//! programme end to end behind one facade:
//!
//! * [`engine`] — **the entry point**: [`SailingEngine`] runs the iterative
//!   *truth ↔ accuracy ↔ dependence* loop at most once per distinct
//!   snapshot (analyses are cached by content hash) and hands back an owned
//!   [`Analysis`] feeding fusion, online query answering, and source
//!   recommendation; [`TimelineSession`] walks a whole update history epoch
//!   by epoch with warm-started incremental discovery;
//! * [`error`] — the single typed [`SailingError`] every fallible API in
//!   the workspace reports;
//! * [`model`] — the structured-source data model (claims, snapshots,
//!   temporal update traces, ground truths);
//! * [`persist`] — the **persistent cross-process analysis store**: a
//!   versioned, checksummed on-disk format for converged pipeline
//!   results, the durable tier under the engine's analysis cache
//!   (attach one with
//!   [`persist_dir`](SailingEngineBuilder::persist_dir));
//! * [`core`] — **dependence discovery**: Bayesian snapshot copy detection,
//!   dissimilarity-dependence detection on opinions, temporal (update-trace)
//!   dependence with lazy-copier lag estimation, pluggable
//!   [`TruthDiscovery`](core::TruthDiscovery) strategies, and the iterative
//!   truth ↔ accuracy ↔ dependence pipeline;
//! * [`linkage`] — record linkage: string metrics, author-list parsing,
//!   representation clustering, wrong-value vs alternative-representation
//!   classification;
//! * [`fusion`] — dependence-aware data fusion and probabilistic-database
//!   output;
//! * [`query`] — online query answering with dependence-aware source
//!   ordering and top-k early termination;
//! * [`recommend`] — source recommendation from accuracy, coverage,
//!   freshness and independence;
//! * [`ingest`] — **streaming ingestion**: an append-only claim log with
//!   durable checksummed segments and torn-tail recovery, sealing claim
//!   events into delta epochs that feed incremental discovery (see
//!   *Streaming ingestion* below);
//! * [`datagen`] — seeded synthetic worlds, including the AbeBooks-like
//!   corpus of the paper's Example 4.1, churn worlds for streaming
//!   workloads, and variant worlds whose sources disagree about
//!   formatting as much as about facts.
//!
//! For read-heavy, multi-threaded deployments, the companion crate
//! `sailing-serve` wraps the engine in a **concurrent query-serving
//! tier**: a `ServeHandle` publishes the current [`Analysis`] behind an
//! epoch pointer (readers revalidate with one atomic load per request,
//! no lock on the hot path), admission of new snapshots is single-flight
//! through the engine's cache ([`CacheStats::inflight_waits`]), and every
//! endpoint is counted and timed into p50/p99 latency histograms. It is
//! a separate crate because it *depends on* this one; see its crate docs
//! and `examples/serve_loadgen.rs`.
//!
//! ## Quickstart
//!
//! Build an engine once, analyze a snapshot once, and derive every
//! downstream application from the cached [`Analysis`]:
//!
//! ```
//! use sailing::engine::SailingEngine;
//! use sailing::model::fixtures;
//! use sailing::query::OrderingPolicy;
//! use sailing::recommend::Goal;
//!
//! // Table 1 of the paper: five sources, two of them copying a third.
//! let (store, truth) = fixtures::table1();
//! let snapshot = store.snapshot();
//!
//! // Naive voting follows the copiers...
//! let naive = sailing::core::vote::naive_vote(&snapshot);
//! assert_eq!(truth.decision_precision(&naive), Some(0.4));
//!
//! // ...the engine's dependence-aware analysis does not.
//! let engine = SailingEngine::builder().build()?;
//! let analysis = engine.analyze(&snapshot);
//! assert_eq!(truth.decision_precision(&analysis.decisions()), Some(1.0));
//!
//! // The same analysis powers every Section 4 application:
//! let fused = analysis.fuse();                 // data fusion
//! let mut session = analysis.online_session(); // online query answering
//! let order = analysis.visit_order(&OrderingPolicy::GreedyIndependent);
//! session.run_order(&order[..2]);              // probe the two independents
//! let recs = analysis.recommend(Goal::TruthSeeking, 2);
//!
//! assert_eq!(fused.strategy, "accu-copy");
//! assert_eq!(recs.len(), 2);
//! # Ok::<(), sailing::error::SailingError>(())
//! ```
//!
//! Strategies are pluggable: pass
//! [`NaiveVote`](core::NaiveVote) / [`Accu`](core::Accu) (or your own
//! [`TruthDiscovery`](core::TruthDiscovery) implementation) to
//! [`SailingEngine::builder`] to reproduce the paper's baseline ladder
//! through one code path.
//!
//! ## Streaming ingestion
//!
//! The batch path above re-analyzes a whole snapshot per call. When
//! claims arrive as a **live stream**, open an [`IngestSession`]
//! instead: claims append to an in-memory or durable
//! [`ingest::ClaimLog`], a [`ingest::SealPolicy`] (event count, stream
//! time span, or manual) seals them into delta epochs, and each epoch
//! runs **incremental** truth discovery
//! ([`core::AccuCopy::run_delta`]) — re-iterating only the delta's
//! *dirty closure* (the claims' sources and objects plus everything
//! reachable through shared claims) and splicing the untouched region's
//! posterior through unchanged. Epochs whose closure exceeds a dirty
//! fraction ceiling, or that follow a non-converged epoch, fall back to
//! a full warm re-analysis with a typed outcome
//! ([`core::DeltaOutcome`]); [`IngestStats`] counts which path each
//! epoch took.
//!
//! ```
//! use sailing::engine::SailingEngine;
//! use sailing::ingest::SealPolicy;
//! use sailing::model::fixtures;
//!
//! let (store, truth) = fixtures::table1();
//! let snapshot = store.snapshot();
//! let engine = SailingEngine::builder().build()?;
//!
//! // Claims arrive one by one; every 10 events seals a delta epoch.
//! let mut session = engine.ingest_session(SealPolicy::after_events(10));
//! for s in 0..snapshot.num_sources() {
//!     let source = sailing::model::SourceId::from_index(s);
//!     for &(object, value) in snapshot.source_assertions(source) {
//!         session.assert_claim(source, object, value, 0, s as i64);
//!     }
//! }
//! session.seal(); // flush the open tail
//!
//! let analysis = session.analysis();
//! assert_eq!(truth.decision_precision(&analysis.decisions()), Some(1.0));
//! assert!(session.stats().deltas_sealed >= 2);
//! # Ok::<(), sailing::error::SailingError>(())
//! ```
//!
//! Durable logs ([`ingest::ClaimLog::open`]) persist sealed epochs as
//! checksummed segment files through the same write-then-rename
//! discipline as [`persist`]; a torn tail truncates to the last valid
//! record on reopen and [`SailingEngine::ingest_session_from`]
//! bootstraps the session from whatever survived. See
//! `examples/ingest_stream.rs` for the end-to-end flow.
//!
//! ## Value equivalence
//!
//! Real sources render the same fact differently — `"J. Smith"` vs
//! `"j smith"`, `"3.14"` vs `"3.140"` — and under bitwise identity a
//! split honest majority can lose to a coherent block of copiers. The
//! engine therefore runs discovery over a **quotient of the value
//! space**: a pluggable [`ValueEquivalence`](model::ValueEquivalence)
//! backend partitions the snapshot's interned values once per analysis,
//! every claim is rewritten to its class representative, and voting,
//! dissimilarity, and copy detection proceed over plain integer ids
//! exactly as before — the inner loops never call a comparator.
//!
//! Four backends ship: [`Exact`](model::Exact) (the default — bitwise
//! identity, zero overhead, legacy cache keys untouched),
//! [`NormalizedString`](linkage::NormalizedString) (case, whitespace,
//! punctuation and diacritic folding via
//! [`linkage::normalize()`]), [`NumericTolerance`](model::NumericTolerance)
//! (numbers within an epsilon merge transitively), and
//! [`HashedDigest`](model::HashedDigest) (salted digests: federation
//! members match values without revealing them — see
//! `examples/private_federation.rs`).
//!
//! ```
//! use sailing::datagen::variants::{VariantWorld, VariantWorldConfig};
//! use sailing::engine::SailingEngine;
//! use sailing::linkage::NormalizedString;
//!
//! // Half the assertions arrive as formatting variants of the truth.
//! let world = VariantWorld::generate(&VariantWorldConfig::messy(120, 8, 42));
//!
//! let exact = SailingEngine::builder().build()?;
//! let normalized = SailingEngine::builder()
//!     .value_equivalence(NormalizedString)
//!     .build()?;
//!
//! let score = |engine: &SailingEngine| {
//!     world
//!         .truth
//!         .decision_precision(&engine.analyze(&world.snapshot).decisions())
//!         .unwrap()
//! };
//! // Collapsing the variants re-forms the split majority.
//! assert!(score(&normalized) > score(&exact));
//! # Ok::<(), sailing::error::SailingError>(())
//! ```
//!
//! The quotient's digest is folded into the analysis cache key and the
//! persistent [`persist::StoreKey`], so results computed under one
//! backend are never served to an engine running another — in memory or
//! across processes. Streaming sessions degrade safely: ingest events
//! carry bare value ids, so a sealed epoch that names a value the
//! quotient has never classified falls back to a full warm re-analysis
//! with the typed [`core::DeltaOutcome::Unsupported`].
//!
//! ## Failure semantics
//!
//! The workspace is built to **degrade, not error**, when the world
//! misbehaves; each layer has a typed, observable fallback:
//!
//! * **Persistence** — transient filesystem failures are retried with
//!   bounded exponential backoff
//!   ([`persist_retry`](SailingEngineBuilder::persist_retry), visible as
//!   [`CacheStats::disk_retries`]); persistent failure trips a circuit
//!   breaker ([`persist_breaker`](SailingEngineBuilder::persist_breaker))
//!   that fast-fails writes without touching the disk until a cooldown
//!   passes and a half-open probe succeeds
//!   ([`CacheStats::disk_breaker`]). A failed or refused write is never
//!   an analysis error — just a future cold miss. Damaged or torn store
//!   files are rejected by checksum on read and degrade to cold misses.
//!   Fault paths are testable deterministically by routing the store
//!   through an injected filesystem
//!   ([`persist_fs`](SailingEngineBuilder::persist_fs) +
//!   [`persist::FaultyFs`]).
//! * **Discovery** — a run that will not settle can be bounded by a
//!   [`discovery_watchdog`](SailingEngineBuilder::discovery_watchdog)
//!   (wall-clock deadline, limit-cycle detection); the run ends as a
//!   typed non-converged outcome ([`Analysis::termination`],
//!   [`core::Termination`]) instead of spinning to the iteration cap.
//! * **Serving** — the `sailing-serve` tier refuses to publish
//!   watchdog-stopped analyses: readers keep answering from the last
//!   good epoch (stale-while-revalidate) while its `Health` reports the
//!   degradation and its cause.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;

pub use engine::{
    Analysis, CacheStats, EpochAnalysis, IngestSession, IngestStats, SailingEngine,
    SailingEngineBuilder, TimelineSession,
};
pub use error::{SailingError, SailingResult};

pub use sailing_core as core;
pub use sailing_datagen as datagen;
pub use sailing_fusion as fusion;
pub use sailing_ingest as ingest;
pub use sailing_linkage as linkage;
pub use sailing_model as model;
pub use sailing_persist as persist;
pub use sailing_query as query;
pub use sailing_recommend as recommend;
