//! # sailing
//!
//! A Rust reproduction of *Sailing the Information Ocean with Awareness of
//! Currents: Discovery and Application of Source Dependence* (Berti-Équille,
//! Das Sarma, Dong, Marian, Srivastava — CIDR 2009).
//!
//! The Web makes it as easy to spread false information as true information,
//! and naive majority voting over conflicting sources is defeated the moment
//! sources copy from each other. This workspace implements the paper's
//! programme end to end:
//!
//! * [`model`] — the structured-source data model (claims, snapshots,
//!   temporal update traces, ground truths);
//! * [`core`] — **dependence discovery**: Bayesian snapshot copy detection,
//!   dissimilarity-dependence detection on opinions, temporal (update-trace)
//!   dependence with lazy-copier lag estimation, and the iterative
//!   truth ↔ accuracy ↔ dependence pipeline;
//! * [`linkage`] — record linkage: string metrics, author-list parsing,
//!   representation clustering, wrong-value vs alternative-representation
//!   classification;
//! * [`fusion`] — dependence-aware data fusion and probabilistic-database
//!   output;
//! * [`query`] — online query answering with dependence-aware source
//!   ordering and top-k early termination;
//! * [`recommend`] — source recommendation from accuracy, coverage,
//!   freshness and independence;
//! * [`datagen`] — seeded synthetic worlds, including the AbeBooks-like
//!   corpus of the paper's Example 4.1.
//!
//! ## Quickstart
//!
//! ```
//! use sailing::model::fixtures;
//! use sailing::core::AccuCopy;
//!
//! // Table 1 of the paper: five sources, two of them copying a third.
//! let (store, truth) = fixtures::table1();
//! let snapshot = store.snapshot();
//!
//! // Naive voting follows the copiers...
//! let naive = sailing::core::vote::naive_vote(&snapshot);
//! assert_eq!(truth.decision_precision(&naive), Some(0.4));
//!
//! // ...dependence-aware fusion does not.
//! let result = AccuCopy::with_defaults().run(&snapshot);
//! assert_eq!(truth.decision_precision(&result.decisions()), Some(1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sailing_core as core;
pub use sailing_datagen as datagen;
pub use sailing_fusion as fusion;
pub use sailing_linkage as linkage;
pub use sailing_model as model;
pub use sailing_query as query;
pub use sailing_recommend as recommend;
