//! The unified engine: one pipeline run, every downstream application.
//!
//! The paper's programme is a single loop — *determine true values ↔
//! compute source accuracy ↔ discover dependence* — whose converged output
//! feeds every application in Section 4: data fusion, online query
//! answering, and source recommendation. Before this facade existed each
//! downstream crate re-orchestrated that loop by hand ("pilot pipeline
//! runs" feeding raw accuracy vectors and dependence matrices around);
//! [`SailingEngine`] runs it **once per snapshot** and hands back a cached
//! [`Analysis`] from which everything else derives:
//!
//! ```
//! use sailing::engine::SailingEngine;
//! use sailing::model::fixtures;
//! use sailing::query::OrderingPolicy;
//! use sailing::recommend::Goal;
//!
//! let (store, truth) = fixtures::table1();
//! let snapshot = store.snapshot();
//! let engine = SailingEngine::builder().threads(2).build()?;
//! let analysis = engine.analyze(&snapshot);
//!
//! // Fusion, online answering, and recommendation all reuse the same
//! // converged accuracies and dependence matrix — no plumbing.
//! assert_eq!(truth.decision_precision(&analysis.decisions()), Some(1.0));
//! let fused = analysis.fuse();
//! let mut session = analysis.online_session();
//! let order = analysis.visit_order(&OrderingPolicy::GreedyIndependent);
//! let steps = session.run_order(&order);
//! let recs = analysis.recommend(Goal::TruthSeeking, 3);
//! assert_eq!(fused.decisions, steps.last().unwrap().decisions);
//! assert_eq!(recs.len(), 3);
//! # Ok::<(), sailing::error::SailingError>(())
//! ```

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use sailing_core::truth::{DependenceMatrix, ValueProbabilities};
use sailing_core::{
    AccuCopy, DetectionParams, PairDependence, PipelineResult, SourceReport, TruthDiscovery,
};
use sailing_datagen::bookstores::BookCorpusConfig;
use sailing_fusion::{FusionOutcome, ProbabilisticDatabase};
use sailing_model::{History, ObjectId, SailingError, SnapshotView, SourceId, ValueId};
use sailing_query::topk::{top_k_values_for_object, TopKResult};
use sailing_query::{order_sources, OnlineSession, OrderingPolicy};
use sailing_recommend::{
    recommend_sources, trust_scores, Goal, Recommendation, TrustScore, TrustWeights,
};

/// Builder for [`SailingEngine`]; start from [`SailingEngine::builder`].
pub struct SailingEngineBuilder {
    params: Option<DetectionParams>,
    threads: Option<usize>,
    corpus_min_overlap: Option<usize>,
    strategy: Option<Arc<dyn TruthDiscovery>>,
    trust_weights: TrustWeights,
}

impl SailingEngineBuilder {
    fn new() -> Self {
        Self {
            params: None,
            threads: None,
            corpus_min_overlap: None,
            strategy: None,
            trust_weights: TrustWeights::default(),
        }
    }

    /// Sets the detection parameters used by the default strategy and by
    /// downstream voting (online sessions, fusion damping).
    #[must_use]
    pub fn params(mut self, params: DetectionParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Installs a custom truth-discovery strategy (defaults to ACCU-COPY
    /// with the configured parameters).
    #[must_use]
    pub fn strategy(mut self, strategy: impl TruthDiscovery + 'static) -> Self {
        self.strategy = Some(Arc::new(strategy));
        self
    }

    /// Shorthand for setting the pairwise-detection worker thread count.
    /// Applied on `build()`, so it composes with [`Self::params`] in
    /// either call order.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the trust-factor weights used by [`Analysis::recommend`].
    #[must_use]
    pub fn trust_weights(mut self, weights: TrustWeights) -> Self {
        self.trust_weights = weights;
        self
    }

    /// Attaches a bookstore-corpus configuration, making its screening the
    /// engine default: the candidate-pair floor is raised to the corpus's
    /// `min_shared_books` (Example 4.1 screens AbeBooks pairs by "at least
    /// the same 10 books"). On the seed-42 bookstore world this takes
    /// copy-detection precision from ≈0.29 at the generic `min_overlap = 3`
    /// to above 0.7. An explicitly configured higher `min_overlap` wins.
    #[must_use]
    pub fn bookstore_corpus(mut self, config: &BookCorpusConfig) -> Self {
        self.corpus_min_overlap = Some(config.min_shared_books);
        self
    }

    /// Validates the configuration and builds the engine.
    ///
    /// # Errors
    /// Returns [`SailingError::InvalidParameter`] when the detection
    /// parameters violate their documented constraints.
    pub fn build(self) -> Result<SailingEngine, SailingError> {
        let mut params = self.params.clone().unwrap_or_default();
        if let Some(threads) = self.threads {
            params.threads = threads;
        }
        if let Some(min_shared) = self.corpus_min_overlap {
            params.min_overlap = params.min_overlap.max(min_shared);
        }
        params.validate()?;
        let strategy: Arc<dyn TruthDiscovery> = match self.strategy {
            Some(s) => {
                // A strategy carrying its own detection parameters (e.g. a
                // hand-built `AccuCopy`) is the source of truth for the
                // whole loop: discovery runs inside the strategy object, so
                // builder-level `params()`/`threads()`/corpus screening
                // could never reach it. Accepting both silently would let
                // the overrides appear to take effect while discovery
                // ignores them — reject the conflict instead.
                if let Some(sp) = s.detection_params() {
                    if self.params.is_some()
                        || self.threads.is_some()
                        || self.corpus_min_overlap.is_some()
                    {
                        return Err(SailingError::config(
                            "SailingEngineBuilder",
                            "the installed strategy carries its own DetectionParams; \
                             configure params/threads/corpus screening on the strategy \
                             instead of the builder",
                        ));
                    }
                    params = sp.clone();
                    params.validate()?;
                }
                s
            }
            None => Arc::new(AccuCopy::new(params.clone())?),
        };
        Ok(SailingEngine {
            params,
            strategy,
            trust_weights: self.trust_weights,
        })
    }
}

/// The top-level entry point of the workspace.
///
/// An engine is a validated configuration (detection parameters, a
/// pluggable [`TruthDiscovery`] strategy, trust weights). It is cheap to
/// clone and safe to share across threads; each [`SailingEngine::analyze`]
/// call runs the discovery loop once and returns a cached [`Analysis`].
#[derive(Clone)]
pub struct SailingEngine {
    params: DetectionParams,
    strategy: Arc<dyn TruthDiscovery>,
    trust_weights: TrustWeights,
}

impl SailingEngine {
    /// Starts configuring an engine.
    pub fn builder() -> SailingEngineBuilder {
        SailingEngineBuilder::new()
    }

    /// An engine with default parameters and the ACCU-COPY strategy.
    pub fn with_defaults() -> Self {
        Self::builder()
            .build()
            .expect("default engine parameters are valid")
    }

    /// The detection parameters in force.
    pub fn params(&self) -> &DetectionParams {
        &self.params
    }

    /// The name of the installed strategy.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Runs the truth ↔ accuracy ↔ dependence loop once over `snapshot`
    /// and caches everything downstream consumers need.
    pub fn analyze<'a>(&self, snapshot: &'a SnapshotView) -> Analysis<'a> {
        self.analyze_inner(snapshot, None)
    }

    /// Like [`SailingEngine::analyze`], additionally attaching update
    /// traces so freshness-aware recommendation has temporal signal.
    pub fn analyze_with_history<'a>(
        &self,
        snapshot: &'a SnapshotView,
        history: &'a History,
    ) -> Analysis<'a> {
        self.analyze_inner(snapshot, Some(history))
    }

    fn analyze_inner<'a>(
        &self,
        snapshot: &'a SnapshotView,
        history: Option<&'a History>,
    ) -> Analysis<'a> {
        let result = Arc::new(self.strategy.discover(snapshot));
        let matrix = result.dependence_matrix();
        Analysis {
            snapshot,
            history,
            result,
            matrix,
            params: self.params.clone(),
            trust_weights: self.trust_weights,
            strategy_name: self.strategy.name(),
            reports: OnceLock::new(),
            trust: OnceLock::new(),
        }
    }
}

impl std::fmt::Debug for SailingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SailingEngine")
            .field("strategy", &self.strategy.name())
            .field("params", &self.params)
            .finish()
    }
}

/// Everything the engine learned about one snapshot, computed once.
///
/// All accessors are cheap: the pipeline ran during
/// [`SailingEngine::analyze`], and the dependence matrix is prebuilt. The
/// handle borrows the snapshot so online sessions can probe it without
/// copying the data.
#[derive(Debug, Clone)]
pub struct Analysis<'a> {
    snapshot: &'a SnapshotView,
    history: Option<&'a History>,
    /// Shared with every [`FusionOutcome`] derived from this analysis:
    /// `fuse()` bumps a reference count instead of deep-cloning the full
    /// posterior payload per call.
    result: Arc<PipelineResult>,
    matrix: DependenceMatrix,
    params: DetectionParams,
    trust_weights: TrustWeights,
    strategy_name: &'static str,
    /// Lazily-computed per-source reports; `OnceLock` keeps repeated
    /// `source_reports()` / `top_k()` calls from redoing the O(sources²)
    /// summary work.
    reports: OnceLock<Vec<SourceReport>>,
    /// Lazily-computed trust scores, for the same reason: `recommend()`
    /// may be called once per goal/limit against one analysis.
    trust: OnceLock<Vec<TrustScore>>,
}

impl<'a> Analysis<'a> {
    /// The analyzed snapshot.
    pub fn snapshot(&self) -> &'a SnapshotView {
        self.snapshot
    }

    /// The strategy that produced this analysis.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy_name
    }

    /// The raw pipeline result (probabilities, accuracies, dependences).
    pub fn result(&self) -> &PipelineResult {
        &self.result
    }

    /// Posterior value distributions per object.
    pub fn probabilities(&self) -> &ValueProbabilities {
        &self.result.probabilities
    }

    /// Converged per-source accuracies (empty for accuracy-blind
    /// strategies such as naive voting).
    pub fn accuracies(&self) -> &[f64] {
        &self.result.accuracies
    }

    /// Detected pairwise dependences.
    pub fn dependences(&self) -> &[PairDependence] {
        &self.result.dependences
    }

    /// Pairs whose dependence posterior crosses `threshold`, most probable
    /// first.
    pub fn dependent_pairs(&self, threshold: f64) -> Vec<&PairDependence> {
        self.result.dependent_pairs(threshold)
    }

    /// The cached dependence matrix implied by the detected pairs.
    pub fn dependence_matrix(&self) -> &DependenceMatrix {
        &self.matrix
    }

    /// Hard truth decisions: most probable value per object.
    pub fn decisions(&self) -> HashMap<ObjectId, ValueId> {
        self.result.decisions()
    }

    /// Whether the discovery loop reached its fixpoint.
    pub fn converged(&self) -> bool {
        self.result.converged
    }

    /// Per-source summary: accuracy, coverage, copier probability, mean
    /// vote independence. Computed once per analysis from the cached
    /// dependence matrix, then memoised.
    pub fn source_reports(&self) -> &[SourceReport] {
        self.reports
            .get_or_init(|| self.result.source_reports_with(self.snapshot, &self.matrix))
    }

    /// The fusion outcome implied by this analysis — equivalent to running
    /// `sailing_fusion::fuse` with the engine's strategy, but sharing the
    /// already-converged pipeline result (no re-run, no deep clone).
    pub fn fuse(&self) -> FusionOutcome {
        FusionOutcome::from_shared(Arc::clone(&self.result), self.strategy_name)
    }

    /// The probabilistic-database view of the fused value distributions.
    pub fn probabilistic_database(&self) -> ProbabilisticDatabase {
        ProbabilisticDatabase::from_probabilities(&self.result.probabilities)
    }

    /// An online answering session pre-seeded with the converged
    /// accuracies and dependence matrix — the caller never assembles
    /// either by hand.
    pub fn online_session(&self) -> OnlineSession<'a> {
        OnlineSession::new(
            self.snapshot,
            self.result.accuracies.clone(),
            self.matrix.clone(),
            self.params.clone(),
        )
    }

    /// The complete source-visit order a policy produces under this
    /// analysis's accuracies and dependences.
    pub fn visit_order(&self, policy: &OrderingPolicy) -> Vec<SourceId> {
        order_sources(self.snapshot, &self.result.accuracies, &self.matrix, policy)
    }

    /// Dependence-aware top-k answering for one object: each source's
    /// support is weighted by its accuracy times its vote independence.
    pub fn top_k(&self, object: ObjectId, k: usize, policy: &OrderingPolicy) -> TopKResult {
        let order = self.visit_order(policy);
        let weights: Vec<f64> = self
            .source_reports()
            .iter()
            .map(|r| r.accuracy * r.mean_independence)
            .collect();
        top_k_values_for_object(self.snapshot, object, &order, &weights, k)
    }

    /// Per-source trust scores (accuracy, coverage, freshness,
    /// independence); freshness uses the attached history when present.
    /// Computed once per analysis, then memoised.
    pub fn trust_scores(&self) -> &[TrustScore] {
        self.trust.get_or_init(|| {
            trust_scores(
                self.snapshot,
                &self.result.accuracies,
                &self.matrix,
                self.history,
            )
        })
    }

    /// Goal-directed source recommendations derived from the cached trust
    /// scores and dependences.
    pub fn recommend(&self, goal: Goal, limit: usize) -> Vec<Recommendation> {
        recommend_sources(
            self.trust_scores(),
            &self.result.dependences,
            goal,
            &self.trust_weights,
            limit,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_core::{Accu, NaiveVote};
    use sailing_fusion::{fuse, FusionStrategy};
    use sailing_model::fixtures;

    #[test]
    fn builder_validates_params() {
        let err = SailingEngine::builder()
            .params(DetectionParams {
                copy_rate: 2.0,
                ..DetectionParams::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SailingError::InvalidParameter {
                param: "copy_rate",
                ..
            }
        ));
        assert!(SailingEngine::builder().threads(0).build().is_err());
    }

    #[test]
    fn analysis_matches_direct_pipeline_on_table1() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let engine = SailingEngine::with_defaults();
        let analysis = engine.analyze(&snap);

        let direct = AccuCopy::with_defaults().run(&snap);
        assert_eq!(analysis.decisions(), direct.decisions());
        // Hash-map iteration order varies between runs, so float summation
        // can differ by an ULP; the estimates must agree to high precision.
        assert_eq!(analysis.accuracies().len(), direct.accuracies.len());
        for (a, d) in analysis.accuracies().iter().zip(&direct.accuracies) {
            assert!((a - d).abs() < 1e-9);
        }
        assert_eq!(analysis.dependences().len(), direct.dependences.len());
        assert_eq!(truth.decision_precision(&analysis.decisions()), Some(1.0));
        assert!(analysis.converged());
        assert_eq!(analysis.strategy_name(), "accu-copy");
    }

    #[test]
    fn fuse_matches_fusion_crate_without_rerun() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let analysis = SailingEngine::with_defaults().analyze(&snap);
        let via_engine = analysis.fuse();
        let via_crate = fuse(&snap, &FusionStrategy::dependence_aware()).unwrap();
        assert_eq!(via_engine.decisions, via_crate.decisions);
        assert_eq!(via_engine.strategy, via_crate.strategy);
    }

    #[test]
    fn online_session_is_auto_seeded() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let analysis = SailingEngine::with_defaults().analyze(&snap);
        let order = analysis.visit_order(&OrderingPolicy::GreedyIndependent);
        let mut session = analysis.online_session();
        let steps = session.run_order(&order);
        assert_eq!(steps.len(), 5);
        // The greedy order front-loads the independents; after two probes
        // the answers are already fully correct (paper's Example 4.1 idea).
        assert_eq!(truth.decision_precision(&steps[1].decisions), Some(1.0));
    }

    #[test]
    fn recommendations_avoid_the_copier_cluster() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let analysis = SailingEngine::with_defaults().analyze(&snap);
        let recs = analysis.recommend(Goal::TruthSeeking, 2);
        assert_eq!(recs.len(), 2);
        let s = |n: &str| store.source_id(n).unwrap();
        let picked: Vec<SourceId> = recs.iter().map(|r| r.source).collect();
        assert!(picked.contains(&s("S1")), "{picked:?}");
        // No two recommended sources may be a confident dependent pair.
        for (i, x) in picked.iter().enumerate() {
            for y in &picked[i + 1..] {
                assert!(analysis.dependence_matrix().dependent(*x, *y) < 0.5);
            }
        }
    }

    #[test]
    fn pluggable_strategies_change_the_analysis() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let naive = SailingEngine::builder()
            .strategy(NaiveVote::new())
            .build()
            .unwrap();
        let accu = SailingEngine::builder()
            .strategy(Accu::with_defaults())
            .build()
            .unwrap();
        let p_naive = truth
            .decision_precision(&naive.analyze(&snap).decisions())
            .unwrap();
        let p_accu = truth
            .decision_precision(&accu.analyze(&snap).decisions())
            .unwrap();
        assert!((p_naive - 0.4).abs() < 1e-9);
        assert!(p_accu >= p_naive);
        assert_eq!(naive.strategy_name(), "naive");
        assert!(naive.analyze(&snap).dependences().is_empty());
    }

    #[test]
    fn top_k_answers_through_the_facade() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let analysis = SailingEngine::with_defaults().analyze(&snap);
        let halevy = store.object_id("Halevy").unwrap();
        let result = analysis.top_k(halevy, 1, &OrderingPolicy::ByAccuracy);
        assert_eq!(result.top.len(), 1);
        assert_eq!(Some(result.top[0].0), truth.value(halevy));
    }

    #[test]
    fn engine_is_shareable_and_debuggable() {
        let engine = SailingEngine::with_defaults();
        let clone = engine.clone();
        let handle = std::thread::spawn(move || {
            let (store, _) = fixtures::table1();
            clone.analyze(&store.snapshot()).decisions().len()
        });
        assert_eq!(handle.join().unwrap(), 5);
        assert!(format!("{engine:?}").contains("accu-copy"));
    }

    #[test]
    fn builder_threads_composes_with_params_in_any_order() {
        // `threads()` must survive a later wholesale `params()` call.
        let engine = SailingEngine::builder()
            .threads(8)
            .params(DetectionParams::default())
            .build()
            .unwrap();
        assert_eq!(engine.params().threads, 8);
        let engine = SailingEngine::builder()
            .params(DetectionParams::default())
            .threads(8)
            .build()
            .unwrap();
        assert_eq!(engine.params().threads, 8);
    }

    #[test]
    fn custom_strategy_params_drive_downstream_voting() {
        // A strategy carrying its own parameters must also govern the
        // online-session voting path, keeping the facade invariant that a
        // fully-probed session equals the fused decisions.
        let params = DetectionParams {
            n_false_values: 50,
            copy_rate: 0.6,
            ..DetectionParams::default()
        };
        let engine = SailingEngine::builder()
            .strategy(AccuCopy::new(params.clone()).unwrap())
            .build()
            .unwrap();
        assert_eq!(engine.params().n_false_values, 50);

        // Builder-level overrides cannot reach inside a param-carrying
        // strategy, so combining them is a typed configuration error
        // rather than a silent no-op.
        let err = SailingEngine::builder()
            .strategy(AccuCopy::new(params.clone()).unwrap())
            .threads(8)
            .build()
            .unwrap_err();
        assert!(matches!(err, SailingError::InvalidConfig { .. }));

        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let analysis = engine.analyze(&snap);
        let order = analysis.visit_order(&OrderingPolicy::ByAccuracy);
        let mut session = analysis.online_session();
        let steps = session.run_order(&order);
        assert_eq!(
            steps.last().unwrap().decisions,
            analysis.fuse().decisions,
            "fully-probed session must match fused decisions under custom params"
        );
    }

    #[test]
    fn bookstore_corpus_raises_the_screening_floor() {
        let config = BookCorpusConfig::small(7);
        assert_eq!(config.min_shared_books, 10);
        // Attached corpus → Example 4.1 screening becomes the default.
        let engine = SailingEngine::builder()
            .bookstore_corpus(&config)
            .build()
            .unwrap();
        assert_eq!(engine.params().min_overlap, 10);
        // An explicitly stricter floor wins over the corpus's.
        let engine = SailingEngine::builder()
            .params(DetectionParams {
                min_overlap: 25,
                ..DetectionParams::default()
            })
            .bookstore_corpus(&config)
            .build()
            .unwrap();
        assert_eq!(engine.params().min_overlap, 25);
        // A param-carrying strategy conflicts, like params()/threads().
        let err = SailingEngine::builder()
            .strategy(AccuCopy::with_defaults())
            .bookstore_corpus(&config)
            .build()
            .unwrap_err();
        assert!(matches!(err, SailingError::InvalidConfig { .. }));
    }

    #[test]
    fn fuse_shares_the_pipeline_result_without_deep_clone() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let analysis = SailingEngine::with_defaults().analyze(&snap);
        let f1 = analysis.fuse();
        let f2 = analysis.fuse();
        // Pointer identity: every outcome reads the exact PipelineResult
        // allocation the analysis holds — fuse() is a refcount bump.
        assert!(
            std::ptr::eq(analysis.result(), f1.result()),
            "fuse() must share, not clone, the analysis result"
        );
        assert!(std::ptr::eq(f1.result(), f2.result()));
        // And therefore the distribution slices are the same memory.
        let o = analysis.probabilities().objects()[0];
        assert!(std::ptr::eq(
            analysis.probabilities().distribution(o).as_ptr(),
            f1.probabilities().distribution(o).as_ptr(),
        ));
    }

    #[test]
    fn empty_snapshot_analysis_is_sane() {
        let snap = SnapshotView::from_triples(0, 0, Vec::new());
        let analysis = SailingEngine::with_defaults().analyze(&snap);
        assert!(analysis.decisions().is_empty());
        assert!(analysis.recommend(Goal::DiversitySeeking, 3).is_empty());
        assert!(analysis.source_reports().is_empty());
        assert!(analysis.online_session().current_decisions().is_empty());
    }
}
