//! The unified engine: one pipeline run, every downstream application.
//!
//! The paper's programme is a single loop — *determine true values ↔
//! compute source accuracy ↔ discover dependence* — whose converged output
//! feeds every application in Section 4: data fusion, online query
//! answering, and source recommendation. Before this facade existed each
//! downstream crate re-orchestrated that loop by hand ("pilot pipeline
//! runs" feeding raw accuracy vectors and dependence matrices around);
//! [`SailingEngine`] runs it **once per snapshot** and hands back a cached
//! [`Analysis`] from which everything else derives:
//!
//! ```
//! use sailing::engine::SailingEngine;
//! use sailing::model::fixtures;
//! use sailing::query::OrderingPolicy;
//! use sailing::recommend::Goal;
//!
//! let (store, truth) = fixtures::table1();
//! let snapshot = store.snapshot();
//! let engine = SailingEngine::builder().threads(2).build()?;
//! let analysis = engine.analyze(&snapshot);
//!
//! // Fusion, online answering, and recommendation all reuse the same
//! // converged accuracies and dependence matrix — no plumbing.
//! assert_eq!(truth.decision_precision(&analysis.decisions()), Some(1.0));
//! let fused = analysis.fuse();
//! let mut session = analysis.online_session();
//! let order = analysis.visit_order(&OrderingPolicy::GreedyIndependent);
//! let steps = session.run_order(&order);
//! let recs = analysis.recommend(Goal::TruthSeeking, 3);
//! assert_eq!(fused.decisions, steps.last().unwrap().decisions);
//! assert_eq!(recs.len(), 3);
//! # Ok::<(), sailing::error::SailingError>(())
//! ```
//!
//! # Sessions over timelines
//!
//! The paper's whole point is sailing with awareness of *currents*: sources
//! evolve, copy, and correct each other **over time**. The engine is
//! therefore timeline-native, not frozen at one snapshot:
//!
//! * [`Analysis`] is **owned** (`Send + 'static`): it shares the snapshot
//!   and the converged pipeline result through [`Arc`]s, so analyses can be
//!   stored, returned, and handed across threads. [`SailingEngine::analyze`]
//!   remains as a thin compatibility wrapper that clones the borrowed
//!   snapshot into an `Arc` (on a cache miss only);
//!   [`SailingEngine::analyze_owned`] is the primary, clone-free entry.
//! * [`SailingEngine::timeline`] walks a [`History`] change point by change
//!   point, materialises each epoch's snapshot once, and **warm-starts**
//!   truth discovery from the previous epoch's posterior
//!   ([`TruthDiscovery::run_warm`]) — fewer iterations per epoch on small
//!   deltas, identical fixpoints. Each [`EpochAnalysis`] also carries the
//!   update-trace dependence evidence
//!   ([`sailing_core::temporal::detect_all`]) so lazy copiers invisible in
//!   any single snapshot still surface in the epoch's report.
//! * Analyses are cached inside the engine, keyed by the snapshot's
//!   [content hash](SnapshotView::content_hash) plus the computation's
//!   warm/cold provenance, with LRU eviction — repeating a query through
//!   the same path (another cold `analyze`, a timeline re-walk) is free,
//!   while a cold `analyze` never silently observes a warm-seeded result;
//!   see [`SailingEngine::cache_stats`].
//! * Cache misses are admitted with **single-flight** semantics: when many
//!   threads miss on the same snapshot concurrently, exactly one runs the
//!   discovery loop (and the persistent-store lookup) while the rest block
//!   on the in-flight computation and adopt its pointer-identical result —
//!   a thundering herd performs one unit of work, counted in
//!   [`CacheStats::inflight_waits`]. The `sailing-serve` crate builds its
//!   concurrent query-serving tier on exactly this admission path.
//! * The cache can be backed by a **persistent store**
//!   ([`SailingEngineBuilder::persist_dir`]): computed results are
//!   written to disk in a versioned, checksummed format
//!   ([`sailing_persist`]), and a second *process* over the same
//!   snapshots gets disk hits instead of cold discovery runs — damaged
//!   or stale files degrade to cold misses, never errors. With
//!   [`SailingEngineBuilder::persist_async`] the store writes on its own
//!   background thread, so the analysis path performs **zero filesystem
//!   syscalls** ([`SailingEngine::flush_persist`] becomes a drain
//!   barrier, deferred failures surface via
//!   [`SailingEngine::take_persist_write_errors`]); one store directory
//!   is safe to share across engines, processes, and machines —
//!   compaction takes the directory's advisory lock and can never sweep
//!   a just-written valid entry.
//! * On multi-core machines [`SailingEngine::timeline_batched`] (or
//!   [`TimelineSession::prefetch_cold`]) runs the timeline's cold epoch
//!   analyses **in parallel** first — store-resident epochs are skipped,
//!   the rest fan out under [`std::thread::scope`] in LPT-balanced
//!   chunks — and the walk then consumes the precomputed results,
//!   preserving the converged-prior gating semantics exactly.
//!
//! ```
//! use sailing::engine::SailingEngine;
//! use sailing::model::fixtures;
//!
//! // Table 3: three sources updating researcher affiliations over years.
//! let (store, history, _) = fixtures::table3();
//! let engine = SailingEngine::with_defaults();
//!
//! // One warm-started analysis per epoch, oldest first.
//! let epochs: Vec<_> = engine.timeline(&history).collect();
//! assert_eq!(epochs.len(), history.change_points().count());
//! for epoch in &epochs {
//!     // Reproducibly ordered decisions for this epoch's snapshot…
//!     let decisions = epoch.analysis().decisions();
//!     assert!(decisions.len() <= 5);
//!     // …and dependence evidence fused from the snapshot *and* the
//!     // update traces (the lazy copier S3 → S1 is a temporal finding).
//!     let fused = epoch.fused_dependences();
//!     assert!(fused.len() >= epoch.analysis().dependences().len());
//! }
//!
//! // Walking the same timeline again is free: every epoch is served
//! // from the engine's analysis cache — pointer-identical results, no
//! // discovery re-run (`total_iterations` of the rerun stays 0).
//! let rerun: Vec<_> = engine.timeline(&history).collect();
//! assert!(rerun.iter().all(|e| e.from_cache()));
//! assert!(engine.cache_stats().hits as usize >= rerun.len());
//! assert_eq!(
//!     epochs.last().unwrap().analysis().decisions(),
//!     rerun.last().unwrap().analysis().decisions()
//! );
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use sailing_core::shard::{iteration_digest, shard_ranges, PairRange, PartialDependence};
use sailing_core::truth::{DependenceMatrix, ValueProbabilities};
use sailing_core::{
    AccuCopy, DeltaOutcome, DeltaRun, DetectionParams, PairDependence, PipelineResult,
    SourceReport, TemporalParams, Termination, TruthDiscovery, Watchdog,
};
use sailing_datagen::bookstores::BookCorpusConfig;
use sailing_fusion::{FusionOutcome, ProbabilisticDatabase};
use sailing_ingest::{ClaimLog, IngestLogStats, SealPolicy};
use sailing_model::equivalence::{Exact, ValueEquivalence, ValueQuotient};
use sailing_model::{
    fx_mix, Delta, History, ObjectId, SailingError, SnapshotView, SourceId, Timestamp, ValueId,
};
use sailing_persist::{
    BreakerState, CompactReport, PersistentStore, StoreFs, StoreKey, StoreOptions,
};
use sailing_query::topk::{top_k_values_for_object, TopKResult};
use sailing_query::{order_sources, OnlineSession, OrderingPolicy};
use sailing_recommend::{
    recommend_sources, trust_scores, Goal, Recommendation, TrustScore, TrustWeights,
};

/// Default number of snapshot analyses the engine keeps cached.
const DEFAULT_CACHE_CAPACITY: usize = 16;

/// How often a cooperative sharded analysis re-polls the store for a
/// partial claimed by another process.
const SHARD_ADOPT_POLL: Duration = Duration::from_millis(25);

/// How long it polls before concluding the claimant is gone and
/// recomputing the range locally — the liveness bound for a crashed
/// peer.
const SHARD_ADOPT_DEADLINE: Duration = Duration::from_secs(2);

/// Store name (claim and blob alike) coordinating one pair-range of one
/// iteration of one snapshot's sharded analysis.
fn shard_partial_name(hash: u64, iteration: usize, range: PairRange) -> String {
    format!(
        "shard-{hash:016x}-i{iteration}-{}-{}",
        range.start, range.end
    )
}

/// Builder for [`SailingEngine`]; start from [`SailingEngine::builder`].
pub struct SailingEngineBuilder {
    params: Option<DetectionParams>,
    threads: Option<usize>,
    corpus_min_overlap: Option<usize>,
    strategy: Option<Arc<dyn TruthDiscovery>>,
    trust_weights: TrustWeights,
    temporal_params: TemporalParams,
    cache_capacity: usize,
    persist_dir: Option<PathBuf>,
    persist_async: bool,
    persist_queue_depth: usize,
    persist_retry: Option<(u32, Duration)>,
    persist_breaker: Option<(u32, Duration)>,
    persist_shutdown_deadline: Option<Duration>,
    persist_fs: Option<Arc<dyn StoreFs>>,
    persist_shards: Option<usize>,
    watchdog: Option<Watchdog>,
    equivalence: Option<Arc<dyn ValueEquivalence>>,
}

impl SailingEngineBuilder {
    fn new() -> Self {
        Self {
            params: None,
            threads: None,
            corpus_min_overlap: None,
            strategy: None,
            trust_weights: TrustWeights::default(),
            temporal_params: TemporalParams::default(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            persist_dir: None,
            persist_async: false,
            persist_queue_depth: sailing_persist::DEFAULT_QUEUE_DEPTH,
            persist_retry: None,
            persist_breaker: None,
            persist_shutdown_deadline: None,
            persist_fs: None,
            persist_shards: None,
            watchdog: None,
            equivalence: None,
        }
    }

    /// Sets the detection parameters used by the default strategy and by
    /// downstream voting (online sessions, fusion damping).
    #[must_use]
    pub fn params(mut self, params: DetectionParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Installs a custom truth-discovery strategy (defaults to ACCU-COPY
    /// with the configured parameters).
    #[must_use]
    pub fn strategy(mut self, strategy: impl TruthDiscovery + 'static) -> Self {
        self.strategy = Some(Arc::new(strategy));
        self
    }

    /// Shorthand for setting the pairwise-detection worker thread count.
    /// Applied on `build()`, so it composes with [`Self::params`] in
    /// either call order.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the trust-factor weights used by [`Analysis::recommend`].
    #[must_use]
    pub fn trust_weights(mut self, weights: TrustWeights) -> Self {
        self.trust_weights = weights;
        self
    }

    /// Sets the update-trace detection parameters used by
    /// [`SailingEngine::timeline`]'s temporal dependence pass.
    #[must_use]
    pub fn temporal_params(mut self, params: TemporalParams) -> Self {
        self.temporal_params = params;
        self
    }

    /// Bounds the engine's snapshot-keyed analysis cache (LRU). `0`
    /// disables in-memory caching entirely; the default keeps 16 analyses.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Attaches a **persistent analysis store** rooted at `dir`
    /// ([`sailing_persist::PersistentStore`]): every freshly computed
    /// [`PipelineResult`] is written to disk in the versioned, checksummed
    /// store format, and in-memory cache misses fall through to a disk
    /// lookup — so a second process (or a re-run after restart) over the
    /// same snapshots gets disk hits instead of cold discovery runs. Disk
    /// traffic shows up as [`CacheStats::disk_hits`] /
    /// [`CacheStats::disk_misses`]; damaged or wrong-version store files
    /// degrade to cold misses, never errors. The directory is created on
    /// [`SailingEngineBuilder::build`].
    #[must_use]
    pub fn persist_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Moves the persistent store's writes to a **background writer
    /// thread**: with this on, the analysis path performs **zero
    /// filesystem syscalls** — `analyze`/`analyze_owned` enqueue the
    /// freshly computed result onto a bounded in-memory queue and return,
    /// and the store's writer thread drains it with the usual atomic
    /// temp-file+rename discipline. [`SailingEngine::flush_persist`]
    /// becomes a drain barrier; write failures that happen after the
    /// analysis returned surface through
    /// [`CacheStats::disk_write_errors`] and
    /// [`SailingEngine::take_persist_write_errors`] instead of being
    /// silently lost. No effect without
    /// [`SailingEngineBuilder::persist_dir`].
    ///
    /// ```
    /// use sailing::engine::SailingEngine;
    /// use sailing::model::fixtures;
    ///
    /// let dir = std::env::temp_dir().join(format!("sailing-doc-pa-{}", std::process::id()));
    /// let engine = SailingEngine::builder()
    ///     .persist_dir(&dir)
    ///     .persist_async(true)
    ///     .build()?;
    /// let (store, _) = fixtures::table1();
    /// let analysis = engine.analyze(&store.snapshot()); // no fs write here
    /// engine.flush_persist()?; // drain barrier: the entry is on disk now
    /// assert!(engine.take_persist_write_errors().is_empty());
    /// assert!(!analysis.decisions().is_empty());
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), sailing::error::SailingError>(())
    /// ```
    #[must_use]
    pub fn persist_async(mut self, enabled: bool) -> Self {
        self.persist_async = enabled;
        self
    }

    /// Bounds the async write-behind queue (entries). When full, the
    /// oldest unwritten entry is evicted — a future cold miss — rather
    /// than blocking the analysis thread. Ignored unless
    /// [`SailingEngineBuilder::persist_async`] is on; clamped to at
    /// least 1. Defaults to [`sailing_persist::DEFAULT_QUEUE_DEPTH`].
    #[must_use]
    pub fn persist_queue_depth(mut self, depth: usize) -> Self {
        self.persist_queue_depth = depth;
        self
    }

    /// Lets the persistent store retry failed entry writes: up to
    /// `max_attempts` tries per entry (clamped to at least 1) with bounded
    /// exponential backoff starting at `base_delay`. A write that succeeds
    /// on a retry is invisible to callers apart from
    /// [`CacheStats::disk_retries`]. No effect without
    /// [`SailingEngineBuilder::persist_dir`].
    #[must_use]
    pub fn persist_retry(mut self, max_attempts: u32, base_delay: Duration) -> Self {
        self.persist_retry = Some((max_attempts, base_delay));
        self
    }

    /// Arms the persistent store's **circuit breaker**: after `threshold`
    /// consecutive exhausted-retry write failures the store stops touching
    /// the filesystem and fast-fails new writes (counted in
    /// [`CacheStats::disk_breaker_fast_fails`]) until `cooldown` has
    /// elapsed, then lets a single probe write through to decide whether
    /// to close again. `threshold = 0` (the default) disables the
    /// breaker. Observable via [`CacheStats::disk_breaker`]. No effect
    /// without [`SailingEngineBuilder::persist_dir`].
    #[must_use]
    pub fn persist_breaker(mut self, threshold: u32, cooldown: Duration) -> Self {
        self.persist_breaker = Some((threshold, cooldown));
        self
    }

    /// Bounds how long the last engine clone's drop waits for the async
    /// writer to drain before detaching (default
    /// [`sailing_persist::SHUTDOWN_DRAIN_DEADLINE`]). No effect without
    /// [`SailingEngineBuilder::persist_async`].
    #[must_use]
    pub fn persist_shutdown_deadline(mut self, deadline: Duration) -> Self {
        self.persist_shutdown_deadline = Some(deadline);
        self
    }

    /// Routes the persistent store's filesystem access through a custom
    /// [`StoreFs`] — primarily [`sailing_persist::FaultyFs`] for
    /// deterministic fault-injection testing of the retry/breaker/
    /// degraded-serving paths. No effect without
    /// [`SailingEngineBuilder::persist_dir`].
    #[must_use]
    pub fn persist_fs(mut self, fs: Arc<dyn StoreFs>) -> Self {
        self.persist_fs = Some(fs);
        self
    }

    /// Spreads the persistent store's entries over `n` hash-prefix
    /// subdirectories (see [`sailing_persist::StoreOptions::shards`]):
    /// compaction locks per shard instead of the whole store, and large
    /// stores avoid one enormous flat directory. Opening an existing
    /// flat store with shards configured migrates it in place; `0` (the
    /// default) keeps the flat layout. No effect without
    /// [`SailingEngineBuilder::persist_dir`].
    #[must_use]
    pub fn persist_shards(mut self, n: usize) -> Self {
        self.persist_shards = Some(n);
        self
    }

    /// Arms a **discovery watchdog** on the default ACCU-COPY strategy: a
    /// wall-clock deadline and/or limit-cycle detection that end a
    /// non-converging run as a typed outcome
    /// ([`Analysis::termination`]) instead of spinning to the iteration
    /// cap. Rejected on [`SailingEngineBuilder::build`] when combined
    /// with [`SailingEngineBuilder::strategy`] — a custom strategy runs
    /// its own loop, so the watchdog could never reach it; configure it
    /// on the strategy object instead.
    #[must_use]
    pub fn discovery_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Installs a [`ValueEquivalence`] backend: before any discovery
    /// runs, the engine quotients the snapshot's value space under it
    /// ([`SnapshotView::quotient`]) and rewrites every assertion to its
    /// class representative, so dissimilarity, copy detection, and voting
    /// treat equivalent values ("J. Smith" / "John Smith", `3.14` /
    /// `3.140`) as one value — while the hot loops stay pure integer
    /// comparisons.
    ///
    /// The default is [`sailing_model::equivalence::Exact`], which is
    /// bitwise identical to an engine without this call (no quotient is
    /// built, cache and persist keys keep their legacy values). Non-exact
    /// backends fold the realised partition's digest into every cache and
    /// persist key, so an exact analysis never aliases a normalized one —
    /// in memory or on disk. Snapshots without a value arena (wire
    /// round-trips, bare triples, history replays) quotient to the
    /// identity: a non-exact backend degrades to exact matching there
    /// rather than guessing, still under its own keys.
    #[must_use]
    pub fn value_equivalence(mut self, equivalence: impl ValueEquivalence + 'static) -> Self {
        self.equivalence = Some(Arc::new(equivalence));
        self
    }

    /// Attaches a bookstore-corpus configuration, making its screening the
    /// engine default: the candidate-pair floor is raised to the corpus's
    /// `min_shared_books` (Example 4.1 screens AbeBooks pairs by "at least
    /// the same 10 books"). On the seed-42 bookstore world this takes
    /// copy-detection precision from ≈0.29 at the generic `min_overlap = 3`
    /// to above 0.7. An explicitly configured higher `min_overlap` wins.
    #[must_use]
    pub fn bookstore_corpus(mut self, config: &BookCorpusConfig) -> Self {
        self.corpus_min_overlap = Some(config.min_shared_books);
        self
    }

    /// Validates the configuration and builds the engine.
    ///
    /// # Errors
    /// Returns [`SailingError::InvalidParameter`] when the detection
    /// parameters violate their documented constraints.
    pub fn build(self) -> Result<SailingEngine, SailingError> {
        let mut params = self.params.clone().unwrap_or_default();
        if let Some(threads) = self.threads {
            params.threads = threads;
        }
        if let Some(min_shared) = self.corpus_min_overlap {
            params.min_overlap = params.min_overlap.max(min_shared);
        }
        params.validate()?;
        let strategy: Arc<dyn TruthDiscovery> = match self.strategy {
            Some(s) => {
                // Same conflict rule as params below: the watchdog lives
                // inside the discovery loop, so it can only reach the
                // default strategy the builder constructs itself.
                if self.watchdog.is_some() {
                    return Err(SailingError::config(
                        "SailingEngineBuilder",
                        "discovery_watchdog only applies to the default strategy; \
                         configure the watchdog on the custom strategy object instead",
                    ));
                }
                // A strategy carrying its own detection parameters (e.g. a
                // hand-built `AccuCopy`) is the source of truth for the
                // whole loop: discovery runs inside the strategy object, so
                // builder-level `params()`/`threads()`/corpus screening
                // could never reach it. Accepting both silently would let
                // the overrides appear to take effect while discovery
                // ignores them — reject the conflict instead.
                if let Some(sp) = s.detection_params() {
                    if self.params.is_some()
                        || self.threads.is_some()
                        || self.corpus_min_overlap.is_some()
                    {
                        return Err(SailingError::config(
                            "SailingEngineBuilder",
                            "the installed strategy carries its own DetectionParams; \
                             configure params/threads/corpus screening on the strategy \
                             instead of the builder",
                        ));
                    }
                    params = sp.clone();
                    params.validate()?;
                }
                s
            }
            None => {
                let pipeline = AccuCopy::new(params.clone())?;
                Arc::new(match self.watchdog {
                    Some(watchdog) => pipeline.with_watchdog(watchdog),
                    None => pipeline,
                })
            }
        };
        self.temporal_params.validate()?;
        let persist = match self.persist_dir {
            Some(dir) => {
                let mut options = StoreOptions {
                    async_writer: self.persist_async,
                    queue_depth: self.persist_queue_depth,
                    ..StoreOptions::default()
                };
                if let Some((max_attempts, base_delay)) = self.persist_retry {
                    options = options.retry(max_attempts, base_delay);
                }
                if let Some((threshold, cooldown)) = self.persist_breaker {
                    options = options.breaker(threshold, cooldown);
                }
                if let Some(deadline) = self.persist_shutdown_deadline {
                    options = options.shutdown_deadline(deadline);
                }
                if let Some(shards) = self.persist_shards {
                    options = options.shards(shards);
                }
                let store = match self.persist_fs {
                    Some(fs) => PersistentStore::open_with_fs(dir, options, fs)?,
                    None => PersistentStore::open_with(dir, options)?,
                };
                Some(Arc::new(store))
            }
            None => None,
        };
        Ok(SailingEngine {
            params,
            strategy,
            trust_weights: self.trust_weights,
            temporal_params: self.temporal_params,
            cache: Arc::new(AnalysisCache::new(self.cache_capacity)),
            persist,
            shard: Arc::new(ShardCounters::default()),
            equivalence: self.equivalence.unwrap_or_else(|| Arc::new(Exact)),
        })
    }
}

/// The top-level entry point of the workspace.
///
/// An engine is a validated configuration (detection parameters, a
/// pluggable [`TruthDiscovery`] strategy, trust weights) plus a bounded
/// snapshot-keyed analysis cache. It is cheap to clone and safe to share
/// across threads — clones share the cache; each
/// [`SailingEngine::analyze_owned`] call runs the discovery loop at most
/// once per distinct snapshot and returns an owned [`Analysis`].
#[derive(Clone)]
pub struct SailingEngine {
    params: DetectionParams,
    strategy: Arc<dyn TruthDiscovery>,
    trust_weights: TrustWeights,
    temporal_params: TemporalParams,
    cache: Arc<AnalysisCache>,
    /// The durable tier under the in-memory cache, when configured —
    /// shared by clones, like the cache itself.
    persist: Option<Arc<PersistentStore>>,
    /// Counters for the pair-sharded analysis path — shared by clones,
    /// like the cache.
    shard: Arc<ShardCounters>,
    /// The value-equivalence backend every analysis path quotients
    /// through; [`Exact`] by default (zero-cost, bitwise-identical).
    equivalence: Arc<dyn ValueEquivalence>,
}

/// Counters behind [`CacheStats::shard_runs`] /
/// [`CacheStats::shard_partials_adopted`].
#[derive(Debug, Default)]
struct ShardCounters {
    /// Pair-range detection passes this engine (and its clones) computed
    /// locally.
    runs: AtomicU64,
    /// Partials adopted from a cooperating process's published blob
    /// instead of being recomputed.
    adopted: AtomicU64,
}

impl SailingEngine {
    /// Starts configuring an engine.
    pub fn builder() -> SailingEngineBuilder {
        SailingEngineBuilder::new()
    }

    /// An engine with default parameters and the ACCU-COPY strategy.
    pub fn with_defaults() -> Self {
        Self::builder()
            .build()
            .expect("default engine parameters are valid")
    }

    /// The detection parameters in force.
    pub fn params(&self) -> &DetectionParams {
        &self.params
    }

    /// The temporal detection parameters used by
    /// [`SailingEngine::timeline`].
    pub fn temporal_params(&self) -> &TemporalParams {
        &self.temporal_params
    }

    /// The name of the installed strategy.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Hit/miss/occupancy counters of the snapshot-keyed analysis cache,
    /// plus the persistent tier's disk counters when one is attached.
    /// Shared by all clones of this engine.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.cache.stats();
        if let Some(store) = &self.persist {
            let disk = store.stats();
            stats.disk_hits = disk.disk_hits;
            stats.disk_misses = disk.disk_misses;
            stats.disk_writes = disk.writes;
            stats.disk_write_errors = disk.write_errors;
            stats.disk_dropped = disk.dropped;
            stats.disk_retries = disk.retries;
            stats.disk_breaker_fast_fails = disk.breaker_fast_fails;
            stats.disk_breaker = store.breaker_state();
        }
        stats.shard_runs = self.shard.runs.load(Ordering::Relaxed);
        stats.shard_partials_adopted = self.shard.adopted.load(Ordering::Relaxed);
        stats
    }

    /// The attached persistent analysis store, when
    /// [`SailingEngineBuilder::persist_dir`] configured one.
    pub fn persist_store(&self) -> Option<&PersistentStore> {
        self.persist.as_deref()
    }

    /// Flushes the persistent store's buffered writes to disk; returns the
    /// number of entries written (`0` when no store is attached — results
    /// are also flushed automatically and when the last engine clone
    /// drops). With [`SailingEngineBuilder::persist_async`] on, this is a
    /// **drain barrier**: it returns once every result computed before
    /// the call has been written (or failed) by the store's background
    /// writer thread.
    ///
    /// # Errors
    /// [`SailingError::Persist`] on an inline filesystem failure, or
    /// [`SailingError::PersistDeferred`] carrying the oldest failure from
    /// the background writer (the rest stay available via
    /// [`SailingEngine::take_persist_write_errors`]).
    pub fn flush_persist(&self) -> Result<usize, SailingError> {
        match &self.persist {
            Some(store) => store.flush(),
            None => Ok(0),
        }
    }

    /// Takes (and clears) the persistent store's deferred write errors —
    /// background or auto-flush failures that happened after the
    /// originating analysis had already returned. Empty when no store is
    /// attached or nothing failed; counts stay visible in
    /// [`CacheStats::disk_write_errors`] either way.
    ///
    /// ```
    /// use sailing::engine::SailingEngine;
    ///
    /// let dir = std::env::temp_dir().join(format!("sailing-doc-twe-{}", std::process::id()));
    /// let engine = SailingEngine::builder()
    ///     .persist_dir(&dir)
    ///     .persist_async(true)
    ///     .build()?;
    /// // … analyses run, the writer thread persists them in the background …
    /// for err in engine.take_persist_write_errors() {
    ///     eprintln!("analysis persisted late or not at all: {err}");
    /// }
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), sailing::error::SailingError>(())
    /// ```
    pub fn take_persist_write_errors(&self) -> Vec<SailingError> {
        self.persist
            .as_deref()
            .map_or_else(Vec::new, PersistentStore::take_write_errors)
    }

    /// Sweeps the persistent store, removing damaged or wrong-version
    /// entries (a no-op report when no store is attached).
    ///
    /// # Errors
    /// [`SailingError::Persist`] on a filesystem failure.
    pub fn compact_persist(&self) -> Result<CompactReport, SailingError> {
        match &self.persist {
            Some(store) => store.compact(),
            None => Ok(CompactReport::default()),
        }
    }

    /// Runs the truth ↔ accuracy ↔ dependence loop once over `snapshot`
    /// and returns everything downstream consumers need.
    ///
    /// Compatibility wrapper over [`SailingEngine::analyze_owned`]: on a
    /// cache miss the borrowed snapshot is cloned into an [`Arc`] so the
    /// returned [`Analysis`] owns its data (`Send + 'static`); on a hit
    /// the cached snapshot handle is reused and nothing is copied. Callers
    /// that already hold an `Arc<SnapshotView>` should prefer
    /// `analyze_owned`.
    pub fn analyze(&self, snapshot: &SnapshotView) -> Analysis {
        self.analyze_inner(SnapshotInput::Borrowed(snapshot), None, None)
            .0
    }

    /// The primary entry point: analyzes a shared snapshot without copying
    /// it.
    ///
    /// Results are cached per engine keyed by
    /// [`SnapshotView::content_hash`] (verified against the snapshot's
    /// content on every hit, so a hash collision can never serve another
    /// snapshot's analysis): a repeated call with an equal snapshot (same
    /// assertions, not necessarily the same allocation) returns an
    /// [`Analysis`] sharing the **pointer-identical** pipeline result,
    /// skipping the discovery loop entirely.
    pub fn analyze_owned(&self, snapshot: Arc<SnapshotView>) -> Analysis {
        self.analyze_inner(SnapshotInput::Owned(snapshot), None, None)
            .0
    }

    /// Like [`SailingEngine::analyze`], additionally attaching update
    /// traces so freshness-aware recommendation has temporal signal.
    pub fn analyze_with_history(&self, snapshot: &SnapshotView, history: &History) -> Analysis {
        self.analyze_inner(
            SnapshotInput::Borrowed(snapshot),
            Some(Arc::new(history.clone())),
            None,
        )
        .0
    }

    /// Owned variant of [`SailingEngine::analyze_with_history`].
    pub fn analyze_owned_with_history(
        &self,
        snapshot: Arc<SnapshotView>,
        history: Arc<History>,
    ) -> Analysis {
        self.analyze_inner(SnapshotInput::Owned(snapshot), Some(history), None)
            .0
    }

    /// Pair-sharded distributed analysis: fans the dependence-detection
    /// pass of each discovery iteration over `workers` contiguous ranges
    /// of the candidate-pair list (see [`sailing_core::shard`]) and folds
    /// the partials back into a result **bitwise identical** to
    /// [`SailingEngine::analyze`] on the same snapshot (without any
    /// configured watchdog, which the sharded path does not arm — the
    /// coordinator's iteration cap is the only stop).
    ///
    /// Without a persistent store the fan-out runs on `workers` scoped
    /// threads in this process. With one attached
    /// ([`SailingEngineBuilder::persist_dir`]), the fan-out is
    /// **cooperative**: each iteration's ranges are claimed through
    /// durable `.claim` entries and finished partials are published as
    /// store blobs, so several engine *processes* pointed at one store
    /// directory split the detection work of a single analysis. Unclaimed
    /// partials are adopted from the store (validated against the local
    /// iteration state and counted in
    /// [`CacheStats::shard_partials_adopted`]); a claimed partial that
    /// never appears is recomputed locally after a short deadline, so a
    /// crashed peer slows the run down but can neither wedge nor skew it.
    /// Claims and blobs are swept best-effort when the run completes;
    /// debris from a crashed run is adopted (if still valid) or simply
    /// out-waited by the next run.
    ///
    /// Sharded results bypass the analysis cache, like streamed analyses:
    /// the path exists to bound the latency of one large analysis, not to
    /// warm the cache.
    ///
    /// # Errors
    /// A configuration error when the installed strategy is not the
    /// iterative ACCU/ACCU-COPY family (the sharded loop distributes that
    /// specific iteration), or a merge error if the store hands back
    /// partials that cannot reproduce the monolithic pass.
    pub fn analyze_sharded(
        &self,
        snapshot: &SnapshotView,
        workers: usize,
    ) -> Result<Analysis, SailingError> {
        if self.strategy.detection_params().is_none() {
            return Err(SailingError::config(
                "analyze_sharded",
                format!(
                    "the installed strategy `{}` does not run the iterative detection \
                     loop the sharded path distributes; use the default strategy or \
                     the ACCU/ACCU-COPY family",
                    self.strategy.name()
                ),
            ));
        }
        let pipeline = AccuCopy::new(self.params.clone())?;
        // The coordinator quotients once, before any ranges are cut: every
        // worker (local thread or cooperating process) sees the quotiented
        // snapshot, and the partial blob/claim names carry the equivalence
        // provenance through the keyed hash — partials computed under
        // different backends can never be adopted across runs.
        let (snapshot, quotient_digest) =
            self.quotient_input(SnapshotInput::Owned(Arc::new(snapshot.clone())));
        let snapshot = snapshot.into_arc();
        let ranges = shard_ranges(pipeline.pair_count(&snapshot), workers.max(1));
        let hash = quotient_keyed_hash(snapshot.content_hash(), quotient_digest);
        let mut state = pipeline.bootstrap_sharded(&snapshot, None);
        while state.iterations < self.params.max_iterations {
            let iteration = state.iterations + 1;
            let partials =
                self.sharded_iteration(&pipeline, &snapshot, &ranges, &state, hash, iteration);
            let step = pipeline.merge_partials(&snapshot, &state, &partials)?;
            state = step.state;
            if step.done {
                break;
            }
        }
        if let Some(store) = self.persist.as_deref() {
            // Best-effort sweep of the run's coordination files. A racing
            // straggler re-publishing after this sweep cleans up again
            // when it finishes; only a crashed process leaks its names,
            // and those are validated-or-out-waited by the next run.
            for iteration in 1..=state.iterations {
                for &range in &ranges {
                    let name = shard_partial_name(hash, iteration, range);
                    store.remove_blob(&name);
                    store.remove_claim(&name);
                }
            }
        }
        Ok(self.assemble_analysis(snapshot, None, Arc::new(state)))
    }

    /// One iteration's fan-out: claim what we can, compute claimed ranges
    /// on scoped threads, publish them, adopt the rest from cooperating
    /// processes (recomputing locally when a claimant never delivers).
    fn sharded_iteration(
        &self,
        pipeline: &AccuCopy,
        snapshot: &SnapshotView,
        ranges: &[PairRange],
        state: &PipelineResult,
        hash: u64,
        iteration: usize,
    ) -> Vec<PartialDependence> {
        let store = self.persist.as_deref();
        let (mine, theirs): (Vec<PairRange>, Vec<PairRange>) = match store {
            Some(store) => ranges
                .iter()
                .partition(|&&r| store.try_claim(&shard_partial_name(hash, iteration, r))),
            None => (ranges.to_vec(), Vec::new()),
        };

        let mut partials: Vec<PartialDependence> = if mine.len() <= 1 {
            mine.iter()
                .map(|&r| pipeline.run_shard(snapshot, r, state))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = mine
                    .iter()
                    .map(|&r| scope.spawn(move || pipeline.run_shard(snapshot, r, state)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
        };
        self.shard
            .runs
            .fetch_add(mine.len() as u64, Ordering::Relaxed);

        let Some(store) = store else {
            return partials;
        };
        // Publishing is cooperative best-effort: a failed publish only
        // denies peers an adoption (they recompute), never this merge.
        for partial in &partials {
            let name = shard_partial_name(hash, iteration, partial.range);
            let _ = store.put_blob(&name, partial.to_canonical_json().as_bytes());
        }
        let digest = iteration_digest(state);
        let total_pairs = ranges.last().map_or(0, |r| r.end);
        let deadline = Instant::now() + SHARD_ADOPT_DEADLINE;
        let mut waiting = theirs;
        while !waiting.is_empty() {
            waiting.retain(|&range| {
                let adopted = store
                    .get_blob(&shard_partial_name(hash, iteration, range))
                    .and_then(|bytes| String::from_utf8(bytes).ok())
                    .and_then(|text| PartialDependence::from_json_str(&text).ok())
                    // A blob from a crashed earlier run (or a peer on a
                    // different epoch) fails the digest check and is
                    // recomputed rather than merged.
                    .filter(|p| {
                        p.range == range && p.total_pairs == total_pairs && p.state_digest == digest
                    });
                match adopted {
                    Some(partial) => {
                        partials.push(partial);
                        self.shard.adopted.fetch_add(1, Ordering::Relaxed);
                        false
                    }
                    None => true,
                }
            });
            if waiting.is_empty() || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(SHARD_ADOPT_POLL);
        }
        for &range in &waiting {
            let partial = pipeline.run_shard(snapshot, range, state);
            let name = shard_partial_name(hash, iteration, partial.range);
            let _ = store.put_blob(&name, partial.to_canonical_json().as_bytes());
            self.shard.runs.fetch_add(1, Ordering::Relaxed);
            partials.push(partial);
        }
        partials
    }

    /// Opens a [`TimelineSession`] over a history: one warm-started epoch
    /// analysis per [change point](History::change_points), oldest first,
    /// each fused with the update-trace dependence evidence.
    pub fn timeline(&self, history: &History) -> TimelineSession {
        self.timeline_owned(Arc::new(history.clone()))
    }

    /// Owned variant of [`SailingEngine::timeline`].
    pub fn timeline_owned(&self, history: Arc<History>) -> TimelineSession {
        self.timeline_owned_since(history, Timestamp::MIN)
    }

    /// Like [`SailingEngine::timeline`], but starting at the first change
    /// point at or after `since` — the resume entry for callers that
    /// already consumed the earlier epochs (a restarted walk, an ingest
    /// loop catching up on a history's recent tail). The temporal
    /// dependence evidence still covers the whole history: lazy-copier
    /// lags span the cutoff.
    pub fn timeline_since(&self, history: &History, since: Timestamp) -> TimelineSession {
        self.timeline_owned_since(Arc::new(history.clone()), since)
    }

    /// Owned variant of [`SailingEngine::timeline_since`].
    pub fn timeline_owned_since(&self, history: Arc<History>, since: Timestamp) -> TimelineSession {
        let change_points: Vec<Timestamp> = history.change_points_since(since).collect();
        let temporal = Arc::new(sailing_core::temporal::detect_all(
            &history,
            &self.temporal_params,
        ));
        TimelineSession {
            engine: self.clone(),
            history,
            change_points,
            temporal,
            prior: None,
            next: 0,
            total_iterations: 0,
            batched: BTreeMap::new(),
        }
    }

    /// Opens a timeline session and immediately
    /// [batches its cold epochs across `threads`
    /// threads](TimelineSession::prefetch_cold) — the parallel alternative
    /// to the sequential warm-start chain for multi-core boxes and
    /// store-warmed re-runs.
    pub fn timeline_batched(&self, history: &History, threads: usize) -> TimelineSession {
        self.timeline_batched_owned(Arc::new(history.clone()), threads)
    }

    /// Owned variant of [`SailingEngine::timeline_batched`].
    pub fn timeline_batched_owned(&self, history: Arc<History>, threads: usize) -> TimelineSession {
        let mut session = self.timeline_owned(history);
        session.prefetch_cold(threads);
        session
    }

    /// Opens a streaming [`IngestSession`] over a fresh in-memory claim
    /// log sealed by `policy`: append claims, seal delta epochs, and get
    /// **incremental** truth discovery per epoch
    /// ([`TruthDiscovery::run_delta`]) instead of a full re-analysis.
    pub fn ingest_session(&self, policy: SealPolicy) -> IngestSession {
        IngestSession::start(self.clone(), ClaimLog::in_memory(policy))
    }

    /// Opens a streaming [`IngestSession`] over an existing claim log —
    /// typically one recovered from disk ([`ClaimLog::open`]). The log's
    /// resident events (everything torn-tail recovery kept) are replayed
    /// as one bootstrap delta and analyzed in full; streaming then
    /// continues incrementally from that state.
    pub fn ingest_session_from(&self, log: ClaimLog) -> IngestSession {
        IngestSession::start(self.clone(), log)
    }

    /// The shared analysis path: consult the cache, run the strategy (warm
    /// when a prior is supplied) on a miss, and assemble the handle.
    /// Returns the analysis plus whether it was served from the cache, so
    /// the timeline can account discovery work honestly.
    ///
    /// The cache key carries the computation's provenance alongside the
    /// content hash: `None` for a cold run, or a digest of the seeding
    /// prior for a warm one — a warm-started result is only ever returned
    /// to a request seeded from an identical prior. Under parameter
    /// regimes where the vote map is bistable (see the timeline tests),
    /// runs from different starting points can settle on different
    /// attractors — a plain `analyze()` must never observe a warm-seeded
    /// result just because a timeline walked the same epoch first, and two
    /// timelines over different histories must not swap epoch results just
    /// because one snapshot coincides.
    fn analyze_inner(
        &self,
        snapshot: SnapshotInput<'_>,
        history: Option<Arc<History>>,
        prior: Option<&PipelineResult>,
    ) -> (Analysis, bool) {
        // Quotient first: everything downstream — cache, persist,
        // discovery, the returned handle — sees the quotiented snapshot,
        // so a cached result is always consistent with the snapshot it is
        // stored against. The exact backend skips this entirely.
        let (snapshot, quotient_digest) = self.quotient_input(snapshot);
        // With both tiers disabled, skip key construction entirely —
        // hashing the snapshot and digesting the prior are linear scans
        // that would be pure waste when nothing can hit.
        let (snapshot, result, from_cache) = if !self.cache.enabled() && self.persist.is_none() {
            self.cache.note_miss();
            let snapshot = snapshot.into_arc();
            let fresh = Arc::new(self.strategy.run_warm(&snapshot, prior));
            (snapshot, fresh, false)
        } else {
            let key = quotient_cache_key(
                snapshot.view().content_hash(),
                quotient_digest,
                prior.map(PipelineResult::content_digest),
            );
            self.lookup_or_compute(key, snapshot, prior)
        };
        let analysis = self.assemble_analysis(snapshot, history, result);
        (analysis, from_cache)
    }

    /// Applies the engine's [`ValueEquivalence`] to an incoming snapshot:
    /// the exact backend passes it through untouched with no digest
    /// (legacy cache/store keys, zero work); a non-exact backend builds
    /// the quotient and rewrites assertions to class representatives,
    /// returning the realised partition's digest for key derivation.
    /// Identity quotients (nothing merged — including arena-less
    /// snapshots) skip the rewrite but still carry the digest, so their
    /// keys stay disjoint from exact ones.
    fn quotient_input<'a>(&self, snapshot: SnapshotInput<'a>) -> (SnapshotInput<'a>, Option<u64>) {
        if self.equivalence.is_exact() {
            return (snapshot, None);
        }
        let quotient = snapshot.view().quotient(self.equivalence.as_ref());
        let digest = Some(quotient.digest());
        if quotient.is_identity() {
            (snapshot, digest)
        } else {
            let quotiented = snapshot.view().quotiented(&quotient);
            (SnapshotInput::Owned(Arc::new(quotiented)), digest)
        }
    }

    /// Re-derives the quotient digest for a snapshot that may already be
    /// quotiented. Sound because the partition depends only on the value
    /// arena, which [`SnapshotView::quotiented`] carries through
    /// unchanged — re-quotienting yields the identical digest.
    fn quotient_digest(&self, snapshot: &SnapshotView) -> Option<u64> {
        if self.equivalence.is_exact() {
            None
        } else {
            Some(snapshot.quotient(self.equivalence.as_ref()).digest())
        }
    }

    /// The full miss path with **single-flight admission**: memory hit →
    /// adopt an identical in-flight computation → disk hit → compute, in
    /// that order. Only the flight's *leader* probes the persistent tier
    /// and (on a disk miss) runs discovery; every concurrent request for
    /// the same key blocks on the leader and adopts its result, so a
    /// thundering herd of identical cache-missing requests performs one
    /// disk lookup and at most one discovery run between them
    /// (`CacheStats::inflight_waits` counts the adopters).
    fn lookup_or_compute(
        &self,
        key: CacheKey,
        snapshot: SnapshotInput<'_>,
        prior: Option<&PipelineResult>,
    ) -> (Arc<SnapshotView>, Arc<PipelineResult>, bool) {
        if let Some((snap, result)) = self.cache.get(key, snapshot.view()) {
            return (snap, result, true);
        }
        match self.cache.admit(key, snapshot.view()) {
            Admission::Served(snap, result) => (snap, result, true),
            Admission::Lead(guard) => {
                if let Some(store) = self.persist.as_deref() {
                    if let Some((snap, result)) = store.get(key.store_key(), snapshot.view()) {
                        let (snap, result) = self.cache.insert_or_get(key, snap, result);
                        guard.complete(&snap, &result);
                        return (snap, result, true);
                    }
                }
                let snapshot = snapshot.into_arc();
                let fresh = Arc::new(self.strategy.run_warm(&snapshot, prior));
                let (snap, result) = self.retain_result(key, snapshot, fresh);
                guard.complete(&snap, &result);
                (snap, result, false)
            }
            Admission::Collision => {
                // The in-flight computation under this 64-bit key is for
                // *different* snapshot content; waiting again could adopt
                // the wrong analysis, so compute outside the flight (the
                // two contents thrash one slot — slow, never wrong).
                let snapshot = snapshot.into_arc();
                let fresh = Arc::new(self.strategy.run_warm(&snapshot, prior));
                let (snap, result) = self.retain_result(key, snapshot, fresh);
                (snap, result, false)
            }
        }
    }

    /// Two-tier lookup, no discovery: the in-memory cache first, then the
    /// persistent store (promoting a disk hit into memory). Counts exactly
    /// one in-memory request; the disk counters move only when the memory
    /// tier missed with a store attached.
    fn probe(
        &self,
        key: CacheKey,
        snapshot: &SnapshotView,
    ) -> Option<(Arc<SnapshotView>, Arc<PipelineResult>)> {
        if self.cache.enabled() {
            if let Some(hit) = self.cache.get(key, snapshot) {
                return Some(hit);
            }
        } else {
            self.cache.note_miss();
        }
        let store = self.persist.as_deref()?;
        let (snap, result) = store.get(key.store_key(), snapshot)?;
        Some(self.cache.insert_or_get(key, snap, result))
    }

    /// Retains a freshly computed result in both tiers. Returns the
    /// allocations the memory cache actually holds, so concurrent missers
    /// racing on the same snapshot converge on one `PipelineResult`.
    fn retain_result(
        &self,
        key: CacheKey,
        snapshot: Arc<SnapshotView>,
        result: Arc<PipelineResult>,
    ) -> (Arc<SnapshotView>, Arc<PipelineResult>) {
        if let Some(store) = &self.persist {
            store.put(key.store_key(), Arc::clone(&snapshot), Arc::clone(&result));
        }
        self.cache.insert_or_get(key, snapshot, result)
    }

    /// Builds the public [`Analysis`] handle around a (cached or fresh)
    /// pipeline result.
    fn assemble_analysis(
        &self,
        snapshot: Arc<SnapshotView>,
        history: Option<Arc<History>>,
        result: Arc<PipelineResult>,
    ) -> Analysis {
        let matrix = result.dependence_matrix();
        Analysis {
            snapshot,
            history,
            result,
            matrix,
            params: self.params.clone(),
            trust_weights: self.trust_weights,
            strategy_name: self.strategy.name(),
            reports: OnceLock::new(),
            trust: OnceLock::new(),
        }
    }
}

/// A snapshot handed to the analysis path: borrowed snapshots are only
/// cloned into an [`Arc`] on a cache miss (a hit reuses the cached
/// handle), so compatibility-wrapper calls never pay for a copy of data
/// the engine already holds.
enum SnapshotInput<'a> {
    Borrowed(&'a SnapshotView),
    Owned(Arc<SnapshotView>),
}

impl SnapshotInput<'_> {
    fn view(&self) -> &SnapshotView {
        match self {
            SnapshotInput::Borrowed(s) => s,
            SnapshotInput::Owned(s) => s,
        }
    }

    fn into_arc(self) -> Arc<SnapshotView> {
        match self {
            SnapshotInput::Borrowed(s) => Arc::new(s.clone()),
            SnapshotInput::Owned(s) => s,
        }
    }
}

impl std::fmt::Debug for SailingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SailingEngine")
            .field("strategy", &self.strategy.name())
            .field("params", &self.params)
            .finish()
    }
}

/// Everything the engine learned about one snapshot, computed once.
///
/// All accessors are cheap: the pipeline ran during
/// [`SailingEngine::analyze_owned`], and the dependence matrix is prebuilt.
/// The handle **owns** its data through [`Arc`]s — it is `Send + 'static`,
/// so analyses can be stored beyond the snapshot's scope, kept alive across
/// epochs of a timeline, and shared across threads; cloning bumps reference
/// counts, never copies payloads.
#[derive(Debug, Clone)]
pub struct Analysis {
    snapshot: Arc<SnapshotView>,
    history: Option<Arc<History>>,
    /// Shared with every [`FusionOutcome`] derived from this analysis:
    /// `fuse()` bumps a reference count instead of deep-cloning the full
    /// posterior payload per call.
    result: Arc<PipelineResult>,
    matrix: DependenceMatrix,
    params: DetectionParams,
    trust_weights: TrustWeights,
    strategy_name: &'static str,
    /// Lazily-computed per-source reports; `OnceLock` keeps repeated
    /// `source_reports()` / `top_k()` calls from redoing the O(sources²)
    /// summary work.
    reports: OnceLock<Vec<SourceReport>>,
    /// Lazily-computed trust scores, for the same reason: `recommend()`
    /// may be called once per goal/limit against one analysis.
    trust: OnceLock<Vec<TrustScore>>,
}

impl Analysis {
    /// The analyzed snapshot.
    pub fn snapshot(&self) -> &SnapshotView {
        &self.snapshot
    }

    /// The analyzed snapshot as a shared handle — pass it back to
    /// [`SailingEngine::analyze_owned`] (a guaranteed cache hit) or to
    /// another thread without copying.
    pub fn snapshot_arc(&self) -> Arc<SnapshotView> {
        Arc::clone(&self.snapshot)
    }

    /// The shared pipeline result — the payload [`Analysis::fuse`] and the
    /// engine cache hand around without deep-cloning.
    pub fn result_arc(&self) -> Arc<PipelineResult> {
        Arc::clone(&self.result)
    }

    /// The strategy that produced this analysis.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy_name
    }

    /// The raw pipeline result (probabilities, accuracies, dependences).
    pub fn result(&self) -> &PipelineResult {
        &self.result
    }

    /// Posterior value distributions per object.
    pub fn probabilities(&self) -> &ValueProbabilities {
        &self.result.probabilities
    }

    /// Converged per-source accuracies (empty for accuracy-blind
    /// strategies such as naive voting).
    pub fn accuracies(&self) -> &[f64] {
        &self.result.accuracies
    }

    /// Detected pairwise dependences.
    pub fn dependences(&self) -> &[PairDependence] {
        &self.result.dependences
    }

    /// Pairs whose dependence posterior crosses `threshold`, most probable
    /// first.
    pub fn dependent_pairs(&self, threshold: f64) -> Vec<&PairDependence> {
        self.result.dependent_pairs(threshold)
    }

    /// The cached dependence matrix implied by the detected pairs.
    pub fn dependence_matrix(&self) -> &DependenceMatrix {
        &self.matrix
    }

    /// Hard truth decisions: most probable value per object, in ascending
    /// object order. The ordered map makes downstream output reproducible —
    /// iterating the decisions prints the same report every run, where a
    /// hash map's iteration order is randomized per process.
    pub fn decisions(&self) -> BTreeMap<ObjectId, ValueId> {
        self.result.decisions_sorted()
    }

    /// Whether the discovery loop reached its fixpoint.
    pub fn converged(&self) -> bool {
        self.result.converged
    }

    /// Why the discovery loop stopped — convergence, the iteration cap,
    /// or a [`Watchdog`] intervention ([`sailing_core::Termination`]).
    /// Watchdog outcomes are what `sailing-serve` refuses to publish,
    /// keeping a degraded engine serving its last good analysis.
    pub fn termination(&self) -> sailing_core::Termination {
        self.result.termination
    }

    /// Per-source summary: accuracy, coverage, copier probability, mean
    /// vote independence. Computed once per analysis from the cached
    /// dependence matrix, then memoised.
    pub fn source_reports(&self) -> &[SourceReport] {
        self.reports.get_or_init(|| {
            self.result
                .source_reports_with(&self.snapshot, &self.matrix)
        })
    }

    /// The fusion outcome implied by this analysis — equivalent to running
    /// `sailing_fusion::fuse` with the engine's strategy, but sharing the
    /// already-converged pipeline result (no re-run, no deep clone).
    pub fn fuse(&self) -> FusionOutcome {
        FusionOutcome::from_shared(Arc::clone(&self.result), self.strategy_name)
    }

    /// The probabilistic-database view of the fused value distributions.
    pub fn probabilistic_database(&self) -> ProbabilisticDatabase {
        ProbabilisticDatabase::from_probabilities(&self.result.probabilities)
    }

    /// An online answering session pre-seeded with the converged
    /// accuracies and dependence matrix — the caller never assembles
    /// either by hand. The session borrows this analysis's snapshot.
    pub fn online_session(&self) -> OnlineSession<'_> {
        OnlineSession::new(
            &self.snapshot,
            self.result.accuracies.clone(),
            self.matrix.clone(),
            self.params.clone(),
        )
    }

    /// The complete source-visit order a policy produces under this
    /// analysis's accuracies and dependences.
    pub fn visit_order(&self, policy: &OrderingPolicy) -> Vec<SourceId> {
        order_sources(
            &self.snapshot,
            &self.result.accuracies,
            &self.matrix,
            policy,
        )
    }

    /// Dependence-aware top-k answering for one object: each source's
    /// support is weighted by its accuracy times its vote independence.
    pub fn top_k(&self, object: ObjectId, k: usize, policy: &OrderingPolicy) -> TopKResult {
        let order = self.visit_order(policy);
        let weights: Vec<f64> = self
            .source_reports()
            .iter()
            .map(|r| r.accuracy * r.mean_independence)
            .collect();
        top_k_values_for_object(&self.snapshot, object, &order, &weights, k)
    }

    /// Per-source trust scores (accuracy, coverage, freshness,
    /// independence); freshness uses the attached history when present.
    /// Computed once per analysis, then memoised.
    pub fn trust_scores(&self) -> &[TrustScore] {
        self.trust.get_or_init(|| {
            trust_scores(
                &self.snapshot,
                &self.result.accuracies,
                &self.matrix,
                self.history.as_deref(),
            )
        })
    }

    /// Goal-directed source recommendations derived from the cached trust
    /// scores and dependences.
    pub fn recommend(&self, goal: Goal, limit: usize) -> Vec<Recommendation> {
        recommend_sources(
            self.trust_scores(),
            &self.result.dependences,
            goal,
            &self.trust_weights,
            limit,
        )
    }
}

/// Hit/miss/occupancy counters of an engine's analysis cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Analyses served from the in-memory tier.
    pub hits: u64,
    /// In-memory misses — every one of these fell through to the
    /// persistent tier (when attached), ran the discovery loop, or
    /// adopted another request's in-flight computation
    /// ([`CacheStats::inflight_waits`]), so `hits + misses` always equals
    /// the number of analysis requests.
    pub misses: u64,
    /// In-memory misses that did **not** run discovery (or touch the
    /// persistent tier) because an identical computation was already in
    /// flight: the request blocked on — or arrived just as it landed and
    /// adopted — the leader's result. Single-flight admission means a
    /// thundering herd of `K` concurrent misses on one snapshot runs
    /// discovery once and reports `K - 1` waits here; with a store
    /// attached, `disk_hits + disk_misses + inflight_waits == misses`.
    pub inflight_waits: u64,
    /// Pipeline results currently retained in memory.
    pub entries: usize,
    /// Maximum retained results (`0` = in-memory caching disabled).
    pub capacity: usize,
    /// In-memory misses served from the persistent store instead of a
    /// discovery run (`0` when no store is attached).
    pub disk_hits: u64,
    /// In-memory misses the persistent store could not serve — exactly
    /// the requests that ran the discovery loop, when a store is attached
    /// (`0` when none is).
    pub disk_misses: u64,
    /// Entries the persistent store has written to disk (on whichever
    /// thread the store's write mode uses).
    pub disk_writes: u64,
    /// Store writes that failed at the filesystem level; the errors
    /// themselves are retained for
    /// [`SailingEngine::take_persist_write_errors`].
    pub disk_write_errors: u64,
    /// Entries evicted unwritten because the async write-behind queue
    /// was full (see [`SailingEngineBuilder::persist_queue_depth`]).
    pub disk_dropped: u64,
    /// Store write re-attempts after a transient filesystem failure (see
    /// [`SailingEngineBuilder::persist_retry`]); a successful retry keeps
    /// [`CacheStats::disk_write_errors`] at zero.
    pub disk_retries: u64,
    /// Writes rejected without touching the filesystem because the
    /// store's circuit breaker was open (see
    /// [`SailingEngineBuilder::persist_breaker`]).
    pub disk_breaker_fast_fails: u64,
    /// The store's circuit-breaker state at sampling time
    /// ([`BreakerState::Closed`] when no store or no breaker is
    /// configured).
    pub disk_breaker: BreakerState,
    /// Pair-range detection passes [`SailingEngine::analyze_sharded`]
    /// computed locally (claimed ranges plus recomputed fallbacks).
    pub shard_runs: u64,
    /// Pair-range partials adopted from a cooperating process's
    /// published blob instead of being recomputed (`0` without a
    /// persistent store — threads-only fan-outs have no one to adopt
    /// from).
    pub shard_partials_adopted: u64,
}

/// Cache key: the snapshot's content hash plus the provenance of the
/// computation — `None` for a cold run, `Some(digest of the seeding
/// prior)` for a warm one. A warm-started result never answers a cold
/// request (or one seeded from a *different* prior) and vice versa, so
/// `analyze()`'s output cannot depend on whether a timeline happened to
/// walk the same epoch first.
#[derive(Clone, Copy, PartialEq, Eq)]
struct CacheKey {
    hash: u64,
    /// Digest of the warm-start prior ([`PipelineResult::content_digest`]):
    /// two priors digesting equal presented the same seed to
    /// [`TruthDiscovery::run_warm`], so their results may share a slot.
    prior: Option<u64>,
}

impl CacheKey {
    /// The persistent tier uses the same `(hash, provenance)` identity, so
    /// the two tiers can never confuse a warm-seeded result with a cold
    /// one.
    fn store_key(self) -> StoreKey {
        StoreKey {
            snapshot_hash: self.hash,
            provenance: self.prior,
        }
    }
}

/// Provenance-lane tags separating quotiented analyses from exact ones
/// (and cold quotiented runs from warm ones). Arbitrary ASCII constants;
/// only their distinctness matters.
const QUOTIENT_COLD_PROVENANCE: u64 = 0x636f_6c64_2d71_756f; // "cold-quo"
const QUOTIENT_WARM_PROVENANCE: u64 = 0x7761_726d_2d71_756f; // "warm-quo"

/// Derives the two-tier cache identity for an analysis: the (quotiented)
/// snapshot's content hash, plus a provenance lane carrying the warm-start
/// prior and the equivalence backend.
///
/// The [`ValueQuotient::digest`] is folded into the **provenance** lane,
/// not the snapshot hash, because persistent-store entries are
/// self-certifying: `StoreKey::snapshot_hash` must equal the stored
/// snapshot's recomputed content hash or the entry is rejected on read.
/// The exact backend passes `None` and keeps the legacy keys bit-for-bit —
/// pre-existing cache entries and on-disk store files stay addressable —
/// while any non-exact backend (even one whose quotient happened to be the
/// identity) lands on a disjoint provenance, so an exact analysis never
/// aliases a normalized one, in memory or on disk, and two backends that
/// rewrite to the same quotiented snapshot still key apart.
fn quotient_cache_key(hash: u64, quotient_digest: Option<u64>, prior: Option<u64>) -> CacheKey {
    let prior = match (quotient_digest, prior) {
        (None, prior) => prior,
        (Some(digest), None) => Some(fx_mix(QUOTIENT_COLD_PROVENANCE, digest)),
        (Some(digest), Some(prior)) => {
            Some(fx_mix(fx_mix(QUOTIENT_WARM_PROVENANCE, digest), prior))
        }
    };
    CacheKey { hash, prior }
}

/// Folds a [`ValueQuotient::digest`] into a snapshot content hash for the
/// sharded fan-out's *partial-blob* namespace (blob names carry no
/// self-certifying snapshot hash, unlike store entries — see
/// [`quotient_cache_key`]), so partials computed under different backends
/// can never be adopted across runs.
fn quotient_keyed_hash(hash: u64, quotient_digest: Option<u64>) -> u64 {
    match quotient_digest {
        None => hash,
        Some(digest) => fx_mix(hash, digest),
    }
}

/// One retained analysis: the snapshot it was computed from (kept both to
/// verify hits against hash collisions and to let borrowed-snapshot calls
/// reuse the allocation) and the converged result.
struct CacheEntry {
    key: CacheKey,
    snapshot: Arc<SnapshotView>,
    result: Arc<PipelineResult>,
}

/// A bounded LRU of converged pipeline results keyed by [`CacheKey`].
///
/// The engine's configuration (strategy + parameters) is immutable after
/// `build()`, so hash + provenance identify an analysis; the stored
/// snapshot is compared on every hit, so a 64-bit hash collision degrades
/// to a miss instead of serving another snapshot's analysis (two colliding
/// snapshots will thrash one slot — acceptable for a cache, never wrong).
/// The store is a short `Vec` in recency order behind one mutex:
/// capacities are small (default 16) and the values are `Arc`s, so a
/// scan-and-rotate beats a hash map plus intrusive list at this size.
struct AnalysisCache {
    entries: Mutex<Vec<CacheEntry>>,
    /// Computations currently in flight, keyed like the entries: the
    /// **single-flight admission table**. The first request to miss on a
    /// key registers a flight and becomes its leader; every concurrent
    /// miss on the same key blocks on the flight instead of recomputing,
    /// and adopts the leader's allocations when it lands. Flights are
    /// registered even when `capacity == 0` with a persistent store
    /// attached — single-flight dedupes concurrent *work*, which is
    /// orthogonal to how many finished results are retained.
    flights: Mutex<Vec<(CacheKey, Arc<Inflight>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inflight_waits: AtomicU64,
    capacity: usize,
}

impl AnalysisCache {
    fn new(capacity: usize) -> Self {
        Self {
            entries: Mutex::new(Vec::with_capacity(capacity.min(64))),
            flights: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inflight_waits: AtomicU64::new(0),
            capacity,
        }
    }

    /// `false` when built with capacity 0: lookups cannot hit, so callers
    /// skip key construction altogether.
    fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records a miss without a lookup — the disabled-cache path, keeping
    /// `cache_stats()` an honest request counter either way.
    fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Looks up a result, verifying the stored snapshot really equals the
    /// requested one and refreshing its recency on a hit.
    fn get(
        &self,
        key: CacheKey,
        snapshot: &SnapshotView,
    ) -> Option<(Arc<SnapshotView>, Arc<PipelineResult>)> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut entries = self.entries.lock().expect("analysis cache poisoned");
        let pos = entries
            .iter()
            .position(|e| e.key == key && *e.snapshot == *snapshot);
        if let Some(pos) = pos {
            let entry = entries.remove(pos);
            let hit = (Arc::clone(&entry.snapshot), Arc::clone(&entry.result));
            entries.push(entry);
            drop(entries);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(hit)
        } else {
            drop(entries);
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Inserts a result — unless an equivalent entry (same key, same
    /// snapshot content) is already resident, in which case the resident
    /// allocations are returned and refreshed instead of replaced. This is
    /// the retention half of what keeps hits **pointer-identical under
    /// concurrency**: [`AnalysisCache::admit`]'s single-flight table
    /// ensures at most one request *computes* per key, and on the rare
    /// paths where two computations do land (a hash-collision
    /// [`Admission::Collision`], or a timeline prefetch racing a serve
    /// request), the first writer wins and every later caller adopts the
    /// winner's `PipelineResult` allocation. A disabled cache returns the
    /// inputs unchanged; a same-key entry for *different* content (a
    /// 64-bit hash collision) is replaced — the two snapshots thrash one
    /// slot, which is slow but never wrong.
    fn insert_or_get(
        &self,
        key: CacheKey,
        snapshot: Arc<SnapshotView>,
        result: Arc<PipelineResult>,
    ) -> (Arc<SnapshotView>, Arc<PipelineResult>) {
        if self.capacity == 0 {
            return (snapshot, result);
        }
        let mut entries = self.entries.lock().expect("analysis cache poisoned");
        if let Some(pos) = entries.iter().position(|e| e.key == key) {
            let entry = entries.remove(pos);
            if *entry.snapshot == *snapshot {
                let kept = (Arc::clone(&entry.snapshot), Arc::clone(&entry.result));
                entries.push(entry);
                return kept;
            }
            // Hash collision: fall through and let the new content win.
        }
        entries.push(CacheEntry {
            key,
            snapshot: Arc::clone(&snapshot),
            result: Arc::clone(&result),
        });
        if entries.len() > self.capacity {
            entries.remove(0);
        }
        (snapshot, result)
    }

    /// Joins or opens the single-flight admission for `key` after a miss.
    /// Exactly one concurrent caller per key becomes the leader
    /// ([`Admission::Lead`]) and must finish its [`FlightGuard`]; everyone
    /// else blocks until the leader lands and adopts its result. A request
    /// that finds the result already resident (the leader completed
    /// between this caller's miss and its admit) adopts it the same way —
    /// either way the adoption is counted in
    /// [`CacheStats::inflight_waits`]. An abandoned flight (leader
    /// panicked) wakes the waiters to retry, so one of them leads next.
    fn admit(&self, key: CacheKey, snapshot: &SnapshotView) -> Admission<'_> {
        loop {
            let flight = {
                let mut flights = self.flights.lock().expect("analysis flights poisoned");
                match flights.iter().find(|(k, _)| *k == key) {
                    Some((_, flight)) => Arc::clone(flight),
                    None => {
                        // Re-check residency before leading: a previous
                        // leader may have completed (and deregistered its
                        // flight) between this request's miss and now.
                        let entries = self.entries.lock().expect("analysis cache poisoned");
                        if let Some(entry) = entries
                            .iter()
                            .find(|e| e.key == key && *e.snapshot == *snapshot)
                        {
                            let hit = (Arc::clone(&entry.snapshot), Arc::clone(&entry.result));
                            drop(entries);
                            drop(flights);
                            self.inflight_waits.fetch_add(1, Ordering::Relaxed);
                            return Admission::Served(hit.0, hit.1);
                        }
                        drop(entries);
                        let flight = Arc::new(Inflight::new());
                        flights.push((key, Arc::clone(&flight)));
                        return Admission::Lead(FlightGuard {
                            cache: self,
                            key,
                            flight,
                            completed: false,
                        });
                    }
                }
            };
            self.inflight_waits.fetch_add(1, Ordering::Relaxed);
            match flight.wait() {
                FlightState::Done(snap, result) => {
                    if *snap == *snapshot {
                        return Admission::Served(snap, result);
                    }
                    return Admission::Collision;
                }
                FlightState::Abandoned => continue,
                FlightState::Pending => unreachable!("wait() returns only settled states"),
            }
        }
    }

    /// Deregisters a flight and publishes its outcome to every waiter.
    fn finish_flight(&self, key: CacheKey, flight: &Arc<Inflight>, outcome: FlightState) {
        let mut flights = self.flights.lock().expect("analysis flights poisoned");
        flights.retain(|(k, f)| !(*k == key && Arc::ptr_eq(f, flight)));
        drop(flights);
        let mut state = flight.state.lock().expect("analysis flight poisoned");
        *state = outcome;
        drop(state);
        flight.landed.notify_all();
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inflight_waits: self.inflight_waits.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("analysis cache poisoned").len(),
            capacity: self.capacity,
            disk_hits: 0,
            disk_misses: 0,
            disk_writes: 0,
            disk_write_errors: 0,
            disk_dropped: 0,
            disk_retries: 0,
            disk_breaker_fast_fails: 0,
            disk_breaker: BreakerState::Closed,
            shard_runs: 0,
            shard_partials_adopted: 0,
        }
    }
}

/// Outcome of [`AnalysisCache::admit`]: lead the computation, or adopt a
/// concurrent one's result.
enum Admission<'a> {
    /// This request leads: probe the persistent tier, compute on a disk
    /// miss, and land the flight via [`FlightGuard::complete`].
    Lead(FlightGuard<'a>),
    /// Another request's computation (in flight or just landed) served
    /// this one — counted in [`CacheStats::inflight_waits`].
    Served(Arc<SnapshotView>, Arc<PipelineResult>),
    /// The in-flight computation under this key is for different snapshot
    /// content (a 64-bit hash collision): compute outside the flight.
    Collision,
}

/// One in-flight computation: waiters block on `landed` until the leader
/// publishes a settled [`FlightState`].
struct Inflight {
    state: Mutex<FlightState>,
    landed: Condvar,
}

impl Inflight {
    fn new() -> Self {
        Self {
            state: Mutex::new(FlightState::Pending),
            landed: Condvar::new(),
        }
    }

    /// Blocks until the flight settles; never returns `Pending`.
    fn wait(&self) -> FlightState {
        let mut state = self.state.lock().expect("analysis flight poisoned");
        while matches!(*state, FlightState::Pending) {
            state = self.landed.wait(state).expect("analysis flight poisoned");
        }
        state.clone()
    }
}

#[derive(Clone)]
enum FlightState {
    Pending,
    Done(Arc<SnapshotView>, Arc<PipelineResult>),
    /// The leader dropped its guard without completing (a strategy panic):
    /// waiters retry, and one of them becomes the next leader.
    Abandoned,
}

/// The leader's obligation: either [`FlightGuard::complete`] is called
/// with the retained allocations, or dropping the guard abandons the
/// flight and wakes the waiters to retry — a panicking strategy can never
/// wedge a herd of waiters.
struct FlightGuard<'a> {
    cache: &'a AnalysisCache,
    key: CacheKey,
    flight: Arc<Inflight>,
    completed: bool,
}

impl FlightGuard<'_> {
    fn complete(mut self, snapshot: &Arc<SnapshotView>, result: &Arc<PipelineResult>) {
        self.cache.finish_flight(
            self.key,
            &self.flight,
            FlightState::Done(Arc::clone(snapshot), Arc::clone(result)),
        );
        self.completed = true;
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.cache
                .finish_flight(self.key, &self.flight, FlightState::Abandoned);
        }
    }
}

/// A walk over a history's epochs with **incremental** truth discovery.
///
/// Created by [`SailingEngine::timeline`]. Iterating yields one
/// [`EpochAnalysis`] per [change point](History::change_points), oldest
/// first. Each epoch's snapshot is materialised exactly once; discovery is
/// warm-started from the previous epoch's converged posterior
/// ([`TruthDiscovery::run_warm`]), so consecutive epochs that differ by a
/// few updates cost a few iterations instead of a cold climb — the paper's
/// "series of queries over evolving sources" amortisation. The update-trace
/// dependence evidence (computed once for the whole history) rides along on
/// every epoch.
pub struct TimelineSession {
    engine: SailingEngine,
    history: Arc<History>,
    change_points: Vec<Timestamp>,
    temporal: Arc<Vec<PairDependence>>,
    prior: Option<Arc<PipelineResult>>,
    next: usize,
    total_iterations: usize,
    /// Epoch analyses precomputed by [`TimelineSession::prefetch_cold`],
    /// consumed (and removed) as the walk reaches them. Held in the
    /// session rather than only the engine cache so LRU eviction cannot
    /// drop a batch result before its epoch is yielded.
    batched: BTreeMap<Timestamp, BatchSlot>,
}

/// One prefetched epoch: the cold analysis and whether this session's
/// batch pass computed it (vs found it store-resident).
struct BatchSlot {
    snapshot: Arc<SnapshotView>,
    result: Arc<PipelineResult>,
    fresh: bool,
}

impl TimelineSession {
    /// The history this session walks.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// All change points of the timeline (epoch boundaries), ascending.
    pub fn change_points(&self) -> &[Timestamp] {
        &self.change_points
    }

    /// Number of epochs in the whole timeline.
    pub fn num_epochs(&self) -> usize {
        self.change_points.len()
    }

    /// Update-trace dependence evidence over the whole history, shared by
    /// every epoch.
    pub fn temporal_dependences(&self) -> &[PairDependence] {
        &self.temporal
    }

    /// Total truth-discovery iterations actually *spent* so far across the
    /// epochs already yielded — the quantity warm starting minimises.
    /// Epochs served from the engine's analysis cache ran no discovery and
    /// contribute nothing, so a re-walk against a warm cache reports 0.
    pub fn total_iterations(&self) -> usize {
        self.total_iterations
    }

    /// **Batches the remaining epochs' cold analyses across `threads`
    /// worker threads**, so the subsequent walk consumes precomputed
    /// results instead of running discovery epoch by epoch. Returns the
    /// number of epochs actually computed (the rest were already resident
    /// in the engine's cache or its persistent store).
    ///
    /// The sequential warm-start chain amortises iterations but is
    /// inherently serial — epoch *N+1*'s seed is epoch *N*'s posterior. A
    /// **cold** analysis of every epoch needs no seed, so the cold runs
    /// are embarrassingly parallel: this pass materialises each remaining
    /// epoch's snapshot, skips the ones the store already holds (under
    /// their cold key), and fans the rest out under
    /// [`std::thread::scope`] in LPT-balanced chunks (weighted by
    /// assertion count, the same discipline as the pairwise-detection
    /// fan-out). Every computed result is retained through the normal
    /// two-tier path, so other processes benefit via the persistent store.
    ///
    /// Cold runs trade the warm chain's iteration savings for
    /// parallelism; posteriors agree with the sequential path within the
    /// convergence tolerance (pinned by the timeline parity tests).
    /// Accounting keeps the sequential discipline: epochs computed by
    /// this pass report [`EpochAnalysis::from_cache`]` == false` (fresh
    /// work spent by this session, counted in
    /// [`TimelineSession::total_iterations`]), while store-resident
    /// epochs report `from_cache == true` and cost nothing. One deliberate
    /// divergence: a history that *revisits* earlier content (an update
    /// reverting an object) is computed once per distinct snapshot, and
    /// the repeat epochs report `from_cache == true` with nothing
    /// counted — matching a cache-backed sequential walk, whereas a
    /// `cache_capacity(0)` sequential walk would recompute the repeat and
    /// count its spend. The converged-prior gating is preserved exactly —
    /// the prior chain advances through the consumed epochs, and any
    /// epoch missing from the batch falls back to the warm-started
    /// sequential path unchanged.
    pub fn prefetch_cold(&mut self, threads: usize) -> usize {
        let threads = threads.max(1);
        let mut pending: Vec<(Timestamp, Arc<SnapshotView>)> = Vec::new();
        // A history can revisit earlier content (an update that reverts an
        // object): such epochs share a content hash, and computing the
        // analysis once per *distinct* snapshot — like the sequential
        // walk's cache would — keeps the batch from duplicating whole
        // discovery runs. Repeats ride along here and adopt the computed
        // result below.
        let mut repeats: Vec<(Timestamp, u64)> = Vec::new();
        let mut pending_hashes: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for &at in &self.change_points[self.next..] {
            if self.batched.contains_key(&at) {
                continue;
            }
            // Quotient before hashing, so batched epochs probe, retain,
            // and compute against exactly the snapshots (and keys) the
            // sequential walk would use. History snapshots carry no value
            // arena, so non-exact backends quotient to the identity here —
            // but still under their own key space.
            let (snapshot, quotient_digest) = {
                let (input, digest) = self
                    .engine
                    .quotient_input(SnapshotInput::Owned(Arc::new(self.history.snapshot_at(at))));
                (input.into_arc(), digest)
            };
            let hash = snapshot.content_hash();
            if pending_hashes.contains(&hash) {
                repeats.push((at, hash));
                continue;
            }
            let key = quotient_cache_key(hash, quotient_digest, None);
            match self.engine.probe(key, &snapshot) {
                Some((snapshot, result)) => {
                    self.batched.insert(
                        at,
                        BatchSlot {
                            snapshot,
                            result,
                            fresh: false,
                        },
                    );
                }
                None => {
                    pending_hashes.insert(hash);
                    pending.push((at, snapshot));
                }
            }
        }
        let computed = pending.len();
        // LPT over assertion counts: discovery cost scales with snapshot
        // size, and equal-length contiguous chunks would let one fat chunk
        // serialize the scope.
        let chunks = balanced_epoch_chunks(&pending, threads);
        let strategy = Arc::clone(&self.engine.strategy);
        let results: Vec<Vec<(Timestamp, Arc<SnapshotView>, PipelineResult)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        let strategy = Arc::clone(&strategy);
                        scope.spawn(move || {
                            chunk
                                .into_iter()
                                .map(|(at, snapshot)| {
                                    let result = strategy.run_warm(&snapshot, None);
                                    (at, snapshot, result)
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("cold-epoch worker panicked"))
                    .collect()
            });
        let mut by_hash: BTreeMap<u64, (Arc<SnapshotView>, Arc<PipelineResult>)> = BTreeMap::new();
        for (at, snapshot, result) in results.into_iter().flatten() {
            // Re-deriving the quotient digest from the already-quotiented
            // snapshot is stable (the partition depends only on the value
            // arena, which rides along), so this key equals the probe key
            // above.
            let key = quotient_cache_key(
                snapshot.content_hash(),
                self.engine.quotient_digest(&snapshot),
                None,
            );
            let (snapshot, result) = self.engine.retain_result(key, snapshot, Arc::new(result));
            by_hash.insert(key.hash, (Arc::clone(&snapshot), Arc::clone(&result)));
            self.batched.insert(
                at,
                BatchSlot {
                    snapshot,
                    result,
                    fresh: true,
                },
            );
        }
        // Content-repeat epochs share the computed allocation, flagged
        // like the cache hits they would have been on the sequential walk
        // (the one fresh computation is already accounted above).
        for (at, hash) in repeats {
            let (snapshot, result) = by_hash
                .get(&hash)
                .expect("repeat epoch's content was scheduled for computation");
            self.batched.insert(
                at,
                BatchSlot {
                    snapshot: Arc::clone(snapshot),
                    result: Arc::clone(result),
                    fresh: false,
                },
            );
        }
        computed
    }

    /// Analyzes the next epoch, or `None` once the timeline is exhausted.
    pub fn next_epoch(&mut self) -> Option<EpochAnalysis> {
        let at = *self.change_points.get(self.next)?;
        self.next += 1;
        if let Some(slot) = self.batched.remove(&at) {
            let analysis = self.engine.assemble_analysis(
                slot.snapshot,
                Some(Arc::clone(&self.history)),
                slot.result,
            );
            // The converged-prior chain advances exactly as in the
            // sequential walk, so an epoch that has to fall back to the
            // warm path below still sees the gate it would have seen.
            self.prior = analysis.result().converged.then(|| analysis.result_arc());
            if slot.fresh {
                self.total_iterations += analysis.result().iterations;
            }
            return Some(EpochAnalysis {
                at,
                warm_started: false,
                from_cache: !slot.fresh,
                analysis,
                temporal: Arc::clone(&self.temporal),
            });
        }
        let prior_available = self.prior.is_some();
        let snapshot = Arc::new(self.history.snapshot_at(at));
        let (analysis, from_cache) = self.engine.analyze_inner(
            SnapshotInput::Owned(snapshot),
            Some(Arc::clone(&self.history)),
            self.prior.as_deref(),
        );
        // Only a *converged* posterior seeds the next epoch: a capped-out
        // oscillation is not a fixpoint, and warm-starting from one would
        // cascade its bias down the rest of the timeline.
        self.prior = analysis.result().converged.then(|| analysis.result_arc());
        if !from_cache {
            self.total_iterations += analysis.result().iterations;
        }
        Some(EpochAnalysis {
            at,
            warm_started: prior_available && !from_cache,
            from_cache,
            analysis,
            temporal: Arc::clone(&self.temporal),
        })
    }
}

/// Greedy LPT assignment of epochs to at most `threads` buckets, weighted
/// by snapshot assertion count: sort descending, place each epoch in the
/// currently lightest bucket.
fn balanced_epoch_chunks(
    pending: &[(Timestamp, Arc<SnapshotView>)],
    threads: usize,
) -> Vec<Vec<(Timestamp, Arc<SnapshotView>)>> {
    let buckets = threads.min(pending.len()).max(1);
    let mut order: Vec<usize> = (0..pending.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(pending[i].1.num_assertions()));
    let mut chunks: Vec<Vec<(Timestamp, Arc<SnapshotView>)>> = vec![Vec::new(); buckets];
    let mut loads = vec![0usize; buckets];
    for i in order {
        let lightest = (0..buckets).min_by_key(|&b| loads[b]).expect("buckets > 0");
        // Iteration cost is per-assertion per-round; +1 keeps empty
        // snapshots from all landing in one bucket.
        loads[lightest] += pending[i].1.num_assertions() + 1;
        chunks[lightest].push((pending[i].0, Arc::clone(&pending[i].1)));
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

impl Iterator for TimelineSession {
    type Item = EpochAnalysis;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_epoch()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.change_points.len() - self.next;
        (remaining, Some(remaining))
    }
}

impl std::fmt::Debug for TimelineSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimelineSession")
            .field("epochs", &self.change_points.len())
            .field("next", &self.next)
            .field("total_iterations", &self.total_iterations)
            .finish()
    }
}

/// One epoch of a [`TimelineSession`]: a full (owned) [`Analysis`] of the
/// snapshot in force at one change point, plus the timeline-wide temporal
/// dependence evidence.
#[derive(Debug, Clone)]
pub struct EpochAnalysis {
    at: Timestamp,
    warm_started: bool,
    from_cache: bool,
    analysis: Analysis,
    temporal: Arc<Vec<PairDependence>>,
}

impl EpochAnalysis {
    /// The change point this epoch's snapshot was materialised at.
    pub fn timestamp(&self) -> Timestamp {
        self.at
    }

    /// `true` when discovery actually ran for this epoch *and* was seeded
    /// from the previous epoch's posterior. `false` for the first epoch
    /// (cold), for epochs following a non-converged one, and for epochs
    /// served from the engine's analysis cache (no discovery ran at all —
    /// see [`EpochAnalysis::from_cache`]).
    pub fn warm_started(&self) -> bool {
        self.warm_started
    }

    /// `true` when this epoch's result came straight from the engine's
    /// analysis cache, skipping the discovery loop entirely.
    pub fn from_cache(&self) -> bool {
        self.from_cache
    }

    /// Truth-discovery iterations the cached result records. For a
    /// cache-served epoch these were spent when the result was first
    /// computed, not by this walk — [`TimelineSession::total_iterations`]
    /// counts only freshly-spent work.
    pub fn iterations(&self) -> usize {
        self.analysis.result().iterations
    }

    /// The epoch's full analysis.
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Unwraps the epoch into its owned analysis.
    pub fn into_analysis(self) -> Analysis {
        self.analysis
    }

    /// Update-trace dependence evidence over the whole history.
    pub fn temporal_dependences(&self) -> &[PairDependence] {
        &self.temporal
    }

    /// Dependence evidence with the *currents* folded in: the epoch
    /// snapshot's detected pairs merged with the timeline's update-trace
    /// pairs, keeping whichever report is more confident per source pair,
    /// most probable first. A lazy copier that looks independent in any
    /// single snapshot (it lags its original, so the values rarely match at
    /// one instant) is still flagged here through its trace evidence.
    pub fn fused_dependences(&self) -> Vec<PairDependence> {
        let mut fused: BTreeMap<(SourceId, SourceId), PairDependence> = BTreeMap::new();
        for dep in self
            .analysis
            .dependences()
            .iter()
            .chain(self.temporal.iter())
        {
            let dep = dep.clone().canonical();
            match fused.entry((dep.a, dep.b)) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if dep.probability > e.get().probability {
                        e.insert(dep);
                    }
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(dep);
                }
            }
        }
        let mut out: Vec<PairDependence> = fused.into_values().collect();
        out.sort_by(|x, y| y.probability.total_cmp(&x.probability));
        out
    }
}

/// Default dirty-set ceiling for [`IngestSession`]: deltas touching more
/// than this fraction of the snapshot's objects fall back to a full warm
/// re-analysis, because propagating through most of the world costs as
/// much as recomputing it.
pub const DEFAULT_MAX_DIRTY_FRACTION: f64 = 0.25;

/// Running counters for a streaming [`IngestSession`]: how many events
/// and epochs flowed through, how often the incremental path held versus
/// fell back to a full re-analysis, and how much discovery work was spent.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IngestStats {
    /// Claim events appended through this session.
    pub events: u64,
    /// Delta epochs sealed and analyzed.
    pub deltas_sealed: u64,
    /// Epochs served by the incremental path
    /// ([`DeltaOutcome::Incremental`]).
    pub incremental_runs: u64,
    /// Epochs that fell back to a full warm re-analysis (dirty fraction
    /// exceeded, prior not converged, or strategy unsupported).
    pub full_fallbacks: u64,
    /// Objects in the most recent epoch's dirty closure.
    pub dirty_objects_last: usize,
    /// Sources in the most recent epoch's dirty closure.
    pub dirty_sources_last: usize,
    /// Total objects across all epochs' dirty closures.
    pub dirty_objects_total: u64,
    /// Total truth-discovery iterations spent across all epochs
    /// (including the recovery bootstrap of
    /// [`SailingEngine::ingest_session_from`]).
    pub iterations_total: u64,
    /// How the most recent epoch was resolved.
    pub last_outcome: Option<DeltaOutcome>,
}

/// A streaming ingestion session: an append-only [`ClaimLog`] feeding
/// delta epochs into **incremental** truth discovery.
///
/// Claims appended via [`assert_claim`](IngestSession::assert_claim) /
/// [`retract`](IngestSession::retract) accumulate in the log's open
/// epoch. When the log's [`SealPolicy`] trips (or [`seal`](IngestSession::seal)
/// is called), the epoch is sealed into a [`Delta`], applied to the
/// session's snapshot via [`SnapshotView::apply_delta`], and analyzed
/// with [`TruthDiscovery::run_delta`] — re-iterating only the delta's
/// dirty closure when the prior epoch converged and the closure stays
/// under the session's dirty-fraction ceiling, and falling back to a
/// full warm re-analysis otherwise. [`stats`](IngestSession::stats)
/// records which path each epoch took.
///
/// [`analysis`](IngestSession::analysis) assembles the current posterior
/// into an [`Analysis`] handle. Incremental results are *not* admitted
/// to the engine's analysis cache: they match a full re-analysis to
/// ~1e-9, not bit-for-bit, and must not alias exact cached entries.
pub struct IngestSession {
    engine: SailingEngine,
    log: ClaimLog,
    max_dirty_fraction: f64,
    snapshot: Arc<SnapshotView>,
    last: Arc<PipelineResult>,
    stats: IngestStats,
    /// Process-unique identity, so downstream consumers folding stats
    /// from several sessions (see `sailing-serve`'s metrics) can track
    /// per-session deltas instead of clobbering each other's totals.
    session_id: u64,
    /// Quotient state under a non-exact [`ValueEquivalence`] backend;
    /// `None` under [`Exact`] (the common case — zero overhead, the
    /// session runs on the raw snapshots exactly as before).
    equiv: Option<IngestEquivalence>,
}

/// The non-exact ingest session's quotient state: the quotient covering
/// every value id the session has seen, and the quotiented snapshot the
/// discovery loop actually runs over. Stream events carry bare
/// [`ValueId`]s — no payloads — so ids beyond the bootstrap arena are
/// extended as **singletons** (never merged), and a delta naming an
/// unseen id forces the typed [`DeltaOutcome::Unsupported`] fallback: an
/// unknown payload could in principle merge classes anywhere, so the
/// dirty closure cannot be trusted.
struct IngestEquivalence {
    quotient: ValueQuotient,
    qsnapshot: Arc<SnapshotView>,
}

impl IngestEquivalence {
    /// The quotiented twin of `snapshot` under the current quotient
    /// (shared allocation when the quotient is the identity).
    fn quotiented_arc(&self, snapshot: &Arc<SnapshotView>) -> Arc<SnapshotView> {
        if self.quotient.is_identity() {
            Arc::clone(snapshot)
        } else {
            Arc::new(snapshot.quotiented(&self.quotient))
        }
    }
}

/// Monotonic source for [`IngestSession::session_id`].
static NEXT_INGEST_SESSION_ID: AtomicU64 = AtomicU64::new(1);

impl IngestSession {
    fn start(engine: SailingEngine, log: ClaimLog) -> Self {
        let mut session = IngestSession {
            engine,
            log,
            max_dirty_fraction: DEFAULT_MAX_DIRTY_FRACTION,
            snapshot: Arc::new(SnapshotView::from_triples(0, 0, Vec::new())),
            last: Arc::new(trivial_result()),
            stats: IngestStats::default(),
            session_id: NEXT_INGEST_SESSION_ID.fetch_add(1, Ordering::Relaxed),
            equiv: None,
        };
        if !session.engine.equivalence.is_exact() {
            // Non-exact backend: seed the quotient from the (empty)
            // starting snapshot so `advance` can route every sealed
            // epoch through the quotient arms from the first event on.
            let mut quotient = session
                .snapshot
                .quotient(session.engine.equivalence.as_ref());
            quotient.extend_to(session.snapshot.value_space());
            session.equiv = Some(IngestEquivalence {
                qsnapshot: Arc::clone(&session.snapshot),
                quotient,
            });
        }
        if !session.log.is_empty() {
            // Recovery bootstrap: fold the log's *sealed* epochs into one
            // snapshot and pay a full cold analysis for them. The open
            // tail stays out deliberately — its eventual seal re-emits
            // those events as a delta, so folding it here too would
            // apply them twice: a spurious dirty-closure re-analysis and
            // double-counted epoch stats.
            session.stats.events = session.log.len() as u64;
            if session.log.sealed_len() > 0 {
                let bootstrap = session.log.replay_sealed_delta();
                session.snapshot = Arc::new(session.snapshot.apply_delta(&bootstrap));
                let target = match &mut session.equiv {
                    None => Arc::clone(&session.snapshot),
                    Some(eq) => {
                        // Rebuild the quotient over the recovered value
                        // space (replayed events carry bare ids, so the
                        // extension is all singletons) and bootstrap
                        // over the quotiented snapshot.
                        let mut quotient = session
                            .snapshot
                            .quotient(session.engine.equivalence.as_ref());
                        quotient.extend_to(session.snapshot.value_space());
                        eq.quotient = quotient;
                        eq.qsnapshot = eq.quotiented_arc(&session.snapshot);
                        Arc::clone(&eq.qsnapshot)
                    }
                };
                let result = session.engine.strategy.run_warm(&target, None);
                session.stats.iterations_total += result.iterations as u64;
                session.last = Arc::new(result);
            }
        }
        session
    }

    /// Replaces the dirty-fraction ceiling above which an epoch falls
    /// back to a full warm re-analysis (default
    /// [`DEFAULT_MAX_DIRTY_FRACTION`]).
    pub fn with_max_dirty_fraction(mut self, max_dirty_fraction: f64) -> Self {
        self.max_dirty_fraction = max_dirty_fraction;
        self
    }

    /// Appends a positive claim to the log and advances the session if
    /// the seal policy trips. Returns the event's sequence number.
    pub fn assert_claim(
        &mut self,
        source: SourceId,
        object: ObjectId,
        value: ValueId,
        provenance: u64,
        ts: Timestamp,
    ) -> u64 {
        self.append(source, object, Some(value), provenance, ts)
    }

    /// Appends a retraction to the log and advances the session if the
    /// seal policy trips. Returns the event's sequence number.
    pub fn retract(
        &mut self,
        source: SourceId,
        object: ObjectId,
        provenance: u64,
        ts: Timestamp,
    ) -> u64 {
        self.append(source, object, None, provenance, ts)
    }

    /// Appends a raw event (`None` value = retraction), sealing and
    /// analyzing an epoch when the policy says so.
    pub fn append(
        &mut self,
        source: SourceId,
        object: ObjectId,
        value: Option<ValueId>,
        provenance: u64,
        ts: Timestamp,
    ) -> u64 {
        let seq = self.log.append(source, object, value, provenance, ts);
        self.stats.events += 1;
        if let Some(delta) = self.log.poll_seal() {
            self.advance(&delta);
        }
        seq
    }

    /// Seals the open epoch regardless of policy and analyzes it.
    /// Returns `false` when there was nothing to seal.
    pub fn seal(&mut self) -> bool {
        match self.log.seal() {
            Some(delta) => {
                self.advance(&delta);
                true
            }
            None => false,
        }
    }

    fn advance(&mut self, delta: &Delta) {
        self.stats.deltas_sealed += 1;
        let next = Arc::new(self.snapshot.apply_delta(delta));
        let run = match &mut self.equiv {
            None => self.engine.strategy.run_delta(
                &next,
                Some(&self.last),
                delta,
                self.max_dirty_fraction,
            ),
            Some(eq) if eq.quotient.covers(delta) => {
                // Every id the delta names is already classified, so the
                // quotiented delta's dirty closure is exact: rewrite the
                // ops onto class representatives and run incrementally
                // over the quotiented snapshot.
                let qdelta = eq.quotient.map_delta(delta);
                let qnext = Arc::new(eq.qsnapshot.apply_delta(&qdelta));
                let run = self.engine.strategy.run_delta(
                    &qnext,
                    Some(&self.last),
                    &qdelta,
                    self.max_dirty_fraction,
                );
                eq.qsnapshot = qnext;
                run
            }
            Some(eq) => {
                // The delta names a value id the quotient has never
                // seen. Stream events carry bare ids — no payloads — so
                // the new value could in principle merge classes
                // anywhere and the delta's dirty closure cannot be
                // trusted. Extend the quotient with singletons (the
                // only sound extension for unknown payloads) and fall
                // back to a full warm re-analysis; `run_warm` still
                // gates on a converged prior, so the warm-start rule is
                // preserved, and the typed outcome lets callers observe
                // the degradation.
                eq.quotient.extend_to(next.value_space());
                let qnext = eq.quotiented_arc(&next);
                let result = self.engine.strategy.run_warm(&qnext, Some(&self.last));
                let (dirty_objects, dirty_sources) = (qnext.num_objects(), qnext.num_sources());
                eq.qsnapshot = qnext;
                DeltaRun {
                    result,
                    outcome: DeltaOutcome::Unsupported,
                    dirty_objects,
                    dirty_sources,
                }
            }
        };
        if run.outcome.is_incremental() {
            self.stats.incremental_runs += 1;
        } else {
            self.stats.full_fallbacks += 1;
        }
        self.stats.dirty_objects_last = run.dirty_objects;
        self.stats.dirty_sources_last = run.dirty_sources;
        self.stats.dirty_objects_total += run.dirty_objects as u64;
        self.stats.iterations_total += run.result.iterations as u64;
        self.stats.last_outcome = Some(run.outcome);
        self.snapshot = next;
        self.last = Arc::new(run.result);
    }

    /// Assembles the session's current posterior into an [`Analysis`]
    /// handle, bypassing the engine's analysis cache (see the type docs).
    pub fn analysis(&self) -> Analysis {
        // Under a non-exact backend the posterior was computed over the
        // quotiented snapshot, so the handle must index into it — class
        // representatives, not raw stream ids.
        let snapshot = self.equiv.as_ref().map_or_else(
            || Arc::clone(&self.snapshot),
            |eq| Arc::clone(&eq.qsnapshot),
        );
        self.engine
            .assemble_analysis(snapshot, None, Arc::clone(&self.last))
    }

    /// The session's current snapshot (all sealed epochs applied).
    pub fn snapshot(&self) -> &SnapshotView {
        &self.snapshot
    }

    /// Shared handle to the session's current snapshot.
    pub fn snapshot_arc(&self) -> Arc<SnapshotView> {
        Arc::clone(&self.snapshot)
    }

    /// Running session counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// This session's process-unique identity (monotonic, never reused).
    /// Stats consumers key their last-seen [`IngestStats`] on it so that
    /// several sessions publishing through one sink fold additively
    /// instead of overwriting each other.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The underlying claim log.
    pub fn log(&self) -> &ClaimLog {
        &self.log
    }

    /// Durability counters from the underlying claim log.
    pub fn log_stats(&self) -> IngestLogStats {
        self.log.stats()
    }

    /// All retained events at or after `since`, oldest first.
    pub fn events_since(&self, since: u64) -> &[sailing_ingest::IngestEvent] {
        self.log.events_since(since)
    }
}

impl std::fmt::Debug for IngestSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestSession")
            .field("max_dirty_fraction", &self.max_dirty_fraction)
            .field("open_events", &self.log.open_events().len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// The converged-but-empty posterior a fresh session starts from. Its
/// empty accuracy vector fails `run_delta`'s warm-start gate, so the
/// first sealed epoch correctly pays a full cold analysis.
fn trivial_result() -> PipelineResult {
    PipelineResult {
        probabilities: ValueProbabilities::default(),
        accuracies: Vec::new(),
        dependences: Vec::new(),
        iterations: 0,
        converged: true,
        termination: Termination::Converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_core::{Accu, NaiveVote};
    use sailing_fusion::{fuse, FusionStrategy};
    use sailing_model::fixtures;

    #[test]
    fn builder_validates_params() {
        let err = SailingEngine::builder()
            .params(DetectionParams {
                copy_rate: 2.0,
                ..DetectionParams::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SailingError::InvalidParameter {
                param: "copy_rate",
                ..
            }
        ));
        assert!(SailingEngine::builder().threads(0).build().is_err());
    }

    #[test]
    fn analysis_matches_direct_pipeline_on_table1() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let engine = SailingEngine::with_defaults();
        let analysis = engine.analyze(&snap);

        let direct = AccuCopy::with_defaults().run(&snap);
        assert_eq!(analysis.decisions(), direct.decisions_sorted());
        // Hash-map iteration order varies between runs, so float summation
        // can differ by an ULP; the estimates must agree to high precision.
        assert_eq!(analysis.accuracies().len(), direct.accuracies.len());
        for (a, d) in analysis.accuracies().iter().zip(&direct.accuracies) {
            assert!((a - d).abs() < 1e-9);
        }
        assert_eq!(analysis.dependences().len(), direct.dependences.len());
        assert_eq!(truth.decision_precision(&analysis.decisions()), Some(1.0));
        assert!(analysis.converged());
        assert_eq!(analysis.strategy_name(), "accu-copy");
    }

    #[test]
    fn fuse_matches_fusion_crate_without_rerun() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let analysis = SailingEngine::with_defaults().analyze(&snap);
        let via_engine = analysis.fuse();
        let via_crate = fuse(&snap, &FusionStrategy::dependence_aware()).unwrap();
        assert_eq!(via_engine.decisions, via_crate.decisions);
        assert_eq!(via_engine.strategy, via_crate.strategy);
    }

    #[test]
    fn online_session_is_auto_seeded() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let analysis = SailingEngine::with_defaults().analyze(&snap);
        let order = analysis.visit_order(&OrderingPolicy::GreedyIndependent);
        let mut session = analysis.online_session();
        let steps = session.run_order(&order);
        assert_eq!(steps.len(), 5);
        // The greedy order front-loads the independents; after two probes
        // the answers are already fully correct (paper's Example 4.1 idea).
        assert_eq!(truth.decision_precision(&steps[1].decisions), Some(1.0));
    }

    #[test]
    fn recommendations_avoid_the_copier_cluster() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let analysis = SailingEngine::with_defaults().analyze(&snap);
        let recs = analysis.recommend(Goal::TruthSeeking, 2);
        assert_eq!(recs.len(), 2);
        let s = |n: &str| store.source_id(n).unwrap();
        let picked: Vec<SourceId> = recs.iter().map(|r| r.source).collect();
        assert!(picked.contains(&s("S1")), "{picked:?}");
        // No two recommended sources may be a confident dependent pair.
        for (i, x) in picked.iter().enumerate() {
            for y in &picked[i + 1..] {
                assert!(analysis.dependence_matrix().dependent(*x, *y) < 0.5);
            }
        }
    }

    #[test]
    fn pluggable_strategies_change_the_analysis() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let naive = SailingEngine::builder()
            .strategy(NaiveVote::new())
            .build()
            .unwrap();
        let accu = SailingEngine::builder()
            .strategy(Accu::with_defaults())
            .build()
            .unwrap();
        let p_naive = truth
            .decision_precision(&naive.analyze(&snap).decisions())
            .unwrap();
        let p_accu = truth
            .decision_precision(&accu.analyze(&snap).decisions())
            .unwrap();
        assert!((p_naive - 0.4).abs() < 1e-9);
        assert!(p_accu >= p_naive);
        assert_eq!(naive.strategy_name(), "naive");
        assert!(naive.analyze(&snap).dependences().is_empty());
    }

    #[test]
    fn top_k_answers_through_the_facade() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let analysis = SailingEngine::with_defaults().analyze(&snap);
        let halevy = store.object_id("Halevy").unwrap();
        let result = analysis.top_k(halevy, 1, &OrderingPolicy::ByAccuracy);
        assert_eq!(result.top.len(), 1);
        assert_eq!(Some(result.top[0].0), truth.value(halevy));
    }

    #[test]
    fn engine_is_shareable_and_debuggable() {
        let engine = SailingEngine::with_defaults();
        let clone = engine.clone();
        let handle = std::thread::spawn(move || {
            let (store, _) = fixtures::table1();
            clone.analyze(&store.snapshot()).decisions().len()
        });
        assert_eq!(handle.join().unwrap(), 5);
        assert!(format!("{engine:?}").contains("accu-copy"));
    }

    #[test]
    fn builder_threads_composes_with_params_in_any_order() {
        // `threads()` must survive a later wholesale `params()` call.
        let engine = SailingEngine::builder()
            .threads(8)
            .params(DetectionParams::default())
            .build()
            .unwrap();
        assert_eq!(engine.params().threads, 8);
        let engine = SailingEngine::builder()
            .params(DetectionParams::default())
            .threads(8)
            .build()
            .unwrap();
        assert_eq!(engine.params().threads, 8);
    }

    #[test]
    fn custom_strategy_params_drive_downstream_voting() {
        // A strategy carrying its own parameters must also govern the
        // online-session voting path, keeping the facade invariant that a
        // fully-probed session equals the fused decisions.
        let params = DetectionParams {
            n_false_values: 50,
            copy_rate: 0.6,
            ..DetectionParams::default()
        };
        let engine = SailingEngine::builder()
            .strategy(AccuCopy::new(params.clone()).unwrap())
            .build()
            .unwrap();
        assert_eq!(engine.params().n_false_values, 50);

        // Builder-level overrides cannot reach inside a param-carrying
        // strategy, so combining them is a typed configuration error
        // rather than a silent no-op.
        let err = SailingEngine::builder()
            .strategy(AccuCopy::new(params.clone()).unwrap())
            .threads(8)
            .build()
            .unwrap_err();
        assert!(matches!(err, SailingError::InvalidConfig { .. }));

        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let analysis = engine.analyze(&snap);
        let order = analysis.visit_order(&OrderingPolicy::ByAccuracy);
        let mut session = analysis.online_session();
        let steps = session.run_order(&order);
        assert_eq!(
            steps.last().unwrap().decisions,
            analysis.fuse().decisions,
            "fully-probed session must match fused decisions under custom params"
        );
    }

    #[test]
    fn bookstore_corpus_raises_the_screening_floor() {
        let config = BookCorpusConfig::small(7);
        assert_eq!(config.min_shared_books, 10);
        // Attached corpus → Example 4.1 screening becomes the default.
        let engine = SailingEngine::builder()
            .bookstore_corpus(&config)
            .build()
            .unwrap();
        assert_eq!(engine.params().min_overlap, 10);
        // An explicitly stricter floor wins over the corpus's.
        let engine = SailingEngine::builder()
            .params(DetectionParams {
                min_overlap: 25,
                ..DetectionParams::default()
            })
            .bookstore_corpus(&config)
            .build()
            .unwrap();
        assert_eq!(engine.params().min_overlap, 25);
        // A param-carrying strategy conflicts, like params()/threads().
        let err = SailingEngine::builder()
            .strategy(AccuCopy::with_defaults())
            .bookstore_corpus(&config)
            .build()
            .unwrap_err();
        assert!(matches!(err, SailingError::InvalidConfig { .. }));
    }

    #[test]
    fn fuse_shares_the_pipeline_result_without_deep_clone() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let analysis = SailingEngine::with_defaults().analyze(&snap);
        let f1 = analysis.fuse();
        let f2 = analysis.fuse();
        // Pointer identity: every outcome reads the exact PipelineResult
        // allocation the analysis holds — fuse() is a refcount bump.
        assert!(
            std::ptr::eq(analysis.result(), f1.result()),
            "fuse() must share, not clone, the analysis result"
        );
        assert!(std::ptr::eq(f1.result(), f2.result()));
        // And therefore the distribution slices are the same memory.
        let o = analysis.probabilities().objects()[0];
        assert!(std::ptr::eq(
            analysis.probabilities().distribution(o).as_ptr(),
            f1.probabilities().distribution(o).as_ptr(),
        ));
    }

    #[test]
    fn empty_snapshot_analysis_is_sane() {
        let snap = SnapshotView::from_triples(0, 0, Vec::new());
        let analysis = SailingEngine::with_defaults().analyze(&snap);
        assert!(analysis.decisions().is_empty());
        assert!(analysis.recommend(Goal::DiversitySeeking, 3).is_empty());
        assert!(analysis.source_reports().is_empty());
        assert!(analysis.online_session().current_decisions().is_empty());
    }

    #[test]
    fn analysis_is_owned_send_and_outlives_the_snapshot() {
        // The core of the API redesign: an Analysis is a self-contained
        // value — it can be returned from a scope that owned the snapshot
        // and shipped to another thread.
        fn produce() -> Analysis {
            let (store, _) = fixtures::table1();
            SailingEngine::with_defaults().analyze_owned(Arc::new(store.snapshot()))
        }
        let analysis = produce();
        let handle = std::thread::spawn(move || analysis.decisions().len());
        assert_eq!(handle.join().unwrap(), 5);

        fn assert_static_send<T: Send + Sync + 'static>() {}
        assert_static_send::<Analysis>();
    }

    #[test]
    fn analyze_owned_hits_the_cache_pointer_identically() {
        let (store, _) = fixtures::table1();
        let snap = Arc::new(store.snapshot());
        let engine = SailingEngine::with_defaults();
        assert_eq!(engine.cache_stats().hits, 0);

        let first = engine.analyze_owned(Arc::clone(&snap));
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));

        // Second analysis of the same Arc: no pipeline re-run — the
        // returned analysis shares the exact PipelineResult allocation.
        let second = engine.analyze_owned(Arc::clone(&snap));
        assert!(std::ptr::eq(first.result(), second.result()));
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        // An equal snapshot in a fresh allocation hits too (content hash,
        // not pointer, is the key)…
        let rebuilt = engine.analyze(&store.snapshot());
        assert!(std::ptr::eq(first.result(), rebuilt.result()));
        assert_eq!(engine.cache_stats().hits, 2);

        // …and clones of the engine share the same cache.
        let clone = engine.clone();
        let via_clone = clone.analyze_owned(snap);
        assert!(std::ptr::eq(first.result(), via_clone.result()));
        assert_eq!(engine.cache_stats().hits, 3);
    }

    #[test]
    fn cold_analyze_never_observes_warm_seeded_results() {
        // The cache key carries warm/cold provenance: a timeline walk must
        // not change what a plain analyze() of the same snapshot returns.
        let (_, history, _) = fixtures::table3();
        let engine = SailingEngine::with_defaults();
        let epochs: Vec<_> = engine.timeline(&history).collect();
        let warm = epochs
            .iter()
            .find(|e| e.warm_started())
            .expect("some epoch warm-started");
        let cold = engine.analyze_owned(warm.analysis().snapshot_arc());
        assert!(
            !std::ptr::eq(cold.result(), warm.analysis().result()),
            "cold analyze must run its own discovery, not reuse the warm result"
        );
        // A cold-computed epoch (the first) IS shared with a cold analyze.
        let first = &epochs[0];
        assert!(!first.warm_started());
        let again = engine.analyze_owned(first.analysis().snapshot_arc());
        assert!(std::ptr::eq(again.result(), first.analysis().result()));
    }

    #[test]
    fn borrowed_analyze_reuses_the_cached_snapshot_on_a_hit() {
        let (store, _) = fixtures::table1();
        let engine = SailingEngine::with_defaults();
        let first = engine.analyze(&store.snapshot());
        // The second borrowed call is a hit: no clone happens — the
        // returned analysis shares the snapshot allocation the cache holds.
        let second = engine.analyze(&store.snapshot());
        assert!(Arc::ptr_eq(&first.snapshot_arc(), &second.snapshot_arc()));
        assert!(std::ptr::eq(first.result(), second.result()));
    }

    #[test]
    fn cache_evicts_least_recently_used_and_can_be_disabled() {
        let snapshots: Vec<Arc<SnapshotView>> = (0..3u32)
            .map(|i| {
                Arc::new(SnapshotView::from_triples(
                    1,
                    1,
                    vec![(SourceId(0), ObjectId(0), ValueId(i))],
                ))
            })
            .collect();

        let tiny = SailingEngine::builder().cache_capacity(2).build().unwrap();
        let first = tiny.analyze_owned(Arc::clone(&snapshots[0]));
        tiny.analyze_owned(Arc::clone(&snapshots[1]));
        tiny.analyze_owned(Arc::clone(&snapshots[2])); // evicts snapshot 0
        assert_eq!(tiny.cache_stats().entries, 2);
        let again = tiny.analyze_owned(Arc::clone(&snapshots[0])); // miss
        assert!(!std::ptr::eq(first.result(), again.result()));
        assert_eq!(tiny.cache_stats().hits, 0);
        assert_eq!(tiny.cache_stats().misses, 4);

        let uncached = SailingEngine::builder().cache_capacity(0).build().unwrap();
        let a = uncached.analyze_owned(Arc::clone(&snapshots[0]));
        let b = uncached.analyze_owned(Arc::clone(&snapshots[0]));
        assert!(!std::ptr::eq(a.result(), b.result()));
        let stats = uncached.cache_stats();
        assert_eq!((stats.entries, stats.capacity), (0, 0));
    }

    #[test]
    fn decisions_are_reproducibly_ordered() {
        let (store, _) = fixtures::table1();
        let analysis = SailingEngine::with_defaults().analyze(&store.snapshot());
        let a: Vec<_> = analysis.decisions().into_iter().collect();
        let b: Vec<_> = analysis.decisions().into_iter().collect();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "ascending objects");
    }

    #[test]
    fn timeline_walks_table3_epoch_by_epoch() {
        let (store, history, _) = fixtures::table3();
        let engine = SailingEngine::with_defaults();
        let session = engine.timeline(&history);
        let expected: Vec<_> = history.change_points().collect();
        assert_eq!(session.change_points(), &expected[..]);
        assert_eq!(session.num_epochs(), expected.len());

        let epochs: Vec<_> = session.collect();
        assert_eq!(epochs.len(), expected.len());
        assert!(!epochs[0].warm_started());
        // Exactly the epochs following a *converged* epoch are warm-started
        // (a capped-out oscillation never seeds its successor).
        for pair in epochs.windows(2) {
            assert_eq!(
                pair[1].warm_started(),
                pair[0].analysis().converged(),
                "at {}",
                pair[1].timestamp()
            );
        }
        assert!(
            epochs[1..].iter().any(EpochAnalysis::warm_started),
            "no epoch warm-started at all"
        );

        // Every epoch analysis matches the snapshot at its change point.
        for epoch in &epochs {
            let snap = history.snapshot_at(epoch.timestamp());
            assert_eq!(
                epoch.analysis().snapshot().content_hash(),
                snap.content_hash()
            );
            // The attached history feeds freshness-aware trust scoring.
            assert_eq!(
                epoch.analysis().trust_scores().len(),
                snap.num_sources().max(history.num_sources())
            );
        }

        // The temporal evidence surfaces the lazy copier S3 → S1 even
        // though single snapshots carry too little overlap to see it: the
        // fused report must rank S1–S3 above the independent pair S1–S2
        // (Example 3.2's inference).
        let s = |n: &str| store.source_id(n).unwrap();
        let last = epochs.last().unwrap();
        let fused = last.fused_dependences();
        let prob = |a: SourceId, b: SourceId| {
            fused
                .iter()
                .find(|p| (p.a, p.b) == (a.min(b), a.max(b)))
                .map_or(0.0, |p| p.probability)
        };
        assert!(
            prob(s("S1"), s("S3")) > prob(s("S1"), s("S2")),
            "lazy copier must outrank the slow independent: {fused:?}"
        );
        assert!(fused
            .windows(2)
            .all(|w| w[0].probability >= w[1].probability));
        // Fusing keeps the more confident of the two evidence channels.
        for p in &fused {
            let snap_p = last
                .analysis()
                .dependences()
                .iter()
                .find(|d| (d.a, d.b) == (p.a, p.b))
                .map_or(0.0, |d| d.probability);
            let temp_p = last
                .temporal_dependences()
                .iter()
                .find(|d| (d.a, d.b) == (p.a, p.b))
                .map_or(0.0, |d| d.probability);
            assert!((p.probability - snap_p.max(temp_p)).abs() < 1e-12);
        }
    }

    #[test]
    fn timeline_on_empty_history_yields_nothing() {
        let engine = SailingEngine::with_defaults();
        let mut session = engine.timeline(&History::new(3, 2));
        assert_eq!(session.num_epochs(), 0);
        assert!(session.next_epoch().is_none());
        assert_eq!(session.total_iterations(), 0);
        // Batched construction over nothing is equally a no-op.
        let mut batched = engine.timeline_batched(&History::new(3, 2), 4);
        assert!(batched.next_epoch().is_none());
    }

    fn persist_temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sailing-engine-persist-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persist_dir_turns_a_second_engine_into_disk_hits() {
        let dir = persist_temp_dir("second-engine");
        let (store, _) = fixtures::table1();
        let snapshot = Arc::new(store.snapshot());

        let first = SailingEngine::builder().persist_dir(&dir).build().unwrap();
        let a = first.analyze_owned(Arc::clone(&snapshot));
        let stats = first.cache_stats();
        assert_eq!((stats.disk_hits, stats.disk_misses), (0, 1));
        first.flush_persist().unwrap();
        assert_eq!(first.persist_store().unwrap().len(), 1);

        // A brand-new engine over the same directory — a stand-in for a
        // second process — serves the analysis from disk.
        let second = SailingEngine::builder().persist_dir(&dir).build().unwrap();
        let b = second.analyze_owned(Arc::clone(&snapshot));
        let stats = second.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1), "memory tier is cold");
        assert_eq!((stats.disk_hits, stats.disk_misses), (1, 0));
        assert_eq!(a.decisions(), b.decisions());
        for (x, y) in a.accuracies().iter().zip(b.accuracies()) {
            assert_eq!(x.to_bits(), y.to_bits(), "disk round-trip is bit-exact");
        }
        // The disk hit was promoted into memory: a third request is a
        // pointer-identical memory hit.
        let c = second.analyze_owned(snapshot);
        assert!(std::ptr::eq(b.result(), c.result()));
        assert_eq!(second.cache_stats().hits, 1);

        // compact keeps the valid entry; an engine without a store
        // reports the empty defaults.
        assert_eq!(
            second.compact_persist().unwrap(),
            sailing_persist::CompactReport {
                kept: 1,
                ..Default::default()
            }
        );
        let plain = SailingEngine::with_defaults();
        assert!(plain.persist_store().is_none());
        assert_eq!(plain.flush_persist().unwrap(), 0);
        assert_eq!(plain.compact_persist().unwrap(), Default::default());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persist_keys_keep_warm_and_cold_results_apart_on_disk() {
        let dir = persist_temp_dir("provenance");
        let (_, history, _) = fixtures::table3();
        let engine = SailingEngine::builder().persist_dir(&dir).build().unwrap();
        let epochs: Vec<_> = engine.timeline(&history).collect();
        let warm = epochs
            .iter()
            .find(|e| e.warm_started())
            .expect("some epoch warm-started");
        engine.flush_persist().unwrap();

        // A cold analyze in a fresh engine over the same directory must
        // not be answered by the warm-provenance entry.
        let second = SailingEngine::builder().persist_dir(&dir).build().unwrap();
        let cold = second.analyze_owned(warm.analysis().snapshot_arc());
        assert_eq!(second.cache_stats().disk_misses, 1);
        assert_eq!(cold.decisions(), warm.analysis().decisions());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_timeline_agrees_with_sequential_and_accounts_identically() {
        let (_, history, _) = fixtures::table3();
        let params = DetectionParams {
            min_overlap: 1,
            ..DetectionParams::default()
        };
        let seq_engine = SailingEngine::builder()
            .params(params.clone())
            .cache_capacity(0)
            .build()
            .unwrap();
        let par_engine = SailingEngine::builder()
            .params(params)
            .cache_capacity(0)
            .build()
            .unwrap();

        let sequential: Vec<_> = seq_engine.timeline(&history).collect();
        let mut batched_session = par_engine.timeline_batched(&history, 4);
        let batched: Vec<_> = batched_session.by_ref().collect();

        assert_eq!(sequential.len(), batched.len());
        let mut spent = 0usize;
        for (s, b) in sequential.iter().zip(&batched) {
            assert_eq!(s.timestamp(), b.timestamp());
            assert_eq!(s.analysis().decisions(), b.analysis().decisions());
            // Fresh engines: both walks did fresh work for every epoch.
            assert!(!s.from_cache() && !b.from_cache());
            assert!(!b.warm_started(), "batched epochs run cold");
            spent += b.iterations();
        }
        // Same accounting discipline: total == sum of fresh epochs' spend.
        assert_eq!(batched_session.total_iterations(), spent);
    }

    #[test]
    fn prefetch_dedupes_content_repeat_epochs() {
        // An update that reverts an object gives two change points the
        // same snapshot content; the batch must compute that content once
        // and fan it out, like the sequential walk's cache would.
        let mut history = History::new(1, 1);
        history.record(SourceId(0), ObjectId(0), 1, ValueId(1));
        history.record(SourceId(0), ObjectId(0), 2, ValueId(2));
        history.record(SourceId(0), ObjectId(0), 3, ValueId(1)); // revert
        let engine = SailingEngine::with_defaults();
        let mut session = engine.timeline_owned(Arc::new(history));
        assert_eq!(session.num_epochs(), 3);
        assert_eq!(session.prefetch_cold(2), 2, "two distinct contents");
        let epochs: Vec<_> = session.by_ref().collect();
        assert_eq!(epochs.len(), 3);
        // The repeat shares the first epoch's allocation and reports as
        // served rather than freshly computed.
        assert!(std::ptr::eq(
            epochs[0].analysis().result(),
            epochs[2].analysis().result()
        ));
        assert!(!epochs[0].from_cache() && !epochs[1].from_cache());
        assert!(epochs[2].from_cache());
        assert_eq!(
            session.total_iterations(),
            epochs[0].iterations() + epochs[1].iterations()
        );
    }

    #[test]
    fn prefetch_against_a_warm_cache_computes_nothing() {
        let (_, history, _) = fixtures::table3();
        let engine = SailingEngine::builder()
            .params(DetectionParams {
                min_overlap: 1,
                ..DetectionParams::default()
            })
            .cache_capacity(64)
            .build()
            .unwrap();
        // A batched walk populates the cache with cold-keyed results…
        let first: Vec<_> = engine.timeline_batched(&history, 2).collect();
        assert!(first.iter().all(|e| !e.from_cache()));
        // …so a second batched walk prefetches zero and serves everything
        // as cache hits with no spend.
        let mut rerun = engine.timeline_owned(Arc::new(history.clone()));
        assert_eq!(rerun.prefetch_cold(2), 0);
        let second: Vec<_> = rerun.by_ref().collect();
        assert_eq!(first.len(), second.len());
        assert!(second.iter().all(|e| e.from_cache()));
        assert_eq!(rerun.total_iterations(), 0);
        for (a, b) in first.iter().zip(&second) {
            assert!(std::ptr::eq(a.analysis().result(), b.analysis().result()));
        }
    }

    /// Tight-epsilon params for streaming tests: continuous vote map so
    /// incremental and full fixpoints are comparable to 1e-9.
    fn ingest_params() -> DetectionParams {
        DetectionParams {
            hard_damping_threshold: 1.0,
            convergence_epsilon: 1e-12,
            ..DetectionParams::default()
        }
    }

    /// Same two-block world as the core `run_delta` tests: block A is
    /// sources 0-2 over objects 0-3, block B sources 3-5 over objects
    /// 4-7, values namespaced per object (`o*10`, `k = 0` true).
    fn block_world_triples() -> Vec<(SourceId, ObjectId, ValueId)> {
        let mut triples = Vec::new();
        for block in 0..2u32 {
            for s in 0..3u32 {
                let sid = SourceId(block * 3 + s);
                for o in 0..4u32 {
                    let oid = ObjectId(block * 4 + o);
                    let k = u32::from(o == s + 1);
                    triples.push((sid, oid, ValueId(oid.0 * 10 + k)));
                }
            }
        }
        triples
    }

    #[test]
    fn ingest_stream_matches_batch_analysis_on_table1() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let engine = SailingEngine::with_defaults();

        let mut session = engine.ingest_session(SealPolicy::manual());
        for s in 0..snap.num_sources() {
            let sid = SourceId::from_index(s);
            for &(object, value) in snap.source_assertions(sid) {
                session.assert_claim(sid, object, value, 7, s as Timestamp);
            }
        }
        assert!(session.seal());
        assert!(!session.seal(), "nothing left in the open epoch");

        let streamed = session.analysis();
        let batch = engine.analyze(&snap);
        assert_eq!(streamed.decisions(), batch.decisions());
        assert_eq!(truth.decision_precision(&streamed.decisions()), Some(1.0));

        let stats = session.stats();
        assert_eq!(stats.events, snap.num_assertions() as u64);
        assert_eq!(stats.deltas_sealed, 1);
        // The fresh session's trivial prior has no accuracies, so the
        // first epoch must pay the full cold analysis.
        assert_eq!(stats.full_fallbacks, 1);
        assert_eq!(stats.incremental_runs, 0);
        assert_eq!(stats.last_outcome, Some(DeltaOutcome::PriorNotConverged));
        assert!(stats.iterations_total > 0);
    }

    #[test]
    fn ingest_goes_incremental_on_block_confined_epochs() {
        let engine = SailingEngine::builder()
            .params(ingest_params())
            .build()
            .unwrap();
        let mut session = engine
            .ingest_session(SealPolicy::manual())
            .with_max_dirty_fraction(0.5);
        for (s, o, v) in block_world_triples() {
            session.assert_claim(s, o, v, 0, 0);
        }
        assert!(session.seal());
        assert_eq!(session.stats().full_fallbacks, 1, "bootstrap epoch");

        // Epoch 2: block A only — source 1 flips object 0 to the truth.
        session.assert_claim(SourceId(1), ObjectId(0), ValueId(0), 0, 1);
        assert!(session.seal());
        let stats = session.stats();
        assert_eq!(stats.deltas_sealed, 2);
        assert_eq!(stats.incremental_runs, 1);
        assert_eq!(stats.last_outcome, Some(DeltaOutcome::Incremental));
        assert_eq!(stats.dirty_objects_last, 4, "block A objects only");
        assert_eq!(stats.dirty_sources_last, 3);

        // Parity with a one-shot analysis of the final snapshot.
        let final_snap = session.snapshot_arc();
        let direct = AccuCopy::new(ingest_params()).unwrap().run(&final_snap);
        let streamed = session.analysis();
        assert_eq!(streamed.decisions(), direct.decisions_sorted());
        for (a, d) in streamed.accuracies().iter().zip(&direct.accuracies) {
            assert!((a - d).abs() < 1e-9);
        }

        // Epoch 3 touches both blocks: dirty fraction 1.0 > 0.5 must
        // produce the typed fallback, still with matching decisions.
        session.assert_claim(SourceId(0), ObjectId(1), ValueId(10), 0, 2);
        session.assert_claim(SourceId(3), ObjectId(5), ValueId(50), 0, 2);
        assert!(session.seal());
        let stats = session.stats();
        assert_eq!(stats.full_fallbacks, 2);
        assert!(matches!(
            stats.last_outcome,
            Some(DeltaOutcome::DirtyFractionExceeded { dirty_fraction }) if dirty_fraction > 0.5
        ));
    }

    #[test]
    fn ingest_session_recovers_from_a_durable_log() {
        let dir = persist_temp_dir("ingest-recover");
        let engine = SailingEngine::with_defaults();
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();

        {
            let log = ClaimLog::open(&dir, SealPolicy::after_events(8)).unwrap();
            let mut session = engine.ingest_session_from(log);
            for s in 0..snap.num_sources() {
                let sid = SourceId::from_index(s);
                for &(object, value) in snap.source_assertions(sid) {
                    session.assert_claim(sid, object, value, 1, 0);
                }
            }
            session.seal();
            assert!(session.log_stats().segments_written > 0);
        }

        // A new process reopens the log and bootstraps its state from the
        // recovered events in one full analysis.
        let log = ClaimLog::open(&dir, SealPolicy::after_events(8)).unwrap();
        assert_eq!(log.stats().recovered_events, snap.num_assertions() as u64);
        let session = engine.ingest_session_from(log);
        let recovered = session.analysis();
        let batch = engine.analyze(&snap);
        assert_eq!(recovered.decisions(), batch.decisions());
        assert_eq!(session.stats().events, snap.num_assertions() as u64);
        assert_eq!(
            session.stats().deltas_sealed,
            0,
            "bootstrap is not an epoch"
        );
        assert!(session.stats().iterations_total > 0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_sharded_matches_analyze_bitwise() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let engine = SailingEngine::with_defaults();
        let solo = engine.analyze(&snap);
        for workers in [1, 3] {
            let sharded = engine.analyze_sharded(&snap, workers).unwrap();
            assert_eq!(sharded.decisions(), solo.decisions());
            for (x, y) in sharded.accuracies().iter().zip(solo.accuracies()) {
                assert_eq!(x.to_bits(), y.to_bits(), "workers={workers}");
            }
            assert_eq!(
                sharded.result().iterations,
                solo.result().iterations,
                "the sharded coordinator replays the same iterations"
            );
            assert_eq!(truth.decision_precision(&sharded.decisions()).unwrap(), 1.0);
        }
        let stats = engine.cache_stats();
        assert!(stats.shard_runs > 0, "local detection passes are counted");
        assert_eq!(
            stats.shard_partials_adopted, 0,
            "threads-only fan-outs have no peers to adopt from"
        );
        // Sharded results bypass the cache: only the plain analyze()
        // touched the request counters.
        assert_eq!(stats.hits + stats.misses, 1);
    }

    #[test]
    fn analyze_sharded_rejects_accuracy_blind_strategies() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let engine = SailingEngine::builder()
            .strategy(NaiveVote::new())
            .build()
            .unwrap();
        let err = engine.analyze_sharded(&snap, 2).unwrap_err();
        assert!(err.to_string().contains("strategy"), "{err}");
    }

    #[test]
    fn analyze_sharded_adopts_peer_partials_through_the_store() {
        let dir = persist_temp_dir("shard-adopt");
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let engine = SailingEngine::builder().persist_dir(&dir).build().unwrap();

        // A stand-in for a cooperating process: claim the first range of
        // iteration 1 and publish its partial through the shared store
        // before the engine's own run begins.
        let pipeline = AccuCopy::new(engine.params().clone()).unwrap();
        let ranges = shard_ranges(pipeline.pair_count(&snap), 2);
        assert_eq!(ranges.len(), 2, "table1 has enough candidate pairs");
        let state = pipeline.bootstrap_sharded(&snap, None);
        let name = shard_partial_name(snap.content_hash(), 1, ranges[0]);
        let peer = engine.persist_store().unwrap();
        assert!(peer.try_claim(&name));
        let partial = pipeline.run_shard(&snap, ranges[0], &state);
        peer.put_blob(&name, partial.to_canonical_json().as_bytes())
            .unwrap();

        let sharded = engine.analyze_sharded(&snap, 2).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(
            stats.shard_partials_adopted, 1,
            "the pre-published partial was adopted, not recomputed"
        );
        assert!(stats.shard_runs > 0);

        let solo = SailingEngine::with_defaults().analyze(&snap);
        assert_eq!(sharded.decisions(), solo.decisions());
        for (x, y) in sharded.accuracies().iter().zip(solo.accuracies()) {
            assert_eq!(x.to_bits(), y.to_bits(), "cooperation stays bit-exact");
        }

        // The completed run swept its coordination files, so the claim
        // is takeable again and the blob is gone.
        assert!(peer.get_blob(&name).is_none());
        assert!(peer.try_claim(&name));
        std::fs::remove_dir_all(&dir).ok();
    }
}
