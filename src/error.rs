//! The workspace error type, re-exported at the facade.
//!
//! Every fallible API in the workspace — engine construction, parameter
//! validation, model building, generator configuration — reports the same
//! [`SailingError`], so a service embedding the engine matches on one enum
//! end to end instead of parsing strings.

pub use sailing_model::{SailingError, SailingResult};

/// Facade-standard result alias.
pub type Result<T> = std::result::Result<T, SailingError>;
