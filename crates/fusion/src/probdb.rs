//! Probabilistic-database output.
//!
//! "We can either determine one true value for each object, or identify a
//! probabilistic distribution of possible values for each object and
//! generate a probabilistic database" (Section 4). This module materialises
//! the second option and implements the paper's point about combining
//! probabilities from multiple sources: "removing the independence
//! assumption can significantly change the computation of the probabilities
//! of the answer tuples".

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sailing_core::truth::{DependenceMatrix, ValueProbabilities};
use sailing_model::{ObjectId, SourceId, ValueId};

/// A per-object distribution over possible values.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProbabilisticDatabase {
    rows: HashMap<ObjectId, Vec<(ValueId, f64)>>,
}

impl ProbabilisticDatabase {
    /// Builds from pipeline value probabilities.
    pub fn from_probabilities(probs: &ValueProbabilities) -> Self {
        let rows = probs
            .objects()
            .into_iter()
            .map(|o| (o, probs.distribution(o).to_vec()))
            .collect();
        Self { rows }
    }

    /// Number of objects with a distribution.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The distribution for one object, descending by probability.
    pub fn distribution(&self, object: ObjectId) -> &[(ValueId, f64)] {
        self.rows.get(&object).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The probability a specific value is true.
    pub fn prob(&self, object: ObjectId, value: ValueId) -> f64 {
        self.distribution(object)
            .iter()
            .find(|&&(v, _)| v == value)
            .map_or(0.0, |&(_, p)| p)
    }

    /// Objects whose top value has probability at least `threshold` —
    /// the "confident" part of the database.
    pub fn confident_objects(&self, threshold: f64) -> Vec<ObjectId> {
        let mut out: Vec<_> = self
            .rows
            .iter()
            .filter(|(_, d)| d.first().is_some_and(|&(_, p)| p >= threshold))
            .map(|(&o, _)| o)
            .collect();
        out.sort();
        out
    }

    /// Shannon entropy (bits) of one object's distribution, including the
    /// unassigned remainder mass; higher = more conflicted.
    pub fn entropy(&self, object: ObjectId) -> f64 {
        let d = self.distribution(object);
        let mut h = 0.0;
        let mut mass = 0.0;
        for &(_, p) in d {
            if p > 0.0 {
                h -= p * p.log2();
                mass += p;
            }
        }
        let rest = (1.0 - mass).max(0.0);
        if rest > 1e-12 {
            h -= rest * rest.log2();
        }
        h
    }
}

/// Combines per-source answer probabilities assuming **independence**:
/// `P = 1 − Π (1 − pᵢ)` (the disjoint-probability rule the paper says
/// current systems use).
pub fn combine_independent(probs: &[f64]) -> f64 {
    1.0 - probs
        .iter()
        .fold(1.0, |acc, &p| acc * (1.0 - p.clamp(0.0, 1.0)))
}

/// Combines per-source answer probabilities **aware of dependence**: a
/// source's contribution is damped by the probability it merely copied an
/// already-counted source, so a cluster of copies contributes barely more
/// than its original. Sources are processed in descending probability.
pub fn combine_dependence_aware(
    probs: &[(SourceId, f64)],
    deps: &DependenceMatrix,
    copy_rate: f64,
) -> f64 {
    let mut ordered: Vec<(SourceId, f64)> = probs.to_vec();
    ordered.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut not_answer = 1.0;
    for (i, &(s, p)) in ordered.iter().enumerate() {
        let mut independence = 1.0;
        for &(prev, _) in &ordered[..i] {
            independence *= 1.0 - copy_rate * deps.dependent(s, prev);
        }
        not_answer *= 1.0 - (p.clamp(0.0, 1.0) * independence);
    }
    1.0 - not_answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_core::report::{DependenceKind, Direction, PairDependence};
    use sailing_core::AccuCopy;
    use sailing_model::fixtures;

    fn table1_db() -> (sailing_model::ClaimStore, ProbabilisticDatabase) {
        let (store, _) = fixtures::table1();
        let result = AccuCopy::with_defaults().run(&store.snapshot());
        let db = ProbabilisticDatabase::from_probabilities(&result.probabilities);
        (store, db)
    }

    #[test]
    fn distributions_roundtrip() {
        let (store, db) = table1_db();
        assert_eq!(db.len(), 5);
        assert!(!db.is_empty());
        let dong = store.object_id("Dong").unwrap();
        let d = db.distribution(dong);
        assert!(!d.is_empty());
        let total: f64 = d.iter().map(|&(_, p)| p).sum();
        assert!(total <= 1.0 + 1e-9);
        let top = d[0];
        assert_eq!(db.prob(dong, top.0), top.1);
        assert_eq!(db.prob(dong, ValueId(9999)), 0.0);
    }

    #[test]
    fn confident_objects_thresholding() {
        let (_, db) = table1_db();
        let all = db.confident_objects(0.0);
        assert_eq!(all.len(), 5);
        let few = db.confident_objects(0.999);
        assert!(few.len() <= all.len());
    }

    #[test]
    fn entropy_orders_conflict() {
        let (store, db) = table1_db();
        let bal = store.object_id("Balazinska").unwrap(); // unanimous
        let dong = store.object_id("Dong").unwrap(); // 3-way conflict
        assert!(
            db.entropy(dong) > db.entropy(bal),
            "dong {} vs balazinska {}",
            db.entropy(dong),
            db.entropy(bal)
        );
    }

    #[test]
    fn combine_independent_basics() {
        assert_eq!(combine_independent(&[]), 0.0);
        assert!((combine_independent(&[0.5]) - 0.5).abs() < 1e-12);
        assert!((combine_independent(&[0.5, 0.5]) - 0.75).abs() < 1e-12);
        assert!((combine_independent(&[1.0, 0.2]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dependence_aware_combination_discounts_copies() {
        // Three sources each report the answer with p = 0.6; two of them are
        // certain copies of the first.
        let mk = |a: u32, b: u32| PairDependence {
            a: SourceId(a),
            b: SourceId(b),
            probability: 1.0,
            prob_a_on_b: 0.0,
            kind: DependenceKind::Similarity,
            direction: Direction::BOnA,
            overlap: 10,
            diagnostic: 0.0,
        };
        let deps = DependenceMatrix::from_pairs(&[mk(0, 1), mk(0, 2)]);
        let probs = [(SourceId(0), 0.6), (SourceId(1), 0.6), (SourceId(2), 0.6)];
        let independent = combine_independent(&[0.6, 0.6, 0.6]);
        let aware = combine_dependence_aware(&probs, &deps, 1.0);
        assert!((independent - 0.936).abs() < 1e-9);
        assert!(
            (aware - 0.6).abs() < 1e-9,
            "copies must contribute nothing: {aware}"
        );
        // With no dependence, both rules agree.
        let no_deps = combine_dependence_aware(&probs, &DependenceMatrix::new(), 1.0);
        assert!((no_deps - independent).abs() < 1e-9);
    }

    #[test]
    fn partial_dependence_partially_discounts() {
        let mk = |a: u32, b: u32, p: f64| PairDependence {
            a: SourceId(a),
            b: SourceId(b),
            probability: p,
            prob_a_on_b: 0.0,
            kind: DependenceKind::Similarity,
            direction: Direction::BOnA,
            overlap: 10,
            diagnostic: 0.0,
        };
        let deps = DependenceMatrix::from_pairs(&[mk(0, 1, 0.5)]);
        let probs = [(SourceId(0), 0.6), (SourceId(1), 0.6)];
        let aware = combine_dependence_aware(&probs, &deps, 1.0);
        let independent = combine_independent(&[0.6, 0.6]);
        assert!(aware > 0.6 && aware < independent);
    }
}
