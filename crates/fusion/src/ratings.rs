//! Dependence-aware opinion aggregation.
//!
//! Example 2.2: "a naive aggregation of ratings from reviewers R1–R4 would
//! significantly differ from the aggregation without considering R4".
//! [`aggregate_ratings`] detects dependent raters and discounts their
//! ratings, recovering the unbiased consensus; the naive mean is reported
//! alongside for comparison.

use serde::{Deserialize, Serialize};

use sailing_core::dissim::{detect_all, DissimParams, RatingView};
use sailing_core::report::PairDependence;
use sailing_model::{ObjectId, SourceId};

/// Aggregated ratings with and without dependence awareness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatingAggregate {
    /// Per-item naive mean rating.
    pub naive_mean: Vec<Option<f64>>,
    /// Per-item dependence-aware mean (dependent raters down-weighted).
    pub aware_mean: Vec<Option<f64>>,
    /// Per-rater weight used by the aware mean (1.0 = fully independent).
    pub rater_weights: Vec<f64>,
    /// The dependences the weights are based on.
    pub dependences: Vec<PairDependence>,
}

impl RatingAggregate {
    /// Mean absolute difference between the two aggregates over items where
    /// both exist — how much the bias moved the naive consensus.
    pub fn mean_shift(&self) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for (a, b) in self.naive_mean.iter().zip(&self.aware_mean) {
            if let (Some(a), Some(b)) = (a, b) {
                total += (a - b).abs();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Mean squared error of an aggregate against a reference consensus.
    pub fn mse_against(values: &[Option<f64>], reference: &[Option<f64>]) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for (v, r) in values.iter().zip(reference) {
            if let (Some(v), Some(r)) = (v, r) {
                total += (v - r).powi(2);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

/// Aggregates ratings, discounting raters detected as dependent.
///
/// A rater's weight is `Π (1 − P(dep with r'))` over all *other* raters it
/// was flagged against — a pure copier or inverter ends up near zero, a
/// clean rater at 1.
pub fn aggregate_ratings(view: &RatingView, params: &DissimParams) -> RatingAggregate {
    let dependences = detect_all(view, params);
    let n = view.num_sources();
    let mut rater_weights = vec![1.0f64; n];
    for dep in &dependences {
        if dep.probability < 0.5 {
            continue;
        }
        // The *dependent* side carries the discount; when the direction is
        // unresolved both sides share it.
        let (wa, wb) = match dep.dependent_source() {
            Some(s) if s == dep.a => (dep.probability, 0.0),
            Some(_) => (0.0, dep.probability),
            None => (dep.probability / 2.0, dep.probability / 2.0),
        };
        rater_weights[dep.a.index()] *= 1.0 - wa;
        rater_weights[dep.b.index()] *= 1.0 - wb;
    }

    let mut naive_mean = Vec::with_capacity(view.num_objects());
    let mut aware_mean = Vec::with_capacity(view.num_objects());
    for idx in 0..view.num_objects() {
        let item = ObjectId::from_index(idx);
        let ratings = view.ratings_on(item);
        if ratings.is_empty() {
            naive_mean.push(None);
            aware_mean.push(None);
            continue;
        }
        let naive = ratings.iter().map(|&(_, r)| r as f64).sum::<f64>() / ratings.len() as f64;
        naive_mean.push(Some(naive));
        let wsum: f64 = ratings.iter().map(|&(s, _)| rater_weights[s.index()]).sum();
        if wsum < 1e-9 {
            aware_mean.push(Some(naive));
        } else {
            let weighted: f64 = ratings
                .iter()
                .map(|&(s, r)| rater_weights[s.index()] * r as f64)
                .sum();
            aware_mean.push(Some(weighted / wsum));
        }
    }

    RatingAggregate {
        naive_mean,
        aware_mean,
        rater_weights,
        dependences,
    }
}

/// The rating a dependence-aware recommender would show for one item, on
/// the original scale.
pub fn aware_rating(aggregate: &RatingAggregate, item: ObjectId) -> Option<f64> {
    aggregate.aware_mean.get(item.index()).copied().flatten()
}

/// Raters whose weight fell below `threshold` — the ones a recommendation
/// system should treat as non-independent.
pub fn discounted_raters(aggregate: &RatingAggregate, threshold: f64) -> Vec<SourceId> {
    aggregate
        .rater_weights
        .iter()
        .enumerate()
        .filter(|&(_, &w)| w < threshold)
        .map(|(i, _)| SourceId::from_index(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_datagen::ratings::{inverter_world, RatingWorld};
    use sailing_model::fixtures;

    #[test]
    fn table2_shift_is_visible() {
        // Example 2.2: the naive aggregate differs from the aggregate
        // without R4; the aware aggregate must move toward the latter.
        let store = fixtures::table2();
        let view = RatingView::from_store(&store, 2);
        let agg = aggregate_ratings(&view, &DissimParams::default());
        assert_eq!(agg.naive_mean.len(), 3);
        assert!(agg.naive_mean.iter().all(Option::is_some));
        // With only three movies the (R1, R4) dissimilarity is detectable
        // but its *direction* is not — the paper resolves it from external
        // knowledge of R4's motives. What must hold: the discount lands on
        // the R1/R4 pair, never on the independent reviewers R2 and R3.
        let r2 = store.source_id("R2").unwrap();
        let r3 = store.source_id("R3").unwrap();
        assert_eq!(agg.rater_weights[r2.index()], 1.0);
        assert_eq!(agg.rater_weights[r3.index()], 1.0);
        let r1 = store.source_id("R1").unwrap();
        let r4 = store.source_id("R4").unwrap();
        assert!(
            agg.rater_weights[r1.index()] < 1.0 || agg.rater_weights[r4.index()] < 1.0,
            "the flagged pair must lose weight: {:?}",
            agg.rater_weights
        );
        // And the aggregate visibly shifts (Example 2.2's point).
        assert!(agg.mean_shift() > 0.0);
    }

    #[test]
    fn inverter_at_scale_is_discounted_and_consensus_recovered() {
        let config = inverter_world(300, 8, 2, 77);
        let world = RatingWorld::generate(&config);
        let agg = aggregate_ratings(&world.view, &DissimParams::default());
        // The two inverters (raters 9 and 10) must lose nearly all weight.
        for inverter in [9usize, 10] {
            assert!(
                agg.rater_weights[inverter] < 0.3,
                "inverter weight {}",
                agg.rater_weights[inverter]
            );
        }
        // Honest followers keep most of theirs.
        for follower in 0..8 {
            assert!(
                agg.rater_weights[follower] > 0.6,
                "follower {follower} weight {}",
                agg.rater_weights[follower]
            );
        }
        // The aware mean must track the unbiased consensus better than the
        // naive mean does.
        let unbiased = world.unbiased_consensus();
        let naive_mse = RatingAggregate::mse_against(&agg.naive_mean, &unbiased);
        let aware_mse = RatingAggregate::mse_against(&agg.aware_mean, &unbiased);
        assert!(
            aware_mse < naive_mse,
            "aware {aware_mse} must beat naive {naive_mse}"
        );
    }

    #[test]
    fn mean_shift_zero_without_dependents() {
        let config = inverter_world(100, 5, 0, 3);
        let world = RatingWorld::generate(&config);
        let agg = aggregate_ratings(&world.view, &DissimParams::default());
        assert!(agg.mean_shift() < 0.1, "shift {}", agg.mean_shift());
    }

    #[test]
    fn discounted_raters_listing() {
        let config = inverter_world(300, 8, 1, 5);
        let world = RatingWorld::generate(&config);
        let agg = aggregate_ratings(&world.view, &DissimParams::default());
        let discounted = discounted_raters(&agg, 0.3);
        assert!(discounted.contains(&SourceId(9)));
        assert!(!discounted.contains(&SourceId(0)));
        assert!(aware_rating(&agg, ObjectId(0)).is_some());
        assert_eq!(aware_rating(&agg, ObjectId(5000)), None);
    }

    #[test]
    fn empty_view() {
        let view = RatingView::from_triples(0, 0, 2, Vec::new());
        let agg = aggregate_ratings(&view, &DissimParams::default());
        assert!(agg.naive_mean.is_empty());
        assert_eq!(agg.mean_shift(), 0.0);
    }
}
