//! # sailing-fusion
//!
//! Data fusion with awareness of source dependence (Section 4, *Data
//! fusion*): "when deciding the truth from conflicting values, we would like
//! to ignore values that are copied (but not necessarily the values
//! independently provided by copiers)".
//!
//! * [`strategy`] — the fusion strategies compared throughout the
//!   experiments: naive voting, accuracy-weighted voting (ACCU), and
//!   dependence-aware fusion (ACCU-COPY);
//! * [`probdb`] — probabilistic-database output: instead of one hard value
//!   per object, a distribution of possible values, with
//!   independence-assuming vs dependence-aware probability combination;
//! * [`ratings`] — opinion aggregation that discounts dependent raters,
//!   recovering the unbiased consensus of Table 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod probdb;
pub mod ratings;
pub mod strategy;

pub use probdb::ProbabilisticDatabase;
pub use ratings::{aggregate_ratings, RatingAggregate};
pub use sailing_core::SailingError;
pub use strategy::{fuse, fuse_warm, fuse_with, FusionOutcome, FusionStrategy};
