//! Conflict-resolution strategies.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sailing_core::truth::ValueProbabilities;
use sailing_core::{AccuCopy, DetectionParams, PairDependence};
use sailing_model::{ObjectId, SnapshotView, ValueId};

/// Which fusion algorithm to run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FusionStrategy {
    /// Majority voting — the paper's inadequate baseline.
    NaiveVote,
    /// Accuracy-weighted voting without dependence awareness (ACCU).
    AccuracyVote,
    /// The full dependence-aware pipeline (ACCU-COPY).
    DependenceAware(DetectionParams),
}

impl FusionStrategy {
    /// The default dependence-aware strategy.
    pub fn dependence_aware() -> Self {
        FusionStrategy::DependenceAware(DetectionParams::default())
    }

    /// Short display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            FusionStrategy::NaiveVote => "naive",
            FusionStrategy::AccuracyVote => "accu",
            FusionStrategy::DependenceAware(_) => "accu-copy",
        }
    }
}

/// What fusion produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FusionOutcome {
    /// Hard decision per object.
    pub decisions: HashMap<ObjectId, ValueId>,
    /// Posterior value distributions (empty for naive voting, which has no
    /// calibrated probabilities — use [`crate::ProbabilisticDatabase`] for shares).
    pub probabilities: ValueProbabilities,
    /// Estimated source accuracies (empty for naive voting).
    pub accuracies: Vec<f64>,
    /// Detected dependences (empty unless dependence-aware).
    pub dependences: Vec<PairDependence>,
    /// Strategy name, for reporting.
    pub strategy: String,
}

/// Runs a fusion strategy over a snapshot.
pub fn fuse(snapshot: &SnapshotView, strategy: &FusionStrategy) -> FusionOutcome {
    match strategy {
        FusionStrategy::NaiveVote => FusionOutcome {
            decisions: sailing_core::vote::naive_vote(snapshot),
            probabilities: ValueProbabilities::default(),
            accuracies: Vec::new(),
            dependences: Vec::new(),
            strategy: strategy.name().to_string(),
        },
        FusionStrategy::AccuracyVote => {
            let result = AccuCopy::baseline().run(snapshot);
            FusionOutcome {
                decisions: result.decisions(),
                probabilities: result.probabilities,
                accuracies: result.accuracies,
                dependences: Vec::new(),
                strategy: strategy.name().to_string(),
            }
        }
        FusionStrategy::DependenceAware(params) => {
            let pipeline = AccuCopy::new(params.clone()).expect("invalid fusion params");
            let result = pipeline.run(snapshot);
            FusionOutcome {
                decisions: result.decisions(),
                probabilities: result.probabilities,
                accuracies: result.accuracies,
                dependences: result.dependences,
                strategy: strategy.name().to_string(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_model::fixtures;

    #[test]
    fn strategy_names() {
        assert_eq!(FusionStrategy::NaiveVote.name(), "naive");
        assert_eq!(FusionStrategy::AccuracyVote.name(), "accu");
        assert_eq!(FusionStrategy::dependence_aware().name(), "accu-copy");
    }

    #[test]
    fn table1_strategy_ladder() {
        // The paper's headline: naive < dependence-aware on Table 1.
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let naive = fuse(&snap, &FusionStrategy::NaiveVote);
        let aware = fuse(&snap, &FusionStrategy::dependence_aware());
        let p_naive = truth.decision_precision(&naive.decisions).unwrap();
        let p_aware = truth.decision_precision(&aware.decisions).unwrap();
        assert!((p_naive - 0.4).abs() < 1e-9);
        assert_eq!(p_aware, 1.0);
        assert!(!aware.dependences.is_empty());
        assert!(naive.dependences.is_empty());
    }

    #[test]
    fn accu_reports_accuracies_but_no_dependences() {
        let (store, _) = fixtures::table1();
        let outcome = fuse(&store.snapshot(), &FusionStrategy::AccuracyVote);
        assert_eq!(outcome.accuracies.len(), 5);
        assert!(outcome.dependences.is_empty());
        assert_eq!(outcome.decisions.len(), 5);
    }

    #[test]
    fn outcome_serializes() {
        let (store, _) = fixtures::table1();
        let outcome = fuse(&store.snapshot(), &FusionStrategy::dependence_aware());
        let json = serde_json::to_string(&outcome).unwrap();
        let back: FusionOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back.decisions.len(), outcome.decisions.len());
        assert_eq!(back.strategy, "accu-copy");
    }
}
