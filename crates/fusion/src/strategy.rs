//! Conflict-resolution strategies.
//!
//! [`FusionStrategy`] names the rungs of the paper's experiment ladder and
//! resolves each to a pluggable [`TruthDiscovery`] object from
//! `sailing-core`; [`fuse`] is a thin driver over that trait rather than a
//! re-implementation per strategy.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Content, Deserialize, Error as SerdeError, Serialize};

use sailing_core::truth::ValueProbabilities;
use sailing_core::{
    Accu, AccuCopy, DetectionParams, NaiveVote, PairDependence, PipelineResult, SailingError,
    TruthDiscovery,
};
use sailing_model::{ObjectId, SnapshotView, ValueId};

/// Which fusion algorithm to run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FusionStrategy {
    /// Majority voting — the paper's inadequate baseline.
    NaiveVote,
    /// Accuracy-weighted voting without dependence awareness (ACCU).
    AccuracyVote,
    /// The full dependence-aware pipeline (ACCU-COPY).
    DependenceAware(DetectionParams),
}

impl FusionStrategy {
    /// The default dependence-aware strategy.
    pub fn dependence_aware() -> Self {
        FusionStrategy::DependenceAware(DetectionParams::default())
    }

    /// Short display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            FusionStrategy::NaiveVote => "naive",
            FusionStrategy::AccuracyVote => "accu",
            FusionStrategy::DependenceAware(_) => "accu-copy",
        }
    }

    /// Resolves the named strategy to a pluggable [`TruthDiscovery`]
    /// object, validating any embedded parameters.
    pub fn discovery(&self) -> Result<Box<dyn TruthDiscovery>, SailingError> {
        Ok(match self {
            FusionStrategy::NaiveVote => Box::new(NaiveVote::new()),
            FusionStrategy::AccuracyVote => Box::new(Accu::with_defaults()),
            FusionStrategy::DependenceAware(params) => Box::new(AccuCopy::new(params.clone())?),
        })
    }
}

/// What fusion produced.
///
/// The posterior payload (probabilities, accuracies, dependences) is a
/// shared [`Arc`] over the discovery [`PipelineResult`]: deriving an
/// outcome from a cached analysis shares every distribution instead of
/// deep-copying them — only the small per-object decision map is
/// materialised per outcome. Serialization is unchanged from the old
/// by-value shape.
#[derive(Debug, Clone)]
pub struct FusionOutcome {
    /// Hard decision per object.
    pub decisions: HashMap<ObjectId, ValueId>,
    /// Strategy name, for reporting.
    pub strategy: String,
    result: Arc<PipelineResult>,
}

impl FusionOutcome {
    /// Packages a discovery result under a strategy name.
    pub fn from_result(result: PipelineResult, strategy: &str) -> Self {
        Self::from_shared(Arc::new(result), strategy)
    }

    /// Packages an already-shared discovery result without copying it —
    /// the path the `sailing` facade's cached analysis takes.
    pub fn from_shared(result: Arc<PipelineResult>, strategy: &str) -> Self {
        FusionOutcome {
            decisions: result.decisions(),
            strategy: strategy.to_string(),
            result,
        }
    }

    /// Posterior value distributions (naive voting reports raw vote shares
    /// rather than calibrated probabilities — use
    /// [`crate::ProbabilisticDatabase`] for downstream probability math).
    pub fn probabilities(&self) -> &ValueProbabilities {
        &self.result.probabilities
    }

    /// Estimated source accuracies (empty for naive voting).
    pub fn accuracies(&self) -> &[f64] {
        &self.result.accuracies
    }

    /// Detected dependences (empty unless dependence-aware).
    pub fn dependences(&self) -> &[PairDependence] {
        &self.result.dependences
    }

    /// The underlying (shared) pipeline result.
    pub fn result(&self) -> &PipelineResult {
        &self.result
    }

    /// The hard decisions in ascending object order — iterate this (not
    /// the `decisions` hash map, whose order is randomized per process)
    /// when emitting reports that must be reproducible run to run.
    pub fn decisions_sorted(&self) -> std::collections::BTreeMap<ObjectId, ValueId> {
        self.result.decisions_sorted()
    }
}

// Wire-compatible with the old by-value field shape: `{"decisions": ...,
// "probabilities": ..., "accuracies": ..., "dependences": ..., "strategy":
// ...}` — the `Arc` is an in-memory sharing detail.
impl Serialize for FusionOutcome {
    fn serialize(&self) -> Content {
        Content::Map(vec![
            (
                Content::Str("decisions".to_string()),
                self.decisions.serialize(),
            ),
            (
                Content::Str("probabilities".to_string()),
                self.result.probabilities.serialize(),
            ),
            (
                Content::Str("accuracies".to_string()),
                self.result.accuracies.serialize(),
            ),
            (
                Content::Str("dependences".to_string()),
                self.result.dependences.serialize(),
            ),
            (
                Content::Str("strategy".to_string()),
                self.strategy.serialize(),
            ),
        ])
    }
}

impl Deserialize for FusionOutcome {
    fn deserialize(content: &Content) -> Result<Self, SerdeError> {
        let field = |name: &str| {
            content
                .field(name)
                .ok_or_else(|| SerdeError::msg(format!("FusionOutcome: missing field `{name}`")))
        };
        let result = PipelineResult {
            probabilities: ValueProbabilities::deserialize(field("probabilities")?)?,
            accuracies: Vec::deserialize(field("accuracies")?)?,
            dependences: Vec::deserialize(field("dependences")?)?,
            // The wire format never carried loop metadata; report the
            // conservative unknown (no iterations recorded, convergence
            // not claimed) rather than fabricating a settled run.
            iterations: 0,
            converged: false,
            termination: sailing_core::Termination::from_converged(false),
        };
        Ok(FusionOutcome {
            decisions: HashMap::deserialize(field("decisions")?)?,
            strategy: String::deserialize(field("strategy")?)?,
            result: Arc::new(result),
        })
    }
}

/// Runs a fusion strategy over a snapshot.
///
/// # Errors
/// Returns [`SailingError::InvalidParameter`] when the strategy embeds
/// invalid detection parameters.
pub fn fuse(
    snapshot: &SnapshotView,
    strategy: &FusionStrategy,
) -> Result<FusionOutcome, SailingError> {
    let discovery = strategy.discovery()?;
    Ok(fuse_with(snapshot, discovery.as_ref()))
}

/// Runs fusion with an explicit (possibly custom) discovery strategy.
pub fn fuse_with(snapshot: &SnapshotView, discovery: &dyn TruthDiscovery) -> FusionOutcome {
    FusionOutcome::from_result(discovery.discover(snapshot), discovery.name())
}

/// Runs fusion warm-started from a previous epoch's discovery result —
/// the per-epoch driver a timeline walk uses. With `prior = None` this is
/// [`fuse_with`].
pub fn fuse_warm(
    snapshot: &SnapshotView,
    discovery: &dyn TruthDiscovery,
    prior: Option<&PipelineResult>,
) -> FusionOutcome {
    FusionOutcome::from_result(discovery.run_warm(snapshot, prior), discovery.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_model::fixtures;

    #[test]
    fn strategy_names() {
        assert_eq!(FusionStrategy::NaiveVote.name(), "naive");
        assert_eq!(FusionStrategy::AccuracyVote.name(), "accu");
        assert_eq!(FusionStrategy::dependence_aware().name(), "accu-copy");
    }

    #[test]
    fn table1_strategy_ladder() {
        // The paper's headline: naive < dependence-aware on Table 1.
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let naive = fuse(&snap, &FusionStrategy::NaiveVote).unwrap();
        let aware = fuse(&snap, &FusionStrategy::dependence_aware()).unwrap();
        let p_naive = truth.decision_precision(&naive.decisions).unwrap();
        let p_aware = truth.decision_precision(&aware.decisions).unwrap();
        assert!((p_naive - 0.4).abs() < 1e-9);
        assert_eq!(p_aware, 1.0);
        assert!(!aware.dependences().is_empty());
        assert!(naive.dependences().is_empty());
    }

    #[test]
    fn accu_reports_accuracies_but_no_dependences() {
        let (store, _) = fixtures::table1();
        let outcome = fuse(&store.snapshot(), &FusionStrategy::AccuracyVote).unwrap();
        assert_eq!(outcome.accuracies().len(), 5);
        assert!(outcome.dependences().is_empty());
        assert_eq!(outcome.decisions.len(), 5);
    }

    #[test]
    fn invalid_params_surface_as_typed_errors() {
        let (store, _) = fixtures::table1();
        let bad = FusionStrategy::DependenceAware(DetectionParams {
            copy_rate: 2.0,
            ..DetectionParams::default()
        });
        let err = fuse(&store.snapshot(), &bad).unwrap_err();
        assert!(matches!(
            err,
            SailingError::InvalidParameter {
                param: "copy_rate",
                ..
            }
        ));
    }

    #[test]
    fn fuse_with_accepts_custom_strategies() {
        let (store, truth) = fixtures::table1();
        let outcome = fuse_with(&store.snapshot(), &AccuCopy::with_defaults());
        assert_eq!(outcome.strategy, "accu-copy");
        assert_eq!(truth.decision_precision(&outcome.decisions), Some(1.0));
    }

    #[test]
    fn decisions_sorted_matches_the_hash_map_in_order() {
        let (store, _) = fixtures::table1();
        let outcome = fuse(&store.snapshot(), &FusionStrategy::dependence_aware()).unwrap();
        let sorted = outcome.decisions_sorted();
        assert_eq!(sorted.len(), outcome.decisions.len());
        for (o, v) in &sorted {
            assert_eq!(outcome.decisions.get(o), Some(v));
        }
        let objects: Vec<_> = sorted.keys().copied().collect();
        assert!(objects.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fuse_warm_agrees_with_cold_fusion() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let strategy = AccuCopy::with_defaults();
        let cold = fuse_with(&snap, &strategy);
        let warm = fuse_warm(&snap, &strategy, Some(cold.result()));
        assert_eq!(warm.decisions, cold.decisions);
        assert!(warm.result().iterations < cold.result().iterations);
        assert_eq!(truth.decision_precision(&warm.decisions), Some(1.0));
        // No prior → exactly the cold driver.
        let none = fuse_warm(&snap, &strategy, None);
        assert_eq!(none.result().iterations, cold.result().iterations);
    }

    #[test]
    fn outcome_serializes() {
        let (store, _) = fixtures::table1();
        let outcome = fuse(&store.snapshot(), &FusionStrategy::dependence_aware()).unwrap();
        let json = serde_json::to_string(&outcome).unwrap();
        let back: FusionOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back.decisions.len(), outcome.decisions.len());
        assert_eq!(back.strategy, "accu-copy");
    }
}
