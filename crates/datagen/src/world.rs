//! Snapshot worlds: Table 1 at arbitrary scale.
//!
//! A world has `num_objects` data items, each with one true value and
//! `domain_size − 1` plausible false values. Sources follow a
//! [`SourceBehavior`]: honest-but-imperfect independents, or copiers that
//! replicate another source's assertions (possibly partially and with
//! copy-time mutations). The generator returns the observable
//! [`SnapshotView`] *and* the planted truth/dependences for scoring.

use rand::seq::SliceRandom;
use rand::Rng as _;
use serde::{Deserialize, Serialize};

use sailing_model::{GroundTruth, ObjectId, SailingError, SnapshotView, SourceId, ValueId};

/// How a synthetic source produces its values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceBehavior {
    /// Provides its own values: the true value with probability `accuracy`,
    /// otherwise a uniformly chosen false value. Covers `coverage` objects
    /// (chosen uniformly).
    Independent {
        /// Probability each covered object gets the true value.
        accuracy: f64,
        /// Number of objects covered.
        coverage: usize,
    },
    /// Copies from source `original` (an index into the behaviour list,
    /// which must be smaller than this source's own index).
    Copier {
        /// The copied source's index.
        original: usize,
        /// Fraction of the original's assertions that are copied.
        copy_fraction: f64,
        /// Probability a copied value is mutated to a random false value
        /// (the `S5` behaviour in Table 1).
        mutation_rate: f64,
        /// Accuracy of the copier's *own* assertions on objects it covers
        /// beyond the copied ones.
        own_accuracy: f64,
        /// Number of additional (non-copied) objects it covers on its own.
        own_coverage: usize,
    },
}

impl SourceBehavior {
    /// `true` for copier behaviours.
    pub fn is_copier(&self) -> bool {
        matches!(self, SourceBehavior::Copier { .. })
    }

    /// The copied source's index, for copiers.
    pub fn original(&self) -> Option<usize> {
        match self {
            SourceBehavior::Copier { original, .. } => Some(*original),
            SourceBehavior::Independent { .. } => None,
        }
    }
}

/// Configuration of a snapshot world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of data items.
    pub num_objects: usize,
    /// Values per object (1 true + `domain_size − 1` false).
    pub domain_size: usize,
    /// Source behaviours, in order; copiers must reference earlier indices.
    pub sources: Vec<SourceBehavior>,
    /// RNG seed.
    pub seed: u64,
}

impl WorldConfig {
    /// A convenient mixed world: `independents` honest sources with
    /// accuracies spread over `accuracy_range`, plus `copiers` sources each
    /// copying a random earlier independent in full.
    pub fn mixed(
        num_objects: usize,
        independents: usize,
        copiers: usize,
        accuracy_range: (f64, f64),
        seed: u64,
    ) -> Self {
        assert!(independents > 0);
        let mut sources = Vec::with_capacity(independents + copiers);
        for i in 0..independents {
            let t = if independents == 1 {
                0.5
            } else {
                i as f64 / (independents - 1) as f64
            };
            sources.push(SourceBehavior::Independent {
                accuracy: accuracy_range.0 + t * (accuracy_range.1 - accuracy_range.0),
                coverage: num_objects,
            });
        }
        for j in 0..copiers {
            sources.push(SourceBehavior::Copier {
                original: j % independents,
                copy_fraction: 1.0,
                mutation_rate: 0.02,
                own_accuracy: 0.5,
                own_coverage: 0,
            });
        }
        Self {
            num_objects,
            domain_size: 10,
            sources,
            seed,
        }
    }

    /// The scalability benchmark's *specialist* world: each source covers a
    /// random `coverage`-sized slice of `num_objects` objects, so most
    /// pairs share little (candidate pruning's best case, and the realistic
    /// one per Example 4.1's coverage skew). Every tenth source is a full
    /// copier of its predecessor, planting detectable dependences.
    pub fn specialist(num_sources: usize, num_objects: usize, coverage: usize, seed: u64) -> Self {
        let mut sources = Vec::with_capacity(num_sources);
        for i in 0..num_sources {
            if i % 10 == 9 {
                sources.push(SourceBehavior::Copier {
                    original: i - 1,
                    copy_fraction: 1.0,
                    mutation_rate: 0.02,
                    own_accuracy: 0.6,
                    own_coverage: 0,
                });
            } else {
                sources.push(SourceBehavior::Independent {
                    accuracy: 0.5 + 0.4 * ((i % 7) as f64 / 6.0),
                    coverage,
                });
            }
        }
        Self {
            num_objects,
            domain_size: 10,
            sources,
            seed,
        }
    }

    /// Checks structural validity (copier references, ranges).
    pub fn validate(&self) -> Result<(), SailingError> {
        let err = |reason: String| SailingError::config("WorldConfig", reason);
        if self.num_objects == 0 {
            return Err(err("num_objects must be positive".into()));
        }
        if self.domain_size < 2 {
            return Err(err("domain_size must be at least 2".into()));
        }
        for (i, s) in self.sources.iter().enumerate() {
            match s {
                SourceBehavior::Independent { accuracy, coverage } => {
                    if !(0.0..=1.0).contains(accuracy) {
                        return Err(err(format!(
                            "source {i}: accuracy {accuracy} outside [0,1]"
                        )));
                    }
                    if *coverage == 0 || *coverage > self.num_objects {
                        return Err(err(format!("source {i}: coverage {coverage} out of range")));
                    }
                }
                SourceBehavior::Copier {
                    original,
                    copy_fraction,
                    mutation_rate,
                    own_accuracy,
                    ..
                } => {
                    if *original >= i {
                        return Err(err(format!(
                            "source {i}: copier must reference an earlier source, got {original}"
                        )));
                    }
                    for (name, p) in [
                        ("copy_fraction", copy_fraction),
                        ("mutation_rate", mutation_rate),
                        ("own_accuracy", own_accuracy),
                    ] {
                        if !(0.0..=1.0).contains(p) {
                            return Err(err(format!("source {i}: {name} {p} outside [0,1]")));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// A generated snapshot world.
#[derive(Debug, Clone)]
pub struct SnapshotWorld {
    /// The observable data.
    pub snapshot: SnapshotView,
    /// The planted truth.
    pub truth: GroundTruth,
    /// The behaviours that produced each source.
    pub behaviors: Vec<SourceBehavior>,
    /// The planted dependent pairs `(copier, original)`.
    pub planted_pairs: Vec<(SourceId, SourceId)>,
}

impl SnapshotWorld {
    /// Generates the world.
    ///
    /// # Panics
    /// Panics when the configuration is invalid ([`WorldConfig::validate`]).
    pub fn generate(config: &WorldConfig) -> Self {
        config.validate().expect("invalid world config");
        let mut rng = crate::rng(config.seed);
        let num_sources = config.sources.len();
        let num_objects = config.num_objects;

        // Value ids: object o's candidate values are
        // [o*domain .. o*domain+domain); index 0 is the true one.
        let value_of = |o: usize, k: usize| ValueId::from_index(o * config.domain_size + k);
        let truth = GroundTruth::from_pairs(
            (0..num_objects).map(|o| (ObjectId::from_index(o), value_of(o, 0))),
        );

        let mut assertions: Vec<Vec<(ObjectId, ValueId)>> = Vec::with_capacity(num_sources);
        let mut planted_pairs = Vec::new();
        let all_objects: Vec<usize> = (0..num_objects).collect();

        for (i, behavior) in config.sources.iter().enumerate() {
            match behavior {
                SourceBehavior::Independent { accuracy, coverage } => {
                    let mut objs = all_objects.clone();
                    objs.shuffle(&mut rng);
                    objs.truncate(*coverage);
                    let mut mine = Vec::with_capacity(*coverage);
                    for &o in &objs {
                        let k = if rng.gen::<f64>() < *accuracy {
                            0
                        } else {
                            rng.gen_range(1..config.domain_size)
                        };
                        mine.push((ObjectId::from_index(o), value_of(o, k)));
                    }
                    mine.sort_by_key(|&(o, _)| o);
                    assertions.push(mine);
                }
                SourceBehavior::Copier {
                    original,
                    copy_fraction,
                    mutation_rate,
                    own_accuracy,
                    own_coverage,
                } => {
                    planted_pairs.push((SourceId::from_index(i), SourceId::from_index(*original)));
                    let source_assertions = assertions[*original].clone();
                    let mut mine: Vec<(ObjectId, ValueId)> = Vec::new();
                    let mut covered = vec![false; num_objects];
                    for (o, v) in source_assertions {
                        if rng.gen::<f64>() >= *copy_fraction {
                            continue;
                        }
                        let v = if rng.gen::<f64>() < *mutation_rate {
                            value_of(o.index(), rng.gen_range(1..config.domain_size))
                        } else {
                            v
                        };
                        covered[o.index()] = true;
                        mine.push((o, v));
                    }
                    // Own (independent) additional coverage.
                    let mut free: Vec<usize> = (0..num_objects).filter(|&o| !covered[o]).collect();
                    free.shuffle(&mut rng);
                    free.truncate(*own_coverage);
                    for o in free {
                        let k = if rng.gen::<f64>() < *own_accuracy {
                            0
                        } else {
                            rng.gen_range(1..config.domain_size)
                        };
                        mine.push((ObjectId::from_index(o), value_of(o, k)));
                    }
                    mine.sort_by_key(|&(o, _)| o);
                    assertions.push(mine);
                }
            }
        }

        // Copiers of the same original are mutually dependent too (their
        // data is near-identical); count every within-cluster pair.
        let mut root = (0..num_sources).collect::<Vec<usize>>();
        for (i, b) in config.sources.iter().enumerate() {
            if let Some(orig) = b.original() {
                root[i] = root[orig];
            }
        }
        let mut groups: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, &r) in root.iter().enumerate() {
            groups.entry(r).or_default().push(i);
        }
        planted_pairs.clear();
        let mut group_keys: Vec<usize> = groups.keys().copied().collect();
        group_keys.sort_unstable();
        for k in group_keys {
            let members = &groups[&k];
            for (x, &a) in members.iter().enumerate() {
                for &b in &members[x + 1..] {
                    planted_pairs.push((SourceId::from_index(a), SourceId::from_index(b)));
                }
            }
        }

        let triples = assertions.iter().enumerate().flat_map(|(s, items)| {
            items
                .iter()
                .map(move |&(o, v)| (SourceId::from_index(s), o, v))
        });
        let snapshot = SnapshotView::from_triples(num_sources, num_objects, triples);
        Self {
            snapshot,
            truth,
            behaviors: config.sources.clone(),
            planted_pairs,
        }
    }

    /// Scores a detected pair list against the planted pairs: returns
    /// `(precision, recall)` treating pairs as unordered.
    pub fn pair_detection_quality(&self, detected: &[(SourceId, SourceId)]) -> (f64, f64) {
        let canon = |&(a, b): &(SourceId, SourceId)| if a < b { (a, b) } else { (b, a) };
        let planted: std::collections::HashSet<_> = self.planted_pairs.iter().map(canon).collect();
        let detected: std::collections::HashSet<_> = detected.iter().map(canon).collect();
        let hits = detected.intersection(&planted).count();
        let precision = if detected.is_empty() {
            1.0
        } else {
            hits as f64 / detected.len() as f64
        };
        let recall = if planted.is_empty() {
            1.0
        } else {
            hits as f64 / planted.len() as f64
        };
        (precision, recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_core::AccuCopy;

    fn small_world(seed: u64) -> SnapshotWorld {
        SnapshotWorld::generate(&WorldConfig::mixed(100, 5, 3, (0.6, 0.95), seed))
    }

    #[test]
    fn generation_is_deterministic() {
        let w1 = small_world(7);
        let w2 = small_world(7);
        for s in 0..w1.snapshot.num_sources() {
            let sid = SourceId::from_index(s);
            for o in 0..w1.snapshot.num_objects() {
                let oid = ObjectId::from_index(o);
                assert_eq!(w1.snapshot.value(sid, oid), w2.snapshot.value(sid, oid));
            }
        }
    }

    #[test]
    fn independent_accuracy_matches_spec() {
        let config = WorldConfig {
            num_objects: 2000,
            domain_size: 10,
            sources: vec![SourceBehavior::Independent {
                accuracy: 0.7,
                coverage: 2000,
            }],
            seed: 1,
        };
        let w = SnapshotWorld::generate(&config);
        let acc = w.truth.accuracy_of(&w.snapshot, SourceId(0)).unwrap();
        assert!((acc - 0.7).abs() < 0.05, "empirical accuracy {acc}");
    }

    #[test]
    fn copier_replicates_original() {
        let config = WorldConfig {
            num_objects: 500,
            domain_size: 10,
            sources: vec![
                SourceBehavior::Independent {
                    accuracy: 0.8,
                    coverage: 500,
                },
                SourceBehavior::Copier {
                    original: 0,
                    copy_fraction: 1.0,
                    mutation_rate: 0.0,
                    own_accuracy: 0.5,
                    own_coverage: 0,
                },
            ],
            seed: 3,
        };
        let w = SnapshotWorld::generate(&config);
        let same = w
            .snapshot
            .overlap(SourceId(0), SourceId(1))
            .filter(|&(_, a, b)| a == b)
            .count();
        assert_eq!(same, 500);
        assert_eq!(w.planted_pairs, vec![(SourceId(0), SourceId(1))]);
    }

    #[test]
    fn partial_copier_covers_both_kinds() {
        let config = WorldConfig {
            num_objects: 400,
            domain_size: 10,
            sources: vec![
                SourceBehavior::Independent {
                    accuracy: 0.9,
                    coverage: 200,
                },
                SourceBehavior::Copier {
                    original: 0,
                    copy_fraction: 0.5,
                    mutation_rate: 0.0,
                    own_accuracy: 0.7,
                    own_coverage: 100,
                },
            ],
            seed: 5,
        };
        let w = SnapshotWorld::generate(&config);
        let copier_cov = w.snapshot.coverage(SourceId(1));
        assert!(
            copier_cov > 120 && copier_cov <= 220,
            "coverage {copier_cov}"
        );
        // Some private, some shared.
        let shared = w.snapshot.overlap_size(SourceId(0), SourceId(1));
        assert!(shared > 50);
        assert!(copier_cov > shared - 50);
    }

    #[test]
    fn accu_copy_detects_planted_copiers_at_scale() {
        let w = small_world(11);
        let result = AccuCopy::with_defaults().run(&w.snapshot);
        let detected: Vec<_> = result
            .dependent_pairs(0.7)
            .iter()
            .map(|p| (p.a, p.b))
            .collect();
        let (precision, recall) = w.pair_detection_quality(&detected);
        assert!(
            precision > 0.7 && recall > 0.7,
            "precision {precision}, recall {recall}, detected {detected:?}, planted {:?}",
            w.planted_pairs
        );
    }

    #[test]
    fn fusion_beats_naive_with_copiers() {
        // Low-accuracy original with many copiers: naive voting follows the
        // cluster, dependence-aware fusion resists. Note the independents
        // must retain *some* collective signal — a copier coalition that
        // forms the plurality on every object with almost no independent
        // corroboration is information-theoretically unrecoverable (the
        // paper's Example 3.1 reasoning presumes truth is identifiable).
        let mut sources = vec![
            SourceBehavior::Independent {
                accuracy: 0.9,
                coverage: 150,
            },
            SourceBehavior::Independent {
                accuracy: 0.85,
                coverage: 150,
            },
            SourceBehavior::Independent {
                accuracy: 0.8,
                coverage: 150,
            },
            SourceBehavior::Independent {
                accuracy: 0.75,
                coverage: 150,
            },
            SourceBehavior::Independent {
                accuracy: 0.4,
                coverage: 150,
            },
        ];
        for _ in 0..4 {
            sources.push(SourceBehavior::Copier {
                original: 4,
                copy_fraction: 1.0,
                mutation_rate: 0.02,
                own_accuracy: 0.5,
                own_coverage: 0,
            });
        }
        let w = SnapshotWorld::generate(&WorldConfig {
            num_objects: 150,
            domain_size: 10,
            sources,
            seed: 13,
        });
        let naive = sailing_core::vote::naive_vote(&w.snapshot);
        let naive_precision = w.truth.decision_precision(&naive).unwrap();
        let aware = AccuCopy::with_defaults().run(&w.snapshot);
        let aware_precision = w.truth.decision_precision(&aware.decisions()).unwrap();
        assert!(
            aware_precision > naive_precision + 0.1,
            "aware {aware_precision} vs naive {naive_precision}"
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = WorldConfig::mixed(10, 2, 1, (0.5, 0.9), 0);
        c.num_objects = 0;
        assert!(c.validate().is_err());

        let mut c = WorldConfig::mixed(10, 2, 1, (0.5, 0.9), 0);
        c.domain_size = 1;
        assert!(c.validate().is_err());

        let c = WorldConfig {
            num_objects: 10,
            domain_size: 5,
            sources: vec![SourceBehavior::Copier {
                original: 0,
                copy_fraction: 1.0,
                mutation_rate: 0.0,
                own_accuracy: 0.5,
                own_coverage: 0,
            }],
            seed: 0,
        };
        assert!(c.validate().is_err(), "copier cannot reference itself");

        let c = WorldConfig {
            num_objects: 10,
            domain_size: 5,
            sources: vec![SourceBehavior::Independent {
                accuracy: 1.5,
                coverage: 5,
            }],
            seed: 0,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn pair_quality_scoring() {
        let w = small_world(17);
        let (p, r) = w.pair_detection_quality(&w.planted_pairs.clone());
        assert_eq!((p, r), (1.0, 1.0));
        let (p, r) = w.pair_detection_quality(&[]);
        assert_eq!(p, 1.0);
        assert_eq!(r, 0.0);
        let bogus = vec![(SourceId(0), SourceId(1))];
        let (p, _) = w.pair_detection_quality(&bogus);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn behavior_helpers() {
        let c = SourceBehavior::Copier {
            original: 2,
            copy_fraction: 1.0,
            mutation_rate: 0.0,
            own_accuracy: 0.5,
            own_coverage: 0,
        };
        assert!(c.is_copier());
        assert_eq!(c.original(), Some(2));
        let i = SourceBehavior::Independent {
            accuracy: 0.9,
            coverage: 10,
        };
        assert!(!i.is_copier());
        assert_eq!(i.original(), None);
    }
}
