//! The AbeBooks-like bookstore corpus of Example 4.1.
//!
//! The paper's real crawl had **876 bookstores, 1263 computer-science books
//! and 24364 listings**; 471 bookstore pairs shared at least the same 10
//! books and were "very likely to be dependent"; the number of distinct
//! author lists per book ranged from 1 to 23 (average ≈ 4); coverage per
//! store ranged from 1 to 1095 books; sampled author-list accuracy per
//! store ranged from 0 to 0.92. We cannot crawl 2008's AbeBooks, so this
//! generator produces a corpus matching those published marginals, with the
//! dependence structure *planted* so detection quality can be scored.
//!
//! Copier clusters are sized so the number of within-cluster pairs equals
//! the paper's 471: cluster sizes `[25, 15, 10, 7]` give
//! `C(25,2)+C(15,2)+C(10,2)+C(7,2) = 300+105+45+21 = 471`.

use std::collections::HashMap;

use rand::seq::SliceRandom;
use rand::Rng as _;
use serde::{Deserialize, Serialize};

use sailing_linkage::authors::{parse_author_list, AuthorList};
use sailing_model::{ClaimStore, ClaimStoreBuilder, ObjectId, SourceId, Value, ValueId};

use crate::zipf;
use crate::Rng;

/// Configuration of the bookstore corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BookCorpusConfig {
    /// Number of bookstores (paper: 876).
    pub num_stores: usize,
    /// Number of books (paper: 1263).
    pub num_books: usize,
    /// Target total listings (paper: 24364).
    pub target_listings: usize,
    /// Maximum books per store (paper: 1095).
    pub max_store_coverage: usize,
    /// Author-list accuracy range across stores (paper: 0 to 0.92).
    pub accuracy_range: (f64, f64),
    /// Copier cluster sizes; within-cluster pairs are the planted
    /// dependences (defaults sum to the paper's 471 pairs).
    pub copier_cluster_sizes: Vec<usize>,
    /// Minimum books every cluster pair shares (paper: 10).
    pub min_shared_books: usize,
    /// Probability a copier re-renders a copied author list in its own
    /// format (same authors, different representation).
    pub reformat_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BookCorpusConfig {
    fn default() -> Self {
        Self {
            num_stores: 876,
            num_books: 1263,
            target_listings: 24_364,
            max_store_coverage: 1_095,
            accuracy_range: (0.0, 0.92),
            copier_cluster_sizes: vec![25, 15, 10, 7],
            min_shared_books: 10,
            reformat_rate: 0.3,
            seed: 2009,
        }
    }
}

impl BookCorpusConfig {
    /// A reduced corpus for tests and quick experiments (1/8 scale,
    /// clusters `[9, 6, 4]` → 36+15+6 = 57 planted pairs).
    pub fn small(seed: u64) -> Self {
        Self {
            num_stores: 110,
            num_books: 160,
            target_listings: 3_000,
            max_store_coverage: 140,
            accuracy_range: (0.0, 0.92),
            copier_cluster_sizes: vec![9, 6, 4],
            min_shared_books: 10,
            reformat_rate: 0.3,
            seed,
        }
    }

    /// Number of within-cluster pairs this configuration plants.
    pub fn planted_pair_count(&self) -> usize {
        self.copier_cluster_sizes
            .iter()
            .map(|&k| k * k.saturating_sub(1) / 2)
            .sum()
    }
}

/// One book with its true bibliographic data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Book {
    /// Book title.
    pub title: String,
    /// The true author list (canonical rendering).
    pub true_authors: Vec<String>,
    /// Publisher.
    pub publisher: String,
    /// Publication year.
    pub year: i64,
}

/// One listing: a store's assertion about a book's authors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Listing {
    /// Store index.
    pub store: usize,
    /// Book index.
    pub book: usize,
    /// The raw author-list string as the store renders it.
    pub authors_raw: String,
    /// Whether the underlying author set is correct (before formatting).
    pub is_correct: bool,
}

/// Summary statistics matching the figures Example 4.1 reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Number of stores with at least one listing.
    pub stores: usize,
    /// Number of books with at least one listing.
    pub books: usize,
    /// Total listings.
    pub listings: usize,
    /// Min/mean/max distinct author strings per book.
    pub author_variants: (usize, f64, usize),
    /// Min/max books per store.
    pub coverage: (usize, usize),
    /// Min/max author-list accuracy across stores (sampled on listed books).
    pub accuracy: (f64, f64),
    /// Store pairs sharing at least `min_shared_books` books.
    pub candidate_pairs_min_shared: usize,
}

/// The generated corpus.
#[derive(Debug, Clone)]
pub struct BookCorpus {
    /// Configuration used.
    pub config: BookCorpusConfig,
    /// Books with ground-truth bibliography.
    pub books: Vec<Book>,
    /// Store display names.
    pub store_names: Vec<String>,
    /// Per-store author accuracy (the corruption parameter).
    pub store_accuracy: Vec<f64>,
    /// All listings.
    pub listings: Vec<Listing>,
    /// Planted within-cluster dependent pairs.
    pub planted_pairs: Vec<(SourceId, SourceId)>,
}

const FIRST_NAMES: [&str; 28] = [
    "James", "Mary", "Wei", "Elena", "Rajesh", "Anna", "David", "Laura", "Kenji", "Sara", "Peter",
    "Nadia", "Hugo", "Ines", "Omar", "Julia", "Marco", "Priya", "Ivan", "Grace", "Tomas", "Aisha",
    "Felix", "Noor", "Diego", "Hannah", "Louis", "Mei",
];
const LAST_NAMES: [&str; 32] = [
    "Ullman", "Widom", "Garcia", "Chen", "Kumar", "Rossi", "Novak", "Schmidt", "Tanaka", "Okafor",
    "Johnson", "Martin", "Silva", "Petrov", "Haddad", "Larsen", "Moreau", "Berg", "Costa",
    "Fischer", "Nakamura", "Olsen", "Patel", "Quinn", "Rivera", "Sato", "Tran", "Vargas", "Weiss",
    "Xu", "Yilmaz", "Zhang",
];
const TOPICS: [&str; 18] = [
    "Java",
    "Databases",
    "Compilers",
    "Networks",
    "Algorithms",
    "Operating Systems",
    "Machine Learning",
    "Cryptography",
    "Distributed Systems",
    "Graphics",
    "C++",
    "Python",
    "Information Retrieval",
    "Software Engineering",
    "Data Mining",
    "Computer Architecture",
    "Theory of Computation",
    "Web Programming",
];
const PUBLISHERS: [&str; 8] = [
    "Prentice Hall",
    "Addison-Wesley",
    "O'Reilly",
    "Morgan Kaufmann",
    "Springer",
    "MIT Press",
    "Wiley",
    "McGraw-Hill",
];

fn gen_book(rng: &mut Rng, idx: usize) -> Book {
    let topic = TOPICS[rng.gen_range(0..TOPICS.len())];
    let n_authors = 1 + rng.gen_range(0..4).min(rng.gen_range(0..4)); // skewed toward few
    let mut authors = Vec::with_capacity(n_authors);
    while authors.len() < n_authors {
        let name = format!(
            "{} {}",
            FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
            LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
        );
        if !authors.contains(&name) {
            authors.push(name);
        }
    }
    Book {
        title: format!("{topic} in Practice, Vol. {}", idx % 9 + 1),
        true_authors: authors,
        publisher: PUBLISHERS[rng.gen_range(0..PUBLISHERS.len())].to_string(),
        year: rng.gen_range(1990..2009),
    }
}

/// Renders an author list in one of several formats (formatting never
/// changes the underlying authors).
fn render_authors(authors: &[String], format: usize) -> String {
    match format % 4 {
        0 => authors.join("; "),
        1 => authors
            .iter()
            .map(|a| {
                let mut parts = a.rsplitn(2, ' ');
                let last = parts.next().unwrap_or(a);
                let first = parts.next().unwrap_or("");
                if first.is_empty() {
                    last.to_string()
                } else {
                    format!("{last}, {first}")
                }
            })
            .collect::<Vec<_>>()
            .join("; "),
        2 => authors
            .iter()
            .map(|a| {
                let mut parts = a.splitn(2, ' ');
                let first = parts.next().unwrap_or("");
                let rest = parts.next().unwrap_or("");
                if rest.is_empty() {
                    first.to_string()
                } else {
                    format!("{}. {rest}", &first[..1])
                }
            })
            .collect::<Vec<_>>()
            .join("; "),
        _ => {
            if authors.len() == 2 {
                format!("{} and {}", authors[0], authors[1])
            } else {
                authors.join(", ")
            }
        }
    }
}

/// Corrupts the author *set* (not just formatting): drop / add / swap /
/// misspell / reorder. Note that pure misordering is representational to an
/// order-insensitive matcher, so set-changing corruptions dominate.
fn corrupt_authors(rng: &mut Rng, authors: &[String]) -> Vec<String> {
    let mut out: Vec<String> = authors.to_vec();
    match rng.gen_range(0..5) {
        0 if out.len() > 1 => {
            // Missing author.
            let i = rng.gen_range(0..out.len());
            out.remove(i);
        }
        1 => {
            // Added wrong author.
            out.push(format!(
                "{} {}",
                FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
            ));
        }
        2 => {
            // Wrong author replaces a right one.
            let i = rng.gen_range(0..out.len());
            out[i] = format!(
                "{} {}",
                FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
            );
        }
        3 => {
            // Misspelling: perturb one character of a surname.
            let i = rng.gen_range(0..out.len());
            let mut chars: Vec<char> = out[i].chars().collect();
            if let Some(pos) = (1..chars.len()).nth(rng.gen_range(0..chars.len().max(2) - 1)) {
                let c = chars[pos];
                chars[pos] = if c == 'z' {
                    'y'
                } else {
                    ((c as u8) + 1) as char
                };
            }
            out[i] = chars.into_iter().collect();
        }
        _ => {
            // Misordering counts as dirty data in the crawl; the underlying
            // set is wrong only per strict comparison — shuffle plus drop.
            out.reverse();
            if out.len() > 2 {
                out.pop();
            }
        }
    }
    out
}

impl BookCorpus {
    /// Generates the corpus.
    pub fn generate(config: &BookCorpusConfig) -> Self {
        let mut rng = crate::rng(config.seed);
        let books: Vec<Book> = (0..config.num_books)
            .map(|i| gen_book(&mut rng, i))
            .collect();
        let store_names: Vec<String> = (0..config.num_stores)
            .map(|i| format!("store{i:04}"))
            .collect();
        let (lo, hi) = config.accuracy_range;
        let store_accuracy: Vec<f64> = (0..config.num_stores)
            .map(|_| lo + (hi - lo) * rng.gen::<f64>().powf(0.7))
            .collect();

        // Coverage by Zipf, calibrated to the listing target, assigned to
        // stores in shuffled order so store id does not encode coverage.
        // Rounding and the per-store clamp lose ~12% of the mass, so aim
        // slightly high.
        let mut coverage = zipf::coverage_counts(
            config.num_stores,
            1.05,
            config.target_listings + config.target_listings / 8,
            config.max_store_coverage.min(config.num_books),
        );
        coverage.shuffle(&mut rng);

        // Cluster membership: pack clusters from the front of a shuffled
        // store order.
        let mut order: Vec<usize> = (0..config.num_stores).collect();
        order.shuffle(&mut rng);
        let mut cluster_of: Vec<Option<usize>> = vec![None; config.num_stores];
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        let mut cursor = 0usize;
        for (c, &size) in config.copier_cluster_sizes.iter().enumerate() {
            let members: Vec<usize> = order[cursor..cursor + size].to_vec();
            cursor += size;
            for &m in &members {
                cluster_of[m] = Some(c);
            }
            clusters.push(members);
        }

        // Per-cluster shared core of books every member lists identically.
        let mut all_books: Vec<usize> = (0..config.num_books).collect();
        let mut listings: Vec<Listing> = Vec::with_capacity(config.target_listings);
        let mut per_store_books: Vec<Vec<usize>> = vec![Vec::new(); config.num_stores];

        let mut planted_pairs = Vec::new();
        for members in &clusters {
            let leader = members[0];
            all_books.shuffle(&mut rng);
            let core_size = config
                .min_shared_books
                .max(coverage[leader].min(config.num_books) / 2)
                .min(config.num_books);
            let core: Vec<usize> = all_books[..core_size].to_vec();
            // The leader authors the cluster's listings for the core books.
            // Its accuracy is kept in a mid band: the paper's 471 pairs were
            // *identified* as dependent from shared data, which requires the
            // cluster to propagate some mistakes (shared errors are what
            // makes copying observable) while not being pure noise.
            let leader_acc = store_accuracy[leader].clamp(0.3, 0.7);
            let mut core_listings: Vec<(usize, Vec<String>, bool)> = Vec::new();
            for &b in &core {
                let correct = rng.gen::<f64>() < leader_acc;
                let authors = if correct {
                    books[b].true_authors.clone()
                } else {
                    corrupt_authors(&mut rng, &books[b].true_authors)
                };
                core_listings.push((b, authors, correct));
            }
            for &m in members {
                let own_format = rng.gen_range(1..4usize);
                for (b, authors, correct) in &core_listings {
                    // Members copy the leader's rendering verbatim (format 0)
                    // and only occasionally re-render in their house style.
                    let format = if rng.gen::<f64>() < config.reformat_rate {
                        own_format
                    } else {
                        0
                    };
                    listings.push(Listing {
                        store: m,
                        book: *b,
                        authors_raw: render_authors(authors, format),
                        is_correct: *correct,
                    });
                    per_store_books[m].push(*b);
                }
            }
            for (i, &x) in members.iter().enumerate() {
                for &y in &members[i + 1..] {
                    planted_pairs.push((
                        SourceId::from_index(x.min(y)),
                        SourceId::from_index(x.max(y)),
                    ));
                }
            }
        }

        // Independent coverage for everyone (cluster members may add their
        // own books beyond the core, like partial copiers).
        for s in 0..config.num_stores {
            let target = coverage[s];
            let already = per_store_books[s].len();
            if already >= target {
                continue;
            }
            let need = target - already;
            all_books.shuffle(&mut rng);
            let mut added = 0usize;
            for &b in all_books.iter() {
                if added == need {
                    break;
                }
                if per_store_books[s].contains(&b) {
                    continue;
                }
                let correct = rng.gen::<f64>() < store_accuracy[s];
                let authors = if correct {
                    books[b].true_authors.clone()
                } else {
                    corrupt_authors(&mut rng, &books[b].true_authors)
                };
                // Half the market uses the dominant "First Last; ..." style,
                // which keeps the distinct-variant count near the crawl's.
                let format = if rng.gen::<f64>() < 0.5 {
                    0
                } else {
                    rng.gen_range(1..4)
                };
                listings.push(Listing {
                    store: s,
                    book: b,
                    authors_raw: render_authors(&authors, format),
                    is_correct: correct,
                });
                per_store_books[s].push(b);
                added += 1;
            }
        }

        Self {
            config: config.clone(),
            books,
            store_names,
            store_accuracy,
            listings,
            planted_pairs,
        }
    }

    /// Computes the Example 4.1-style summary statistics.
    pub fn stats(&self) -> CorpusStats {
        let mut store_books: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut book_variants: HashMap<usize, std::collections::HashSet<&str>> = HashMap::new();
        let mut store_correct: HashMap<usize, (usize, usize)> = HashMap::new();
        for l in &self.listings {
            store_books.entry(l.store).or_default().push(l.book);
            book_variants
                .entry(l.book)
                .or_default()
                .insert(l.authors_raw.as_str());
            let e = store_correct.entry(l.store).or_insert((0, 0));
            e.1 += 1;
            if l.is_correct {
                e.0 += 1;
            }
        }
        let coverage_min = store_books.values().map(Vec::len).min().unwrap_or(0);
        let coverage_max = store_books.values().map(Vec::len).max().unwrap_or(0);
        let variants: Vec<usize> = book_variants.values().map(|s| s.len()).collect();
        let vmin = variants.iter().copied().min().unwrap_or(0);
        let vmax = variants.iter().copied().max().unwrap_or(0);
        let vmean = if variants.is_empty() {
            0.0
        } else {
            variants.iter().sum::<usize>() as f64 / variants.len() as f64
        };
        let accs: Vec<f64> = store_correct
            .values()
            .map(|&(c, n)| c as f64 / n as f64)
            .collect();
        let amin = accs.iter().copied().fold(f64::INFINITY, f64::min);
        let amax = accs.iter().copied().fold(0.0, f64::max);

        // Pairs sharing >= min_shared_books (the paper's screening count).
        let mut pair_counts: HashMap<(usize, usize), usize> = HashMap::new();
        let mut book_stores: HashMap<usize, Vec<usize>> = HashMap::new();
        for l in &self.listings {
            book_stores.entry(l.book).or_default().push(l.store);
        }
        for stores in book_stores.values() {
            let mut stores = stores.clone();
            stores.sort_unstable();
            stores.dedup();
            for (i, &a) in stores.iter().enumerate() {
                for &b in &stores[i + 1..] {
                    *pair_counts.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
        let candidate_pairs = pair_counts
            .values()
            .filter(|&&c| c >= self.config.min_shared_books)
            .count();

        CorpusStats {
            stores: store_books.len(),
            books: book_variants.len(),
            listings: self.listings.len(),
            author_variants: (vmin, vmean, vmax),
            coverage: (coverage_min, coverage_max),
            accuracy: (amin, amax),
            candidate_pairs_min_shared: candidate_pairs,
        }
    }

    /// Builds the author-list [`ClaimStore`]: object = book, value = the raw
    /// author string (`linked = false`) or, with `linked = true`, a canonical
    /// representative per group of alternative representations (record
    /// linkage applied per book).
    pub fn author_claim_store(&self, linked: bool) -> ClaimStore {
        let mut builder = ClaimStoreBuilder::new();
        for name in &self.store_names {
            builder.source(name);
        }
        for (i, book) in self.books.iter().enumerate() {
            builder.object(&format!("book{i:04}:{}", book.title));
        }
        if !linked {
            for l in &self.listings {
                builder.add(
                    &self.store_names[l.store],
                    &format!("book{:04}:{}", l.book, self.books[l.book].title),
                    Value::text(&l.authors_raw),
                );
            }
            return builder.build();
        }

        // Linked: per book, cluster raw strings by author-list match and
        // replace each with its cluster's most common raw string.
        let mut per_book: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, l) in self.listings.iter().enumerate() {
            per_book.entry(l.book).or_default().push(i);
        }
        let mut book_ids: Vec<usize> = per_book.keys().copied().collect();
        book_ids.sort_unstable();
        for b in book_ids {
            let idxs = &per_book[&b];
            let mut raws: Vec<&str> = idxs
                .iter()
                .map(|&i| self.listings[i].authors_raw.as_str())
                .collect();
            raws.sort_unstable();
            raws.dedup();
            let parsed: Vec<AuthorList> = raws.iter().map(|r| parse_author_list(r)).collect();
            let clusters = sailing_linkage::cluster_values(&parsed, 0.85, |x, y| x.match_score(y));
            // Most frequent raw string per cluster is the canonical form.
            let mut canon_of: HashMap<&str, String> = HashMap::new();
            for cluster in &clusters {
                let mut counts: HashMap<&str, usize> = HashMap::new();
                for &i in idxs {
                    let raw = self.listings[i].authors_raw.as_str();
                    if cluster.iter().any(|&c| raws[c] == raw) {
                        *counts.entry(raw).or_insert(0) += 1;
                    }
                }
                let canonical = counts
                    .iter()
                    .max_by_key(|&(s, c)| (*c, std::cmp::Reverse(*s)))
                    .map(|(s, _)| s.to_string())
                    .unwrap_or_default();
                for &c in cluster {
                    canon_of.insert(raws[c], canonical.clone());
                }
            }
            for &i in idxs {
                let l = &self.listings[i];
                let canonical = canon_of
                    .get(l.authors_raw.as_str())
                    .cloned()
                    .unwrap_or_else(|| l.authors_raw.clone());
                builder.add(
                    &self.store_names[l.store],
                    &format!("book{:04}:{}", l.book, self.books[l.book].title),
                    Value::text(canonical),
                );
            }
        }
        builder.build()
    }

    /// Scores per-book author decisions: a decision is correct when the
    /// chosen value parses to the book's true author list.
    pub fn score_decisions(
        &self,
        store: &ClaimStore,
        decisions: &HashMap<ObjectId, ValueId>,
    ) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (i, book) in self.books.iter().enumerate() {
            let Some(object) = store.object_id(&format!("book{i:04}:{}", book.title)) else {
                continue;
            };
            total += 1;
            let Some(&v) = decisions.get(&object) else {
                continue;
            };
            let Some(Value::Text(raw)) = store.value(v) else {
                continue;
            };
            let truth = parse_author_list(&book.true_authors.join("; "));
            if parse_author_list(raw).same_authors(&truth) {
                correct += 1;
            }
        }
        if total == 0 {
            return 0.0;
        }
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BookCorpus {
        BookCorpus::generate(&BookCorpusConfig::small(1))
    }

    #[test]
    fn default_config_matches_the_paper() {
        let c = BookCorpusConfig::default();
        assert_eq!(c.num_stores, 876);
        assert_eq!(c.num_books, 1263);
        assert_eq!(c.target_listings, 24_364);
        assert_eq!(c.max_store_coverage, 1_095);
        assert_eq!(c.min_shared_books, 10);
        assert_eq!(c.planted_pair_count(), 471);
    }

    #[test]
    fn small_corpus_shape() {
        let corpus = small();
        let stats = corpus.stats();
        assert_eq!(stats.stores, 110);
        assert!(stats.books > 140);
        assert!(stats.listings > 2_000);
        assert!(stats.coverage.0 >= 1);
        assert!(stats.accuracy.1 <= 1.0);
        assert!(stats.author_variants.2 >= stats.author_variants.0);
        assert_eq!(corpus.planted_pairs.len(), 57);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = BookCorpus::generate(&BookCorpusConfig::small(1));
        assert_eq!(a.listings.len(), b.listings.len());
        assert_eq!(a.listings[0].authors_raw, b.listings[0].authors_raw);
        assert_eq!(a.planted_pairs, b.planted_pairs);
    }

    #[test]
    fn cluster_members_share_core_books() {
        let corpus = small();
        let mut per_store: HashMap<usize, std::collections::HashSet<usize>> = HashMap::new();
        for l in &corpus.listings {
            per_store.entry(l.store).or_default().insert(l.book);
        }
        for &(a, b) in &corpus.planted_pairs {
            let sa = &per_store[&a.index()];
            let sb = &per_store[&b.index()];
            let shared = sa.intersection(sb).count();
            assert!(
                shared >= corpus.config.min_shared_books,
                "cluster pair {a}-{b} shares only {shared}"
            );
        }
    }

    #[test]
    fn cluster_members_agree_on_core_values() {
        let corpus = small();
        let store = corpus.author_claim_store(false);
        let snap = store.snapshot();
        let (a, b) = corpus.planted_pairs[0];
        let agree = snap.overlap(a, b).filter(|&(_, x, y)| x == y).count();
        let total = snap.overlap_size(a, b);
        assert!(
            agree * 2 >= total,
            "cluster pair should agree on most shared books: {agree}/{total}"
        );
    }

    #[test]
    fn claim_store_roundtrip() {
        let corpus = small();
        let store = corpus.author_claim_store(false);
        assert_eq!(store.num_sources(), 110);
        assert_eq!(store.num_claims(), corpus.listings.len());
    }

    #[test]
    fn linking_reduces_variant_count() {
        let corpus = small();
        let raw = corpus.author_claim_store(false);
        let linked = corpus.author_claim_store(true);
        assert!(
            linked.num_values() < raw.num_values(),
            "linkage should merge representations: {} vs {}",
            linked.num_values(),
            raw.num_values()
        );
    }

    #[test]
    fn truth_scoring_rewards_correct_decisions() {
        let corpus = small();
        let store = corpus.author_claim_store(false);
        // Build oracle decisions: for each book pick any listing value whose
        // underlying set was correct.
        let mut decisions = HashMap::new();
        for l in &corpus.listings {
            if l.is_correct {
                let object = store
                    .object_id(&format!("book{:04}:{}", l.book, corpus.books[l.book].title))
                    .unwrap();
                let v = store.value_id(&Value::text(&l.authors_raw)).unwrap();
                decisions.entry(object).or_insert(v);
            }
        }
        let score = corpus.score_decisions(&store, &decisions);
        assert!(score > 0.85, "oracle decisions score {score}");
    }

    #[test]
    fn accuracy_spread_matches_config() {
        let corpus = small();
        let lo = corpus
            .store_accuracy
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let hi = corpus.store_accuracy.iter().copied().fold(0.0, f64::max);
        assert!(
            lo >= 0.0 && hi <= 0.92 + 1e-9,
            "accuracy range [{lo}, {hi}]"
        );
    }
}
