//! Temporal worlds: Table 3 at arbitrary scale.
//!
//! Object values evolve over a discrete horizon; sources observe the
//! evolution with behaviour-specific delays. Independents re-publish the
//! truth (with optional error) some ticks after each change — "slow
//! providers"; copiers re-publish whatever their original published, `lag`
//! ticks later — "lazy copiers" (Example 3.2). The generator returns the
//! observable [`History`] plus the planted [`TemporalTruth`] and pair list.

use rand::Rng as _;
use serde::{Deserialize, Serialize};

use sailing_model::{History, ObjectId, SailingError, SourceId, TemporalTruth, ValueId};

/// Behaviour of a temporal source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TemporalBehavior {
    /// Publishes each truth change after a delay in
    /// `[min_delay, max_delay]`, wrongly (a random false value) with
    /// probability `1 − accuracy`, and misses a change entirely with
    /// probability `miss_rate`.
    Independent {
        /// Probability a published update carries the correct new value.
        accuracy: f64,
        /// Smallest publication delay (ticks).
        min_delay: i64,
        /// Largest publication delay (ticks).
        max_delay: i64,
        /// Probability of skipping a change altogether (lazy updater).
        miss_rate: f64,
    },
    /// Re-publishes its original's updates `lag` ticks later, each with
    /// probability `copy_rate` (a lazy copier skips some updates).
    Copier {
        /// Index of the copied source.
        original: usize,
        /// Fixed copying lag in ticks.
        lag: i64,
        /// Probability each original update is copied.
        copy_rate: f64,
    },
}

/// Configuration of a temporal world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalWorldConfig {
    /// Number of evolving objects.
    pub num_objects: usize,
    /// Discrete time horizon `0..horizon`.
    pub horizon: i64,
    /// Expected number of value changes per object over the horizon
    /// (including the initial value at t = 0).
    pub changes_per_object: f64,
    /// Distinct values per object (1 current true + alternatives).
    pub domain_size: usize,
    /// Source behaviours; copiers must reference earlier indices.
    pub sources: Vec<TemporalBehavior>,
    /// RNG seed.
    pub seed: u64,
}

impl TemporalWorldConfig {
    /// Checks structural validity.
    pub fn validate(&self) -> Result<(), SailingError> {
        let err = |reason: String| SailingError::config("TemporalWorldConfig", reason);
        if self.num_objects == 0 || self.horizon <= 0 || self.domain_size < 2 {
            return Err(err("degenerate world dimensions".into()));
        }
        if self.changes_per_object < 1.0 {
            return Err(err("changes_per_object must be at least 1".into()));
        }
        for (i, s) in self.sources.iter().enumerate() {
            match s {
                TemporalBehavior::Independent {
                    accuracy,
                    min_delay,
                    max_delay,
                    miss_rate,
                } => {
                    if !(0.0..=1.0).contains(accuracy) || !(0.0..=1.0).contains(miss_rate) {
                        return Err(err(format!("source {i}: probability out of range")));
                    }
                    if min_delay < &0 || max_delay < min_delay {
                        return Err(err(format!("source {i}: bad delay range")));
                    }
                }
                TemporalBehavior::Copier {
                    original,
                    lag,
                    copy_rate,
                } => {
                    if *original >= i {
                        return Err(err(format!(
                            "source {i}: copier must reference earlier source"
                        )));
                    }
                    if *lag < 0 || !(0.0..=1.0).contains(copy_rate) {
                        return Err(err(format!("source {i}: bad lag/copy_rate")));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A generated temporal world.
#[derive(Debug, Clone)]
pub struct TemporalWorld {
    /// The observable update traces.
    pub history: History,
    /// The planted truth evolution.
    pub truth: TemporalTruth,
    /// The planted `(copier, original)` pairs.
    pub planted_pairs: Vec<(SourceId, SourceId)>,
    /// The behaviours used.
    pub behaviors: Vec<TemporalBehavior>,
}

impl TemporalWorld {
    /// Generates the world.
    ///
    /// # Panics
    /// Panics on invalid configuration.
    pub fn generate(config: &TemporalWorldConfig) -> Self {
        config.validate().expect("invalid temporal world config");
        let mut rng = crate::rng(config.seed);
        let value_of = |o: usize, k: usize| ValueId::from_index(o * config.domain_size + k);

        // Truth evolution: each object starts at value 0 and changes at
        // uniformly drawn times to the next value index (cyclic).
        let mut truth = TemporalTruth::new();
        let mut truth_changes: Vec<Vec<(i64, ValueId)>> = Vec::with_capacity(config.num_objects);
        for o in 0..config.num_objects {
            let extra = (config.changes_per_object - 1.0).max(0.0);
            let n_extra = extra.floor() as usize + usize::from(rng.gen::<f64>() < extra.fract());
            let mut times: Vec<i64> = (0..n_extra)
                .map(|_| rng.gen_range(1..config.horizon))
                .collect();
            times.sort_unstable();
            times.dedup();
            let mut changes = vec![(0i64, value_of(o, 0))];
            for (j, &t) in times.iter().enumerate() {
                changes.push((t, value_of(o, (j + 1) % config.domain_size)));
            }
            for &(t, v) in &changes {
                truth.record(ObjectId::from_index(o), t, v);
            }
            truth_changes.push(changes);
        }

        let num_sources = config.sources.len();
        let mut history = History::new(num_sources, config.num_objects);
        let mut planted_pairs = Vec::new();

        // Materialise independents first (copiers replay their traces).
        for (i, behavior) in config.sources.iter().enumerate() {
            match behavior {
                TemporalBehavior::Independent {
                    accuracy,
                    min_delay,
                    max_delay,
                    miss_rate,
                } => {
                    for (o, changes) in truth_changes.iter().enumerate() {
                        for &(t, v) in changes {
                            if rng.gen::<f64>() < *miss_rate {
                                continue;
                            }
                            let delay = if max_delay > min_delay {
                                rng.gen_range(*min_delay..=*max_delay)
                            } else {
                                *min_delay
                            };
                            let at = (t + delay).min(config.horizon);
                            let published = if rng.gen::<f64>() < *accuracy {
                                v
                            } else {
                                value_of(o, rng.gen_range(1..config.domain_size))
                            };
                            history.record(
                                SourceId::from_index(i),
                                ObjectId::from_index(o),
                                at,
                                published,
                            );
                        }
                    }
                }
                TemporalBehavior::Copier {
                    original,
                    lag,
                    copy_rate,
                } => {
                    planted_pairs.push((SourceId::from_index(i), SourceId::from_index(*original)));
                    let source_traces: Vec<(ObjectId, Vec<(i64, ValueId)>)> = history
                        .traces_of(SourceId::from_index(*original))
                        .into_iter()
                        .map(|(o, tr)| (o, tr.updates().to_vec()))
                        .collect();
                    for (o, updates) in source_traces {
                        for (t, v) in updates {
                            if rng.gen::<f64>() >= *copy_rate {
                                continue;
                            }
                            let at = (t + lag).min(config.horizon + lag);
                            history.record(SourceId::from_index(i), o, at, v);
                        }
                    }
                }
            }
        }

        Self {
            history,
            truth,
            planted_pairs,
            behaviors: config.sources.clone(),
        }
    }

    /// Unordered precision/recall of a detected pair list against the
    /// planted pairs.
    pub fn pair_detection_quality(&self, detected: &[(SourceId, SourceId)]) -> (f64, f64) {
        let canon = |&(a, b): &(SourceId, SourceId)| if a < b { (a, b) } else { (b, a) };
        let planted: std::collections::HashSet<_> = self.planted_pairs.iter().map(canon).collect();
        let detected: std::collections::HashSet<_> = detected.iter().map(canon).collect();
        let hits = detected.intersection(&planted).count();
        let precision = if detected.is_empty() {
            1.0
        } else {
            hits as f64 / detected.len() as f64
        };
        let recall = if planted.is_empty() {
            1.0
        } else {
            hits as f64 / planted.len() as f64
        };
        (precision, recall)
    }
}

/// A convenient three-behaviour world mirroring Table 3's cast: accurate
/// up-to-date independents, slow independents, and lazy copiers.
pub fn table3_style(
    num_objects: usize,
    lag: i64,
    seed: u64,
) -> (TemporalWorldConfig, &'static [&'static str]) {
    let config = TemporalWorldConfig {
        num_objects,
        horizon: 50,
        changes_per_object: 3.0,
        domain_size: 6,
        sources: vec![
            TemporalBehavior::Independent {
                accuracy: 0.98,
                min_delay: 0,
                max_delay: 2,
                miss_rate: 0.0,
            },
            // The slow independent's delay range *overlaps* the up-to-date
            // source's: per Example 3.2, "many of its updates are before the
            // corresponding ones" — a copier is never ahead of its original,
            // a slow independent sometimes is, and that asymmetry is what
            // keeps the two apart.
            TemporalBehavior::Independent {
                accuracy: 0.95,
                min_delay: 0,
                max_delay: 5,
                miss_rate: 0.2,
            },
            TemporalBehavior::Copier {
                original: 0,
                lag,
                copy_rate: 0.8,
            },
        ],
        seed,
    };
    (config, &["up-to-date", "slow-independent", "lazy-copier"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_core::params::TemporalParams;
    use sailing_core::temporal::detect_all;

    #[test]
    fn generation_is_deterministic() {
        let (config, _) = table3_style(50, 2, 9);
        let w1 = TemporalWorld::generate(&config);
        let w2 = TemporalWorld::generate(&config);
        assert_eq!(w1.history.num_updates(), w2.history.num_updates());
        let ups1: Vec<_> = w1.history.all_updates().collect();
        let ups2: Vec<_> = w2.history.all_updates().collect();
        assert_eq!(ups1.len(), ups2.len());
    }

    #[test]
    fn truth_evolves() {
        let (config, _) = table3_style(30, 1, 3);
        let w = TemporalWorld::generate(&config);
        assert_eq!(w.truth.len(), 30);
        let multi = (0..30)
            .filter(|&o| w.truth.trace(ObjectId::from_index(o)).unwrap().len() > 1)
            .count();
        assert!(multi > 15, "most objects should change value: {multi}");
    }

    #[test]
    fn copier_trails_original_by_lag() {
        let (config, _) = table3_style(40, 3, 5);
        let w = TemporalWorld::generate(&config);
        let copier = SourceId(2);
        let original = SourceId(0);
        for (o, trace) in w.history.traces_of(copier) {
            for &(t, v) in trace.updates() {
                let t_orig = w
                    .history
                    .trace(original, o)
                    .and_then(|tr| tr.first_asserted(v));
                assert_eq!(t_orig, Some(t - 3), "copied update must lag by 3");
            }
        }
    }

    #[test]
    fn lazy_copier_detected_at_scale() {
        let (config, _) = table3_style(80, 2, 21);
        let w = TemporalWorld::generate(&config);
        let params = TemporalParams {
            max_lag: 3,
            ..Default::default()
        };
        let deps = detect_all(&w.history, &params);
        let flagged: Vec<_> = deps
            .iter()
            .filter(|p| p.probability > 0.8)
            .map(|p| (p.a, p.b))
            .collect();
        let (precision, recall) = w.pair_detection_quality(&flagged);
        assert!(
            precision > 0.7 && recall > 0.9,
            "precision {precision} recall {recall}: {deps:?}"
        );
    }

    #[test]
    fn slow_independent_not_confused_with_copier() {
        let (config, _) = table3_style(80, 2, 33);
        let w = TemporalWorld::generate(&config);
        let params = TemporalParams {
            max_lag: 3,
            ..Default::default()
        };
        let deps = detect_all(&w.history, &params);
        let find = |a: u32, b: u32| {
            deps.iter()
                .find(|p| (p.a, p.b) == (SourceId(a.min(b)), SourceId(a.max(b))))
                .map(|p| p.probability)
                .unwrap_or(0.0)
        };
        // S0–S2 is the planted copier pair; S0–S1 is independent (slow).
        assert!(
            find(0, 2) > find(0, 1),
            "copier pair {} must outrank slow-independent pair {}",
            find(0, 2),
            find(0, 1)
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let (mut config, _) = table3_style(10, 1, 0);
        config.horizon = 0;
        assert!(config.validate().is_err());

        let (mut config, _) = table3_style(10, 1, 0);
        config.sources[2] = TemporalBehavior::Copier {
            original: 5,
            lag: 1,
            copy_rate: 0.5,
        };
        assert!(config.validate().is_err());

        let (mut config, _) = table3_style(10, 1, 0);
        config.sources[1] = TemporalBehavior::Independent {
            accuracy: 0.9,
            min_delay: 3,
            max_delay: 1,
            miss_rate: 0.0,
        };
        assert!(config.validate().is_err());
    }
}
