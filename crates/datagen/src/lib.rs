//! # sailing-datagen
//!
//! Synthetic substrates for everything the paper evaluated on data we do not
//! have. Each generator is deterministic by seed (ChaCha-based RNG) and
//! returns the planted ground truth alongside the observable data, so
//! experiments can score detection and fusion exactly.
//!
//! * [`world`] — snapshot worlds: independent sources with chosen accuracy,
//!   full/partial copiers, coverage skew (Table 1 at scale);
//! * [`temporal`] — evolving worlds with slow providers and lazy copiers
//!   (Table 3 at scale);
//! * [`ratings`] — opinion worlds with item-popularity correlation, copier
//!   raters and inverter raters (Table 2 at scale);
//! * [`bookstores`] — the AbeBooks-like corpus calibrated to Example 4.1's
//!   published statistics (876 bookstores, 1263 books, 24364 listings, 471
//!   dependent store pairs, messy author lists);
//! * [`churn`] — streaming-ingestion workloads: cohort-structured worlds
//!   where sources appear and vanish epoch by epoch, with a contested
//!   never-churned hard cohort (the incremental-discovery benchmark's
//!   substrate);
//! * [`variants`] — worlds whose sources disagree about formatting as much
//!   as about facts: canonical values plus case/whitespace/diacritic and
//!   trailing-zero re-renderings, the substrate for the value-equivalence
//!   backends;
//! * [`zipf`] — the coverage-skew sampler shared by the generators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bookstores;
pub mod churn;
pub mod ratings;
pub mod temporal;
pub mod variants;
pub mod world;
pub mod zipf;

pub use bookstores::{BookCorpus, BookCorpusConfig};
pub use churn::{ChurnConfig, ChurnWorld};
pub use ratings::{RaterBehavior, RatingWorld, RatingWorldConfig};
pub use temporal::{TemporalWorld, TemporalWorldConfig};
pub use variants::{VariantWorld, VariantWorldConfig};
pub use world::{SnapshotWorld, SourceBehavior, WorldConfig};
pub use zipf::Zipf;

/// The workspace-standard seeded RNG.
pub type Rng = rand_chacha::ChaCha8Rng;

/// Creates the workspace-standard RNG from a seed.
pub fn rng(seed: u64) -> Rng {
    use rand::SeedableRng;
    Rng::seed_from_u64(seed)
}
