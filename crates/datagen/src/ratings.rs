//! Rating worlds: Table 2 at arbitrary scale.
//!
//! Items carry an intrinsic *consensus* rating (their popularity); raters
//! are noisy consensus-followers, contrarian-but-independent critics,
//! copier raters, or inverter raters (the paper's
//! dissimilarity-dependence). The popularity structure is what makes the
//! *correlated information* challenge real: two honest raters agree a lot
//! without any dependence.

use rand::Rng as _;
use serde::{Deserialize, Serialize};

use sailing_core::dissim::RatingView;
use sailing_model::{ObjectId, SailingError, SourceId};

use crate::Rng;

/// Behaviour of a synthetic rater.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RaterBehavior {
    /// Rates each item at its consensus level with probability
    /// `1 − noise`, otherwise uniformly.
    Follower {
        /// Probability of deviating from the item consensus.
        noise: f64,
    },
    /// Rates independently of the consensus (uniform).
    Maverick,
    /// Repeats rater `of`'s rating with probability `rate`, else behaves as
    /// a follower with noise 0.3 (similarity-dependence).
    Copier {
        /// Index of the mimicked rater.
        of: usize,
        /// Per-item mimic probability.
        rate: f64,
    },
    /// Inverts rater `of`'s rating on the scale with probability `rate`,
    /// else behaves as a follower with noise 0.3
    /// (dissimilarity-dependence, Table 2's `R4`).
    Inverter {
        /// Index of the inverted rater.
        of: usize,
        /// Per-item inversion probability.
        rate: f64,
    },
}

impl RaterBehavior {
    /// `true` for the two dependent behaviours.
    pub fn is_dependent(&self) -> bool {
        matches!(
            self,
            RaterBehavior::Copier { .. } | RaterBehavior::Inverter { .. }
        )
    }

    /// The target rater index for dependent behaviours.
    pub fn target(&self) -> Option<usize> {
        match self {
            RaterBehavior::Copier { of, .. } | RaterBehavior::Inverter { of, .. } => Some(*of),
            _ => None,
        }
    }
}

/// Configuration of a rating world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatingWorldConfig {
    /// Number of rated items.
    pub num_items: usize,
    /// Rating scale `0..=scale_max`.
    pub scale_max: u8,
    /// Rater behaviours; dependent raters must reference earlier indices.
    pub raters: Vec<RaterBehavior>,
    /// Fraction of items each rater covers (1.0 = rates everything).
    pub coverage: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RatingWorldConfig {
    /// Checks structural validity.
    pub fn validate(&self) -> Result<(), SailingError> {
        let err = |reason: String| SailingError::config("RatingWorldConfig", reason);
        if self.num_items == 0 || self.scale_max == 0 {
            return Err(err("degenerate rating world".into()));
        }
        if !(0.0..=1.0).contains(&self.coverage) || self.coverage == 0.0 {
            return Err(err("coverage must be in (0, 1]".into()));
        }
        for (i, r) in self.raters.iter().enumerate() {
            match r {
                RaterBehavior::Follower { noise } => {
                    if !(0.0..=1.0).contains(noise) {
                        return Err(err(format!("rater {i}: noise out of range")));
                    }
                }
                RaterBehavior::Maverick => {}
                RaterBehavior::Copier { of, rate } | RaterBehavior::Inverter { of, rate } => {
                    if *of >= i {
                        return Err(err(format!("rater {i}: must reference an earlier rater")));
                    }
                    if !(0.0..=1.0).contains(rate) {
                        return Err(err(format!("rater {i}: rate out of range")));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A generated rating world.
#[derive(Debug, Clone)]
pub struct RatingWorld {
    /// The observable ratings.
    pub view: RatingView,
    /// Each item's intrinsic consensus rating.
    pub consensus: Vec<u8>,
    /// The planted dependent `(dependent, target)` pairs.
    pub planted_pairs: Vec<(SourceId, SourceId)>,
    /// The behaviours used.
    pub behaviors: Vec<RaterBehavior>,
}

impl RatingWorld {
    /// Generates the world.
    ///
    /// # Panics
    /// Panics on invalid configuration.
    pub fn generate(config: &RatingWorldConfig) -> Self {
        config.validate().expect("invalid rating world config");
        let mut rng = crate::rng(config.seed);
        let levels = config.scale_max as u32 + 1;
        let consensus: Vec<u8> = (0..config.num_items)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();

        let mut ratings: Vec<Vec<Option<u8>>> = Vec::with_capacity(config.raters.len());
        let mut planted_pairs = Vec::new();

        for (i, behavior) in config.raters.iter().enumerate() {
            let mut mine: Vec<Option<u8>> = vec![None; config.num_items];
            for item in 0..config.num_items {
                if rng.gen::<f64>() >= config.coverage {
                    continue;
                }
                let follower = |rng: &mut Rng, noise: f64| {
                    if rng.gen::<f64>() < noise {
                        rng.gen_range(0..levels) as u8
                    } else {
                        consensus[item]
                    }
                };
                let r = match behavior {
                    RaterBehavior::Follower { noise } => follower(&mut rng, *noise),
                    RaterBehavior::Maverick => rng.gen_range(0..levels) as u8,
                    RaterBehavior::Copier { of, rate } => match ratings[*of][item] {
                        Some(target) if rng.gen::<f64>() < *rate => target,
                        _ => follower(&mut rng, 0.3),
                    },
                    RaterBehavior::Inverter { of, rate } => match ratings[*of][item] {
                        Some(target) if rng.gen::<f64>() < *rate => config.scale_max - target,
                        _ => follower(&mut rng, 0.3),
                    },
                };
                mine[item] = Some(r);
            }
            if let Some(of) = behavior.target() {
                planted_pairs.push((SourceId::from_index(i), SourceId::from_index(of)));
            }
            ratings.push(mine);
        }

        let triples = ratings.iter().enumerate().flat_map(|(s, items)| {
            items.iter().enumerate().filter_map(move |(o, r)| {
                r.map(|r| (SourceId::from_index(s), ObjectId::from_index(o), r))
            })
        });
        let view = RatingView::from_triples(
            config.raters.len(),
            config.num_items,
            config.scale_max,
            triples,
        );
        Self {
            view,
            consensus,
            planted_pairs,
            behaviors: config.raters.clone(),
        }
    }

    /// Mean rating each item would get from the *independent* raters only —
    /// the unbiased consensus experiments compare against.
    pub fn unbiased_consensus(&self) -> Vec<Option<f64>> {
        (0..self.view.num_objects())
            .map(|o| {
                let mut sum = 0.0;
                let mut n = 0usize;
                for &(s, r) in self.view.ratings_on(ObjectId::from_index(o)) {
                    if !self.behaviors[s.index()].is_dependent() {
                        sum += r as f64;
                        n += 1;
                    }
                }
                (n > 0).then(|| sum / n as f64)
            })
            .collect()
    }
}

/// A convenient world: `followers` honest raters, one maverick, plus
/// `inverters` raters inverting rater 0.
pub fn inverter_world(
    num_items: usize,
    followers: usize,
    inverters: usize,
    seed: u64,
) -> RatingWorldConfig {
    assert!(followers > 0);
    let mut raters = Vec::new();
    for i in 0..followers {
        raters.push(RaterBehavior::Follower {
            noise: 0.2 + 0.1 * (i % 3) as f64,
        });
    }
    raters.push(RaterBehavior::Maverick);
    for _ in 0..inverters {
        raters.push(RaterBehavior::Inverter { of: 0, rate: 0.9 });
    }
    RatingWorldConfig {
        num_items,
        scale_max: 2,
        raters,
        coverage: 1.0,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_core::dissim::{detect_all, DissimParams};
    use sailing_core::report::DependenceKind;

    #[test]
    fn generation_is_deterministic() {
        let config = inverter_world(50, 3, 1, 4);
        let w1 = RatingWorld::generate(&config);
        let w2 = RatingWorld::generate(&config);
        for s in 0..w1.view.num_sources() {
            for o in 0..w1.view.num_objects() {
                assert_eq!(
                    w1.view
                        .rating(SourceId::from_index(s), ObjectId::from_index(o)),
                    w2.view
                        .rating(SourceId::from_index(s), ObjectId::from_index(o))
                );
            }
        }
        assert_eq!(w1.consensus, w2.consensus);
    }

    #[test]
    fn follower_tracks_consensus() {
        let config = RatingWorldConfig {
            num_items: 1000,
            scale_max: 2,
            raters: vec![RaterBehavior::Follower { noise: 0.1 }],
            coverage: 1.0,
            seed: 8,
        };
        let w = RatingWorld::generate(&config);
        let agree = (0..1000)
            .filter(|&o| {
                w.view.rating(SourceId(0), ObjectId::from_index(o)) == Some(w.consensus[o])
            })
            .count();
        // noise 0.1 → ~93% agreement (noise picks consensus 1/3 of the time).
        assert!(agree > 880, "agreement {agree}");
    }

    #[test]
    fn inverter_inverts_its_target() {
        let config = inverter_world(300, 2, 1, 15);
        let w = RatingWorld::generate(&config);
        let inverter = SourceId::from_index(3); // 2 followers + 1 maverick
        let target = SourceId(0);
        let inverted = w
            .view
            .shared_items(target, inverter)
            .iter()
            .filter(|&&(_, rt, ri)| ri == 2 - rt)
            .count();
        assert!(inverted > 200, "inversions: {inverted}/300");
        assert_eq!(w.planted_pairs, vec![(inverter, target)]);
    }

    #[test]
    fn detector_finds_the_inverter_not_the_followers() {
        // Eight followers give the residualised consensus a solid reference
        // pool; the inverter is rater 9 (after the maverick at 8).
        let config = inverter_world(200, 8, 1, 23);
        let w = RatingWorld::generate(&config);
        let deps = detect_all(&w.view, &DissimParams::default());
        let flagged: Vec<_> = deps.iter().filter(|p| p.probability > 0.9).collect();
        assert!(
            flagged
                .iter()
                .any(|p| p.kind == DependenceKind::Dissimilarity
                    && (p.a, p.b) == (SourceId(0), SourceId(9))),
            "inverter pair must be flagged: {flagged:?}"
        );
        // Follower pairs agree via consensus only — not flagged.
        for p in &flagged {
            let follower_pair = p.a.index() < 8 && p.b.index() < 8;
            assert!(!follower_pair, "follower pair falsely flagged: {p:?}");
        }
    }

    #[test]
    fn unbiased_consensus_excludes_dependents() {
        let config = inverter_world(100, 3, 2, 31);
        let w = RatingWorld::generate(&config);
        let unbiased = w.unbiased_consensus();
        assert_eq!(unbiased.len(), 100);
        assert!(unbiased.iter().all(Option::is_some));
        // Unbiased consensus must track the intrinsic consensus closely.
        let mse: f64 = unbiased
            .iter()
            .zip(&w.consensus)
            .map(|(u, &c)| (u.unwrap() - c as f64).powi(2))
            .sum::<f64>()
            / 100.0;
        assert!(mse < 0.5, "mse {mse}");
    }

    #[test]
    fn coverage_thins_ratings() {
        let config = RatingWorldConfig {
            num_items: 500,
            scale_max: 2,
            raters: vec![RaterBehavior::Follower { noise: 0.2 }],
            coverage: 0.4,
            seed: 5,
        };
        let w = RatingWorld::generate(&config);
        let covered = w.view.ratings_of(SourceId(0)).count();
        assert!(covered > 140 && covered < 260, "covered {covered}");
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = inverter_world(10, 2, 1, 0);
        c.coverage = 0.0;
        assert!(c.validate().is_err());
        let mut c = inverter_world(10, 2, 1, 0);
        c.raters[0] = RaterBehavior::Inverter { of: 3, rate: 0.5 };
        assert!(c.validate().is_err());
        let mut c = inverter_world(10, 2, 1, 0);
        c.num_items = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn behavior_helpers() {
        assert!(RaterBehavior::Copier { of: 0, rate: 0.5 }.is_dependent());
        assert!(RaterBehavior::Inverter { of: 0, rate: 0.5 }.is_dependent());
        assert!(!RaterBehavior::Maverick.is_dependent());
        assert_eq!(RaterBehavior::Copier { of: 2, rate: 0.5 }.target(), Some(2));
        assert_eq!(RaterBehavior::Follower { noise: 0.1 }.target(), None);
    }
}
