//! Variant worlds: snapshot worlds whose sources disagree about *formatting*
//! as much as about facts.
//!
//! Every candidate value exists in a canonical form plus a set of
//! format-variants of the same underlying truth — `"J. Smith"`-style case,
//! whitespace, hyphen, and diacritic re-spellings of text, and
//! trailing-zero / within-tolerance re-renderings of numerics (`"3.14"` vs
//! `"3.140"`). Under exact value identity the honest majority splits its
//! vote across the formattings; under a matching [`ValueEquivalence`]
//! backend the variants collapse into one equivalence class and the
//! majority re-forms. The generator interns **all canonical values first**,
//! so each class representative (the minimum member id) is the canonical
//! id and planted-truth scoring works unmodified on quotiented snapshots.
//!
//! [`ValueEquivalence`]: sailing_model::ValueEquivalence

use rand::Rng as _;
use serde::{Deserialize, Serialize};

use sailing_model::{
    ClaimStore, ClaimStoreBuilder, GroundTruth, ObjectId, SailingError, SnapshotView, Value,
    ValueId,
};

/// Configuration of a variant world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantWorldConfig {
    /// Number of data items.
    pub num_objects: usize,
    /// Number of sources (all independents covering every object).
    pub num_sources: usize,
    /// Source accuracies are spread linearly over this range.
    pub accuracy_range: (f64, f64),
    /// Probability an asserted value is re-rendered as a format-variant
    /// instead of its canonical form. `0.0` yields a *variant-free* world
    /// in which every backend's partition is the identity.
    pub variant_rate: f64,
    /// Fraction of objects whose candidate values are numeric strings;
    /// the rest are person-name text.
    pub numeric_fraction: f64,
    /// Candidate values per object (1 true + `domain_size − 1` false).
    pub domain_size: usize,
    /// Numeric variants jitter by `eps / 2`, so a
    /// [`NumericTolerance`](sailing_model::NumericTolerance) backend with
    /// this `eps` merges them with their canonical form while canonical
    /// candidates stay far apart (spaced by [`NUMERIC_SPACING`]).
    pub numeric_eps: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Gap between adjacent canonical numeric candidates; vastly larger than
/// any sensible tolerance, so tolerance chains never bridge classes.
pub const NUMERIC_SPACING: f64 = 25.0;

impl VariantWorldConfig {
    /// A *variant-free* federation world: every source renders every value
    /// canonically, so any backend's partition is the identity. This is the
    /// substrate for the private-federation story — hashed-digest matching
    /// must reproduce exact-identity analysis bit for bit.
    pub fn federation(num_objects: usize, num_sources: usize, seed: u64) -> Self {
        Self {
            num_objects,
            num_sources,
            accuracy_range: (0.55, 0.9),
            variant_rate: 0.0,
            numeric_fraction: 0.5,
            domain_size: 5,
            numeric_eps: 0.01,
            seed,
        }
    }

    /// A *messy* world where half the assertions arrive as format-variants:
    /// the regime where quotienting visibly improves decision precision.
    pub fn messy(num_objects: usize, num_sources: usize, seed: u64) -> Self {
        Self {
            variant_rate: 0.5,
            ..Self::federation(num_objects, num_sources, seed)
        }
    }

    /// Checks structural validity (ranges, counts).
    pub fn validate(&self) -> Result<(), SailingError> {
        let err = |reason: String| SailingError::config("VariantWorldConfig", reason);
        if self.num_objects == 0 {
            return Err(err("num_objects must be positive".into()));
        }
        if self.num_sources < 2 {
            return Err(err("num_sources must be at least 2".into()));
        }
        if self.domain_size < 2 {
            return Err(err("domain_size must be at least 2".into()));
        }
        for (name, p) in [
            ("variant_rate", self.variant_rate),
            ("numeric_fraction", self.numeric_fraction),
            ("accuracy_range.0", self.accuracy_range.0),
            ("accuracy_range.1", self.accuracy_range.1),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(err(format!("{name} {p} outside [0,1]")));
            }
        }
        if !(self.numeric_eps.is_finite() && self.numeric_eps > 0.0) {
            return Err(err(format!(
                "numeric_eps {} must be positive and finite",
                self.numeric_eps
            )));
        }
        Ok(())
    }
}

/// A generated variant world.
#[derive(Debug, Clone)]
pub struct VariantWorld {
    /// The claim store (its interned arena rides along on snapshots, which
    /// is what lets engines quotient them).
    pub store: ClaimStore,
    /// The observable data, canonical ids and variant ids mixed.
    pub snapshot: SnapshotView,
    /// The planted truth, in **canonical** value ids — exactly the
    /// representatives a matching backend's quotient rewrites to.
    pub truth: GroundTruth,
    /// How many assertions were re-rendered as variants.
    pub num_variant_claims: usize,
    /// The configuration that produced the world.
    pub config: VariantWorldConfig,
}

impl VariantWorld {
    /// Generates the world.
    ///
    /// # Panics
    /// Panics when the configuration is invalid
    /// ([`VariantWorldConfig::validate`]).
    pub fn generate(config: &VariantWorldConfig) -> Self {
        config.validate().expect("invalid variant world config");
        let mut rng = crate::rng(config.seed);
        let num_numeric = (config.num_objects as f64 * config.numeric_fraction).round() as usize;

        // Intern every canonical candidate up front so canonical ids are
        // the smallest in their class: quotient representatives (minimum
        // member id) then coincide with the planted-truth ids.
        let mut builder = ClaimStoreBuilder::new();
        let mut canonical: Vec<Vec<ValueId>> = Vec::with_capacity(config.num_objects);
        for o in 0..config.num_objects {
            let ids = (0..config.domain_size)
                .map(|k| builder.value(&canonical_value(config, num_numeric, o, k)))
                .collect();
            canonical.push(ids);
        }
        let truth = GroundTruth::from_pairs(
            (0..config.num_objects).map(|o| (ObjectId::from_index(o), canonical[o][0])),
        );

        let mut num_variant_claims = 0usize;
        for s in 0..config.num_sources {
            let t = if config.num_sources == 1 {
                0.5
            } else {
                s as f64 / (config.num_sources - 1) as f64
            };
            let accuracy =
                config.accuracy_range.0 + t * (config.accuracy_range.1 - config.accuracy_range.0);
            let source = format!("S{s}");
            for o in 0..config.num_objects {
                let k = if rng.gen::<f64>() < accuracy {
                    0
                } else {
                    rng.gen_range(1..config.domain_size)
                };
                let value = if rng.gen::<f64>() < config.variant_rate {
                    num_variant_claims += 1;
                    variant_value(config, num_numeric, o, k, rng.gen::<u32>())
                } else {
                    canonical_value(config, num_numeric, o, k)
                };
                builder.add(&source, &format!("O{o}"), value);
            }
        }

        let store = builder.build();
        let snapshot = store.snapshot();
        Self {
            store,
            snapshot,
            truth,
            num_variant_claims,
            config: config.clone(),
        }
    }

    /// Number of objects whose candidates are numeric strings.
    pub fn num_numeric_objects(&self) -> usize {
        (self.config.num_objects as f64 * self.config.numeric_fraction).round() as usize
    }
}

fn is_numeric_object(num_numeric: usize, o: usize) -> bool {
    o < num_numeric
}

/// The canonical numeric payload of candidate `k` of object `o`: spaced
/// [`NUMERIC_SPACING`] apart so no tolerance chain can bridge candidates.
fn numeric_base(config: &VariantWorldConfig, o: usize, k: usize) -> f64 {
    (o * config.domain_size + k) as f64 * NUMERIC_SPACING
}

fn canonical_value(config: &VariantWorldConfig, num_numeric: usize, o: usize, k: usize) -> Value {
    if is_numeric_object(num_numeric, o) {
        Value::text(format!("{:.1}", numeric_base(config, o, k)))
    } else {
        Value::text(format!("Ada{o} Lovelace{k}"))
    }
}

/// A format-variant of candidate `k` of object `o`, chosen by `pick`.
/// Text variants normalize to the canonical key (case, whitespace, hyphen,
/// diacritic); numeric variants re-render the same magnitude (trailing
/// zeros) or jitter within `numeric_eps / 2` of it.
fn variant_value(
    config: &VariantWorldConfig,
    num_numeric: usize,
    o: usize,
    k: usize,
    pick: u32,
) -> Value {
    if is_numeric_object(num_numeric, o) {
        let base = numeric_base(config, o, k);
        match pick % 2 {
            0 => Value::text(format!("{base:.3}")),
            _ => Value::text(format!("{:.4}", base + config.numeric_eps * 0.5)),
        }
    } else {
        let name = format!("Ada{o} Lovelace{k}");
        match pick % 3 {
            0 => Value::text(name.to_uppercase()),
            1 => Value::text(name.replace(' ', "-")),
            _ => Value::text(name.replacen('a', "á", 1).replace(' ', "  ")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_core::AccuCopy;
    use sailing_linkage::NormalizedString;
    use sailing_model::{HashedDigest, NumericTolerance};

    #[test]
    fn generation_is_deterministic() {
        let a = VariantWorld::generate(&VariantWorldConfig::messy(60, 6, 21));
        let b = VariantWorld::generate(&VariantWorldConfig::messy(60, 6, 21));
        assert_eq!(a.snapshot, b.snapshot);
        assert_eq!(a.num_variant_claims, b.num_variant_claims);
        assert!(a.num_variant_claims > 0);
    }

    #[test]
    fn variant_free_worlds_quotient_to_identity_under_every_backend() {
        let w = VariantWorld::generate(&VariantWorldConfig::federation(40, 5, 3));
        assert_eq!(w.num_variant_claims, 0);
        assert!(w.snapshot.quotient(&NormalizedString).is_identity());
        assert!(w
            .snapshot
            .quotient(&HashedDigest::new(0xfeed))
            .is_identity());
        let eps = NumericTolerance::new(w.config.numeric_eps).unwrap();
        assert!(w.snapshot.quotient(&eps).is_identity());
    }

    #[test]
    fn quotient_representatives_are_canonical_ids() {
        let w = VariantWorld::generate(&VariantWorldConfig::messy(60, 6, 7));
        let num_canonical = w.config.num_objects * w.config.domain_size;
        let q = w.snapshot.quotient(&NormalizedString);
        assert!(!q.is_identity());
        for raw in 0..q.coverage() {
            let rep = q.representative_of(ValueId::from_index(raw));
            if raw < num_canonical {
                // Canonical values represent themselves.
                assert_eq!(rep.index(), raw);
            } else {
                // Text variants collapse back onto a canonical id;
                // numeric variants need the tolerance backend instead.
                assert!(rep.index() <= raw);
            }
        }
    }

    #[test]
    fn matching_backends_strictly_improve_decision_precision() {
        let w = VariantWorld::generate(&VariantWorldConfig::messy(120, 8, 42));
        let precision = |snapshot: &SnapshotView| {
            let result = AccuCopy::with_defaults().run(snapshot);
            w.truth.decision_precision(&result.decisions()).unwrap()
        };
        let exact = precision(&w.snapshot);
        let normalized = precision(
            &w.snapshot
                .quotiented(&w.snapshot.quotient(&NormalizedString)),
        );
        let eps = NumericTolerance::new(w.config.numeric_eps).unwrap();
        let numeric = precision(&w.snapshot.quotiented(&w.snapshot.quotient(&eps)));
        assert!(
            normalized > exact,
            "normalized {normalized} vs exact {exact}"
        );
        assert!(numeric > exact, "numeric {numeric} vs exact {exact}");
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = VariantWorldConfig::messy(10, 4, 0);
        c.num_objects = 0;
        assert!(c.validate().is_err());

        let mut c = VariantWorldConfig::messy(10, 4, 0);
        c.num_sources = 1;
        assert!(c.validate().is_err());

        let mut c = VariantWorldConfig::messy(10, 4, 0);
        c.variant_rate = 1.5;
        assert!(c.validate().is_err());

        let mut c = VariantWorldConfig::messy(10, 4, 0);
        c.numeric_eps = -1.0;
        assert!(c.validate().is_err());
    }
}
