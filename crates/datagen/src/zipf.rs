//! Zipf-distributed sampling for coverage skew.
//!
//! Example 4.1: "the number of computer science books provided by each
//! bookstore varies from 1 to 1095" — a heavily skewed distribution. [`Zipf`]
//! samples ranks with `P(k) ∝ 1 / k^s` via the precomputed CDF.

use rand::Rng as _;

use crate::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution. `n` must be positive; `s ≥ 0`
    /// (`s = 0` is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when there is a single rank (degenerate).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (0 = most probable).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Deterministically scales raw Zipf weights to per-source coverage counts
/// summing approximately to `target_total`, clamped to `[1, max_each]`.
pub fn coverage_counts(n: usize, s: f64, target_total: usize, max_each: usize) -> Vec<usize> {
    assert!(n > 0);
    let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    weights
        .iter()
        .map(|w| {
            let c = (w / total * target_total as f64).round() as usize;
            c.clamp(1, max_each)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one_and_is_monotone() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..100 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
        assert_eq!(z.pmf(100), 0.0);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_is_skewed_and_seeded() {
        let z = Zipf::new(50, 1.2);
        let mut rng = crate::rng(42);
        let mut counts = vec![0usize; 50];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 1000);
        // Determinism.
        let mut rng2 = crate::rng(42);
        let first: Vec<usize> = (0..10).map(|_| z.sample(&mut rng2)).collect();
        let mut rng3 = crate::rng(42);
        let second: Vec<usize> = (0..10).map(|_| z.sample(&mut rng3)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn coverage_counts_hit_target_roughly() {
        let counts = coverage_counts(876, 1.0, 24_364, 1_095);
        assert_eq!(counts.len(), 876);
        assert!(counts.iter().all(|&c| (1..=1095).contains(&c)));
        let total: usize = counts.iter().sum();
        let err = (total as f64 - 24_364.0).abs() / 24_364.0;
        assert!(err < 0.2, "total {total} too far from 24364");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
