//! Churn worlds: streaming-ingestion workloads where sources appear and
//! vanish cohort by cohort.
//!
//! A churn world is built from disjoint *cohorts* — each a block of
//! sources asserting only on its own block of objects — so a delta epoch
//! confined to one cohort has a dirty closure of exactly that cohort
//! (`1/num_cohorts` of the world). Cohort `0` is the **hard cohort**:
//! contested, near-coin-flip sources whose fixpoint converges slowly. It
//! never churns, so a *full* re-analysis re-pays its slow climb on every
//! epoch while the incremental path pays only for the churned cohort.
//! That asymmetry is what the `streaming_ingest` benchmark measures.
//!
//! Epochs alternate per churned source: first it vanishes (all claims
//! retracted), then it reappears with freshly drawn claims, round-robin
//! across the non-hard cohorts. All draws are deterministic by seed.

use rand::Rng as _;
use serde::{Deserialize, Serialize};

use sailing_model::{Delta, GroundTruth, ObjectId, SailingError, SnapshotView, SourceId, ValueId};

/// Configuration of a churn world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Number of disjoint cohorts (including the hard cohort `0`). Each
    /// epoch's delta touches exactly one cohort, so the dirty fraction
    /// per epoch is `1/num_cohorts`; use ≥ 10 for ≤ 10% deltas.
    pub num_cohorts: usize,
    /// Objects per cohort.
    pub objects_per_cohort: usize,
    /// Sources per cohort.
    pub sources_per_cohort: usize,
    /// Values per object (1 true + `domain_size − 1` false).
    pub domain_size: usize,
    /// Number of churn epochs (deltas) to generate.
    pub epochs: usize,
    /// Accuracy of the hard cohort's sources — keep close to `0.5` so the
    /// cohort is genuinely contested and slow to converge.
    pub hard_accuracy: f64,
    /// Accuracy range of the churnable cohorts' sources (spread evenly).
    pub accuracy_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl ChurnConfig {
    /// A ready-to-use streaming workload: `num_cohorts` cohorts of
    /// `sources_per_cohort × objects_per_cohort`, epochs alternating
    /// vanish/reappear round-robin over the churnable cohorts.
    pub fn streaming(
        num_cohorts: usize,
        sources_per_cohort: usize,
        objects_per_cohort: usize,
        epochs: usize,
        seed: u64,
    ) -> Self {
        Self {
            num_cohorts,
            objects_per_cohort,
            sources_per_cohort,
            domain_size: 5,
            epochs,
            hard_accuracy: 0.55,
            accuracy_range: (0.6, 0.95),
            seed,
        }
    }

    /// Checks structural validity.
    pub fn validate(&self) -> Result<(), SailingError> {
        let err = |reason: String| SailingError::config("ChurnConfig", reason);
        if self.num_cohorts < 2 {
            return Err(err(
                "need at least one churnable cohort beyond the hard cohort".into(),
            ));
        }
        if self.objects_per_cohort == 0 || self.sources_per_cohort == 0 {
            return Err(err("cohorts must have sources and objects".into()));
        }
        if self.domain_size < 2 {
            return Err(err("domain_size must be at least 2".into()));
        }
        for (name, a) in [
            ("hard_accuracy", self.hard_accuracy),
            ("accuracy_range.0", self.accuracy_range.0),
            ("accuracy_range.1", self.accuracy_range.1),
        ] {
            if !(0.0..=1.0).contains(&a) {
                return Err(err(format!("{name} {a} outside [0,1]")));
            }
        }
        Ok(())
    }

    fn num_sources(&self) -> usize {
        self.num_cohorts * self.sources_per_cohort
    }

    fn num_objects(&self) -> usize {
        self.num_cohorts * self.objects_per_cohort
    }
}

/// A generated churn world: the initial snapshot plus a sequence of
/// cohort-confined delta epochs.
#[derive(Debug, Clone)]
pub struct ChurnWorld {
    /// The observable world before any churn.
    pub initial: SnapshotView,
    /// One delta per epoch, in arrival order; apply cumulatively with
    /// [`SnapshotView::apply_delta`].
    pub deltas: Vec<Delta>,
    /// The planted truth (stable across churn — sources come and go, the
    /// facts do not).
    pub truth: GroundTruth,
    /// The configuration that produced the world.
    pub config: ChurnConfig,
}

impl ChurnWorld {
    /// Generates the world.
    ///
    /// # Panics
    /// Panics when the configuration is invalid ([`ChurnConfig::validate`]).
    pub fn generate(config: &ChurnConfig) -> Self {
        config.validate().expect("invalid churn config");
        let mut rng = crate::rng(config.seed);
        let spc = config.sources_per_cohort;
        let opc = config.objects_per_cohort;

        // Value ids: object o's candidates are [o*domain .. o*domain+domain),
        // index 0 true — the same namespacing as the snapshot worlds.
        let value_of = |o: usize, k: usize| ValueId::from_index(o * config.domain_size + k);
        let truth = GroundTruth::from_pairs(
            (0..config.num_objects()).map(|o| (ObjectId::from_index(o), value_of(o, 0))),
        );
        let accuracy_of = |cohort: usize, slot: usize| {
            if cohort == 0 {
                config.hard_accuracy
            } else if spc == 1 {
                (config.accuracy_range.0 + config.accuracy_range.1) / 2.0
            } else {
                let t = slot as f64 / (spc - 1) as f64;
                config.accuracy_range.0 + t * (config.accuracy_range.1 - config.accuracy_range.0)
            }
        };

        // One source's full-cohort claim draw, reused for the initial
        // snapshot and for every reappearance.
        let draw = |rng: &mut crate::Rng, cohort: usize, slot: usize| {
            let accuracy = accuracy_of(cohort, slot);
            (0..opc)
                .map(|i| {
                    let o = cohort * opc + i;
                    let k = if rng.gen::<f64>() < accuracy {
                        0
                    } else {
                        rng.gen_range(1..config.domain_size)
                    };
                    (ObjectId::from_index(o), value_of(o, k))
                })
                .collect::<Vec<_>>()
        };

        let mut triples = Vec::new();
        for cohort in 0..config.num_cohorts {
            for slot in 0..spc {
                let sid = SourceId::from_index(cohort * spc + slot);
                for (o, v) in draw(&mut rng, cohort, slot) {
                    triples.push((sid, o, v));
                }
            }
        }
        let initial =
            SnapshotView::from_triples(config.num_sources(), config.num_objects(), triples);

        // Churn epochs: round-robin over the churnable cohorts; within a
        // cohort round-robin over its sources; each chosen source first
        // vanishes, then reappears on its next turn.
        let churnable = config.num_cohorts - 1;
        let mut present = vec![true; config.num_sources()];
        let mut deltas = Vec::with_capacity(config.epochs);
        for e in 0..config.epochs {
            let cohort = 1 + e % churnable;
            let slot = (e / churnable) % spc;
            let sid = SourceId::from_index(cohort * spc + slot);
            let mut b = Delta::builder();
            if present[sid.index()] {
                for i in 0..opc {
                    b.retract(sid, ObjectId::from_index(cohort * opc + i));
                }
            } else {
                for (o, v) in draw(&mut rng, cohort, slot) {
                    b.assert_value(sid, o, v);
                }
            }
            present[sid.index()] = !present[sid.index()];
            deltas.push(b.build());
        }

        Self {
            initial,
            deltas,
            truth,
            config: config.clone(),
        }
    }

    /// The fraction of the world's objects any single epoch touches
    /// (each delta is confined to one cohort).
    pub fn delta_object_fraction(&self) -> f64 {
        1.0 / self.config.num_cohorts as f64
    }

    /// Applies every delta cumulatively, returning the snapshot after
    /// each epoch (`deltas.len()` entries; the initial snapshot is *not*
    /// included).
    pub fn snapshots(&self) -> Vec<SnapshotView> {
        let mut out = Vec::with_capacity(self.deltas.len());
        let mut current = self.initial.clone();
        for delta in &self.deltas {
            current = current.apply_delta(delta);
            out.push(current.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> ChurnWorld {
        ChurnWorld::generate(&ChurnConfig::streaming(10, 3, 12, 8, 42))
    }

    #[test]
    fn generation_is_deterministic_and_cohort_confined() {
        let w1 = world();
        let w2 = world();
        assert_eq!(w1.initial.num_sources(), 30);
        assert_eq!(w1.initial.num_objects(), 120);
        assert_eq!(w1.deltas.len(), 8);
        assert!((w1.delta_object_fraction() - 0.1).abs() < 1e-12);
        for (d1, d2) in w1.deltas.iter().zip(&w2.deltas) {
            assert_eq!(d1.ops(), d2.ops());
        }
        // Every delta touches exactly one non-hard cohort's objects.
        for d in &w1.deltas {
            let cohorts: std::collections::BTreeSet<usize> =
                d.touched_objects().iter().map(|o| o.index() / 12).collect();
            assert_eq!(cohorts.len(), 1, "delta confined to one cohort");
            assert_ne!(cohorts.first(), Some(&0), "hard cohort never churns");
            assert_eq!(d.touched_sources().len(), 1, "one source per epoch");
        }
    }

    #[test]
    fn epochs_alternate_vanish_and_reappear() {
        let w = world();
        // With 9 churnable cohorts and 8 epochs, every epoch hits a
        // distinct cohort on its first pass: all retractions.
        for d in &w.deltas {
            assert_eq!(d.added().count(), 0, "first pass vanishes");
            assert_eq!(d.retracted().count(), 12);
        }
        // A longer run revisits sources: epochs 0-3 vanish cohort 1/2's
        // two sources in turn; epoch 4 returns to cohort 1 slot 0, which
        // is now absent and reappears with fresh claims.
        let long = ChurnWorld::generate(&ChurnConfig::streaming(3, 2, 6, 5, 7));
        for e in 0..4 {
            assert_eq!(long.deltas[e].retracted().count(), 6, "epoch {e} vanishes");
            assert_eq!(long.deltas[e].added().count(), 0);
        }
        assert_eq!(long.deltas[4].added().count(), 6, "second visit reappears");
        assert_eq!(long.deltas[4].retracted().count(), 0);
        assert_eq!(
            long.deltas[4].touched_sources(),
            long.deltas[0].touched_sources()
        );
    }

    #[test]
    fn snapshots_walk_matches_manual_application() {
        let w = world();
        let walked = w.snapshots();
        let mut current = w.initial.clone();
        for (i, d) in w.deltas.iter().enumerate() {
            current = current.apply_delta(d);
            assert_eq!(current.content_hash(), walked[i].content_hash());
        }
        // A vanished source really is gone.
        let first_churned = w.deltas[0].touched_sources()[0];
        assert_eq!(walked[0].coverage(first_churned), 0);
        assert_ne!(w.initial.coverage(first_churned), 0);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = ChurnConfig::streaming(10, 2, 10, 4, 0);
        c.num_cohorts = 1;
        assert!(c.validate().is_err());
        let mut c = ChurnConfig::streaming(10, 2, 10, 4, 0);
        c.domain_size = 1;
        assert!(c.validate().is_err());
        let mut c = ChurnConfig::streaming(10, 2, 10, 4, 0);
        c.hard_accuracy = 1.2;
        assert!(c.validate().is_err());
    }
}
