//! E1 — Table 1 + Example 2.1/3.1: naive voting vs dependence-aware fusion
//! on the researcher-affiliation example.

use sailing_bench::{banner, header, row};
use sailing_core::vote::naive_vote;
use sailing_core::AccuCopy;
use sailing_fusion::{fuse, FusionStrategy};
use sailing_model::fixtures;

fn main() {
    banner(
        "E1",
        "Table 1 — researcher affiliations (Examples 2.1 & 3.1)",
    );
    let (store, truth) = fixtures::table1();
    let snapshot = store.snapshot();

    // The table itself, as the paper prints it.
    header(&["researcher", "S1", "S2", "S3", "S4", "S5", "truth"]);
    for researcher in fixtures::RESEARCHERS {
        let o = store.object_id(researcher).unwrap();
        let mut cells = vec![researcher.to_string()];
        for s in fixtures::AFFILIATION_SOURCES {
            let sid = store.source_id(s).unwrap();
            cells.push(
                store
                    .value(snapshot.value(sid, o).unwrap())
                    .unwrap()
                    .to_string(),
            );
        }
        cells.push(store.value(truth.value(o).unwrap()).unwrap().to_string());
        println!("{}", row(&cells));
    }

    // Example 2.1: naive voting with S1..S3 only vs with the copiers.
    let (indep_store, indep_truth) = fixtures::table1_independent_only();
    let naive_indep = naive_vote(&indep_store.snapshot());
    let naive_full = naive_vote(&snapshot);
    println!(
        "\nNaive voting, S1..S3 only : {:.0}% correct (Dong tied 3-way)",
        indep_truth.decision_precision(&naive_indep).unwrap() * 100.0
    );
    println!(
        "Naive voting, S1..S5      : {:.0}% correct (wrong on 3 of 5)",
        truth.decision_precision(&naive_full).unwrap() * 100.0
    );

    // Strategy ladder.
    println!();
    header(&["method", "precision"]);
    for strategy in [
        FusionStrategy::NaiveVote,
        FusionStrategy::AccuracyVote,
        FusionStrategy::dependence_aware(),
    ] {
        let outcome = fuse(&snapshot, &strategy).expect("valid strategy params");
        println!(
            "{}",
            row(&[
                outcome.strategy.clone(),
                format!(
                    "{:.2}",
                    truth.decision_precision(&outcome.decisions).unwrap()
                ),
            ])
        );
    }

    // Example 3.1: the detected dependence structure.
    let result = AccuCopy::with_defaults().run(&snapshot);
    println!("\nDetected dependences (posterior):");
    header(&["pair", "p(dependent)", "verdict"]);
    for a in fixtures::AFFILIATION_SOURCES {
        for b in fixtures::AFFILIATION_SOURCES {
            let (sa, sb) = (store.source_id(a).unwrap(), store.source_id(b).unwrap());
            if sa >= sb {
                continue;
            }
            let p = result
                .dependences
                .iter()
                .find(|d| (d.a, d.b) == (sa, sb))
                .map(|d| d.probability)
                .unwrap_or(0.0);
            let verdict = if p >= 0.5 { "dependent" } else { "independent" };
            println!(
                "{}",
                row(&[format!("{a}-{b}"), format!("{p:.3}"), verdict.to_string()])
            );
        }
    }
    println!("\nEstimated accuracies:");
    for s in fixtures::AFFILIATION_SOURCES {
        let sid = store.source_id(s).unwrap();
        println!("  {s}: {:.2}", result.accuracies[sid.index()]);
    }
    println!("\nPaper expectation: naive correct on 2/5 with copiers present;");
    println!("dependence-aware fusion correct on 5/5 with {{S3,S4,S5}} flagged.");
}
