//! E9 — temporal detection vs copier laziness and observation granularity
//! (Section 3.2 temporal intuitions + the "incomplete observations"
//! challenge).

use sailing_bench::{banner, f1, header, pair_quality, row};
use sailing_core::params::TemporalParams;
use sailing_core::temporal::detect_all;
use sailing_datagen::temporal::{table3_style, TemporalWorld};

fn main() {
    banner("E9", "Temporal detection vs copier lag");
    header(&["copy lag", "P(S1~S3)", "P(S1~S2)", "est. lag", "F1@0.8"]);
    for &lag in &[0i64, 1, 2, 4, 6] {
        let mut p13 = 0.0;
        let mut p12 = 0.0;
        let mut est = 0.0;
        let mut f = 0.0;
        const SEEDS: u64 = 3;
        for seed in 0..SEEDS {
            let (config, _) = table3_style(80, lag, 900 + seed);
            let world = TemporalWorld::generate(&config);
            let params = TemporalParams {
                max_lag: 6,
                ..Default::default()
            };
            let deps = detect_all(&world.history, &params);
            let find = |a: u32, b: u32| {
                deps.iter()
                    .find(|p| (p.a.0, p.b.0) == (a.min(b), a.max(b)))
                    .map(|p| (p.probability, p.diagnostic))
                    .unwrap_or((0.0, 0.0))
            };
            p13 += find(0, 2).0;
            p12 += find(0, 1).0;
            est += find(0, 2).1;
            let flagged: Vec<_> = deps
                .iter()
                .filter(|p| p.probability > 0.8)
                .map(|p| (p.a, p.b))
                .collect();
            let (precision, recall) = pair_quality(&flagged, &world.planted_pairs);
            f += f1(precision, recall);
        }
        println!(
            "{}",
            row(&[
                lag.to_string(),
                format!("{:.3}", p13 / SEEDS as f64),
                format!("{:.3}", p12 / SEEDS as f64),
                format!("{:.1}", est / SEEDS as f64),
                format!("{:.2}", f / SEEDS as f64),
            ])
        );
    }

    // Incomplete observations: detection when the detector's lag window is
    // too small for the copier's laziness.
    println!("\nDetection window vs actual lag (lag fixed at 4):");
    header(&["max_lag", "P(S1~S3)"]);
    for &max_lag in &[1i64, 2, 4, 8] {
        let (config, _) = table3_style(80, 4, 321);
        let world = TemporalWorld::generate(&config);
        let params = TemporalParams {
            max_lag,
            ..Default::default()
        };
        let deps = detect_all(&world.history, &params);
        let p = deps
            .iter()
            .find(|p| (p.a.0, p.b.0) == (0, 2))
            .map(|p| p.probability)
            .unwrap_or(0.0);
        println!("{}", row(&[max_lag.to_string(), format!("{p:.3}")]));
    }
    println!("\nPaper expectation (shape): lazy copiers stay detectable as long as");
    println!("the observation window covers their lag; once the window is too");
    println!("small the matched updates vanish and detection collapses —");
    println!("the 'incomplete observations' challenge.");
}
