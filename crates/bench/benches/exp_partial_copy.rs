//! E10 — partial copying (Section 3.1's *Partial dependence* challenge):
//! detection quality vs copied fraction, and the overlap-property test's
//! contribution to direction.

use sailing_bench::{banner, f1, header, pair_quality, row};
use sailing_core::partial::overlap_contrast;
use sailing_core::truth::naive_probabilities;
use sailing_core::AccuCopy;
use sailing_datagen::world::{SnapshotWorld, SourceBehavior, WorldConfig};
use sailing_model::SourceId;

fn world(copy_fraction: f64, seed: u64) -> SnapshotWorld {
    let mut sources = Vec::new();
    // Independents cover 150 of the 200 objects each, so partial copiers
    // keep genuinely private items (the overlap-property test needs both a
    // shared and a private subset to contrast).
    for i in 0..6 {
        sources.push(SourceBehavior::Independent {
            accuracy: 0.35 + 0.11 * i as f64,
            coverage: 150,
        });
    }
    // Two partial copiers of the weakest source, with their own coverage.
    for _ in 0..2 {
        sources.push(SourceBehavior::Copier {
            original: 0,
            copy_fraction,
            mutation_rate: 0.02,
            own_accuracy: 0.7,
            own_coverage: 60,
        });
    }
    SnapshotWorld::generate(&WorldConfig {
        num_objects: 200,
        domain_size: 10,
        sources,
        seed,
    })
}

fn main() {
    banner("E10", "Partial-copy detection vs copied fraction");
    header(&["copied frac", "precision", "recall", "F1", "dir ok/res/all"]);
    for &fraction in &[0.1f64, 0.25, 0.5, 0.75, 1.0] {
        let mut precision = 0.0;
        let mut recall = 0.0;
        let mut dir_ok = 0usize;
        let mut dir_resolved = 0usize;
        let mut dir_total = 0usize;
        const SEEDS: u64 = 3;
        for seed in 0..SEEDS {
            let w = world(fraction, 500 + seed);
            let result = AccuCopy::with_defaults().run(&w.snapshot);
            let flagged: Vec<_> = result
                .dependent_pairs(0.7)
                .iter()
                .map(|p| (p.a, p.b))
                .collect();
            let (p, r) = pair_quality(&flagged, &w.planted_pairs);
            precision += p;
            recall += r;
            // Direction: the copier (ids 6, 7) should be the dependent side
            // of any flagged pair with the original (id 0).
            for dep in result.dependent_pairs(0.7) {
                let copier_pair = (dep.a.index() == 0 && dep.b.index() >= 6)
                    || (dep.b.index() == 0 && dep.a.index() >= 6);
                if copier_pair {
                    dir_total += 1;
                    if let Some(d) = dep.dependent_source() {
                        dir_resolved += 1;
                        if d.index() >= 6 {
                            dir_ok += 1;
                        }
                    }
                }
            }
        }
        println!(
            "{}",
            row(&[
                format!("{fraction:.2}"),
                format!("{:.2}", precision / SEEDS as f64),
                format!("{:.2}", recall / SEEDS as f64),
                format!("{:.2}", f1(precision / SEEDS as f64, recall / SEEDS as f64)),
                if dir_total == 0 {
                    "-".into()
                } else {
                    format!("{dir_ok}/{dir_resolved}/{dir_total}")
                },
            ])
        );
    }

    // The overlap-property signal itself (intuition 2).
    println!("\nOverlap-vs-private accuracy contrast of one partial copier (frac 0.5):");
    let w = world(0.5, 512);
    let probs = naive_probabilities(&w.snapshot);
    header(&["subject", "overlap acc", "private acc", "z"]);
    for (name, subject, other) in [
        ("copier vs orig", SourceId(6), SourceId(0)),
        ("honest vs honest", SourceId(3), SourceId(4)),
    ] {
        if let Some(c) = overlap_contrast(&w.snapshot, subject, other, &probs) {
            println!(
                "{}",
                row(&[
                    name.to_string(),
                    format!("{:.2}", c.overlap_accuracy),
                    format!("{:.2}", c.private_accuracy),
                    format!("{:+.1}", c.z_score),
                ])
            );
        }
    }
    println!("\nPaper expectation (shape): detection degrades gracefully as the");
    println!("copied fraction shrinks; the overlap-property contrast separates the");
    println!("partial copier (large |z|) from honest pairs (small |z|).");
}
