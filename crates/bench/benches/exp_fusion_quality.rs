//! E5 — fusion precision vs copier fraction (Example 4.1 Query 2 shape):
//! naive / accu / accu-copy as the copier share of the source population
//! grows.

use sailing_bench::{banner, header, row};
use sailing_datagen::world::{SnapshotWorld, SourceBehavior, WorldConfig};
use sailing_fusion::{fuse, FusionStrategy};

fn world(copiers: usize, seed: u64) -> SnapshotWorld {
    // 8 independents with spread accuracies; the weakest one is the copied
    // original, so every copier amplifies bad data.
    let mut sources = Vec::new();
    for i in 0..8 {
        sources.push(SourceBehavior::Independent {
            accuracy: 0.45 + 0.06 * i as f64,
            coverage: 200,
        });
    }
    for _ in 0..copiers {
        sources.push(SourceBehavior::Copier {
            original: 0,
            copy_fraction: 1.0,
            mutation_rate: 0.02,
            own_accuracy: 0.5,
            own_coverage: 0,
        });
    }
    SnapshotWorld::generate(&WorldConfig {
        num_objects: 200,
        domain_size: 10,
        sources,
        seed,
    })
}

fn main() {
    banner(
        "E5",
        "Fusion precision vs copier count (naive / accu / accu-copy)",
    );
    header(&["copiers", "copier frac", "naive", "accu", "accu-copy"]);
    for copiers in [0usize, 2, 4, 6, 8] {
        let mut scores = [0.0f64; 3];
        const SEEDS: u64 = 3;
        for seed in 0..SEEDS {
            let w = world(copiers, 100 + seed);
            for (i, strategy) in [
                FusionStrategy::NaiveVote,
                FusionStrategy::AccuracyVote,
                FusionStrategy::dependence_aware(),
            ]
            .iter()
            .enumerate()
            {
                let outcome = fuse(&w.snapshot, strategy).expect("valid strategy params");
                scores[i] += w.truth.decision_precision(&outcome.decisions).unwrap();
            }
        }
        let frac = copiers as f64 / (8 + copiers) as f64;
        println!(
            "{}",
            row(&[
                copiers.to_string(),
                format!("{frac:.2}"),
                format!("{:.3}", scores[0] / SEEDS as f64),
                format!("{:.3}", scores[1] / SEEDS as f64),
                format!("{:.3}", scores[2] / SEEDS as f64),
            ])
        );
    }
    println!("\nPaper expectation (shape): naive decays as copiers of bad data gain");
    println!("vote share; accu follows later; accu-copy stays flat by discounting");
    println!("the copied votes.");
}
