//! E3 — Table 3 + Example 3.2: temporal dependence, lazy copiers and
//! outdated-vs-false classification.

use sailing_bench::{banner, header, row};
use sailing_core::params::TemporalParams;
use sailing_core::temporal::{detect_all, gather_evidence};
use sailing_model::{fixtures, TruthClass};

fn main() {
    banner("E3", "Table 3 — temporal affiliations (Example 3.2)");
    let (store, history, truth) = fixtures::table3();

    header(&["researcher", "S1", "S2", "S3"]);
    for researcher in fixtures::RESEARCHERS {
        let o = store.object_id(researcher).unwrap();
        let mut cells = vec![researcher.to_string()];
        for s in ["S1", "S2", "S3"] {
            let sid = store.source_id(s).unwrap();
            cells.push(
                history
                    .trace(sid, o)
                    .map(|t| {
                        t.updates()
                            .iter()
                            .map(|&(y, v)| format!("({y},{})", store.value(v).unwrap()))
                            .collect::<Vec<_>>()
                            .join(" ")
                    })
                    .unwrap_or_default(),
            );
        }
        println!("{}", row(&cells));
    }

    let params = TemporalParams::default();
    let deps = detect_all(&history, &params);
    println!("\nTemporal dependence posteriors:");
    header(&["pair", "p(dependent)", "est. lag (yr)"]);
    for dep in &deps {
        println!(
            "{}",
            row(&[
                format!(
                    "{}-{}",
                    store.source_name(dep.a).unwrap(),
                    store.source_name(dep.b).unwrap()
                ),
                format!("{:.3}", dep.probability),
                format!("{}", dep.diagnostic),
            ])
        );
    }

    let s1 = store.source_id("S1").unwrap();
    let s2 = store.source_id("S2").unwrap();
    let s3 = store.source_id("S3").unwrap();
    let ev13 = gather_evidence(&history, s1, s3, &params);
    let ev12 = gather_evidence(&history, s1, s2, &params);
    println!("\nMatched-update evidence:");
    header(&["pair", "repeats", "of updates", "median lag"]);
    println!(
        "{}",
        row(&[
            "S1→S3".into(),
            ev13.matched_b_after_a.to_string(),
            ev13.updates_b.to_string(),
            format!("{:?}", ev13.median_lag_b_after_a()),
        ])
    );
    println!(
        "{}",
        row(&[
            "S1→S2".into(),
            ev12.matched_b_after_a.to_string(),
            ev12.updates_b.to_string(),
            format!("{:?}", ev12.median_lag_b_after_a()),
        ])
    );

    println!("\nS2's 2007 values classified against the temporal truth:");
    header(&["researcher", "value", "class"]);
    for researcher in fixtures::RESEARCHERS {
        let o = store.object_id(researcher).unwrap();
        if let Some(v) = history.value_at(s2, o, 2007) {
            let class = match truth.classify(o, v, 2007) {
                Some(TruthClass::CurrentTrue) => "current-true",
                Some(TruthClass::OutdatedTrue) => "outdated-true",
                Some(TruthClass::False) => "false",
                None => "unknown",
            };
            println!(
                "{}",
                row(&[
                    researcher.to_string(),
                    store.value(v).unwrap().to_string(),
                    class.to_string(),
                ])
            );
        }
    }

    println!("\nPaper expectation: S3 flagged as (lazy, ≈1 yr) copier of S1; S2");
    println!("independent; S2's stale values classified outdated-true, not false.");
}
