//! E4 — Example 4.1: the AbeBooks corpus statistics and the
//! ≥10-shared-books dependence screening.
//!
//! The paper reports: 876 bookstores, 1263 books, 24364 listings; 471 pairs
//! sharing ≥10 books and very likely dependent; 1–23 author variants per
//! book (avg 4); 1–1095 books per store; accuracy 0–0.92. This bench
//! regenerates the corpus at full scale, prints the same statistics, and
//! runs the screening + detection.

use sailing_bench::{banner, header, pair_quality, row};
use sailing_core::{AccuCopy, DetectionParams};
use sailing_datagen::bookstores::{BookCorpus, BookCorpusConfig};

fn main() {
    banner("E4", "Example 4.1 — AbeBooks-like corpus statistics");
    let config = BookCorpusConfig::default();
    let corpus = BookCorpus::generate(&config);
    let stats = corpus.stats();

    header(&["statistic", "paper", "generated"]);
    let rows: Vec<(&str, String, String)> = vec![
        ("bookstores", "876".into(), stats.stores.to_string()),
        ("books", "1263".into(), stats.books.to_string()),
        ("listings", "24364".into(), stats.listings.to_string()),
        (
            "authors/book",
            "1-23 avg 4".into(),
            format!(
                "{}-{} avg {:.1}",
                stats.author_variants.0, stats.author_variants.2, stats.author_variants.1
            ),
        ),
        (
            "books/store",
            "1-1095".into(),
            format!("{}-{}", stats.coverage.0, stats.coverage.1),
        ),
        (
            "accuracy",
            "0-0.92".into(),
            format!("{:.2}-{:.2}", stats.accuracy.0, stats.accuracy.1),
        ),
        (
            "pairs ≥10 shared",
            "471 dependent".into(),
            format!(
                "{} candidates / {} planted",
                stats.candidate_pairs_min_shared,
                corpus.planted_pairs.len()
            ),
        ),
    ];
    for (name, paper, generated) in rows {
        println!("{}", row(&[name.to_string(), paper, generated]));
    }

    // Record linkage effect.
    let raw = corpus.author_claim_store(false);
    let linked = corpus.author_claim_store(true);
    println!(
        "\nRecord linkage: {} raw author strings → {} after per-book clustering",
        raw.num_values(),
        linked.num_values()
    );

    // Dependence screening and detection at the paper's threshold.
    let params = DetectionParams {
        min_overlap: config.min_shared_books,
        threads: 4,
        ..DetectionParams::default()
    };
    let result = AccuCopy::new(params).unwrap().run(&linked.snapshot());
    println!("\nDetection over candidate pairs (≥10 shared books):");
    header(&["threshold", "detected", "precision", "recall"]);
    for threshold in [0.5, 0.7, 0.9] {
        let detected: Vec<_> = result
            .dependent_pairs(threshold)
            .iter()
            .map(|p| (p.a, p.b))
            .collect();
        let (precision, recall) = pair_quality(&detected, &corpus.planted_pairs);
        println!(
            "{}",
            row(&[
                format!("{threshold:.1}"),
                detected.len().to_string(),
                format!("{precision:.2}"),
                format!("{recall:.2}"),
            ])
        );
    }
    println!("\nPaper expectation: the generated marginals match the crawl's published");
    println!("figures, and the planted copier clusters dominate the screened pairs.");
}
