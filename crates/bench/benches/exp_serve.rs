//! E8 — the serving tier under concurrency: closed-loop multi-threaded
//! throughput and tail latency of `sailing-serve` over a specialist
//! world, plus a live demonstration of single-flight admission.
//!
//! Three sections:
//!
//! * **single_flight_herd** — K threads cold-admit the same snapshot
//!   through a barrier; the counting strategy proves discovery ran
//!   exactly once while `inflight_waits` accounts for the rest of the
//!   herd. Asserted on every run, including smoke.
//! * **throughput** — for each thread count, a fresh `ServeHandle` is
//!   hammered with the default read-heavy mix (70% top-k, 10% each fuse /
//!   recommend / source-reports); the run records wall time, aggregate
//!   queries/sec, and per-endpoint p50/p99/mean from the serve
//!   histograms.
//! * **epoch_churn** — the same closed loop with a writer toggling the
//!   epoch between two snapshots the whole time, recording throughput
//!   under publication churn and the number of swaps observed.
//!
//! Besides the stdout table, the run emits `BENCH_serve.json` at the
//! repository root (ROADMAP.md, *Benchmark JSON convention*): schema
//! versioned, `host_cpus` recorded, smoke runs suffixed `.smoke.json`.
//! The parallel-scaling gate (more threads must not lose throughput)
//! only fires on non-smoke runs with `threads * 2 <= host_cpus`, so a
//! one-core build box records the numbers without asserting shape.
//!
//! Set `SAILING_BENCH_SMOKE=1` for the seconds-scale CI run.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use serde::Serialize;

use sailing::core::{AccuCopy, PipelineResult, TruthDiscovery};
use sailing::engine::SailingEngine;
use sailing::model::SnapshotView;
use sailing_bench::{banner, header, row};
use sailing_datagen::world::{SnapshotWorld, WorldConfig};
use sailing_serve::{Endpoint, MetricsSnapshot, ServeHandle, Workload};

/// Counts discovery runs so the herd section can prove single-flight.
struct CountingStrategy {
    inner: AccuCopy,
    runs: Arc<AtomicUsize>,
}

impl TruthDiscovery for CountingStrategy {
    fn name(&self) -> &'static str {
        "accu-copy"
    }

    fn discover(&self, snapshot: &SnapshotView) -> PipelineResult {
        self.run_warm(snapshot, None)
    }

    fn run_warm(&self, snapshot: &SnapshotView, prior: Option<&PipelineResult>) -> PipelineResult {
        self.runs.fetch_add(1, Ordering::SeqCst);
        // Stretch the leader's run so the herd demonstrably overlaps it
        // even on a one-core host (where an instant run would serialize
        // the "herd" into leader-then-hits).
        std::thread::sleep(std::time::Duration::from_millis(25));
        self.inner.run_warm(snapshot, prior)
    }
}

#[derive(Serialize)]
struct EndpointPoint {
    endpoint: &'static str,
    requests: u64,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
}

#[derive(Serialize)]
struct ThroughputPoint {
    threads: usize,
    queries: u64,
    elapsed_ms: f64,
    qps: f64,
    endpoints: Vec<EndpointPoint>,
}

#[derive(Serialize)]
struct HerdPoint {
    threads: usize,
    discovery_runs: usize,
    inflight_waits: u64,
    cache_hits: u64,
}

#[derive(Serialize)]
struct ChurnPoint {
    threads: usize,
    queries: u64,
    elapsed_ms: f64,
    qps: f64,
    epoch_swaps: u64,
}

#[derive(Serialize)]
struct BenchReport {
    experiment: &'static str,
    schema: u32,
    smoke: bool,
    world: &'static str,
    host_cpus: usize,
    single_flight_herd: HerdPoint,
    throughput: Vec<ThroughputPoint>,
    epoch_churn: ChurnPoint,
}

fn endpoint_points(metrics: &MetricsSnapshot) -> Vec<EndpointPoint> {
    Endpoint::ALL
        .iter()
        .filter(|e| !matches!(e, Endpoint::Admit))
        .map(|&e| {
            let stats = metrics.endpoint(e);
            EndpointPoint {
                endpoint: stats.endpoint,
                requests: stats.requests,
                p50_us: stats.p50_us,
                p99_us: stats.p99_us,
                mean_us: stats.mean_us,
            }
        })
        .collect()
}

/// One closed loop: `threads` readers each drive `per_thread` queries.
/// Returns the wall time in milliseconds and the final metrics.
fn closed_loop(
    handle: &ServeHandle,
    threads: usize,
    per_thread: usize,
    num_objects: usize,
) -> (f64, MetricsSnapshot) {
    let barrier = Barrier::new(threads);
    let start = Instant::now();
    let fingerprint: u64 = std::thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let handle = handle.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut reader = handle.reader();
                    let mut workload = Workload::new(t as u64 + 1, num_objects);
                    barrier.wait();
                    let mut fp = 0u64;
                    for _ in 0..per_thread {
                        let query = workload.next_query();
                        fp += Workload::execute(&mut reader, &query) as u64;
                    }
                    fp
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(fingerprint > 0, "closed loop did no observable work");
    (elapsed_ms, handle.metrics())
}

fn main() {
    let smoke = std::env::var("SAILING_BENCH_SMOKE").is_ok();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (sources, objects, coverage) = if smoke { (20, 80, 30) } else { (40, 200, 60) };
    let per_thread = if smoke { 2_000 } else { 20_000 };
    let thread_counts: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4] };

    banner(
        "E8",
        "serving tier: closed-loop concurrency, single-flight admission",
    );
    println!(
        "world: specialist {sources}x{objects} (coverage {coverage}); host_cpus = {host_cpus}; \
         {per_thread} queries/thread{}",
        if smoke { " [smoke]" } else { "" }
    );

    let world = SnapshotWorld::generate(&WorldConfig::specialist(sources, objects, coverage, 7));
    let snapshot = Arc::new(world.snapshot);
    let num_objects = snapshot.num_objects();

    // ---- Section 1: the thundering herd, proven single-flight. ----
    let herd_threads = 8;
    let runs = Arc::new(AtomicUsize::new(0));
    let engine = SailingEngine::builder()
        .strategy(CountingStrategy {
            inner: AccuCopy::with_defaults(),
            runs: Arc::clone(&runs),
        })
        .build()
        .expect("default parameters are valid");
    let warmup = SnapshotWorld::generate(&WorldConfig::specialist(6, 16, 8, 99));
    let handle = ServeHandle::new(engine, Arc::new(warmup.snapshot));
    let before = runs.load(Ordering::SeqCst);
    let barrier = Barrier::new(herd_threads);
    std::thread::scope(|scope| {
        for _ in 0..herd_threads {
            let handle = handle.clone();
            let snapshot = Arc::clone(&snapshot);
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                handle.admit(snapshot);
            });
        }
    });
    let herd_runs = runs.load(Ordering::SeqCst) - before;
    let herd_metrics = handle.metrics();
    assert_eq!(
        herd_runs, 1,
        "single-flight violated: {herd_threads} concurrent admissions ran discovery {herd_runs}x"
    );
    assert_eq!(
        herd_metrics.cache_hits + herd_metrics.inflight_waits,
        herd_threads as u64 - 1,
        "every non-leader must either wait in flight or hit the landed cache"
    );
    assert!(
        herd_metrics.inflight_waits >= 1,
        "someone must have adopted the in-flight computation"
    );
    let herd = HerdPoint {
        threads: herd_threads,
        discovery_runs: herd_runs,
        inflight_waits: herd_metrics.inflight_waits,
        cache_hits: herd_metrics.cache_hits,
    };
    println!(
        "\nsingle-flight herd: {herd_threads} cold admissions -> {herd_runs} discovery run \
         ({} waited, {} hit after landing)",
        herd.inflight_waits, herd.cache_hits
    );

    // ---- Section 2: closed-loop throughput per thread count. ----
    println!();
    header(&[
        "threads",
        "queries",
        "ms",
        "qps",
        "topk p50us",
        "topk p99us",
    ]);
    let mut throughput = Vec::new();
    for &threads in &thread_counts {
        // A fresh handle per point keeps the counters and histograms
        // scoped to this run.
        let handle = ServeHandle::new(SailingEngine::with_defaults(), Arc::clone(&snapshot));
        let (elapsed_ms, metrics) = closed_loop(&handle, threads, per_thread, num_objects);
        let queries = metrics.query_requests();
        assert_eq!(queries, (threads * per_thread) as u64);
        let qps = queries as f64 / (elapsed_ms / 1e3);
        let topk = metrics.endpoint(Endpoint::TopK);
        println!(
            "{}",
            row(&[
                threads.to_string(),
                queries.to_string(),
                format!("{elapsed_ms:.1}"),
                format!("{qps:.0}"),
                format!("{:.1}", topk.p50_us),
                format!("{:.1}", topk.p99_us),
            ])
        );
        throughput.push(ThroughputPoint {
            threads,
            queries,
            elapsed_ms,
            qps,
            endpoints: endpoint_points(&metrics),
        });
    }

    // The scaling gate, only where the host can actually exhibit scaling
    // (trajectory runs on multi-core hosts; CI smoke and one-core boxes
    // record the numbers without asserting shape).
    if !smoke {
        let base = throughput[0].qps;
        for point in &throughput[1..] {
            if point.threads * 2 <= host_cpus {
                assert!(
                    point.qps >= base * 0.9,
                    "throughput regressed under parallelism on {host_cpus} cores: \
                     {} qps at 1 thread vs {} qps at {} threads",
                    base,
                    point.qps,
                    point.threads
                );
            }
        }
    }

    // ---- Section 3: throughput under epoch churn. ----
    let churn_threads = *thread_counts.last().unwrap();
    let world_b = SnapshotWorld::generate(&WorldConfig::specialist(sources, objects, coverage, 8));
    let snap_b = Arc::new(world_b.snapshot);
    let handle = ServeHandle::new(SailingEngine::with_defaults(), Arc::clone(&snapshot));
    handle.admit(Arc::clone(&snap_b));
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let fingerprint: u64 = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..churn_threads)
            .map(|t| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let mut reader = handle.reader();
                    let mut workload = Workload::new(100 + t as u64, num_objects);
                    let mut fp = 0u64;
                    for _ in 0..per_thread {
                        let query = workload.next_query();
                        fp += Workload::execute(&mut reader, &query) as u64;
                    }
                    fp
                })
            })
            .collect();
        let writer = {
            let handle = handle.clone();
            let stop = &stop;
            let (a, b) = (Arc::clone(&snapshot), Arc::clone(&snap_b));
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    handle.admit(Arc::clone(&a));
                    handle.admit(Arc::clone(&b));
                }
            })
        };
        let fp = readers.into_iter().map(|h| h.join().unwrap()).sum();
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        fp
    });
    let churn_elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(fingerprint > 0);
    let churn_metrics = handle.metrics();
    let churn_queries = churn_metrics.query_requests();
    let churn = ChurnPoint {
        threads: churn_threads,
        queries: churn_queries,
        elapsed_ms: churn_elapsed_ms,
        qps: churn_queries as f64 / (churn_elapsed_ms / 1e3),
        epoch_swaps: churn_metrics.epoch_swaps,
    };
    println!(
        "\nepoch churn ({churn_threads} readers + toggling writer): {:.0} qps across {} swaps",
        churn.qps, churn.epoch_swaps
    );
    assert!(
        churn.epoch_swaps >= 3,
        "the writer must have actually churned the epoch"
    );

    let report = BenchReport {
        experiment: "exp_serve",
        schema: 1,
        smoke,
        world: "specialist",
        host_cpus,
        single_flight_herd: herd,
        throughput,
        epoch_churn: churn,
    };
    let file_name = if smoke {
        "BENCH_serve.smoke.json"
    } else {
        "BENCH_serve.json"
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file_name);
    std::fs::write(&path, serde_json::to_string(&report).unwrap()).expect("write bench report");
    println!("\nwrote {}", path.display());
    println!("\nExpectation (shape): reads scale with cores (they never take a");
    println!("lock once the epoch settles), single-flight keeps a cold herd to");
    println!("one discovery run, and epoch churn costs readers one pointer");
    println!("refresh per swap, not a stall.");
}
