//! E11 — the *correlated information* challenge (Section 3.1): false-positive
//! rate of dissimilarity/similarity detection on honest consensus-followers,
//! with and without per-item residualisation.

use sailing_bench::{banner, header, row};
use sailing_core::dissim::{detect_all, DissimParams};
use sailing_datagen::ratings::{RaterBehavior, RatingWorld, RatingWorldConfig};

/// A world of honest raters who all follow item popularity to a varying
/// degree — zero real dependence, lots of agreement.
fn follower_world(noise: f64, seed: u64) -> RatingWorld {
    let raters = (0..10).map(|_| RaterBehavior::Follower { noise }).collect();
    RatingWorld::generate(&RatingWorldConfig {
        num_items: 250,
        scale_max: 2,
        raters,
        coverage: 1.0,
        seed,
    })
}

fn main() {
    banner(
        "E11",
        "False positives on correlated (but independent) opinions",
    );
    header(&["noise", "FP rate (resid.)", "FP rate (no resid.)"]);
    for &noise in &[0.1f64, 0.2, 0.3, 0.5] {
        let mut fp = [0usize; 2];
        let mut total = 0usize;
        const SEEDS: u64 = 2;
        for seed in 0..SEEDS {
            let world = follower_world(noise, 1100 + seed);
            for (i, residualize) in [true, false].into_iter().enumerate() {
                let params = DissimParams {
                    residualize,
                    ..Default::default()
                };
                let deps = detect_all(&world.view, &params);
                fp[i] += deps.iter().filter(|d| d.probability > 0.8).count();
                if i == 0 {
                    total += deps.len();
                }
            }
        }
        println!(
            "{}",
            row(&[
                format!("{noise:.1}"),
                format!("{:.3}", fp[0] as f64 / total.max(1) as f64),
                format!("{:.3}", fp[1] as f64 / total.max(1) as f64),
            ])
        );
    }

    // Sanity: with residualisation on, a genuine copier is still caught.
    let config = RatingWorldConfig {
        num_items: 250,
        scale_max: 2,
        raters: vec![
            RaterBehavior::Follower { noise: 0.2 },
            RaterBehavior::Follower { noise: 0.3 },
            RaterBehavior::Follower { noise: 0.2 },
            RaterBehavior::Follower { noise: 0.3 },
            RaterBehavior::Copier { of: 0, rate: 0.9 },
        ],
        coverage: 1.0,
        seed: 77,
    };
    let world = RatingWorld::generate(&config);
    let deps = detect_all(&world.view, &DissimParams::default());
    let copier = deps
        .iter()
        .find(|d| (d.a.0, d.b.0) == (0, 4))
        .map(|d| d.probability)
        .unwrap_or(0.0);
    println!("\nControl: genuine copier pair posterior with residualisation: {copier:.3}");
    println!("\nPaper expectation (shape): without the correction, agreement driven");
    println!("by item popularity ('Star Wars fans') floods detection with false");
    println!("positives; residualisation suppresses them while true dependents");
    println!("remain detectable via co-deviation.");
}
