//! E2 — Table 2 + Example 2.2: dissimilarity-dependence between movie
//! reviewers, on the exact fixture and at scale.

use sailing_bench::{banner, header, row};
use sailing_core::dissim::{detect_all, DissimParams, RatingView};
use sailing_core::report::DependenceKind;
use sailing_datagen::ratings::{inverter_world, RatingWorld};
use sailing_fusion::{aggregate_ratings, RatingAggregate};
use sailing_model::fixtures;

fn main() {
    banner("E2", "Table 2 — movie ratings (Example 2.2)");
    let store = fixtures::table2();
    let view = RatingView::from_store(&store, 2);

    header(&["movie", "R1", "R2", "R3", "R4"]);
    for movie in fixtures::MOVIES {
        let o = store.object_id(movie).unwrap();
        let mut cells = vec![movie.to_string()];
        for r in fixtures::REVIEWERS {
            let sid = store.source_id(r).unwrap();
            cells.push(
                fixtures::rating::label(&sailing_model::Value::Rating(
                    view.rating(sid, o).unwrap(),
                ))
                .to_string(),
            );
        }
        println!("{}", row(&cells));
    }

    println!("\nPairwise dependence posteriors (3 movies — soft, ranking matters):");
    let mut deps = detect_all(&view, &DissimParams::default());
    deps.sort_by(|a, b| b.probability.total_cmp(&a.probability));
    header(&["pair", "p(dependent)", "kind"]);
    for dep in &deps {
        println!(
            "{}",
            row(&[
                format!(
                    "{}-{}",
                    store.source_name(dep.a).unwrap(),
                    store.source_name(dep.b).unwrap()
                ),
                format!("{:.3}", dep.probability),
                format!("{:?}", dep.kind),
            ])
        );
    }

    // Naive vs aware aggregation on the fixture.
    let agg = aggregate_ratings(&view, &DissimParams::default());
    println!("\nAggregated rating per movie (0 = Bad .. 2 = Good):");
    header(&["movie", "naive mean", "aware mean"]);
    for (i, movie) in fixtures::MOVIES.iter().enumerate() {
        println!(
            "{}",
            row(&[
                movie.to_string(),
                format!("{:.2}", agg.naive_mean[i].unwrap()),
                format!("{:.2}", agg.aware_mean[i].unwrap()),
            ])
        );
    }

    // The same phenomenon at scale, where the posterior saturates.
    println!("\nScaled world: 300 movies, 8 followers + 1 maverick + 2 inverters:");
    let world = RatingWorld::generate(&inverter_world(300, 8, 2, 4242));
    let agg = aggregate_ratings(&world.view, &DissimParams::default());
    let dissim_pairs = agg
        .dependences
        .iter()
        .filter(|d| d.kind == DependenceKind::Dissimilarity && d.probability > 0.9)
        .count();
    let unbiased = world.unbiased_consensus();
    header(&["metric", "naive", "aware"]);
    println!(
        "{}",
        row(&[
            "MSE vs unbiased".to_string(),
            format!(
                "{:.4}",
                RatingAggregate::mse_against(&agg.naive_mean, &unbiased)
            ),
            format!(
                "{:.4}",
                RatingAggregate::mse_against(&agg.aware_mean, &unbiased)
            ),
        ])
    );
    println!("high-confidence dissimilarity pairs: {dissim_pairs}");
    println!("inverter weights: {:?}", &agg.rater_weights[9..]);
    println!("\nPaper expectation: R1-R4 is the top dissimilarity pair; the naive");
    println!("aggregate shifts visibly once R4 is discounted.");
}
