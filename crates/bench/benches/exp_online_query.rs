//! E6 — online query answering (Example 4.1 Queries 1/4 shape): answer
//! quality vs number of sources probed, for each ordering policy, plus
//! top-k early termination.

use sailing_bench::{banner, header, row};
use sailing_core::{AccuCopy, DetectionParams};
use sailing_datagen::bookstores::{BookCorpus, BookCorpusConfig};
use sailing_query::topk::top_k_values_for_object;
use sailing_query::{order_sources, OnlineSession, OrderingPolicy};

fn main() {
    banner("E6", "Online answering: quality vs sources probed");
    let corpus = BookCorpus::generate(&BookCorpusConfig::small(606));
    let linked = corpus.author_claim_store(true);
    let snapshot = linked.snapshot();
    let pilot = AccuCopy::with_defaults().run(&snapshot);
    let deps = pilot.dependence_matrix();

    let checkpoints = [2usize, 5, 10, 20, 40];
    header(&["policy", "k=2", "k=5", "k=10", "k=20", "k=40"]);
    for policy in [
        OrderingPolicy::Random(1),
        OrderingPolicy::ByCoverage,
        OrderingPolicy::ByAccuracy,
        OrderingPolicy::GreedyIndependent,
    ] {
        let order = order_sources(&snapshot, &pilot.accuracies, &deps, &policy);
        let mut session = OnlineSession::new(
            &snapshot,
            pilot.accuracies.clone(),
            deps.clone(),
            DetectionParams::default(),
        );
        let steps = session.run_order(&order[..40.min(order.len())]);
        let mut cells = vec![policy.name().to_string()];
        for &k in &checkpoints {
            let quality = steps
                .get(k - 1)
                .map(|s| corpus.score_decisions(&linked, &s.decisions))
                .unwrap_or(0.0);
            cells.push(format!("{quality:.3}"));
        }
        println!("{}", row(&cells));
    }

    // Top-k with early termination on a popular book.
    let popular = (0..snapshot.num_objects())
        .map(sailing_model::ObjectId::from_index)
        .max_by_key(|&o| snapshot.support(o))
        .unwrap();
    let order = order_sources(
        &snapshot,
        &pilot.accuracies,
        &deps,
        &OrderingPolicy::GreedyIndependent,
    );
    // Weight = accuracy × independence, the dependence-aware support.
    let reports = pilot.source_reports(&snapshot);
    let weights: Vec<f64> = reports
        .iter()
        .map(|r| r.accuracy * r.mean_independence)
        .collect();
    let result = top_k_values_for_object(&snapshot, popular, &order, &weights, 1);
    println!(
        "\nTop-1 author list for the best-covered book: stabilised after {} of {} probes (early stop: {})",
        result.probed,
        order.len(),
        result.early_stopped
    );

    println!("\nPaper expectation (shape): the dependence-aware greedy order reaches");
    println!("high quality after a handful of probes; random needs many more; top-k");
    println!("terminates before exhausting the sources.");
}
