//! E7 — scalability (Section 1's "scalable manner"): pairwise detection
//! wall-time vs number of sources, with and without shared-object pruning,
//! sequential vs parallel, and **before vs after** the columnar data-plane
//! refactor.
//!
//! "Before" is a faithful re-implementation of the pre-CSR hot loop: one
//! `HashMap<ObjectId, ValueId>` per source probed per overlap candidate,
//! `effective_n_false` recomputed — including a fresh hash count — for
//! every shared object of every pair, and all nine hypothesis
//! probabilities recomputed per shared object. "After" is the live
//! [`detect_all_with_pairs`] path over the CSR snapshot.
//!
//! Besides the stdout table, the run emits `BENCH_scalability.json` at the
//! repository root so future PRs have a machine-readable perf trajectory
//! to regress against (see ROADMAP.md, *Benchmark JSON convention*).
//!
//! Since the timeline-native engine API landed, the report also carries a
//! `timeline_warm_vs_cold` section: walking a seeded temporal world epoch
//! by epoch through `SailingEngine::timeline` (warm-started incremental
//! discovery) versus cold per-epoch `analyze()` — epochs, total
//! iterations to converge, and wall time for both paths.
//!
//! Schema 3 adds the persistence/batching sections: `persist_reuse`
//! measures a first engine cold-computing a timeline (write-through to a
//! persistent store) against a second engine serving the identical
//! timeline purely from disk — the second process must spend **zero**
//! discovery iterations and come out ≥ 2× faster; `parallel_cold_epochs`
//! measures the sequential warm-start chain against
//! `TimelineSession::prefetch_cold`'s parallel cold batch at several
//! thread counts (the batch must win on multi-core hosts; on one core it
//! is recorded as the overhead it is).
//!
//! Schema 4 adds `async_write_behind`: the per-analysis latency of the
//! engine with no persistence, with the synchronous write-behind store,
//! and with the **async writer thread** (`persist_async`) — the async
//! path must keep the analysis thread syscall-free (asserted via the
//! store's writer-thread record) and, on non-smoke runs, land within 5%
//! of the persist-off latency.
//!
//! Schema 5 adds `streaming_ingest`: a churn world streamed through the
//! ingest subsystem (claim log → sealed deltas → `run_delta`) against a
//! full warm re-analysis of every post-delta snapshot — total
//! iterations (strictly fewer, asserted on every run) and wall time
//! (strictly lower, asserted on quiet trajectory runs) for both paths,
//! with 1e-9 posterior parity gated always.
//!
//! Schema 6 adds `sharded_analysis`: the monolithic
//! `SailingEngine::analyze` against `analyze_sharded` at several worker
//! counts — the pair-sharded decomposition is contractually **bitwise**
//! identical, so the recorded accuracy gap must be exactly zero (gated on
//! every run, smoke included); wall-clock is informational on a 1-core
//! box and recorded as the thread overhead it is.
//!
//! Schema 7 adds `equivalence`: the value-equivalence quotient layer on
//! the messy variant world — the cost of building a `NormalizedString`
//! quotient, the post-refactor `Exact` engine path against the direct
//! pipeline entry (the `Exact` backend must be free: overhead gated
//! ≤ 1.02× on every run, min-of-N alternating rounds), and decision
//! precision under exact / normalized-string / numeric-tolerance
//! backends — the quotient backends must strictly beat exact identity on
//! the variant world (deterministic, gated on every run).
//!
//! Set `SAILING_BENCH_SMOKE=1` for a seconds-scale smoke run (used by CI
//! to keep this target from rotting); the JSON is then suffixed
//! `.smoke.json` so a smoke run never overwrites a real trajectory point.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use sailing::engine::SailingEngine;
use sailing_bench::{banner, header, row};
use sailing_core::copy::posterior;
use sailing_core::pairs::{all_pairs_count, candidate_pairs, detect_all_with_pairs};
use sailing_core::truth::{naive_probabilities, ValueProbabilities};
use sailing_core::{DetectionParams, PairDependence};
use sailing_datagen::churn::{ChurnConfig, ChurnWorld};
use sailing_datagen::temporal::{table3_style, TemporalWorld};
use sailing_datagen::variants::{VariantWorld, VariantWorldConfig};
use sailing_datagen::world::{SnapshotWorld, WorldConfig};
use sailing_linkage::NormalizedString;
use sailing_model::{NumericTolerance, ObjectId, SnapshotView, SourceId, ValueId};

/// The pre-refactor (hash-layout) pairwise detection, preserved here as the
/// measured baseline. Mirrors the seed implementation operation for
/// operation; do not "optimise" it — its cost profile *is* the data point.
mod reference {
    use super::*;

    pub struct HashedSnapshot {
        pub per_source: Vec<HashMap<ObjectId, ValueId>>,
        pub per_object: Vec<Vec<(SourceId, ValueId)>>,
    }

    impl HashedSnapshot {
        pub fn from_view(view: &SnapshotView) -> Self {
            let per_source = (0..view.num_sources())
                .map(|s| view.assertions_of(SourceId::from_index(s)).collect())
                .collect();
            let per_object = (0..view.num_objects())
                .map(|o| view.assertions_on(ObjectId::from_index(o)).to_vec())
                .collect();
            Self {
                per_source,
                per_object,
            }
        }

        /// The old `distinct_values`: a fresh hash count (plus the sort the
        /// old `value_counts` always performed) per call.
        fn distinct_values(&self, object: ObjectId) -> usize {
            let mut counts: HashMap<ValueId, usize> = HashMap::new();
            for &(_, v) in &self.per_object[object.index()] {
                *counts.entry(v).or_insert(0) += 1;
            }
            let mut out: Vec<_> = counts.into_iter().collect();
            out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            out.len()
        }

        fn effective_n_false(&self, object: ObjectId, params: &DetectionParams) -> usize {
            params
                .n_false_values
                .max(self.distinct_values(object).saturating_sub(1))
                .max(1)
        }
    }

    fn independent_probs(aa: f64, ab: f64, n: f64) -> (f64, f64, f64) {
        let pt = aa * ab;
        let pf = (1.0 - aa) * (1.0 - ab) / n;
        let pd = (1.0 - pt - pf).max(1e-12);
        (pt, pf, pd)
    }

    fn copying_probs(a_orig: f64, a_copier: f64, c: f64, mu: f64, n: f64) -> (f64, f64, f64) {
        let (pt_ind, pf_ind, pd_ind) = independent_probs(a_orig, a_copier, n);
        let keep = c * (1.0 - mu);
        let pt = keep * a_orig + (1.0 - c) * pt_ind;
        let pf = keep * (1.0 - a_orig) + (1.0 - c) * pf_ind;
        let pd = (c * mu + (1.0 - c) * pd_ind).max(1e-12);
        (pt, pf, pd)
    }

    pub fn detect_all(
        hashed: &HashedSnapshot,
        pairs: &[(SourceId, SourceId, usize)],
        probs: &ValueProbabilities,
        accuracies: &[f64],
        params: &DetectionParams,
    ) -> Vec<PairDependence> {
        pairs
            .iter()
            .filter_map(|&(a, b, _)| detect_pair(hashed, a, b, probs, accuracies, params))
            .collect()
    }

    fn detect_pair(
        hashed: &HashedSnapshot,
        a: SourceId,
        b: SourceId,
        probs: &ValueProbabilities,
        accuracies: &[f64],
        params: &DetectionParams,
    ) -> Option<PairDependence> {
        let aa = params.clamp_accuracy(accuracies.get(a.index()).copied().unwrap_or(0.5));
        let ab = params.clamp_accuracy(accuracies.get(b.index()).copied().unwrap_or(0.5));
        let c = params.copy_rate;
        let mu = params.copy_mutation_rate;

        let (small, large, swapped) = {
            let ca = hashed.per_source[a.index()].len();
            let cb = hashed.per_source[b.index()].len();
            if ca <= cb {
                (a, b, false)
            } else {
                (b, a, true)
            }
        };

        let mut lik = sailing_core::copy::PairLikelihoods {
            log_independent: 0.0,
            log_a_copies_b: 0.0,
            log_b_copies_a: 0.0,
            overlap: 0,
            shared_false_mass: 0.0,
        };
        for (&object, &v_small) in &hashed.per_source[small.index()] {
            let Some(&v_large) = hashed.per_source[large.index()].get(&object) else {
                continue;
            };
            let (va, vb) = if swapped {
                (v_large, v_small)
            } else {
                (v_small, v_large)
            };
            lik.overlap += 1;
            let n = hashed.effective_n_false(object, params) as f64;
            let (it, if_, id) = independent_probs(aa, ab, n);
            let (abt, abf, abd) = copying_probs(ab, aa, c, mu, n);
            let (bat, baf, bad) = copying_probs(aa, ab, c, mu, n);
            if va == vb {
                let p_true = probs.prob(object, va);
                let p_false = 1.0 - p_true;
                lik.shared_false_mass += p_false;
                lik.log_independent += (p_true * it + p_false * if_).max(1e-300).ln();
                lik.log_a_copies_b += (p_true * abt + p_false * abf).max(1e-300).ln();
                lik.log_b_copies_a += (p_true * bat + p_false * baf).max(1e-300).ln();
            } else {
                lik.log_independent += id.ln();
                lik.log_a_copies_b += abd.ln();
                lik.log_b_copies_a += bad.ln();
            }
        }
        (lik.overlap >= params.min_overlap).then(|| posterior(a, b, &lik, params))
    }
}

/// One world's measurements, in milliseconds.
#[derive(Debug, Serialize)]
struct WorldPoint {
    sources: usize,
    objects: usize,
    all_pairs: usize,
    /// Pairs surviving the shared-object screening (`min_overlap = 3`).
    candidate_pairs_pruned: usize,
    /// Pairs with any overlap at all (`min_overlap = 1`).
    candidate_pairs_unpruned: usize,
    candidate_enumeration_ms: f64,
    /// Pre-refactor hash-layout detection over the pruned pairs, 1 thread.
    before_seq_ms: f64,
    /// Columnar detection over the pruned pairs, 1 thread.
    after_seq_ms: f64,
    /// Columnar detection over the pruned pairs, 4 threads.
    after_par4_ms: f64,
    /// Columnar detection with pruning disabled (`min_overlap = 1`).
    after_unpruned_seq_ms: f64,
    /// `before_seq_ms / after_seq_ms`.
    speedup_seq: f64,
}

/// One temporal world's timeline measurements: warm-started incremental
/// discovery (`SailingEngine::timeline`) vs cold per-epoch `analyze()`.
#[derive(Debug, Serialize)]
struct TimelinePoint {
    objects: usize,
    sources: usize,
    epochs: usize,
    /// Total truth-discovery iterations across all epochs, warm-started.
    warm_iterations: usize,
    /// Same, analyzing each epoch's snapshot cold.
    cold_iterations: usize,
    warm_ms: f64,
    cold_ms: f64,
    /// `cold_iterations / warm_iterations`.
    iteration_savings: f64,
}

/// One world's cross-process reuse measurements: a first engine
/// cold-computes every epoch and writes the persistent store; a second
/// engine (the stand-in for a second process) re-analyzes the identical
/// timeline purely from disk.
#[derive(Debug, Serialize)]
struct PersistReusePoint {
    objects: usize,
    sources: usize,
    epochs: usize,
    /// First process: discovery for every epoch + store write-through.
    cold_ms: f64,
    cold_iterations: usize,
    /// Second process over the same store directory: disk hits only.
    reuse_ms: f64,
    /// Epochs the second process served from disk (must equal `epochs`).
    reuse_disk_hits: u64,
    /// Discovery iterations the second process spent (must be 0).
    reuse_iterations: usize,
    /// `cold_ms / reuse_ms`.
    speedup: f64,
}

/// One world's timeline-batching measurements: the sequential warm-start
/// chain (PR 3 path) vs the parallel cold-epoch batch at one thread
/// count. On a single-core host the batch is pure overhead (compare only
/// across equal `host_cpus`); on multi-core it trades the warm chain's
/// iteration savings for near-linear parallelism.
#[derive(Debug, Serialize)]
struct ParallelColdPoint {
    objects: usize,
    sources: usize,
    epochs: usize,
    threads: usize,
    sequential_warm_ms: f64,
    sequential_warm_iterations: usize,
    batched_cold_ms: f64,
    batched_cold_iterations: usize,
    /// `sequential_warm_ms / batched_cold_ms`.
    speedup: f64,
}

/// One analyze-path latency comparison: the same distinct-snapshot
/// workload pushed through an engine with persistence off, with the
/// synchronous write-behind store, and with the async writer thread.
/// `async_overhead` is the headline the 5% gate applies to.
#[derive(Debug, Serialize)]
struct AsyncWriteBehindPoint {
    snapshots: usize,
    sources: usize,
    objects: usize,
    /// Total analyze-loop wall time with no store attached.
    persist_off_ms: f64,
    /// Same workload, synchronous write-behind store (writes batch on the
    /// analysis thread).
    persist_sync_ms: f64,
    /// Same workload, async writer thread (zero analysis-thread
    /// syscalls); the queue drain is *excluded* — that is the point.
    persist_async_ms: f64,
    /// Drain-barrier time after the async loop (the deferred work).
    async_flush_ms: f64,
    /// `persist_async_ms / persist_off_ms` — gated ≤ 1.05 on non-smoke
    /// runs.
    async_overhead: f64,
    /// `persist_sync_ms / persist_off_ms`, for the honest before/after.
    sync_overhead: f64,
}

/// One churn stream's measurements: the ingest subsystem end to end
/// (claim log → sealed delta → `run_delta`) against a full warm
/// re-analysis of every post-delta snapshot. Iteration totals exclude
/// the shared cold bootstrap; wall time for the incremental side covers
/// the whole streaming path (log appends, sealing, CSR delta merge,
/// dirty-set discovery), for the baseline the delta merge plus
/// `run_warm`.
#[derive(Debug, Serialize)]
struct StreamingIngestPoint {
    cohorts: usize,
    sources: usize,
    objects: usize,
    epochs: usize,
    /// Fraction of the object space one delta touches (one cohort).
    delta_object_fraction: f64,
    /// Claim-log events appended (bootstrap + churn).
    events: u64,
    /// Dirty closure per epoch — exactly the churned cohort.
    dirty_objects_per_epoch: usize,
    incremental_iterations: u64,
    full_warm_iterations: u64,
    incremental_ms: f64,
    full_warm_ms: f64,
    /// `full_warm_iterations / incremental_iterations`.
    iteration_savings: f64,
    /// `full_warm_ms / incremental_ms`.
    speedup: f64,
    /// Largest accuracy divergence vs the full chain at the final epoch —
    /// gated < 1e-9 on every run.
    max_accuracy_gap: f64,
}

/// One pair-sharded analysis measurement: `analyze_sharded` at a given
/// worker count against the monolithic `analyze` on the same world. The
/// decomposition distributes only the per-iteration detection pass over
/// contiguous pair-ranges and merges in range order, so parity is not a
/// tolerance — `max_accuracy_gap` must be exactly `0.0`.
#[derive(Debug, Serialize)]
struct ShardedAnalysisPoint {
    sources: usize,
    objects: usize,
    /// Candidate pairs after shared-object pruning — the unit being
    /// sharded.
    candidate_pairs: usize,
    workers: usize,
    iterations: usize,
    monolithic_ms: f64,
    sharded_ms: f64,
    /// `monolithic_ms / sharded_ms` — compare only across equal
    /// `host_cpus`; on one core the coordinator's scoped threads are pure
    /// overhead.
    speedup: f64,
    /// Largest |accuracy divergence| vs monolithic — gated `== 0.0` on
    /// every run (strictly stronger than the repo's 1e-9 contract).
    max_accuracy_gap: f64,
}

/// One value-equivalence measurement on the messy variant world: the
/// quotient build cost, the `Exact`-backend engine path against the
/// direct pipeline entry (the refactor's no-regression contract —
/// `exact_overhead` is gated ≤ 1.02 on every run, smoke included, over
/// min-of-N alternating rounds), and decision precision per backend
/// (the quotient backends must strictly beat exact identity — exact
/// and deterministic, gated on every run).
#[derive(Debug, Serialize)]
struct EquivalencePoint {
    sources: usize,
    objects: usize,
    /// Assertions that arrived as formatting variants of a canonical
    /// value.
    variant_claims: usize,
    /// Interned values in the snapshot's arena.
    values: usize,
    /// Classes the `NormalizedString` quotient partitions them into.
    quotient_classes: usize,
    /// Wall time to build that quotient (partition + dense maps).
    quotient_build_ms: f64,
    /// Direct pipeline entry (`AccuCopy::run`) — the pre-refactor path.
    pipeline_ms: f64,
    /// Post-refactor engine path with the default `Exact` backend,
    /// cache off.
    exact_ms: f64,
    /// `exact_ms / pipeline_ms` — gated ≤ 1.02 on every run.
    exact_overhead: f64,
    /// Engine path under `NormalizedString` (quotient build included).
    normalized_ms: f64,
    precision_exact: f64,
    precision_normalized: f64,
    precision_numeric: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    experiment: &'static str,
    schema: u32,
    smoke: bool,
    world: &'static str,
    /// Cores visible to the run — a 1-core box makes `after_par4_ms` pure
    /// thread overhead, so compare parallel numbers only across equal
    /// `host_cpus`.
    host_cpus: usize,
    worlds: Vec<WorldPoint>,
    timeline_warm_vs_cold: Vec<TimelinePoint>,
    persist_reuse: Vec<PersistReusePoint>,
    parallel_cold_epochs: Vec<ParallelColdPoint>,
    async_write_behind: Vec<AsyncWriteBehindPoint>,
    streaming_ingest: Vec<StreamingIngestPoint>,
    sharded_analysis: Vec<ShardedAnalysisPoint>,
    equivalence: Vec<EquivalencePoint>,
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let smoke = std::env::var("SAILING_BENCH_SMOKE").is_ok();
    let (source_counts, num_objects, coverage): (&[usize], usize, usize) = if smoke {
        (&[30, 60], 120, 20)
    } else {
        (&[100, 200, 400, 800], 400, 40)
    };

    banner("E7", "Detection scalability vs number of sources");
    header(&[
        "sources",
        "all pairs",
        "candidates",
        "prune x",
        "before 1t",
        "after 1t",
        "after 4t",
        "speedup",
    ]);

    let mut worlds = Vec::new();
    for &n in source_counts {
        let world = SnapshotWorld::generate(&WorldConfig::specialist(n, num_objects, coverage, 7));
        let probs = naive_probabilities(&world.snapshot);
        let params = DetectionParams::default();
        let accs = vec![params.initial_accuracy; n];

        let (pruned, t_enum) = time_ms(|| candidate_pairs(&world.snapshot, params.min_overlap));
        let unpruned = candidate_pairs(&world.snapshot, 1);
        let all = all_pairs_count(n);

        let hashed = reference::HashedSnapshot::from_view(&world.snapshot);
        let (before, t_before) =
            time_ms(|| reference::detect_all(&hashed, &pruned, &probs, &accs, &params));

        let (after_seq, t_after_seq) =
            time_ms(|| detect_all_with_pairs(&world.snapshot, &pruned, &probs, &accs, &params));
        let par_params = DetectionParams {
            threads: 4,
            ..params.clone()
        };
        let (after_par, t_after_par) =
            time_ms(|| detect_all_with_pairs(&world.snapshot, &pruned, &probs, &accs, &par_params));
        let loose_params = DetectionParams {
            min_overlap: 1,
            ..params.clone()
        };
        let (_, t_after_unpruned) = time_ms(|| {
            detect_all_with_pairs(&world.snapshot, &unpruned, &probs, &accs, &loose_params)
        });

        // The baseline must agree with the live path, or the comparison is
        // meaningless.
        assert_eq!(before.len(), after_seq.len());
        assert_eq!(after_seq.len(), after_par.len());
        for (x, y) in before.iter().zip(&after_seq) {
            assert_eq!((x.a, x.b), (y.a, y.b));
            assert!(
                (x.probability - y.probability).abs() < 1e-9,
                "baseline and columnar detection diverge on ({:?},{:?})",
                x.a,
                x.b
            );
        }

        let speedup = t_before / t_after_seq.max(1e-9);
        println!(
            "{}",
            row(&[
                n.to_string(),
                all.to_string(),
                pruned.len().to_string(),
                format!("{:.1}", all as f64 / pruned.len().max(1) as f64),
                format!("{t_before:.1}ms"),
                format!("{t_after_seq:.1}ms"),
                format!("{t_after_par:.1}ms"),
                format!("{speedup:.1}x"),
            ])
        );

        worlds.push(WorldPoint {
            sources: n,
            objects: num_objects,
            all_pairs: all,
            candidate_pairs_pruned: pruned.len(),
            candidate_pairs_unpruned: unpruned.len(),
            candidate_enumeration_ms: t_enum,
            before_seq_ms: t_before,
            after_seq_ms: t_after_seq,
            after_par4_ms: t_after_par,
            after_unpruned_seq_ms: t_after_unpruned,
            speedup_seq: speedup,
        });
    }

    // --- E7b: timeline warm-start vs cold per-epoch reanalysis ---
    banner("E7b", "Timeline session (warm) vs cold per-epoch analyze()");
    header(&[
        "objects", "epochs", "warm it", "cold it", "savings", "warm ms", "cold ms",
    ]);
    let timeline_objects: &[usize] = if smoke { &[60] } else { &[120, 240, 480] };
    let mut timeline_points = Vec::new();
    for &num_objects in timeline_objects {
        let (config, _) = table3_style(num_objects, 2, 20);
        let world = TemporalWorld::generate(&config);
        let history = Arc::new(world.history.clone());
        // Caching off on both engines: this measures discovery work, not
        // cache hits.
        let warm_engine = SailingEngine::builder().cache_capacity(0).build().unwrap();
        let cold_engine = SailingEngine::builder().cache_capacity(0).build().unwrap();

        // Build the session outside the timed region: `timeline_owned`
        // eagerly runs whole-history temporal dependence detection, which
        // the cold path never pays — timing it would overstate warm_ms.
        let mut session = warm_engine.timeline_owned(Arc::clone(&history));
        let (warm_iters, t_warm) = time_ms(|| {
            while session.next_epoch().is_some() {}
            session.total_iterations()
        });
        let change_points: Vec<i64> = history.change_points().collect();
        let (cold_iters, t_cold) = time_ms(|| {
            change_points
                .iter()
                .map(|&t| {
                    cold_engine
                        .analyze_owned(Arc::new(history.snapshot_at(t)))
                        .result()
                        .iterations
                })
                .sum::<usize>()
        });
        // Warm starting must trade iterations, not correctness; if it ever
        // costs more rounds than cold, the incremental path has rotted.
        assert!(
            warm_iters < cold_iters,
            "timeline warm start regressed: warm {warm_iters} vs cold {cold_iters}"
        );
        let savings = cold_iters as f64 / warm_iters.max(1) as f64;
        println!(
            "{}",
            row(&[
                num_objects.to_string(),
                change_points.len().to_string(),
                warm_iters.to_string(),
                cold_iters.to_string(),
                format!("{savings:.2}x"),
                format!("{t_warm:.1}"),
                format!("{t_cold:.1}"),
            ])
        );
        timeline_points.push(TimelinePoint {
            objects: num_objects,
            sources: history.num_sources(),
            epochs: change_points.len(),
            warm_iterations: warm_iters,
            cold_iterations: cold_iters,
            warm_ms: t_warm,
            cold_ms: t_cold,
            iteration_savings: savings,
        });
    }

    // --- E7c: persistent store — second process reuses every analysis ---
    banner(
        "E7c",
        "Persistent store: cold first process vs disk-served second",
    );
    header(&[
        "objects",
        "epochs",
        "cold ms",
        "reuse ms",
        "speedup",
        "disk hits",
    ]);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut persist_points = Vec::new();
    for &num_objects in timeline_objects {
        let (config, _) = table3_style(num_objects, 2, 20);
        let world = TemporalWorld::generate(&config);
        let history = Arc::new(world.history.clone());
        let dir = std::env::temp_dir().join(format!(
            "sailing-bench-persist-{num_objects}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // First process: batched cold walk (so the store holds cold-keyed
        // entries), write-through + final flush inside the timed region —
        // persistence cost is part of the honest cold number. Session
        // construction stays outside it: `timeline_owned` eagerly runs
        // whole-history temporal detection, which both paths pay
        // identically (same discipline as E7b).
        let first = SailingEngine::builder().persist_dir(&dir).build().unwrap();
        let mut session = first.timeline_owned(Arc::clone(&history));
        let (cold_iters, t_cold) = time_ms(|| {
            session.prefetch_cold(1);
            while session.next_epoch().is_some() {}
            first.flush_persist().unwrap();
            session.total_iterations()
        });
        drop(session);
        drop(first);

        // Second process: a fresh engine over the same directory.
        let second = SailingEngine::builder().persist_dir(&dir).build().unwrap();
        let mut session = second.timeline_owned(Arc::clone(&history));
        let ((reuse_iters, served), t_reuse) = time_ms(|| {
            session.prefetch_cold(1);
            let mut served = 0usize;
            while let Some(epoch) = session.next_epoch() {
                served += usize::from(epoch.from_cache());
            }
            (session.total_iterations(), served)
        });
        drop(session);
        let disk_hits = second.cache_stats().disk_hits;
        let epochs = history.change_points().count();
        assert_eq!(
            reuse_iters, 0,
            "a store-warmed process must run zero discovery iterations"
        );
        assert_eq!(served, epochs, "every epoch must be served, not recomputed");
        // One disk hit per *distinct* epoch content: a history that
        // revisits earlier content legitimately serves the repeat from the
        // promoted memory tier, so `disk_hits == epochs` would over-assert.
        assert!(
            disk_hits >= 1 && disk_hits as usize <= epochs,
            "disk hits out of range: {disk_hits} over {epochs} epochs"
        );
        let speedup = t_cold / t_reuse.max(1e-9);
        // Wall-clock regression gate for trajectory runs only — CI's smoke
        // pass runs on noisy shared runners where timing asserts flake;
        // the deterministic invariants above still gate it.
        if !smoke {
            assert!(
                speedup >= 2.0,
                "persistent reuse regressed: only {speedup:.2}x faster than cold"
            );
        }
        println!(
            "{}",
            row(&[
                num_objects.to_string(),
                epochs.to_string(),
                format!("{t_cold:.1}"),
                format!("{t_reuse:.1}"),
                format!("{speedup:.1}x"),
                disk_hits.to_string(),
            ])
        );
        persist_points.push(PersistReusePoint {
            objects: num_objects,
            sources: history.num_sources(),
            epochs,
            cold_ms: t_cold,
            cold_iterations: cold_iters,
            reuse_ms: t_reuse,
            reuse_disk_hits: disk_hits,
            reuse_iterations: reuse_iters,
            speedup,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // --- E7d: parallel cold-epoch batching vs the sequential warm chain ---
    banner(
        "E7d",
        "Timeline: parallel cold batch vs sequential warm chain",
    );
    header(&[
        "objects", "epochs", "threads", "seq ms", "batch ms", "speedup", "seq it", "batch it",
    ]);
    let thread_counts: &[usize] = if smoke { &[2] } else { &[2, 4] };
    let mut parallel_points = Vec::new();
    for &num_objects in timeline_objects {
        let (config, _) = table3_style(num_objects, 2, 20);
        let world = TemporalWorld::generate(&config);
        let history = Arc::new(world.history.clone());
        let epochs = history.change_points().count();

        let seq_engine = SailingEngine::builder().cache_capacity(0).build().unwrap();
        let mut session = seq_engine.timeline_owned(Arc::clone(&history));
        let (seq_iters, t_seq) = time_ms(|| {
            while session.next_epoch().is_some() {}
            session.total_iterations()
        });

        for &threads in thread_counts {
            let par_engine = SailingEngine::builder().cache_capacity(0).build().unwrap();
            let mut session = par_engine.timeline_owned(Arc::clone(&history));
            let (batch_iters, t_batch) = time_ms(|| {
                session.prefetch_cold(threads);
                while session.next_epoch().is_some() {}
                session.total_iterations()
            });
            let speedup = t_seq / t_batch.max(1e-9);
            // The parallel batch only wins when there are cores to fan
            // out across; on a single-core host it is pure overhead, so
            // the regression gate applies to multi-core trajectory runs
            // (not CI smoke, whose shared runners make timing flaky).
            // It also needs headroom: cold runs spend ~1.3× the warm
            // chain's iterations, so at threads == host_cpus the ceiling
            // is only ~1.5× and background load can push a healthy run
            // under 1.0 — gate only where spare cores leave real margin.
            if !smoke && threads >= 2 && threads * 2 <= host_cpus {
                assert!(
                    speedup > 1.0,
                    "parallel cold batching lost to sequential on {host_cpus} cores: \
                     {t_batch:.1}ms vs {t_seq:.1}ms at {threads} threads"
                );
            }
            println!(
                "{}",
                row(&[
                    num_objects.to_string(),
                    epochs.to_string(),
                    threads.to_string(),
                    format!("{t_seq:.1}"),
                    format!("{t_batch:.1}"),
                    format!("{speedup:.2}x"),
                    seq_iters.to_string(),
                    batch_iters.to_string(),
                ])
            );
            parallel_points.push(ParallelColdPoint {
                objects: num_objects,
                sources: history.num_sources(),
                epochs,
                threads,
                sequential_warm_ms: t_seq,
                sequential_warm_iterations: seq_iters,
                batched_cold_ms: t_batch,
                batched_cold_iterations: batch_iters,
                speedup,
            });
        }
    }

    // --- E7e: async write-behind — analyze-path latency, persist on/off ---
    banner(
        "E7e",
        "Async write-behind: analyze latency with persist off/sync/async",
    );
    header(&[
        "snaps",
        "off ms",
        "sync ms",
        "async ms",
        "drain ms",
        "async ovh",
        "sync ovh",
    ]);
    let (awb_snapshots, awb_sources, awb_objects, awb_coverage) = if smoke {
        (6usize, 20usize, 60usize, 12usize)
    } else {
        (16, 60, 160, 30)
    };
    // Distinct seeded worlds: every analysis is a genuine cold miss on
    // every engine, so the three loops run identical discovery work and
    // differ only in what persistence costs the analysis path.
    let awb_snaps: Vec<Arc<SnapshotView>> = (0..awb_snapshots)
        .map(|seed| {
            let config =
                WorldConfig::specialist(awb_sources, awb_objects, awb_coverage, seed as u64 + 11);
            Arc::new(SnapshotWorld::generate(&config).snapshot)
        })
        .collect();
    let analyze_all = |engine: &SailingEngine| {
        for snap in &awb_snaps {
            let analysis = engine.analyze_owned(Arc::clone(snap));
            assert!(!analysis.decisions().is_empty());
        }
    };

    let off_engine = SailingEngine::builder().build().unwrap();
    let ((), t_off) = time_ms(|| analyze_all(&off_engine));

    let sync_dir =
        std::env::temp_dir().join(format!("sailing-bench-awb-sync-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&sync_dir);
    let sync_engine = SailingEngine::builder()
        .persist_dir(&sync_dir)
        .build()
        .unwrap();
    let ((), t_sync) = time_ms(|| {
        analyze_all(&sync_engine);
        sync_engine.flush_persist().unwrap();
    });

    let async_dir =
        std::env::temp_dir().join(format!("sailing-bench-awb-async-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&async_dir);
    let async_engine = SailingEngine::builder()
        .persist_dir(&async_dir)
        .persist_async(true)
        .persist_queue_depth(awb_snapshots * 2)
        .build()
        .unwrap();
    let ((), t_async) = time_ms(|| analyze_all(&async_engine));
    let (flushed, t_drain) = time_ms(|| async_engine.flush_persist().unwrap());

    // The structural guarantee, asserted on every run including smoke:
    // the async engine's analysis thread never performed a store write —
    // only the background writer thread did.
    let store = async_engine.persist_store().unwrap();
    let fs_writers = store.fs_write_threads();
    assert!(
        !fs_writers.contains(&std::thread::current().id()),
        "the analysis thread performed a filesystem write: {fs_writers:?}"
    );
    assert_eq!(
        store.len(),
        awb_snapshots,
        "drain barrier left entries behind"
    );
    assert!(flushed <= awb_snapshots, "drained more than was enqueued");
    let async_stats = async_engine.cache_stats();
    assert_eq!(
        (async_stats.disk_write_errors, async_stats.disk_dropped),
        (0, 0),
        "{async_stats:?}"
    );
    let async_overhead = t_async / t_off.max(1e-9);
    let sync_overhead = t_sync / t_off.max(1e-9);
    // The tentpole latency gate, on quiet trajectory runs only (CI smoke
    // shares noisy runners where a 5% wall-clock bound flakes). Like
    // E7d's parallel gate, it needs a spare core: zero *syscalls* on the
    // analysis thread is structural (asserted above on every run), but
    // the writer thread's encode+write CPU has nowhere to hide on a
    // 1-core host — there the overhead is recorded honestly, not
    // asserted.
    if !smoke && host_cpus >= 2 {
        assert!(
            async_overhead <= 1.05,
            "async write-behind cost the analysis path {async_overhead:.3}x \
             (persist-off {t_off:.1}ms vs async {t_async:.1}ms) — over the 5% budget"
        );
    }
    println!(
        "{}",
        row(&[
            awb_snapshots.to_string(),
            format!("{t_off:.1}"),
            format!("{t_sync:.1}"),
            format!("{t_async:.1}"),
            format!("{t_drain:.1}"),
            format!("{async_overhead:.3}x"),
            format!("{sync_overhead:.3}x"),
        ])
    );
    let async_points = vec![AsyncWriteBehindPoint {
        snapshots: awb_snapshots,
        sources: awb_sources,
        objects: awb_objects,
        persist_off_ms: t_off,
        persist_sync_ms: t_sync,
        persist_async_ms: t_async,
        async_flush_ms: t_drain,
        async_overhead,
        sync_overhead,
    }];
    let _ = std::fs::remove_dir_all(&sync_dir);
    let _ = std::fs::remove_dir_all(&async_dir);

    // --- E7f: streaming ingestion — incremental deltas vs full re-analysis ---
    banner(
        "E7f",
        "Streaming ingest: N small deltas vs N full warm re-analyses",
    );
    header(&[
        "cohorts", "objects", "epochs", "inc it", "full it", "inc ms", "full ms", "speedup",
    ]);
    let ingest_configs: &[(usize, usize, usize, usize)] = if smoke {
        &[(10, 3, 12, 8)]
    } else {
        &[(10, 3, 12, 12), (20, 3, 24, 20)]
    };
    // Tight fixpoint parameters: every epoch's prior must be genuinely
    // converged (the warm-start gate insists) and the 1e-12 tolerance
    // leaves the 1e-9 parity contract real headroom.
    let ingest_params = DetectionParams {
        hard_damping_threshold: 1.0,
        convergence_epsilon: 1e-12,
        max_iterations: 5000,
        ..DetectionParams::default()
    };
    let mut ingest_points = Vec::new();
    for &(cohorts, spc, opc, epochs) in ingest_configs {
        let world = ChurnWorld::generate(&ChurnConfig::streaming(cohorts, spc, opc, epochs, 1));
        let engine = SailingEngine::builder()
            .params(ingest_params.clone())
            .build()
            .unwrap();
        let pipeline = sailing_core::AccuCopy::new(ingest_params.clone()).unwrap();

        // Shared bootstrap, outside both timed regions: the streamed
        // session cold-runs the initial world; the baseline chain starts
        // from its own converged posterior over the same snapshot.
        let mut session = engine
            .ingest_session(sailing::ingest::SealPolicy::manual())
            .with_max_dirty_fraction(2.0 / cohorts as f64);
        for s in 0..world.initial.num_sources() {
            let sid = SourceId::from_index(s);
            for &(object, value) in world.initial.source_assertions(sid) {
                session.assert_claim(sid, object, value, 0, 0);
            }
        }
        session.seal();
        let bootstrap_iterations = session.stats().iterations_total;
        let mut full_prev = pipeline.run(&world.initial);
        assert!(full_prev.converged, "churn bootstrap must converge");

        // Incremental side: the whole streaming path per epoch — append
        // every event to the claim log, seal, merge, re-converge dirty.
        let ((), t_inc) = time_ms(|| {
            for (i, delta) in world.deltas.iter().enumerate() {
                for &(s, o, v) in delta.ops() {
                    session.append(s, o, v, 0, 1 + i as i64);
                }
                session.seal();
            }
        });
        let stats = session.stats();
        assert_eq!(
            stats.incremental_runs,
            world.deltas.len() as u64,
            "every churn epoch must run incrementally: {:?}",
            stats.last_outcome
        );
        let inc_iters = stats.iterations_total - bootstrap_iterations;

        // Baseline: full warm re-analysis of every post-delta snapshot.
        let (full_iters, t_full) = time_ms(|| {
            let mut snap = Arc::new(world.initial.clone());
            let mut total = 0u64;
            for delta in &world.deltas {
                snap = Arc::new(snap.apply_delta(delta));
                let full = pipeline.run_warm(&snap, Some(&full_prev));
                assert!(full.converged, "full warm baseline must converge");
                total += full.iterations as u64;
                full_prev = full;
            }
            total
        });

        // Parity at the final epoch, per the 1e-9 contract — on every
        // run including smoke.
        let streamed = session.analysis();
        let max_gap = streamed
            .accuracies()
            .iter()
            .zip(&full_prev.accuracies)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_gap < 1e-9,
            "incremental diverged from full: {max_gap:e}"
        );

        // The delta-proportionality gates. Iteration counts are exact
        // and deterministic, so the strict inequality holds on smoke
        // runs too; the wall-clock gate follows the usual convention of
        // applying only to quiet trajectory runs.
        assert!(
            inc_iters < full_iters,
            "incremental must spend strictly fewer iterations: {inc_iters} vs {full_iters}"
        );
        if !smoke {
            assert!(
                t_inc < t_full,
                "incremental must be faster: {t_inc:.1}ms vs {t_full:.1}ms"
            );
        }
        let speedup = t_full / t_inc.max(1e-9);
        let savings = full_iters as f64 / inc_iters.max(1) as f64;
        println!(
            "{}",
            row(&[
                cohorts.to_string(),
                world.initial.num_objects().to_string(),
                epochs.to_string(),
                inc_iters.to_string(),
                full_iters.to_string(),
                format!("{t_inc:.1}"),
                format!("{t_full:.1}"),
                format!("{speedup:.1}x"),
            ])
        );
        ingest_points.push(StreamingIngestPoint {
            cohorts,
            sources: world.initial.num_sources(),
            objects: world.initial.num_objects(),
            epochs,
            delta_object_fraction: world.delta_object_fraction(),
            events: stats.events,
            dirty_objects_per_epoch: stats.dirty_objects_last,
            incremental_iterations: inc_iters,
            full_warm_iterations: full_iters,
            incremental_ms: t_inc,
            full_warm_ms: t_full,
            iteration_savings: savings,
            speedup,
            max_accuracy_gap: max_gap,
        });
    }

    // --- E7g: pair-sharded analysis — bitwise parity and worker scaling ---
    banner(
        "E7g",
        "Sharded analysis: analyze_sharded vs monolithic analyze",
    );
    header(&[
        "sources", "objects", "pairs", "workers", "iters", "mono ms", "shard ms", "ratio",
    ]);
    let sharded_worlds: &[(usize, usize, usize)] = if smoke {
        &[(24, 96, 16), (40, 120, 20)]
    } else {
        &[(100, 400, 40), (200, 400, 40)]
    };
    let mut sharded_points = Vec::new();
    for &(n, objects, coverage) in sharded_worlds {
        let world = SnapshotWorld::generate(&WorldConfig::specialist(n, objects, coverage, 21));
        let snapshot = Arc::new(world.snapshot);
        let pairs = candidate_pairs(&snapshot, DetectionParams::default().min_overlap).len();

        // Fresh engine per world; `analyze_sharded` bypasses the analysis
        // cache, so the earlier monolithic run cannot subsidise it.
        let engine = SailingEngine::with_defaults();
        let (monolithic, t_mono) = time_ms(|| engine.analyze_owned(Arc::clone(&snapshot)));

        for workers in [1usize, 2, 4] {
            let (sharded, t_shard) =
                time_ms(|| engine.analyze_sharded(&snapshot, workers).unwrap());

            // The bitwise contract: not a tolerance, exact equality.
            let max_gap = sharded
                .accuracies()
                .iter()
                .zip(monolithic.accuracies())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f64, f64::max);
            assert_eq!(
                max_gap, 0.0,
                "sharded analysis must be bitwise identical (workers {workers})"
            );
            assert_eq!(sharded.decisions(), monolithic.decisions());
            assert_eq!(sharded.result().iterations, monolithic.result().iterations);

            let speedup = t_mono / t_shard.max(1e-9);
            println!(
                "{}",
                row(&[
                    n.to_string(),
                    objects.to_string(),
                    pairs.to_string(),
                    workers.to_string(),
                    sharded.result().iterations.to_string(),
                    format!("{t_mono:.1}"),
                    format!("{t_shard:.1}"),
                    format!("{speedup:.2}x"),
                ])
            );
            sharded_points.push(ShardedAnalysisPoint {
                sources: n,
                objects,
                candidate_pairs: pairs,
                workers,
                iterations: sharded.result().iterations,
                monolithic_ms: t_mono,
                sharded_ms: t_shard,
                speedup,
                max_accuracy_gap: max_gap,
            });
        }
    }

    // --- E7h: value-equivalence quotient — exact overhead, variant precision ---
    banner(
        "E7h",
        "Value equivalence: quotient cost, Exact overhead, variant precision",
    );
    header(&[
        "objects",
        "sources",
        "classes",
        "quot ms",
        "pipe ms",
        "exact ms",
        "ovhd",
        "prec e/n/t",
    ]);
    let equiv_configs: &[(usize, usize)] = if smoke {
        &[(120, 8)]
    } else {
        &[(200, 10), (400, 12)]
    };
    let equiv_rounds = if smoke { 3 } else { 5 };
    let mut equivalence_points = Vec::new();
    for &(objects, sources) in equiv_configs {
        let messy = VariantWorld::generate(&VariantWorldConfig::messy(objects, sources, 42));
        let snapshot = Arc::new(messy.snapshot.clone());
        let values = snapshot.values().map_or(0, |v| v.len());

        // Quotient build cost: the one-time per-analysis price a
        // non-exact backend pays before the integer-only inner loops.
        let (quotient, t_quotient) = time_ms(|| snapshot.quotient(&NormalizedString));
        assert!(
            quotient.num_classes() < values,
            "the variant world must actually merge representations"
        );

        // Exact must be free: the post-refactor engine path (default
        // `Exact` backend, cache off so every round recomputes) against
        // the direct pipeline entry. Alternating rounds, min per side —
        // the iteration work dominates both, so the ratio isolates the
        // facade's added dispatch (`is_exact` check and key derivation).
        let pipeline = sailing_core::AccuCopy::new(DetectionParams::default()).unwrap();
        let exact_engine = SailingEngine::builder().cache_capacity(0).build().unwrap();
        pipeline.run(&snapshot);
        exact_engine.analyze_owned(Arc::clone(&snapshot));
        let (mut t_pipe, mut t_exact) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..equiv_rounds {
            let (_, t) = time_ms(|| pipeline.run(&snapshot));
            t_pipe = t_pipe.min(t);
            let (_, t) = time_ms(|| exact_engine.analyze_owned(Arc::clone(&snapshot)));
            t_exact = t_exact.min(t);
        }
        let exact_overhead = t_exact / t_pipe.max(1e-9);
        assert!(
            exact_overhead <= 1.02,
            "Exact backend must stay within 2% of the direct pipeline: \
             {t_exact:.2}ms vs {t_pipe:.2}ms ({exact_overhead:.3}x)"
        );

        // Precision per backend — exact decisions, deterministic worlds,
        // gated on every run: quotienting must re-form the split
        // majority the formatting variants fractured.
        let precision_of = |engine: &SailingEngine| {
            let analysis = engine.analyze_owned(Arc::clone(&snapshot));
            let decisions = analysis.result().probabilities.decisions_sorted();
            messy.truth.decision_precision(&decisions).unwrap()
        };
        let precision_exact = precision_of(&exact_engine);
        let normalized_engine = SailingEngine::builder()
            .value_equivalence(NormalizedString)
            .cache_capacity(0)
            .build()
            .unwrap();
        let (precision_normalized, t_normalized) = time_ms(|| precision_of(&normalized_engine));
        let numeric_engine = SailingEngine::builder()
            .value_equivalence(NumericTolerance::new(messy.config.numeric_eps).unwrap())
            .cache_capacity(0)
            .build()
            .unwrap();
        let precision_numeric = precision_of(&numeric_engine);
        assert!(
            precision_normalized > precision_exact,
            "normalized-string must strictly beat exact on the variant world: \
             {precision_normalized} vs {precision_exact}"
        );
        assert!(
            precision_numeric > precision_exact,
            "numeric-tolerance must strictly beat exact on the variant world: \
             {precision_numeric} vs {precision_exact}"
        );

        println!(
            "{}",
            row(&[
                objects.to_string(),
                sources.to_string(),
                format!("{}/{}", quotient.num_classes(), values),
                format!("{t_quotient:.2}"),
                format!("{t_pipe:.1}"),
                format!("{t_exact:.1}"),
                format!("{exact_overhead:.3}x"),
                format!(
                    "{:.0}/{:.0}/{:.0}%",
                    precision_exact * 100.0,
                    precision_normalized * 100.0,
                    precision_numeric * 100.0
                ),
            ])
        );
        equivalence_points.push(EquivalencePoint {
            sources,
            objects,
            variant_claims: messy.num_variant_claims,
            values,
            quotient_classes: quotient.num_classes(),
            quotient_build_ms: t_quotient,
            pipeline_ms: t_pipe,
            exact_ms: t_exact,
            exact_overhead,
            normalized_ms: t_normalized,
            precision_exact,
            precision_normalized,
            precision_numeric,
        });
    }

    let report = BenchReport {
        experiment: "exp_scalability",
        schema: 7,
        smoke,
        world: "specialist",
        host_cpus,
        worlds,
        timeline_warm_vs_cold: timeline_points,
        persist_reuse: persist_points,
        parallel_cold_epochs: parallel_points,
        async_write_behind: async_points,
        streaming_ingest: ingest_points,
        sharded_analysis: sharded_points,
        equivalence: equivalence_points,
    };
    let file_name = if smoke {
        "BENCH_scalability.smoke.json"
    } else {
        "BENCH_scalability.json"
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file_name);
    std::fs::write(&path, serde_json::to_string(&report).unwrap()).expect("write bench report");
    println!("\nwrote {}", path.display());
    println!("\nPaper expectation (shape): candidate pruning keeps the tested pair");
    println!("count far below O(S²) under realistic coverage skew, pairwise");
    println!("detection parallelises nearly linearly, and the columnar layout");
    println!("beats the hash layout by well over 2x sequentially.");
}
