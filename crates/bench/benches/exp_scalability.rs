//! E7 — scalability (Section 1's "scalable manner"): pairwise detection
//! wall-time vs number of sources, with and without shared-object pruning,
//! sequential vs parallel.

use std::time::Instant;

use sailing_bench::{banner, header, row};
use sailing_core::pairs::{all_pairs_count, candidate_pairs, detect_all};
use sailing_core::truth::naive_probabilities;
use sailing_core::DetectionParams;
use sailing_datagen::world::{SnapshotWorld, SourceBehavior, WorldConfig};

/// A corpus where sources are specialists: each covers a random slice of the
/// objects, so most pairs share little (the pruning's best case, and the
/// realistic one per Example 4.1's coverage skew).
fn specialist_world(num_sources: usize, seed: u64) -> SnapshotWorld {
    let num_objects = 400;
    let coverage = 40;
    let mut sources = Vec::with_capacity(num_sources);
    for i in 0..num_sources {
        if i % 10 == 9 {
            sources.push(SourceBehavior::Copier {
                original: i - 1,
                copy_fraction: 1.0,
                mutation_rate: 0.02,
                own_accuracy: 0.6,
                own_coverage: 0,
            });
        } else {
            sources.push(SourceBehavior::Independent {
                accuracy: 0.5 + 0.4 * ((i % 7) as f64 / 6.0),
                coverage,
            });
        }
    }
    SnapshotWorld::generate(&WorldConfig {
        num_objects,
        domain_size: 10,
        sources,
        seed,
    })
}

fn main() {
    banner("E7", "Detection scalability vs number of sources");
    header(&[
        "sources",
        "all pairs",
        "candidates",
        "prune x",
        "1 thread",
        "4 threads",
    ]);
    for &n in &[100usize, 200, 400, 800] {
        let world = specialist_world(n, 7);
        let probs = naive_probabilities(&world.snapshot);
        let params = DetectionParams::default();
        let accs = vec![params.initial_accuracy; n];

        let candidates = candidate_pairs(&world.snapshot, params.min_overlap).len();
        let all = all_pairs_count(n);

        let t = Instant::now();
        let seq = detect_all(&world.snapshot, &probs, &accs, &params);
        let t_seq = t.elapsed();

        let par_params = DetectionParams {
            threads: 4,
            ..params
        };
        let t = Instant::now();
        let par = detect_all(&world.snapshot, &probs, &accs, &par_params);
        let t_par = t.elapsed();
        assert_eq!(seq.len(), par.len());

        println!(
            "{}",
            row(&[
                n.to_string(),
                all.to_string(),
                candidates.to_string(),
                format!("{:.1}", all as f64 / candidates.max(1) as f64),
                format!("{:.1?}", t_seq),
                format!("{:.1?}", t_par),
            ])
        );
    }
    println!("\nPaper expectation (shape): candidate pruning keeps the tested pair");
    println!("count far below O(S²) under realistic coverage skew, and pairwise");
    println!("detection parallelises nearly linearly.");
}
