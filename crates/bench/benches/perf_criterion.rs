//! P1–P7 — Criterion micro-benchmarks for the hot paths: pairwise copy
//! detection, the full pipeline, linkage metrics, one vote round, and the
//! specialist-world data-plane primitives (`candidate_pairs`,
//! `pair_likelihoods`, `weighted_vote`) the scalability experiment scales.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sailing_core::copy::pair_likelihoods;
use sailing_core::pairs::{candidate_pairs, detect_all};
use sailing_core::truth::{naive_probabilities, weighted_vote, DependenceMatrix};
use sailing_core::{AccuCopy, DetectionParams};
use sailing_datagen::world::{SnapshotWorld, WorldConfig};
use sailing_linkage::{jaro_winkler, levenshtein, parse_author_list};

fn bench_world() -> SnapshotWorld {
    SnapshotWorld::generate(&WorldConfig::mixed(300, 12, 4, (0.5, 0.95), 42))
}

/// The scalability experiment's 200-source specialist world.
fn specialist_world() -> SnapshotWorld {
    SnapshotWorld::generate(&WorldConfig::specialist(200, 400, 40, 7))
}

fn p1_pairwise_detection(c: &mut Criterion) {
    let world = bench_world();
    let params = DetectionParams::default();
    let probs = naive_probabilities(&world.snapshot);
    let accs = vec![params.initial_accuracy; world.snapshot.num_sources()];
    c.bench_function("p1_detect_all_16_sources_300_objects", |b| {
        b.iter(|| detect_all(black_box(&world.snapshot), &probs, &accs, &params))
    });
}

fn p2_full_pipeline(c: &mut Criterion) {
    let world = bench_world();
    c.bench_function("p2_accu_copy_pipeline", |b| {
        b.iter(|| AccuCopy::with_defaults().run(black_box(&world.snapshot)))
    });
}

fn p3_linkage_metrics(c: &mut Criterion) {
    let pairs = [
        ("Hector Garcia-Molina", "H. Garcia Molina"),
        ("Jeffrey D. Ullman", "Jefrey Ullmann"),
        ("Jennifer Widom", "Widom, Jennifer"),
    ];
    c.bench_function("p3_jaro_winkler", |b| {
        b.iter(|| {
            for (x, y) in pairs {
                black_box(jaro_winkler(x, y));
            }
        })
    });
    c.bench_function("p3_levenshtein", |b| {
        b.iter(|| {
            for (x, y) in pairs {
                black_box(levenshtein(x, y));
            }
        })
    });
    c.bench_function("p3_parse_author_list", |b| {
        b.iter(|| {
            black_box(parse_author_list(
                "Garcia-Molina, Hector; Ullman, Jeffrey; Widom, Jennifer",
            ))
        })
    });
}

fn p4_vote_round(c: &mut Criterion) {
    let world = bench_world();
    let params = DetectionParams::default();
    let accs = vec![0.8; world.snapshot.num_sources()];
    c.bench_function("p4_weighted_vote_round", |b| {
        b.iter_batched(
            DependenceMatrix::new,
            |deps| weighted_vote(black_box(&world.snapshot), &accs, &deps, &params),
            BatchSize::SmallInput,
        )
    });
}

fn p5_candidate_pairs(c: &mut Criterion) {
    let world = specialist_world();
    c.bench_function("p5_candidate_pairs_200_sources", |b| {
        b.iter(|| candidate_pairs(black_box(&world.snapshot), 3))
    });
}

fn p6_pair_likelihoods(c: &mut Criterion) {
    let world = specialist_world();
    let params = DetectionParams::default();
    let probs = naive_probabilities(&world.snapshot);
    let accs = vec![params.initial_accuracy; world.snapshot.num_sources()];
    // The 64 heaviest candidate pairs: the shapes the per-pair likelihood
    // actually runs over after screening.
    let mut pairs = candidate_pairs(&world.snapshot, params.min_overlap);
    pairs.sort_by_key(|&(_, _, w)| std::cmp::Reverse(w));
    pairs.truncate(64);
    c.bench_function("p6_pair_likelihoods_64_heaviest", |b| {
        b.iter(|| {
            for &(a, b_, _) in &pairs {
                black_box(pair_likelihoods(
                    black_box(&world.snapshot),
                    a,
                    b_,
                    &probs,
                    &accs,
                    &params,
                ));
            }
        })
    });
}

fn p7_weighted_vote_specialist(c: &mut Criterion) {
    let world = specialist_world();
    let params = DetectionParams::default();
    let accs = vec![0.8; world.snapshot.num_sources()];
    c.bench_function("p7_weighted_vote_specialist_200", |b| {
        b.iter_batched(
            DependenceMatrix::new,
            |deps| weighted_vote(black_box(&world.snapshot), &accs, &deps, &params),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = p1_pairwise_detection, p2_full_pipeline, p3_linkage_metrics, p4_vote_round,
        p5_candidate_pairs, p6_pair_likelihoods, p7_weighted_vote_specialist
}
criterion_main!(benches);
