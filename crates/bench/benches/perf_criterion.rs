//! P1–P4 — Criterion micro-benchmarks for the hot paths: pairwise copy
//! detection, the full pipeline, linkage metrics, and snapshot construction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use sailing_core::pairs::detect_all;
use sailing_core::truth::{naive_probabilities, weighted_vote, DependenceMatrix};
use sailing_core::{AccuCopy, DetectionParams};
use sailing_datagen::world::{SnapshotWorld, WorldConfig};
use sailing_linkage::{jaro_winkler, levenshtein, parse_author_list};

fn bench_world() -> SnapshotWorld {
    SnapshotWorld::generate(&WorldConfig::mixed(300, 12, 4, (0.5, 0.95), 42))
}

fn p1_pairwise_detection(c: &mut Criterion) {
    let world = bench_world();
    let params = DetectionParams::default();
    let probs = naive_probabilities(&world.snapshot);
    let accs = vec![params.initial_accuracy; world.snapshot.num_sources()];
    c.bench_function("p1_detect_all_16_sources_300_objects", |b| {
        b.iter(|| detect_all(black_box(&world.snapshot), &probs, &accs, &params))
    });
}

fn p2_full_pipeline(c: &mut Criterion) {
    let world = bench_world();
    c.bench_function("p2_accu_copy_pipeline", |b| {
        b.iter(|| AccuCopy::with_defaults().run(black_box(&world.snapshot)))
    });
}

fn p3_linkage_metrics(c: &mut Criterion) {
    let pairs = [
        ("Hector Garcia-Molina", "H. Garcia Molina"),
        ("Jeffrey D. Ullman", "Jefrey Ullmann"),
        ("Jennifer Widom", "Widom, Jennifer"),
    ];
    c.bench_function("p3_jaro_winkler", |b| {
        b.iter(|| {
            for (x, y) in pairs {
                black_box(jaro_winkler(x, y));
            }
        })
    });
    c.bench_function("p3_levenshtein", |b| {
        b.iter(|| {
            for (x, y) in pairs {
                black_box(levenshtein(x, y));
            }
        })
    });
    c.bench_function("p3_parse_author_list", |b| {
        b.iter(|| {
            black_box(parse_author_list(
                "Garcia-Molina, Hector; Ullman, Jeffrey; Widom, Jennifer",
            ))
        })
    });
}

fn p4_vote_round(c: &mut Criterion) {
    let world = bench_world();
    let params = DetectionParams::default();
    let accs = vec![0.8; world.snapshot.num_sources()];
    c.bench_function("p4_weighted_vote_round", |b| {
        b.iter_batched(
            DependenceMatrix::new,
            |deps| weighted_vote(black_box(&world.snapshot), &accs, &deps, &params),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = p1_pairwise_detection, p2_full_pipeline, p3_linkage_metrics, p4_vote_round
}
criterion_main!(benches);
