//! E8 — consensus error vs number of dissimilarity adversaries (Table 2 at
//! scale / Section 4 recommendation): aware vs unaware aggregation.

use sailing_bench::{banner, header, row};
use sailing_core::dissim::DissimParams;
use sailing_datagen::ratings::{inverter_world, RatingWorld};
use sailing_fusion::{aggregate_ratings, RatingAggregate};

fn main() {
    banner("E8", "Rating-consensus error vs number of inverter raters");
    header(&["inverters", "naive MSE", "aware MSE", "min inv weight"]);
    for &inverters in &[0usize, 1, 2, 4, 6] {
        let mut naive_mse = 0.0;
        let mut aware_mse = 0.0;
        let mut min_weight: f64 = 1.0;
        const SEEDS: u64 = 3;
        for seed in 0..SEEDS {
            let world = RatingWorld::generate(&inverter_world(250, 8, inverters, 800 + seed));
            let agg = aggregate_ratings(&world.view, &DissimParams::default());
            let unbiased = world.unbiased_consensus();
            naive_mse += RatingAggregate::mse_against(&agg.naive_mean, &unbiased);
            aware_mse += RatingAggregate::mse_against(&agg.aware_mean, &unbiased);
            for w in &agg.rater_weights[9..] {
                min_weight = min_weight.min(*w);
            }
        }
        println!(
            "{}",
            row(&[
                inverters.to_string(),
                format!("{:.4}", naive_mse / SEEDS as f64),
                format!("{:.4}", aware_mse / SEEDS as f64),
                if inverters == 0 {
                    "-".to_string()
                } else {
                    format!("{min_weight:.2}")
                },
            ])
        );
    }
    println!("\nPaper expectation (shape): naive consensus error grows with each");
    println!("added inverter; the aware aggregate stays flat because inverters are");
    println!("detected and their weight driven to ~0.");
}
