//! Shared helpers for the experiment benches.
//!
//! Every `exp_*` bench target regenerates one of the paper's tables/figures
//! (see `DESIGN.md`'s experiment index) and prints it to stdout when run
//! under `cargo bench`.

use sailing_model::SourceId;

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Formats a row of fixed-width cells.
pub fn row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!("{c:<14}"))
        .collect::<Vec<_>>()
        .join("")
}

/// Prints a header + separator.
pub fn header(cells: &[&str]) {
    println!(
        "{}",
        row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!("{}", "-".repeat(cells.len() * 14));
}

/// Unordered precision/recall of detected pairs against planted pairs.
pub fn pair_quality(
    detected: &[(SourceId, SourceId)],
    planted: &[(SourceId, SourceId)],
) -> (f64, f64) {
    let canon = |&(a, b): &(SourceId, SourceId)| if a < b { (a, b) } else { (b, a) };
    let planted: std::collections::HashSet<_> = planted.iter().map(canon).collect();
    let detected: std::collections::HashSet<_> = detected.iter().map(canon).collect();
    let hits = detected.intersection(&planted).count();
    let precision = if detected.is_empty() {
        1.0
    } else {
        hits as f64 / detected.len() as f64
    };
    let recall = if planted.is_empty() {
        1.0
    } else {
        hits as f64 / planted.len() as f64
    };
    (precision, recall)
}

/// F1 from precision/recall.
pub fn f1(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_quality_counts() {
        let planted = vec![(SourceId(0), SourceId(1)), (SourceId(2), SourceId(3))];
        let detected = vec![(SourceId(1), SourceId(0)), (SourceId(4), SourceId(5))];
        let (p, r) = pair_quality(&detected, &planted);
        assert!((p - 0.5).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn f1_harmonic() {
        assert_eq!(f1(0.0, 0.0), 0.0);
        assert!((f1(1.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((f1(0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
    }
}
