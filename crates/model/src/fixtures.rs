//! The paper's worked examples (Tables 1–3) as ready-made data sets.
//!
//! Every experiment that reproduces a table starts from these fixtures, so
//! their contents follow the paper verbatim.

use crate::history::History;
use crate::store::{ClaimStore, ClaimStoreBuilder};
use crate::value::Value;
use crate::world::{GroundTruth, TemporalTruth};

/// Source names used in Tables 1 and 3.
pub const AFFILIATION_SOURCES: [&str; 5] = ["S1", "S2", "S3", "S4", "S5"];
/// Researcher names used in Tables 1 and 3.
pub const RESEARCHERS: [&str; 5] = ["Suciu", "Halevy", "Balazinska", "Dalvi", "Dong"];
/// Reviewer names used in Table 2.
pub const REVIEWERS: [&str; 4] = ["R1", "R2", "R3", "R4"];
/// Movie names used in Table 2.
pub const MOVIES: [&str; 3] = ["The Pianist", "Into the Wild", "The Matrix"];

/// Rating levels used in Table 2.
pub mod rating {
    use crate::value::Value;

    /// "Bad".
    pub const BAD: Value = Value::Rating(0);
    /// "Neutral".
    pub const NEUTRAL: Value = Value::Rating(1);
    /// "Good".
    pub const GOOD: Value = Value::Rating(2);

    /// Renders a rating level the way the paper prints it.
    pub fn label(v: &Value) -> &'static str {
        match v {
            Value::Rating(0) => "Bad",
            Value::Rating(1) => "Neutral",
            Value::Rating(2) => "Good",
            _ => "?",
        }
    }
}

/// **Table 1**: the researcher-affiliation snapshot example.
///
/// Five sources provide affiliations for five researchers. Only `S1` provides
/// all true values; `S4` copies `S3` exactly and `S5` copies `S3` with one
/// change (Suciu → UWisc). Returns the claim store and the ground truth
/// (`S1`'s values).
pub fn table1() -> (ClaimStore, GroundTruth) {
    // Rows follow the paper's Table 1 exactly.
    let rows: [(&str, [&str; 5]); 5] = [
        ("Suciu", ["UW", "MSR", "UW", "UW", "UWisc"]),
        ("Halevy", ["Google", "Google", "UW", "UW", "UW"]),
        ("Balazinska", ["UW", "UW", "UW", "UW", "UW"]),
        ("Dalvi", ["Yahoo!", "Yahoo!", "UW", "UW", "UW"]),
        ("Dong", ["AT&T", "Google", "UW", "UW", "UW"]),
    ];
    let mut b = ClaimStoreBuilder::new();
    for source in AFFILIATION_SOURCES {
        b.source(source);
    }
    for (researcher, values) in rows {
        for (source, value) in AFFILIATION_SOURCES.iter().zip(values) {
            b.add(source, researcher, value);
        }
    }
    let store = b.build();

    // S1 provides the true affiliation of every researcher.
    let s1 = store.source_id("S1").expect("S1 interned");
    let snap = store.snapshot();
    let truth = GroundTruth::from_pairs(snap.assertions_of(s1));
    (store, truth)
}

/// **Table 1**, first three sources only — the paper's Example 2.1 first
/// considers `S1..S3` before introducing the copiers.
pub fn table1_independent_only() -> (ClaimStore, GroundTruth) {
    let (full, _) = table1();
    let mut b = ClaimStoreBuilder::new();
    for c in full.claims() {
        let sname = full.source_name(c.source).unwrap();
        if matches!(sname, "S1" | "S2" | "S3") {
            let oname = full.object_name(c.object).unwrap();
            let value = full.value(c.value).unwrap().clone();
            b.add(sname, oname, value);
        }
    }
    let store = b.build();
    let s1 = store.source_id("S1").unwrap();
    let snap = store.snapshot();
    let truth = GroundTruth::from_pairs(snap.assertions_of(s1));
    (store, truth)
}

/// **Table 2**: the movie-rating example.
///
/// Reviewers `R1`–`R3` rate independently; `R4` always provides the opposite
/// of `R1`'s rating (dissimilarity-dependence). There is no ground truth —
/// ratings are opinions.
pub fn table2() -> ClaimStore {
    use rating::{BAD, GOOD, NEUTRAL};
    let rows: [(&str, [Value; 4]); 3] = [
        ("The Pianist", [GOOD, NEUTRAL, BAD, BAD]),
        ("Into the Wild", [GOOD, BAD, GOOD, BAD]),
        ("The Matrix", [BAD, BAD, GOOD, GOOD]),
    ];
    let mut b = ClaimStoreBuilder::new();
    for reviewer in REVIEWERS {
        b.source(reviewer);
    }
    for (movie, ratings) in rows {
        for (reviewer, r) in REVIEWERS.iter().zip(ratings) {
            b.add(reviewer, movie, r);
        }
    }
    b.build()
}

/// **Table 3**: the temporal researcher-affiliation example.
///
/// `S1` provides up-to-date true values since 2002; `S2` is independent but
/// slow; `S3` copies `S1` lazily (≈ 1 year behind). Returns the claim store,
/// the derived [`History`], and the temporal ground truth (`S1`'s trace).
pub fn table3() -> (ClaimStore, History, TemporalTruth) {
    // (researcher, source, [(year, affiliation)...]) following Table 3.
    type Row = (&'static str, &'static str, &'static [(i64, &'static str)]);
    let entries: [Row; 15] = [
        ("Suciu", "S1", &[(2002, "UW"), (2006, "MSR"), (2007, "UW")]),
        ("Suciu", "S2", &[(2001, "UW"), (2006, "MSR")]),
        ("Suciu", "S3", &[(2003, "UW")]),
        ("Halevy", "S1", &[(2002, "UW"), (2006, "Google")]),
        ("Halevy", "S2", &[(2001, "UW"), (2006, "Google")]),
        ("Halevy", "S3", &[(2003, "UW")]),
        ("Balazinska", "S1", &[(2006, "UW")]),
        ("Balazinska", "S2", &[(2006, "UW")]),
        ("Balazinska", "S3", &[(2007, "UW")]),
        ("Dalvi", "S1", &[(2002, "UW"), (2007, "Yahoo!")]),
        ("Dalvi", "S2", &[(2007, "Yahoo!")]),
        ("Dalvi", "S3", &[(2003, "UW")]),
        (
            "Dong",
            "S1",
            &[(2002, "UW"), (2006, "Google"), (2007, "AT&T")],
        ),
        ("Dong", "S2", &[(2001, "UW"), (2006, "Google")]),
        ("Dong", "S3", &[(2003, "UW")]),
    ];
    let mut b = ClaimStoreBuilder::new();
    for source in ["S1", "S2", "S3"] {
        b.source(source);
    }
    for researcher in RESEARCHERS {
        b.object(researcher);
    }
    for (researcher, source, updates) in entries {
        for &(year, affiliation) in updates {
            b.add_timed(source, researcher, affiliation, year);
        }
    }
    let store = b.build();
    let history = History::from_store(&store);

    // S1's trace is the truth ("only S1 provides up-to-date true values
    // since 2002").
    let s1 = store.source_id("S1").unwrap();
    let mut truth = TemporalTruth::new();
    for (object, trace) in history.traces_of(s1) {
        for &(t, v) in trace.updates() {
            truth.record(object, t, v);
        }
    }
    (store, history, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::TruthClass;

    #[test]
    fn table1_shape() {
        let (store, truth) = table1();
        assert_eq!(store.num_sources(), 5);
        assert_eq!(store.num_objects(), 5);
        assert_eq!(store.num_claims(), 25);
        assert_eq!(truth.len(), 5);
    }

    #[test]
    fn table1_s1_is_perfect_and_s3_is_poor() {
        let (store, truth) = table1();
        let snap = store.snapshot();
        let s1 = store.source_id("S1").unwrap();
        let s3 = store.source_id("S3").unwrap();
        assert_eq!(truth.accuracy_of(&snap, s1), Some(1.0));
        // S3 is right only on Suciu(no: UW is true) and Balazinska → 2/5.
        assert_eq!(truth.accuracy_of(&snap, s3), Some(0.4));
    }

    #[test]
    fn table1_s4_copies_s3_exactly_s5_one_change() {
        let (store, _) = table1();
        let snap = store.snapshot();
        let s3 = store.source_id("S3").unwrap();
        let s4 = store.source_id("S4").unwrap();
        let s5 = store.source_id("S5").unwrap();
        let same_34 = snap.overlap(s3, s4).filter(|&(_, a, b)| a == b).count();
        let same_35 = snap.overlap(s3, s5).filter(|&(_, a, b)| a == b).count();
        assert_eq!(same_34, 5);
        assert_eq!(same_35, 4);
    }

    #[test]
    fn table1_independent_subset() {
        let (store, truth) = table1_independent_only();
        assert_eq!(store.num_sources(), 3);
        assert_eq!(store.num_claims(), 15);
        assert_eq!(truth.len(), 5);
    }

    #[test]
    fn table2_shape_and_r4_inverts_r1() {
        let store = table2();
        assert_eq!(store.num_sources(), 4);
        assert_eq!(store.num_objects(), 3);
        let snap = store.snapshot();
        let r1 = store.source_id("R1").unwrap();
        let r4 = store.source_id("R4").unwrap();
        for (o, v1, v4) in snap.overlap(r1, r4) {
            let r1v = store.value(v1).unwrap().as_rating().unwrap();
            let r4v = store.value(v4).unwrap().as_rating().unwrap();
            assert_eq!(
                r4v,
                2 - r1v,
                "R4 must invert R1 on {:?}",
                store.object_name(o)
            );
        }
    }

    #[test]
    fn rating_labels() {
        assert_eq!(rating::label(&rating::GOOD), "Good");
        assert_eq!(rating::label(&rating::NEUTRAL), "Neutral");
        assert_eq!(rating::label(&rating::BAD), "Bad");
        assert_eq!(rating::label(&Value::text("x")), "?");
    }

    #[test]
    fn table3_shape() {
        let (store, history, truth) = table3();
        assert_eq!(store.num_sources(), 3);
        assert_eq!(store.num_objects(), 5);
        assert_eq!(history.num_updates(), 24);
        assert_eq!(truth.len(), 5);
        assert_eq!(truth.horizon(), Some(2007));
    }

    #[test]
    fn table3_s2_values_are_outdated_not_false() {
        let (store, history, truth) = table3();
        let s2 = store.source_id("S2").unwrap();
        // At 2007, S2's latest value for Dong is Google — outdated-true.
        let dong = store.object_id("Dong").unwrap();
        let v = history.value_at(s2, dong, 2007).unwrap();
        assert_eq!(
            truth.classify(dong, v, 2007),
            Some(TruthClass::OutdatedTrue)
        );
        // And for Halevy it is Google — currently true.
        let halevy = store.object_id("Halevy").unwrap();
        let v = history.value_at(s2, halevy, 2007).unwrap();
        assert_eq!(
            truth.classify(halevy, v, 2007),
            Some(TruthClass::CurrentTrue)
        );
    }

    #[test]
    fn table3_s3_lags_s1() {
        let (store, history, _) = table3();
        let s1 = store.source_id("S1").unwrap();
        let s3 = store.source_id("S3").unwrap();
        // Every S3 update repeats an earlier S1 update with positive lag.
        let mut lags = Vec::new();
        for (o, trace) in history.traces_of(s3) {
            for &(t, v) in trace.updates() {
                let s1_first = history
                    .trace(s1, o)
                    .and_then(|tr| tr.first_asserted(v))
                    .expect("S3 copies S1 values");
                lags.push(t - s1_first);
            }
        }
        assert!(lags.iter().all(|&lag| lag >= 1));
    }
}
