//! Pluggable value equivalence: the quotient of the value space that
//! dissimilarity, copy detection, and voting actually run over.
//!
//! The paper's algorithms decide truth and copy relationships by testing
//! whether two sources assert *the same value* — and historically "same"
//! was hard-wired to exact [`ValueId`] equality in every hot loop. A
//! [`ValueEquivalence`] makes "same" a strategy: given the interned value
//! arena, a backend partitions it into equivalence classes once, and
//! [`ValueQuotient`] turns that partition into a dense
//! `ValueId → ClassId` mapping plus a per-class member arena. Snapshots
//! are then rewritten ([`crate::SnapshotView::quotiented`]) so every
//! assertion carries its class **representative** — the smallest member
//! id — and the CSR inner loops stay pure integer comparisons with zero
//! per-comparison string work.
//!
//! Backends shipped here:
//!
//! * [`Exact`] — the identity partition. Snapshots pass through untouched
//!   (pointer-identical), so exact-mode analyses stay bitwise identical
//!   to the pre-quotient engine.
//! * [`NumericTolerance`] — values whose numeric reading differs by at
//!   most `eps` are equivalent, via union-find over the sorted parses so
//!   tolerance *chains* (`3.14 ~ 3.15 ~ 3.16`) resolve deterministically
//!   regardless of arena order.
//! * [`HashedDigest`] — equivalence of salted content digests: exact
//!   matching that never needs to compare plaintext, the
//!   private-federation backend (sources can publish digests instead of
//!   values).
//!
//! `NormalizedString` (case/punctuation/diacritic-folded text matching)
//! lives in `sailing-linkage`, which owns the normalizer; it implements
//! this trait against the same contract.
//!
//! # Contract
//!
//! A backend's [`ValueEquivalence::partition`] must be a function of the
//! value arena alone (deterministic, order-respecting: relabeling happens
//! here, so any consistent labeling works), and
//! [`ValueEquivalence::digest`] must change whenever the induced
//! partition could (backend identity + parameters). The quotient folds
//! the *realised* class labels into [`ValueQuotient::digest`], which the
//! `sailing` facade mixes into cache and persist keys — an exact analysis
//! can therefore never alias a normalized one, in memory or on disk.

use std::collections::HashMap;
use std::fmt;

use crate::delta::Delta;
use crate::error::SailingError;
use crate::store::fx_mix;
use crate::value::{Value, ValueId};

/// Identifies one equivalence class inside a [`ValueQuotient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

impl ClassId {
    /// The class id as a dense array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a class id from a dense array index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ClassId(u32::try_from(index).expect("class index exceeds u32"))
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A strategy deciding when two interned values count as "the same value".
///
/// Implementations partition the value arena once per snapshot (see
/// [`crate::SnapshotView::quotient`]); the hot loops never call back into
/// the backend.
pub trait ValueEquivalence: Send + Sync {
    /// Short display name ("exact", "normalized-string", …).
    fn name(&self) -> &'static str;

    /// Provenance digest of the backend: identity plus every parameter
    /// that can change the induced partition. Mixed into
    /// [`ValueQuotient::digest`] so differently-configured backends never
    /// share cached artifacts.
    fn digest(&self) -> u64;

    /// `true` only for the identity backend ([`Exact`]): consumers skip
    /// quotient construction entirely and keep their legacy cache keys.
    fn is_exact(&self) -> bool {
        false
    }

    /// Labels each arena slot with its equivalence class. Labels may be
    /// arbitrary (the quotient densifies them in first-occurrence order);
    /// the only requirement is `labels[i] == labels[j]` iff `values[i]`
    /// and `values[j]` are equivalent. Must return exactly
    /// `values.len()` labels.
    fn partition(&self, values: &[Value]) -> Vec<u32>;
}

/// The identity equivalence: two values are the same only when their ids
/// are. The default backend; quotients under it are free and snapshots
/// pass through bitwise untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exact;

impl ValueEquivalence for Exact {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn digest(&self) -> u64 {
        fx_mix(0x6571_7569_765f, 0) // "equiv_" tag, variant 0
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn partition(&self, values: &[Value]) -> Vec<u32> {
        (0..values.len() as u32).collect()
    }
}

/// Numeric equivalence with tolerance `eps`: values whose numeric
/// readings differ by at most `eps` are the same. [`Value::Int`] and
/// [`Value::Rating`] read as themselves; [`Value::Text`] reads as its
/// (trimmed) `f64` parse when finite — so `3.14`, `"3.14"`, and
/// `"3.140"` all land in one class. Non-numeric values stay singletons.
///
/// Tolerance is resolved by union-find over the **sorted** parses:
/// adjacent readings within `eps` are merged, so chains
/// (`1.00 ~ 1.01 ~ 1.02`) collapse into one class deterministically,
/// independent of arena order. A class can therefore span more than
/// `eps` end to end — that is the documented chain semantics, not a bug.
#[derive(Debug, Clone, Copy)]
pub struct NumericTolerance {
    eps: f64,
}

impl NumericTolerance {
    /// Creates the backend.
    ///
    /// # Errors
    /// Rejects a non-finite or negative `eps` with
    /// [`SailingError::InvalidParameter`].
    pub fn new(eps: f64) -> Result<Self, SailingError> {
        if !eps.is_finite() || eps < 0.0 {
            return Err(SailingError::param(
                "eps",
                format!("{eps} is not a finite non-negative tolerance"),
            ));
        }
        Ok(Self { eps })
    }

    /// The tolerance in force.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    fn numeric_key(value: &Value) -> Option<f64> {
        match value {
            Value::Int(i) => Some(*i as f64),
            Value::Rating(r) => Some(f64::from(*r)),
            Value::Text(s) => s.trim().parse::<f64>().ok().filter(|x| x.is_finite()),
            Value::List(_) | Value::Absent => None,
        }
    }
}

impl ValueEquivalence for NumericTolerance {
    fn name(&self) -> &'static str {
        "numeric-tolerance"
    }

    fn digest(&self) -> u64 {
        fx_mix(fx_mix(0x6571_7569_765f, 2), self.eps.to_bits())
    }

    fn partition(&self, values: &[Value]) -> Vec<u32> {
        let mut uf = UnionFind::new(values.len());
        let mut numeric: Vec<(f64, u32)> = values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| Self::numeric_key(v).map(|x| (x, i as u32)))
            .collect();
        numeric.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("numeric keys are finite")
                .then(a.1.cmp(&b.1))
        });
        for w in numeric.windows(2) {
            if w[1].0 - w[0].0 <= self.eps {
                uf.union(w[0].1, w[1].1);
            }
        }
        (0..values.len() as u32).map(|i| uf.find(i)).collect()
    }
}

/// Equivalence of salted content digests: two values are the same when
/// their digests match — exact matching that never needs plaintext
/// comparison, so a federation can run copy detection over claims whose
/// values are published only as digests.
///
/// The digest is the workspace [`fx_mix`] family over a type tag plus the
/// canonical payload bytes (recursing into lists), seeded with the
/// per-deployment `salt`. It is **not cryptographic** — it models the
/// digest-equivalence protocol of the private-federation scenario; a
/// production deployment would swap in a keyed cryptographic hash with
/// the same interface.
#[derive(Debug, Clone, Copy)]
pub struct HashedDigest {
    salt: u64,
}

impl HashedDigest {
    /// Creates the backend with a per-deployment salt.
    pub fn new(salt: u64) -> Self {
        Self { salt }
    }

    /// The salted digest of one value — what a source would publish in
    /// place of the plaintext.
    pub fn value_digest(&self, value: &Value) -> u64 {
        fn fold(h: u64, value: &Value) -> u64 {
            match value {
                Value::Text(s) => {
                    let mut h = fx_mix(h, 1);
                    h = fx_mix(h, s.len() as u64);
                    for b in s.bytes() {
                        h = fx_mix(h, u64::from(b));
                    }
                    h
                }
                Value::Int(i) => fx_mix(fx_mix(h, 2), *i as u64),
                Value::Rating(r) => fx_mix(fx_mix(h, 3), u64::from(*r)),
                Value::List(items) => {
                    let mut h = fx_mix(fx_mix(h, 4), items.len() as u64);
                    for item in items {
                        h = fold(h, item);
                    }
                    h
                }
                Value::Absent => fx_mix(h, 5),
            }
        }
        fold(fx_mix(0x6469_6765_7374, self.salt), value) // "digest" tag
    }
}

impl ValueEquivalence for HashedDigest {
    fn name(&self) -> &'static str {
        "hashed-digest"
    }

    fn digest(&self) -> u64 {
        fx_mix(fx_mix(0x6571_7569_765f, 3), self.salt)
    }

    fn partition(&self, values: &[Value]) -> Vec<u32> {
        let mut classes: HashMap<u64, u32> = HashMap::with_capacity(values.len());
        values
            .iter()
            .map(|v| {
                let next = classes.len() as u32;
                *classes.entry(self.value_digest(v)).or_insert(next)
            })
            .collect()
    }
}

/// Union-find with path-halving, used to resolve tolerance chains.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        // Smaller root wins, so representatives stay minimal ids.
        if ra < rb {
            self.parent[rb as usize] = ra;
        } else {
            self.parent[ra as usize] = rb;
        }
    }
}

/// The materialised quotient of a value arena under one
/// [`ValueEquivalence`]: a dense `ValueId → ClassId` map, the per-class
/// member lists, and each class's **representative** — its smallest
/// member id, the id the quotiented snapshot carries in every CSR entry.
///
/// Value ids at or beyond [`ValueQuotient::coverage`] (ids the arena has
/// never described — e.g. ids streamed into an ingest log without
/// payloads) are implicit singletons: they represent themselves and
/// belong to no materialised class.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueQuotient {
    /// Class of each covered value id, densified in first-occurrence
    /// order (so `class_of[representative[c].index()] == c`).
    class_of: Vec<ClassId>,
    /// Smallest member id of each class.
    representative: Vec<ValueId>,
    /// CSR offsets into `members`, one slice per class.
    member_offsets: Vec<u32>,
    /// Class members in ascending id order.
    members: Vec<ValueId>,
    /// `true` when every class is a singleton — the quotient changes
    /// nothing and consumers can skip the snapshot rewrite.
    identity: bool,
    /// The backend's provenance digest, retained so extensions can
    /// re-derive the quotient digest.
    equiv_digest: u64,
    /// Digest of the realised partition (backend digest + coverage +
    /// class labels): what cache/persist keys mix in.
    digest: u64,
}

impl ValueQuotient {
    /// Builds the quotient of `values` under `equiv`. Backend labels are
    /// densified here in first-occurrence order, so representatives are
    /// always the minimal member ids whatever labels the backend chose.
    pub fn build(equiv: &dyn ValueEquivalence, values: &[Value]) -> Self {
        let raw = equiv.partition(values);
        assert_eq!(
            raw.len(),
            values.len(),
            "equivalence backend `{}` returned {} labels for {} values",
            equiv.name(),
            raw.len(),
            values.len()
        );
        let mut remap: HashMap<u32, u32> = HashMap::with_capacity(raw.len());
        let mut class_of = Vec::with_capacity(raw.len());
        let mut representative: Vec<ValueId> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for (i, &label) in raw.iter().enumerate() {
            let next = remap.len() as u32;
            let dense = *remap.entry(label).or_insert(next);
            if dense.to_index() == representative.len() {
                representative.push(ValueId::from_index(i));
                counts.push(0);
            }
            counts[dense.to_index()] += 1;
            class_of.push(ClassId(dense));
        }
        let num_classes = representative.len();
        let mut member_offsets = vec![0u32; num_classes + 1];
        for (c, &n) in counts.iter().enumerate() {
            member_offsets[c + 1] = member_offsets[c] + n;
        }
        let mut fill = member_offsets[..num_classes].to_vec();
        let mut members = vec![ValueId(0); class_of.len()];
        for (i, &c) in class_of.iter().enumerate() {
            let slot = &mut fill[c.index()];
            members[*slot as usize] = ValueId::from_index(i);
            *slot += 1;
        }
        let identity = num_classes == class_of.len();
        let equiv_digest = equiv.digest();
        let mut quotient = Self {
            class_of,
            representative,
            member_offsets,
            members,
            identity,
            equiv_digest,
            digest: 0,
        };
        quotient.digest = quotient.compute_digest();
        quotient
    }

    fn compute_digest(&self) -> u64 {
        let mut h = fx_mix(0x71_75_6f_74, self.equiv_digest); // "quot" tag
        h = fx_mix(h, self.class_of.len() as u64);
        for &c in &self.class_of {
            h = fx_mix(h, u64::from(c.0));
        }
        h
    }

    /// How many value ids the quotient describes (the arena length it was
    /// built over, plus any [`ValueQuotient::extend_to`] extension).
    pub fn coverage(&self) -> usize {
        self.class_of.len()
    }

    /// Number of equivalence classes over the covered ids.
    pub fn num_classes(&self) -> usize {
        self.representative.len()
    }

    /// `true` when the quotient is the identity (every class a
    /// singleton): quotiented snapshots equal their originals.
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Digest of the realised partition; see the module docs on aliasing.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The class of a covered value id, `None` for uncovered (unseen)
    /// ids.
    pub fn class_of(&self, value: ValueId) -> Option<ClassId> {
        self.class_of.get(value.index()).copied()
    }

    /// The representative the quotiented snapshot substitutes for
    /// `value`: the smallest id in its class, or `value` itself when the
    /// id is beyond coverage (implicit singleton).
    #[inline]
    pub fn representative_of(&self, value: ValueId) -> ValueId {
        match self.class_of.get(value.index()) {
            Some(c) => self.representative[c.index()],
            None => value,
        }
    }

    /// All member ids of one class, ascending. Empty for out-of-range
    /// classes.
    pub fn members(&self, class: ClassId) -> &[ValueId] {
        let c = class.index();
        if c >= self.num_classes() {
            return &[];
        }
        &self.members[self.member_offsets[c] as usize..self.member_offsets[c + 1] as usize]
    }

    /// `true` when every value id the delta upserts is covered — the
    /// precondition for [`ValueQuotient::map_delta`] to be exact. A delta
    /// naming an uncovered id may (for all the quotient knows) merge
    /// classes anywhere, so incremental consumers must fall back to a
    /// full re-analysis instead of trusting a dirty closure.
    pub fn covers(&self, delta: &Delta) -> bool {
        delta
            .ops()
            .iter()
            .all(|&(_, _, v)| v.is_none_or(|v| v.index() < self.coverage()))
    }

    /// Rewrites a delta's upsert values to their class representatives,
    /// producing the delta that advances a quotiented snapshot in step
    /// with the original. Requires [`ValueQuotient::covers`].
    pub fn map_delta(&self, delta: &Delta) -> Delta {
        let mut b = Delta::builder();
        for &(s, o, v) in delta.ops() {
            match v {
                Some(v) => b.assert_value(s, o, self.representative_of(v)),
                None => b.retract(s, o),
            };
        }
        b.build()
    }

    /// Extends coverage to `coverage` ids by appending **singleton**
    /// classes — the only sound extension when the new ids' payloads are
    /// unknown (ingest streams carry bare ids). A no-op when already
    /// covering that many ids.
    pub fn extend_to(&mut self, coverage: usize) {
        while self.class_of.len() < coverage {
            let id = ValueId::from_index(self.class_of.len());
            let class = ClassId::from_index(self.representative.len());
            self.class_of.push(class);
            self.representative.push(id);
            self.members.push(id);
            self.member_offsets.push(self.members.len() as u32);
        }
        self.identity = self.num_classes() == self.coverage();
        self.digest = self.compute_digest();
    }
}

/// Internal helper: `u32` label to array index.
trait ToIndex {
    fn to_index(self) -> usize;
}

impl ToIndex for u32 {
    fn to_index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ObjectId, SourceId};

    fn arena(texts: &[&str]) -> Vec<Value> {
        texts.iter().map(|t| Value::text(*t)).collect()
    }

    #[test]
    fn exact_is_identity() {
        let values = arena(&["a", "b", "c"]);
        let q = ValueQuotient::build(&Exact, &values);
        assert!(q.is_identity());
        assert_eq!(q.num_classes(), 3);
        assert_eq!(q.coverage(), 3);
        for i in 0..3 {
            let v = ValueId::from_index(i);
            assert_eq!(q.representative_of(v), v);
            assert_eq!(q.class_of(v), Some(ClassId::from_index(i)));
            assert_eq!(q.members(ClassId::from_index(i)), &[v]);
        }
        assert!(Exact.is_exact());
    }

    #[test]
    fn numeric_tolerance_merges_within_eps_and_chains() {
        let values = vec![
            Value::text("3.14"),
            Value::text("3.140"),
            Value::Int(3),
            Value::text("3.0"),
            Value::text("not a number"),
            Value::text("3.1405"),
        ];
        let eq = NumericTolerance::new(1e-3).unwrap();
        let q = ValueQuotient::build(&eq, &values);
        // 3.14 ~ 3.140 ~ 3.1405 chain into one class; 3 ~ 3.0; text alone.
        assert_eq!(q.num_classes(), 3);
        assert_eq!(q.representative_of(ValueId(1)), ValueId(0));
        assert_eq!(q.representative_of(ValueId(5)), ValueId(0));
        assert_eq!(q.representative_of(ValueId(3)), ValueId(2));
        assert_eq!(q.representative_of(ValueId(4)), ValueId(4));
        assert_eq!(q.members(q.class_of(ValueId(0)).unwrap()).len(), 3);
        assert!(!q.is_identity());
    }

    #[test]
    fn numeric_tolerance_rejects_bad_eps() {
        assert!(NumericTolerance::new(-1.0).is_err());
        assert!(NumericTolerance::new(f64::NAN).is_err());
        assert!(NumericTolerance::new(f64::INFINITY).is_err());
        assert!(NumericTolerance::new(0.0).is_ok());
    }

    #[test]
    fn numeric_tolerance_is_order_independent() {
        let forward = vec![Value::text("1.00"), Value::text("1.01"), Value::Int(5)];
        let reversed: Vec<Value> = forward.iter().rev().cloned().collect();
        let eq = NumericTolerance::new(0.02).unwrap();
        let qf = ValueQuotient::build(&eq, &forward);
        let qr = ValueQuotient::build(&eq, &reversed);
        assert_eq!(qf.num_classes(), qr.num_classes());
        // Same pairs merged either way.
        assert_eq!(
            qf.representative_of(ValueId(0)),
            qf.representative_of(ValueId(1))
        );
        assert_eq!(
            qr.representative_of(ValueId(2)),
            qr.representative_of(ValueId(1))
        );
    }

    #[test]
    fn hashed_digest_matches_exact_payloads_only() {
        let values = vec![
            Value::text("UW"),
            Value::text("uw"),
            Value::Int(42),
            Value::list_of_texts(["a", "b"]),
            Value::list_of_texts(["ab"]),
        ];
        let eq = HashedDigest::new(7);
        let q = ValueQuotient::build(&eq, &values);
        // Distinct payloads (including case and list structure) stay
        // distinct: digest equivalence is exact matching without
        // plaintext.
        assert!(q.is_identity());
        // Same payload digests equal under the same salt, differently
        // under different salts.
        assert_eq!(
            eq.value_digest(&Value::text("UW")),
            eq.value_digest(&Value::text("UW"))
        );
        assert_ne!(
            HashedDigest::new(1).value_digest(&Value::text("UW")),
            HashedDigest::new(2).value_digest(&Value::text("UW"))
        );
    }

    #[test]
    fn digests_separate_backends_and_parameters() {
        let values = arena(&["a", "b"]);
        let exact = ValueQuotient::build(&Exact, &values);
        let tol1 = ValueQuotient::build(&NumericTolerance::new(0.1).unwrap(), &values);
        let tol2 = ValueQuotient::build(&NumericTolerance::new(0.2).unwrap(), &values);
        let hashed = ValueQuotient::build(&HashedDigest::new(1), &values);
        // All four induce the identity partition here, but their digests
        // must still differ — cached artifacts never alias across
        // backends or parameters.
        let digests = [
            exact.digest(),
            tol1.digest(),
            tol2.digest(),
            hashed.digest(),
        ];
        for (i, a) in digests.iter().enumerate() {
            for b in &digests[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn uncovered_ids_are_implicit_singletons() {
        let values = arena(&["a"]);
        let q = ValueQuotient::build(&Exact, &values);
        assert_eq!(q.class_of(ValueId(9)), None);
        assert_eq!(q.representative_of(ValueId(9)), ValueId(9));
        assert_eq!(q.members(ClassId(9)), &[]);
    }

    #[test]
    fn covers_and_map_delta() {
        let values = vec![Value::text("1.0"), Value::text("1.000")];
        let eq = NumericTolerance::new(1e-9).unwrap();
        let q = ValueQuotient::build(&eq, &values);

        let mut b = Delta::builder();
        b.assert_value(SourceId(0), ObjectId(0), ValueId(1));
        b.retract(SourceId(1), ObjectId(0));
        let covered = b.build();
        assert!(q.covers(&covered));
        let mapped = q.map_delta(&covered);
        assert_eq!(
            mapped.ops(),
            &[
                (SourceId(0), ObjectId(0), Some(ValueId(0))),
                (SourceId(1), ObjectId(0), None),
            ]
        );

        let mut b = Delta::builder();
        b.assert_value(SourceId(0), ObjectId(0), ValueId(7));
        assert!(!q.covers(&b.build()));
    }

    #[test]
    fn extend_to_appends_singletons_and_refreshes_digest() {
        let values = vec![Value::text("1.0"), Value::text("1.000")];
        let eq = NumericTolerance::new(1e-9).unwrap();
        let mut q = ValueQuotient::build(&eq, &values);
        let before = q.digest();
        assert_eq!(q.num_classes(), 1);
        q.extend_to(4);
        assert_eq!(q.coverage(), 4);
        assert_eq!(q.num_classes(), 3);
        assert_eq!(q.representative_of(ValueId(3)), ValueId(3));
        assert_eq!(q.members(q.class_of(ValueId(3)).unwrap()), &[ValueId(3)]);
        assert!(!q.is_identity(), "the merged class is still there");
        assert_ne!(q.digest(), before, "coverage change must re-key");
        // Extending to a smaller/equal coverage is a no-op.
        let snap = q.clone();
        q.extend_to(2);
        assert_eq!(q, snap);
    }
}
