//! Update traces for the paper's *temporal dependence* setting.
//!
//! In the temporal setting each source is a set of `(time, value)` pairs per
//! object (Table 3 shape). [`UpdateTrace`] is one such per-object trace;
//! [`History`] collects the traces of every source and answers
//! "what did source S say about object O at time T?" queries.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::claim::Timestamp;
use crate::ids::{ObjectId, SourceId};
use crate::store::{ClaimStore, SnapshotView};
use crate::value::ValueId;

/// A time-ordered sequence of value updates for one `(source, object)` pair
/// (or for one object's ground truth).
///
/// Invariants: strictly increasing timestamps; consecutive values differ
/// (a re-assertion of the same value is collapsed into the earlier update).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateTrace {
    updates: Vec<(Timestamp, ValueId)>,
}

impl UpdateTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trace from arbitrary `(time, value)` pairs.
    ///
    /// Pairs are sorted by time; among duplicates of the same timestamp the
    /// last pair wins; consecutive equal values are collapsed.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Timestamp, ValueId)>) -> Self {
        let mut pairs: Vec<_> = pairs.into_iter().collect();
        pairs.sort_by_key(|&(t, _)| t);
        let mut trace = Self::new();
        for (t, v) in pairs {
            trace.record(t, v);
        }
        trace
    }

    /// Records an update, keeping the invariants.
    ///
    /// Updates arriving out of order are inserted at the right position;
    /// an update at an existing timestamp replaces it.
    pub fn record(&mut self, time: Timestamp, value: ValueId) {
        match self.updates.binary_search_by_key(&time, |&(t, _)| t) {
            Ok(i) => self.updates[i].1 = value,
            Err(i) => self.updates.insert(i, (time, value)),
        }
        self.collapse();
    }

    fn collapse(&mut self) {
        self.updates.dedup_by(|next, prev| next.1 == prev.1);
    }

    /// The value in force at `time` (the latest update at or before `time`).
    pub fn value_at(&self, time: Timestamp) -> Option<ValueId> {
        match self.updates.binary_search_by_key(&time, |&(t, _)| t) {
            Ok(i) => Some(self.updates[i].1),
            Err(0) => None,
            Err(i) => Some(self.updates[i - 1].1),
        }
    }

    /// The timestamp at which `value` was first asserted, if ever.
    pub fn first_asserted(&self, value: ValueId) -> Option<Timestamp> {
        self.updates
            .iter()
            .find(|&&(_, v)| v == value)
            .map(|&(t, _)| t)
    }

    /// The most recent `(time, value)` update.
    pub fn latest(&self) -> Option<(Timestamp, ValueId)> {
        self.updates.last().copied()
    }

    /// All updates in time order.
    pub fn updates(&self) -> &[(Timestamp, ValueId)] {
        &self.updates
    }

    /// Number of updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// `true` when the trace has no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// `true` if `value` was ever asserted in this trace.
    pub fn ever_asserted(&self, value: ValueId) -> bool {
        self.updates.iter().any(|&(_, v)| v == value)
    }
}

/// The complete temporal behaviour of a set of sources: one [`UpdateTrace`]
/// per `(source, object)` pair.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct History {
    /// `traces[source][object] = trace`.
    traces: Vec<HashMap<ObjectId, UpdateTrace>>,
    num_objects: usize,
}

impl History {
    /// Creates an empty history for `num_sources` sources and `num_objects`
    /// objects.
    pub fn new(num_sources: usize, num_objects: usize) -> Self {
        Self {
            traces: vec![HashMap::new(); num_sources],
            num_objects,
        }
    }

    /// Builds a history from every *timed* claim in the store. Untimed claims
    /// are ignored (they carry no temporal information).
    pub fn from_store(store: &ClaimStore) -> Self {
        let mut h = Self::new(store.num_sources(), store.num_objects());
        let mut grouped: HashMap<(SourceId, ObjectId), Vec<(Timestamp, ValueId)>> = HashMap::new();
        for c in store.claims() {
            if let Some(t) = c.time {
                grouped
                    .entry((c.source, c.object))
                    .or_default()
                    .push((t, c.value));
            }
        }
        let mut grouped: Vec<_> = grouped.into_iter().collect();
        grouped.sort_by_key(|&(k, _)| k);
        for ((s, o), pairs) in grouped {
            h.traces[s.index()].insert(o, UpdateTrace::from_pairs(pairs));
        }
        h
    }

    /// Records one update.
    pub fn record(&mut self, source: SourceId, object: ObjectId, time: Timestamp, value: ValueId) {
        self.num_objects = self.num_objects.max(object.index() + 1);
        if source.index() >= self.traces.len() {
            self.traces.resize(source.index() + 1, HashMap::new());
        }
        self.traces[source.index()]
            .entry(object)
            .or_default()
            .record(time, value);
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.traces.len()
    }

    /// Number of objects.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// The trace of `source` about `object`.
    pub fn trace(&self, source: SourceId, object: ObjectId) -> Option<&UpdateTrace> {
        self.traces.get(source.index())?.get(&object)
    }

    /// All `(object, trace)` pairs of one source, sorted by object.
    pub fn traces_of(&self, source: SourceId) -> Vec<(ObjectId, &UpdateTrace)> {
        let mut out: Vec<_> = self
            .traces
            .get(source.index())
            .into_iter()
            .flat_map(|m| m.iter().map(|(&o, t)| (o, t)))
            .collect();
        out.sort_by_key(|&(o, _)| o);
        out
    }

    /// What `source` asserted about `object` at `time`.
    pub fn value_at(&self, source: SourceId, object: ObjectId, time: Timestamp) -> Option<ValueId> {
        self.trace(source, object)?.value_at(time)
    }

    /// Objects covered (ever) by `source`.
    pub fn coverage(&self, source: SourceId) -> usize {
        self.traces.get(source.index()).map_or(0, HashMap::len)
    }

    /// Total updates across all sources and objects.
    pub fn num_updates(&self) -> usize {
        self.traces
            .iter()
            .flat_map(|m| m.values())
            .map(UpdateTrace::len)
            .sum()
    }

    /// All distinct timestamps at which *any* source updates *any* object,
    /// ascending — the history's **change points**. Consecutive change
    /// points delimit the epochs of the timeline: the materialised snapshot
    /// is constant between them, so walking a history epoch by epoch (the
    /// `sailing` facade's `TimelineSession`, consensus-truth estimation,
    /// batch re-analysis) means materialising exactly one snapshot per
    /// change point — never more.
    pub fn change_points(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.change_points_since(Timestamp::MIN)
    }

    /// The suffix of [`History::change_points`] at or after `since`
    /// (inclusive): every distinct timestamp `t >= since`, ascending.
    ///
    /// Callers that resume a timeline mid-stream — a `TimelineSession`
    /// picking up after a checkpoint, or the ingest tier deriving deltas
    /// for epochs it has not analysed yet — need only the tail; this skips
    /// collecting (and re-sorting) the pre-`since` epochs entirely.
    pub fn change_points_since(&self, since: Timestamp) -> impl Iterator<Item = Timestamp> + '_ {
        let mut times: Vec<Timestamp> = self
            .traces
            .iter()
            .flat_map(|m| m.values())
            .flat_map(|trace| trace.updates().iter().map(|&(t, _)| t))
            .filter(|&t| t >= since)
            .collect();
        times.sort_unstable();
        times.dedup();
        times.into_iter()
    }

    /// Materialises the snapshot of the whole history as of `time`.
    pub fn snapshot_at(&self, time: Timestamp) -> SnapshotView {
        let triples = self.traces.iter().enumerate().flat_map(|(s, m)| {
            let mut items: Vec<_> = m
                .iter()
                .filter_map(move |(&o, trace)| {
                    trace
                        .value_at(time)
                        .map(|v| (SourceId::from_index(s), o, v))
                })
                .collect();
            items.sort_by_key(|&(_, o, _)| o);
            items
        });
        SnapshotView::from_triples(self.num_sources(), self.num_objects(), triples)
    }

    /// The last change point: the time of the most recent update anywhere
    /// in the history, or `None` for an empty history. One O(traces) scan
    /// over the per-trace maxima — cheaper than materialising
    /// [`History::change_points`] when only the end of the timeline is
    /// needed.
    pub fn last_change_point(&self) -> Option<Timestamp> {
        self.traces
            .iter()
            .flat_map(|m| m.values())
            .filter_map(UpdateTrace::latest)
            .map(|(t, _)| t)
            .max()
    }

    /// The latest snapshot (every source's most recent value per object) —
    /// the snapshot at the last change point.
    pub fn latest_snapshot(&self) -> SnapshotView {
        self.snapshot_at(self.last_change_point().unwrap_or(0))
    }

    /// Iterates over every `(source, object, time, value)` update.
    pub fn all_updates(
        &self,
    ) -> impl Iterator<Item = (SourceId, ObjectId, Timestamp, ValueId)> + '_ {
        self.traces.iter().enumerate().flat_map(|(s, m)| {
            m.iter().flat_map(move |(&o, trace)| {
                trace
                    .updates()
                    .iter()
                    .map(move |&(t, v)| (SourceId::from_index(s), o, t, v))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ClaimStoreBuilder;

    fn v(i: u32) -> ValueId {
        ValueId(i)
    }

    #[test]
    fn trace_sorts_and_collapses() {
        let t = UpdateTrace::from_pairs([(2006, v(1)), (2002, v(0)), (2004, v(0))]);
        // 2004 re-asserts v0 → collapsed.
        assert_eq!(t.updates(), &[(2002, v(0)), (2006, v(1))]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn trace_value_at_boundaries() {
        let t = UpdateTrace::from_pairs([(2002, v(0)), (2006, v(1))]);
        assert_eq!(t.value_at(2001), None);
        assert_eq!(t.value_at(2002), Some(v(0)));
        assert_eq!(t.value_at(2005), Some(v(0)));
        assert_eq!(t.value_at(2006), Some(v(1)));
        assert_eq!(t.value_at(2100), Some(v(1)));
    }

    #[test]
    fn trace_record_out_of_order_and_replace() {
        let mut t = UpdateTrace::new();
        t.record(2006, v(1));
        t.record(2002, v(0));
        t.record(2006, v(2)); // replace
        assert_eq!(t.updates(), &[(2002, v(0)), (2006, v(2))]);
        assert_eq!(t.first_asserted(v(2)), Some(2006));
        assert_eq!(t.first_asserted(v(9)), None);
        assert!(t.ever_asserted(v(0)));
        assert!(!t.ever_asserted(v(9)));
        assert_eq!(t.latest(), Some((2006, v(2))));
    }

    #[test]
    fn empty_trace() {
        let t = UpdateTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.value_at(0), None);
        assert_eq!(t.latest(), None);
    }

    fn sample_history() -> (ClaimStore, History) {
        let mut b = ClaimStoreBuilder::new();
        b.add_timed("S1", "Dong", "UW", 2002)
            .add_timed("S1", "Dong", "Google", 2006)
            .add_timed("S1", "Dong", "AT&T", 2007)
            .add_timed("S3", "Dong", "UW", 2003)
            .add("S3", "Suciu", "untimed-ignored");
        let store = b.build();
        let h = History::from_store(&store);
        (store, h)
    }

    #[test]
    fn history_from_store_groups_timed_claims() {
        let (store, h) = sample_history();
        let s1 = store.source_id("S1").unwrap();
        let s3 = store.source_id("S3").unwrap();
        let dong = store.object_id("Dong").unwrap();
        assert_eq!(h.trace(s1, dong).unwrap().len(), 3);
        assert_eq!(h.trace(s3, dong).unwrap().len(), 1);
        // untimed claim ignored
        assert_eq!(h.coverage(s3), 1);
        assert_eq!(h.num_updates(), 4);
    }

    #[test]
    fn history_value_at_and_snapshot() {
        let (store, h) = sample_history();
        let s1 = store.source_id("S1").unwrap();
        let dong = store.object_id("Dong").unwrap();
        let google = store.value_id(&crate::Value::text("Google")).unwrap();
        assert_eq!(h.value_at(s1, dong, 2006), Some(google));

        let snap = h.snapshot_at(2006);
        assert_eq!(snap.value(s1, dong), Some(google));

        let latest = h.latest_snapshot();
        let att = store.value_id(&crate::Value::text("AT&T")).unwrap();
        assert_eq!(latest.value(s1, dong), Some(att));
    }

    #[test]
    fn history_record_grows() {
        let mut h = History::new(1, 1);
        h.record(SourceId(2), ObjectId(3), 10, v(0));
        assert_eq!(h.num_sources(), 3);
        assert_eq!(h.num_objects(), 4);
        assert_eq!(h.value_at(SourceId(2), ObjectId(3), 11), Some(v(0)));
    }

    #[test]
    fn all_updates_enumerates_everything() {
        let (_, h) = sample_history();
        let ups: Vec<_> = h.all_updates().collect();
        assert_eq!(ups.len(), 4);
    }

    #[test]
    fn change_points_are_sorted_distinct_and_complete() {
        let (_, h) = sample_history();
        // Updates at 2002, 2003, 2006, 2007 (untimed claim ignored).
        let pts: Vec<_> = h.change_points().collect();
        assert_eq!(pts, vec![2002, 2003, 2006, 2007]);
        // The latest snapshot is exactly the snapshot at the last point.
        let last = *pts.last().unwrap();
        assert_eq!(h.last_change_point(), Some(last));
        let latest = h.latest_snapshot();
        let at_last = h.snapshot_at(last);
        assert_eq!(latest.num_assertions(), at_last.num_assertions());
        assert_eq!(latest.content_hash(), at_last.content_hash());
        // Empty history: no change points, empty latest snapshot.
        let empty = History::new(2, 2);
        assert_eq!(empty.change_points().count(), 0);
        assert_eq!(empty.last_change_point(), None);
        assert_eq!(empty.latest_snapshot().num_assertions(), 0);
    }

    #[test]
    fn change_points_since_skips_pre_ts_epochs() {
        let (_, h) = sample_history();
        // Full set is [2002, 2003, 2006, 2007]; `since` is inclusive.
        let tail: Vec<_> = h.change_points_since(2003).collect();
        assert_eq!(tail, vec![2003, 2006, 2007]);
        // A `since` between change points keeps only strictly later epochs.
        let tail: Vec<_> = h.change_points_since(2004).collect();
        assert_eq!(tail, vec![2006, 2007]);
        // Past the end: empty suffix. From the beginning: the full set.
        assert_eq!(h.change_points_since(2008).count(), 0);
        let all: Vec<_> = h.change_points_since(Timestamp::MIN).collect();
        assert_eq!(all, h.change_points().collect::<Vec<_>>());
    }

    #[test]
    fn traces_of_sorted() {
        let mut h = History::new(1, 0);
        h.record(SourceId(0), ObjectId(5), 1, v(0));
        h.record(SourceId(0), ObjectId(2), 1, v(0));
        let objs: Vec<_> = h.traces_of(SourceId(0)).iter().map(|&(o, _)| o).collect();
        assert_eq!(objs, vec![ObjectId(2), ObjectId(5)]);
    }
}
