//! Delta epochs: the unit of change the streaming ingest tier feeds into
//! incremental analysis.
//!
//! A [`Delta`] is a small sorted arena of *upserts* (a source now asserts
//! this value for this object) and *retractions* (a source no longer
//! asserts anything about this object), normalised so each
//! `(source, object)` pair appears at most once — the last event wins, the
//! same latest-claim-wins rule [`SnapshotView::from_triples`] applies to a
//! full claim scan. Applying a delta to a snapshot
//! ([`SnapshotView::apply_delta`]) sorted-merges the arena into the CSR
//! columns instead of rebuilding from a `History` scan, and is canonical:
//! the result is equal (same `content_hash`, same columns) to a full
//! rebuild from the post-delta claim set.
//!
//! [`SnapshotView::from_triples`]: crate::SnapshotView::from_triples
//! [`SnapshotView::apply_delta`]: crate::SnapshotView::apply_delta

use crate::ids::{ObjectId, SourceId};
use crate::value::ValueId;

/// One normalised delta operation: `Some(value)` upserts the source's
/// assertion on the object, `None` retracts it.
pub type DeltaOp = (SourceId, ObjectId, Option<ValueId>);

/// A sealed delta epoch: the net effect of a batch of ingest events,
/// sorted by `(source, object)` with one operation per pair.
///
/// Build one through [`DeltaBuilder`] (events in arrival order, last event
/// per pair wins) and apply it with
/// [`SnapshotView::apply_delta`](crate::SnapshotView::apply_delta).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    /// Sorted by `(source, object)`, unique per pair.
    ops: Vec<DeltaOp>,
}

impl Delta {
    /// Starts building a delta from events in arrival order.
    pub fn builder() -> DeltaBuilder {
        DeltaBuilder::default()
    }

    /// The normalised operations, sorted by `(source, object)`.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// The upserts: `(source, object, value)` triples, sorted.
    pub fn added(&self) -> impl Iterator<Item = (SourceId, ObjectId, ValueId)> + '_ {
        self.ops.iter().filter_map(|&(s, o, v)| Some((s, o, v?)))
    }

    /// The retractions: `(source, object)` pairs, sorted.
    pub fn retracted(&self) -> impl Iterator<Item = (SourceId, ObjectId)> + '_ {
        self.ops
            .iter()
            .filter(|&&(_, _, v)| v.is_none())
            .map(|&(s, o, _)| (s, o))
    }

    /// Number of normalised operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the delta contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Distinct sources touched by any operation, ascending.
    pub fn touched_sources(&self) -> Vec<SourceId> {
        let mut out: Vec<SourceId> = self.ops.iter().map(|&(s, _, _)| s).collect();
        out.dedup();
        out
    }

    /// Distinct objects touched by any operation, ascending.
    pub fn touched_objects(&self) -> Vec<ObjectId> {
        let mut out: Vec<ObjectId> = self.ops.iter().map(|&(_, o, _)| o).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The smallest source id space covering every operation.
    pub fn min_source_space(&self) -> usize {
        self.ops
            .iter()
            .map(|&(s, _, _)| s.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// The smallest object id space covering every operation.
    pub fn min_object_space(&self) -> usize {
        self.ops
            .iter()
            .map(|&(_, o, _)| o.index() + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Accumulates ingest events in arrival order and normalises them into a
/// [`Delta`]: stable-sorted by `(source, object)`, last event per pair
/// wins (an assert followed by a retract of the same pair nets out to the
/// retract, and vice versa).
#[derive(Debug, Clone, Default)]
pub struct DeltaBuilder {
    events: Vec<DeltaOp>,
}

impl DeltaBuilder {
    /// Records an upsert: `source` now asserts `value` for `object`.
    pub fn assert_value(&mut self, source: SourceId, object: ObjectId, value: ValueId) {
        self.events.push((source, object, Some(value)));
    }

    /// Records a retraction: `source` no longer asserts about `object`.
    pub fn retract(&mut self, source: SourceId, object: ObjectId) {
        self.events.push((source, object, None));
    }

    /// Number of raw events recorded so far (before normalisation).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Normalises into a sealed [`Delta`].
    pub fn build(self) -> Delta {
        let mut events = self.events;
        // Stable sort keeps arrival order within a pair; the overwrite
        // below then keeps the pair's last event.
        events.sort_by_key(|&(s, o, _)| (s, o));
        let mut ops: Vec<DeltaOp> = Vec::with_capacity(events.len());
        for op in events {
            match ops.last_mut() {
                Some(last) if (last.0, last.1) == (op.0, op.1) => *last = op,
                _ => ops.push(op),
            }
        }
        Delta { ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SourceId {
        SourceId(i)
    }
    fn o(i: u32) -> ObjectId {
        ObjectId(i)
    }
    fn v(i: u32) -> ValueId {
        ValueId(i)
    }

    #[test]
    fn builder_sorts_and_keeps_last_event_per_pair() {
        let mut b = Delta::builder();
        b.assert_value(s(1), o(0), v(7));
        b.assert_value(s(0), o(2), v(1));
        b.assert_value(s(1), o(0), v(8)); // overwrites v7
        b.retract(s(0), o(1));
        b.assert_value(s(0), o(1), v(3)); // overrides the retract
        b.retract(s(2), o(0));
        let d = b.build();
        assert_eq!(
            d.ops(),
            &[
                (s(0), o(1), Some(v(3))),
                (s(0), o(2), Some(v(1))),
                (s(1), o(0), Some(v(8))),
                (s(2), o(0), None),
            ]
        );
        assert_eq!(d.added().count(), 3);
        assert_eq!(d.retracted().collect::<Vec<_>>(), vec![(s(2), o(0))]);
        assert_eq!(d.touched_sources(), vec![s(0), s(1), s(2)]);
        assert_eq!(d.touched_objects(), vec![o(0), o(1), o(2)]);
        assert_eq!(d.min_source_space(), 3);
        assert_eq!(d.min_object_space(), 3);
    }

    #[test]
    fn empty_delta() {
        let d = Delta::builder().build();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.min_source_space(), 0);
        assert_eq!(d.min_object_space(), 0);
        assert!(d.touched_objects().is_empty());
    }
}
