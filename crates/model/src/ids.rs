//! Interned identifiers for sources, objects, and values.
//!
//! Dependence detection is quadratic in sources and linear in claims, so the
//! hot loops compare small copyable ids instead of strings. A [`Catalog`]
//! interns names to dense `u32` indexes; each [`ClaimStore`](crate::ClaimStore)
//! owns one catalog per id kind.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the dense index backing this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflows u32"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id! {
    /// Identifies one data source (a website, a bookstore, a reviewer, ...).
    SourceId
}

define_id! {
    /// Identifies one data item — the paper's *identifier* `i_j`.
    ///
    /// For relational data this typically encapsulates
    /// `(table, record, attribute)`; the encapsulated description lives in the
    /// object [`Catalog`] as the interned name (see
    /// [`object_key`]).
    ObjectId
}

define_id! {
    /// Identifies one interned [`Value`](crate::Value).
    ///
    /// Two claims assert the same value exactly when their `ValueId`s are
    /// equal, which makes agreement counting in dependence detection a `u32`
    /// comparison.
    ValueId
}

/// Builds the canonical interning key for a relational cell identifier.
///
/// The paper notes that when the asserted value is a cell value, the
/// identifier encapsulates table name, record identifier, and column name.
/// `object_key("affiliation", "Dong", Some("employer"))` produces a stable
/// string key for the catalog; pass `None` for tuple-level identifiers.
pub fn object_key(table: &str, record: &str, attribute: Option<&str>) -> String {
    match attribute {
        Some(attr) => format!("{table}\u{1f}{record}\u{1f}{attr}"),
        None => format!("{table}\u{1f}{record}"),
    }
}

/// Splits a key produced by [`object_key`] back into its components.
///
/// Returns `(table, record, attribute)`. Keys not produced by [`object_key`]
/// come back as `(key, "", None)`.
pub fn split_object_key(key: &str) -> (&str, &str, Option<&str>) {
    let mut parts = key.split('\u{1f}');
    let table = parts.next().unwrap_or(key);
    let record = parts.next().unwrap_or("");
    let attribute = parts.next();
    (table, record, attribute)
}

/// An interning table mapping names of type `K` to dense ids of type `I`.
///
/// `Catalog` is append-only: ids are handed out in insertion order and never
/// invalidated. Lookup by name is `O(1)` expected; lookup by id is `O(1)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog<K, I> {
    names: Vec<K>,
    #[serde(skip)]
    index: HashMap<K, u32>,
    #[serde(skip)]
    _marker: PhantomData<I>,
}

impl<K, I> Default for Catalog<K, I>
where
    K: Clone + Eq + Hash,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, I> Catalog<K, I>
where
    K: Clone + Eq + Hash,
{
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self {
            names: Vec::new(),
            index: HashMap::new(),
            _marker: PhantomData,
        }
    }

    /// Number of interned names.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no name has been interned yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Rebuilds the name→index map after deserialization.
    ///
    /// `serde` skips the redundant reverse map; call this once on a
    /// deserialized catalog before using [`Catalog::lookup`].
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u32))
            .collect();
    }

    fn intern_raw(&mut self, name: &K) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = u32::try_from(self.names.len()).expect("catalog overflows u32");
        self.names.push(name.clone());
        self.index.insert(name.clone(), i);
        i
    }

    fn lookup_raw(&self, name: &K) -> Option<u32> {
        self.index.get(name).copied()
    }

    fn name_raw(&self, id: u32) -> Option<&K> {
        self.names.get(id as usize)
    }

    /// Iterates over all interned names in id order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.names.iter()
    }
}

macro_rules! typed_catalog {
    ($id:ty) => {
        impl<K> Catalog<K, $id>
        where
            K: Clone + Eq + Hash,
        {
            /// Interns `name`, returning its id (existing or fresh).
            pub fn intern(&mut self, name: &K) -> $id {
                <$id>::from_index(self.intern_raw(name) as usize)
            }

            /// Looks up an already interned name.
            pub fn lookup(&self, name: &K) -> Option<$id> {
                self.lookup_raw(name).map(|i| <$id>::from_index(i as usize))
            }

            /// Returns the name behind `id`, if `id` was issued by this catalog.
            pub fn name(&self, id: $id) -> Option<&K> {
                self.name_raw(id.0)
            }

            /// Iterates over `(id, name)` pairs in id order.
            pub fn entries(&self) -> impl Iterator<Item = ($id, &K)> {
                self.names
                    .iter()
                    .enumerate()
                    .map(|(i, k)| (<$id>::from_index(i), k))
            }

            /// All ids issued so far, in order.
            pub fn ids(&self) -> impl Iterator<Item = $id> + '_ {
                (0..self.names.len()).map(<$id>::from_index)
            }
        }
    };
}

typed_catalog!(SourceId);
typed_catalog!(ObjectId);
typed_catalog!(ValueId);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueId;

    #[test]
    fn intern_is_idempotent() {
        let mut c: Catalog<String, SourceId> = Catalog::new();
        let a = c.intern(&"alpha".to_string());
        let b = c.intern(&"beta".to_string());
        let a2 = c.intern(&"alpha".to_string());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lookup_and_name_roundtrip() {
        let mut c: Catalog<String, ObjectId> = Catalog::new();
        let id = c.intern(&"Dong.affiliation".to_string());
        assert_eq!(c.lookup(&"Dong.affiliation".to_string()), Some(id));
        assert_eq!(c.name(id).map(String::as_str), Some("Dong.affiliation"));
        assert_eq!(c.lookup(&"missing".to_string()), None);
        assert_eq!(c.name(ObjectId(99)), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut c: Catalog<String, ValueId> = Catalog::new();
        for i in 0..10 {
            let id = c.intern(&format!("v{i}"));
            assert_eq!(id.index(), i);
        }
        let ids: Vec<_> = c.ids().collect();
        assert_eq!(ids.len(), 10);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn entries_iterate_in_insertion_order() {
        let mut c: Catalog<String, SourceId> = Catalog::new();
        c.intern(&"s1".to_string());
        c.intern(&"s2".to_string());
        let entries: Vec<_> = c.entries().map(|(id, n)| (id.index(), n.clone())).collect();
        assert_eq!(entries, vec![(0, "s1".to_string()), (1, "s2".to_string())]);
    }

    #[test]
    fn object_key_roundtrip() {
        let key = object_key("affil", "Dong", Some("employer"));
        let (t, r, a) = split_object_key(&key);
        assert_eq!((t, r, a), ("affil", "Dong", Some("employer")));

        let key = object_key("affil", "Dong", None);
        let (t, r, a) = split_object_key(&key);
        assert_eq!((t, r, a), ("affil", "Dong", None));
    }

    #[test]
    fn split_tolerates_foreign_keys() {
        assert_eq!(split_object_key("plain"), ("plain", "", None));
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut c: Catalog<String, SourceId> = Catalog::new();
        c.intern(&"x".to_string());
        c.intern(&"y".to_string());
        let json = serde_json::to_string(&c).unwrap();
        let mut back: Catalog<String, SourceId> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.lookup(&"y".to_string()), None); // index skipped
        back.rebuild_index();
        assert_eq!(back.lookup(&"y".to_string()), Some(SourceId(1)));
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SourceId(3).to_string(), "SourceId(3)");
        assert_eq!(ObjectId(0).to_string(), "ObjectId(0)");
    }
}
