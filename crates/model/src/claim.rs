//! Claims: the paper's 4-tuples `(identifier, value, time, probability)`.

use serde::{Deserialize, Serialize};

use crate::ids::{ObjectId, SourceId};
use crate::value::ValueId;

/// A point in (logical) time.
///
/// The model does not prescribe a unit; fixtures use years (Table 3), the
/// generators use abstract ticks. Sources lacking temporal information leave
/// claims untimed ([`Claim::time`] = `None`), matching the paper's remark
/// that time "may either be inferred from snapshots or be missing
/// altogether".
pub type Timestamp = i64;

/// One assertion by one source: "object `o` has value `v` (at time `t`, with
/// probability `p`)".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Claim {
    /// The asserting source.
    pub source: SourceId,
    /// The data item the assertion is about.
    pub object: ObjectId,
    /// The asserted (interned) value.
    pub value: ValueId,
    /// When the assertion was made/observed; `None` when the source provides
    /// no temporal information.
    pub time: Option<Timestamp>,
    /// The source's confidence in the assertion. Sources that do not provide
    /// probabilities get the paper's default of `1.0`.
    pub probability: f64,
}

impl Claim {
    /// A plain snapshot claim: no time, probability 1.
    pub fn snapshot(source: SourceId, object: ObjectId, value: ValueId) -> Self {
        Self {
            source,
            object,
            value,
            time: None,
            probability: 1.0,
        }
    }

    /// A timestamped claim with probability 1.
    pub fn timed(source: SourceId, object: ObjectId, value: ValueId, time: Timestamp) -> Self {
        Self {
            source,
            object,
            value,
            time: Some(time),
            probability: 1.0,
        }
    }

    /// Replaces the probability, clamping into `[0, 1]`.
    #[must_use]
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// `true` if this claim carries temporal information.
    pub fn is_timed(&self) -> bool {
        self.time.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (SourceId, ObjectId, ValueId) {
        (SourceId(1), ObjectId(2), ValueId(3))
    }

    #[test]
    fn snapshot_defaults() {
        let (s, o, v) = ids();
        let c = Claim::snapshot(s, o, v);
        assert_eq!(c.time, None);
        assert!(!c.is_timed());
        assert_eq!(c.probability, 1.0);
    }

    #[test]
    fn timed_carries_timestamp() {
        let (s, o, v) = ids();
        let c = Claim::timed(s, o, v, 2007);
        assert_eq!(c.time, Some(2007));
        assert!(c.is_timed());
    }

    #[test]
    fn with_probability_clamps() {
        let (s, o, v) = ids();
        assert_eq!(
            Claim::snapshot(s, o, v).with_probability(0.4).probability,
            0.4
        );
        assert_eq!(
            Claim::snapshot(s, o, v).with_probability(1.7).probability,
            1.0
        );
        assert_eq!(
            Claim::snapshot(s, o, v).with_probability(-0.2).probability,
            0.0
        );
    }

    #[test]
    fn serde_roundtrip() {
        let (s, o, v) = ids();
        let c = Claim::timed(s, o, v, -5).with_probability(0.25);
        let json = serde_json::to_string(&c).unwrap();
        let back: Claim = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
