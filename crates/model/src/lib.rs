//! # sailing-model
//!
//! The structured data-source model from *Sailing the Information Ocean with
//! Awareness of Currents* (CIDR 2009), Section 2.1.
//!
//! A structured data source is modelled as a set of 4-tuples
//! `(identifier, value, time, probability)`: the source asserts that the data
//! item named by `identifier` had `value` at `time`, with confidence
//! `probability`. Not every source provides temporal or probabilistic
//! information; both components are optional and default to "now"/`1.0`.
//!
//! This crate provides:
//!
//! * interned identifiers ([`SourceId`], [`ObjectId`], [`ValueId`]) and their
//!   catalogs ([`Catalog`]),
//! * the value domain ([`Value`]) covering atomic text/integers, ordinal
//!   ratings, and lists (e.g. author lists),
//! * [`Claim`]s and the indexed [`ClaimStore`] that holds them,
//! * [`SnapshotView`]s (latest value per source and object) for the paper's
//!   *snapshot dependence* setting,
//! * per-source update [`history`] traces for the *temporal dependence*
//!   setting,
//! * ground-truth [`world`]s used to evaluate detection and fusion, and
//! * the paper's worked examples (Tables 1–3) as ready-made [`fixtures`].
//!
//! Everything downstream — dependence detection (`sailing-core`), fusion
//! (`sailing-fusion`), online query answering (`sailing-query`) — operates on
//! these types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod claim;
pub mod delta;
pub mod equivalence;
pub mod error;
pub mod fixtures;
pub mod history;
pub mod ids;
pub mod store;
pub mod value;
pub mod world;

pub use claim::{Claim, Timestamp};
pub use delta::{Delta, DeltaBuilder, DeltaOp};
pub use equivalence::{
    ClassId, Exact, HashedDigest, NumericTolerance, ValueEquivalence, ValueQuotient,
};
pub use error::{ModelError, SailingError, SailingResult};
pub use history::{History, UpdateTrace};
pub use ids::{Catalog, ObjectId, SourceId};
pub use store::{fx_mix, ClaimStore, ClaimStoreBuilder, SnapshotView};
pub use value::{Value, ValueId};
pub use world::{DecisionMap, GroundTruth, TemporalTruth, TruthClass};
