//! Ground-truth worlds used to *evaluate* detection and fusion.
//!
//! The algorithms never see these; experiments use them to score results and
//! to label claims as true / outdated-true / false. `OutdatedTrue` matters
//! for the temporal intuitions: the paper stresses that values that *used to
//! be true* are much weaker copying evidence than never-true values
//! (Section 3.2, Example 3.2).

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::claim::Timestamp;
use crate::history::UpdateTrace;
use crate::ids::{ObjectId, SourceId};
use crate::store::SnapshotView;
use crate::value::ValueId;

/// Anything that answers "which value was chosen for this object?" —
/// scoring helpers accept any decision container (the engine's
/// reproducibly-ordered `BTreeMap`, the pipeline's `HashMap`, or a sorted
/// pair list) through this trait instead of hard-coding one map type.
pub trait DecisionMap {
    /// The chosen value for `object`, if any.
    fn chosen(&self, object: ObjectId) -> Option<ValueId>;
}

impl DecisionMap for HashMap<ObjectId, ValueId> {
    fn chosen(&self, object: ObjectId) -> Option<ValueId> {
        self.get(&object).copied()
    }
}

impl DecisionMap for BTreeMap<ObjectId, ValueId> {
    fn chosen(&self, object: ObjectId) -> Option<ValueId> {
        self.get(&object).copied()
    }
}

/// Sorted `(object, value)` pairs double as a decision map.
///
/// The slice **must** be sorted by object id (e.g. collected from the
/// engine's ordered decisions) — lookups binary-search, so an unsorted
/// slice silently misses entries. Debug builds assert the order.
impl DecisionMap for [(ObjectId, ValueId)] {
    fn chosen(&self, object: ObjectId) -> Option<ValueId> {
        debug_assert!(
            self.windows(2).all(|w| w[0].0 < w[1].0),
            "DecisionMap slice must be sorted by object id"
        );
        self.binary_search_by_key(&object, |&(o, _)| o)
            .ok()
            .map(|i| self[i].1)
    }
}

/// How a claimed value relates to the (temporal) truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TruthClass {
    /// The value is the current true value.
    CurrentTrue,
    /// The value was true at some earlier time but is no longer.
    OutdatedTrue,
    /// The value was never true.
    False,
}

impl TruthClass {
    /// `true` for values that are or ever were true.
    pub fn was_ever_true(self) -> bool {
        !matches!(self, TruthClass::False)
    }
}

/// Static ground truth: one true value per object (snapshot setting).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    truth: HashMap<ObjectId, ValueId>,
}

impl GroundTruth {
    /// Creates an empty ground truth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from `(object, true value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ObjectId, ValueId)>) -> Self {
        Self {
            truth: pairs.into_iter().collect(),
        }
    }

    /// Sets the true value for an object.
    pub fn set(&mut self, object: ObjectId, value: ValueId) {
        self.truth.insert(object, value);
    }

    /// The true value for `object`.
    pub fn value(&self, object: ObjectId) -> Option<ValueId> {
        self.truth.get(&object).copied()
    }

    /// `true` if `value` is the true value for `object`.
    pub fn is_true(&self, object: ObjectId, value: ValueId) -> bool {
        self.value(object) == Some(value)
    }

    /// Number of objects with a known true value.
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// `true` when no truth is recorded.
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }

    /// Objects with known truth, in ascending id order.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut objs: Vec<_> = self.truth.keys().copied().collect();
        objs.sort();
        objs
    }

    /// The paper's *accuracy* of a source: the fraction of its snapshot
    /// assertions (on objects with known truth) that are true.
    ///
    /// Returns `None` when the source asserts nothing evaluable.
    pub fn accuracy_of(&self, snapshot: &SnapshotView, source: SourceId) -> Option<f64> {
        let mut total = 0usize;
        let mut correct = 0usize;
        for (o, v) in snapshot.assertions_of(source) {
            if let Some(t) = self.value(o) {
                total += 1;
                if t == v {
                    correct += 1;
                }
            }
        }
        (total > 0).then(|| correct as f64 / total as f64)
    }

    /// Fraction of objects whose chosen value (from `decisions`) is true.
    ///
    /// Objects missing from `decisions` count as wrong; objects without known
    /// truth are skipped. Returns `None` if nothing is evaluable. Accepts any
    /// [`DecisionMap`] (hash map, ordered map, sorted pair slice).
    pub fn decision_precision<M: DecisionMap + ?Sized>(&self, decisions: &M) -> Option<f64> {
        if self.truth.is_empty() {
            return None;
        }
        let correct = self
            .truth
            .iter()
            .filter(|&(&o, &t)| decisions.chosen(o) == Some(t))
            .count();
        Some(correct as f64 / self.truth.len() as f64)
    }
}

/// Temporal ground truth: the full history of true values per object.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TemporalTruth {
    truth: HashMap<ObjectId, UpdateTrace>,
}

impl TemporalTruth {
    /// Creates an empty temporal truth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from `(object, time, value)` triples.
    pub fn from_triples(triples: impl IntoIterator<Item = (ObjectId, Timestamp, ValueId)>) -> Self {
        let mut grouped: HashMap<ObjectId, Vec<(Timestamp, ValueId)>> = HashMap::new();
        for (o, t, v) in triples {
            grouped.entry(o).or_default().push((t, v));
        }
        Self {
            truth: grouped
                .into_iter()
                .map(|(o, pairs)| (o, UpdateTrace::from_pairs(pairs)))
                .collect(),
        }
    }

    /// Records that `object` became `value` at `time`.
    pub fn record(&mut self, object: ObjectId, time: Timestamp, value: ValueId) {
        self.truth.entry(object).or_default().record(time, value);
    }

    /// The true trace for `object`.
    pub fn trace(&self, object: ObjectId) -> Option<&UpdateTrace> {
        self.truth.get(&object)
    }

    /// The true value of `object` at `time`.
    pub fn value_at(&self, object: ObjectId, time: Timestamp) -> Option<ValueId> {
        self.trace(object)?.value_at(time)
    }

    /// The current (latest) true value of `object`.
    pub fn current(&self, object: ObjectId) -> Option<ValueId> {
        self.trace(object)?.latest().map(|(_, v)| v)
    }

    /// Classifies a claimed value against the truth history *as of* `now`.
    ///
    /// Returns `None` when the object has no recorded truth.
    pub fn classify(&self, object: ObjectId, value: ValueId, now: Timestamp) -> Option<TruthClass> {
        let trace = self.trace(object)?;
        let current = trace.value_at(now)?;
        Some(if value == current {
            TruthClass::CurrentTrue
        } else if trace.ever_asserted(value)
            && trace.first_asserted(value).is_some_and(|t| t <= now)
        {
            TruthClass::OutdatedTrue
        } else {
            TruthClass::False
        })
    }

    /// Projects the *current* truth (as of `now`) into a snapshot
    /// [`GroundTruth`].
    pub fn snapshot_at(&self, now: Timestamp) -> GroundTruth {
        GroundTruth::from_pairs(
            self.truth
                .iter()
                .filter_map(|(&o, trace)| trace.value_at(now).map(|v| (o, v))),
        )
    }

    /// Number of objects with recorded truth.
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// `true` when no truth is recorded.
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }

    /// The latest timestamp across all truth traces.
    pub fn horizon(&self) -> Option<Timestamp> {
        self.truth
            .values()
            .filter_map(UpdateTrace::latest)
            .map(|(t, _)| t)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ClaimStoreBuilder;
    use crate::value::Value;

    fn v(i: u32) -> ValueId {
        ValueId(i)
    }
    fn o(i: u32) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn ground_truth_basics() {
        let mut gt = GroundTruth::new();
        assert!(gt.is_empty());
        gt.set(o(0), v(1));
        gt.set(o(1), v(2));
        assert_eq!(gt.len(), 2);
        assert!(gt.is_true(o(0), v(1)));
        assert!(!gt.is_true(o(0), v(2)));
        assert_eq!(gt.value(o(9)), None);
        assert_eq!(gt.objects(), vec![o(0), o(1)]);
    }

    #[test]
    fn accuracy_of_source() {
        let mut b = ClaimStoreBuilder::new();
        b.add("S1", "a", "x")
            .add("S1", "b", "y")
            .add("S1", "c", "z");
        let store = b.build();
        let snap = store.snapshot();
        let s1 = store.source_id("S1").unwrap();
        let gt = GroundTruth::from_pairs([
            (
                store.object_id("a").unwrap(),
                store.value_id(&Value::text("x")).unwrap(),
            ),
            (
                store.object_id("b").unwrap(),
                store
                    .value_id(&Value::text("WRONG"))
                    .unwrap_or(ValueId(999)),
            ),
        ]);
        // a correct, b wrong, c not evaluable → 1/2
        let acc = gt.accuracy_of(&snap, s1).unwrap();
        assert!((acc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_none_when_nothing_evaluable() {
        let mut b = ClaimStoreBuilder::new();
        b.add("S1", "a", "x");
        let store = b.build();
        let gt = GroundTruth::new();
        assert_eq!(
            gt.accuracy_of(&store.snapshot(), store.source_id("S1").unwrap()),
            None
        );
    }

    #[test]
    fn decision_precision_counts_missing_as_wrong() {
        let gt = GroundTruth::from_pairs([(o(0), v(1)), (o(1), v(2)), (o(2), v(3))]);
        let mut decisions = HashMap::new();
        decisions.insert(o(0), v(1)); // right
        decisions.insert(o(1), v(9)); // wrong
                                      // o(2) missing → wrong
        assert!((gt.decision_precision(&decisions).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(GroundTruth::new().decision_precision(&decisions), None);
    }

    #[test]
    fn decision_precision_accepts_every_decision_container() {
        let gt = GroundTruth::from_pairs([(o(0), v(1)), (o(1), v(2))]);
        let hash: HashMap<ObjectId, ValueId> = [(o(0), v(1)), (o(1), v(9))].into_iter().collect();
        let tree: BTreeMap<ObjectId, ValueId> = hash.iter().map(|(&k, &w)| (k, w)).collect();
        let pairs = [(o(0), v(1)), (o(1), v(9))];
        let expected = gt.decision_precision(&hash).unwrap();
        assert_eq!(gt.decision_precision(&tree), Some(expected));
        assert_eq!(gt.decision_precision(&pairs[..]), Some(expected));
        assert!((expected - 0.5).abs() < 1e-12);
    }

    fn dong_truth() -> TemporalTruth {
        // Dong: UW from 2002, Google from 2006, AT&T from 2007 (v0, v1, v2).
        TemporalTruth::from_triples([(o(0), 2002, v(0)), (o(0), 2006, v(1)), (o(0), 2007, v(2))])
    }

    #[test]
    fn temporal_truth_classify() {
        let tt = dong_truth();
        // As of 2007: AT&T current, Google/UW outdated, MSR never true.
        assert_eq!(tt.classify(o(0), v(2), 2007), Some(TruthClass::CurrentTrue));
        assert_eq!(
            tt.classify(o(0), v(1), 2007),
            Some(TruthClass::OutdatedTrue)
        );
        assert_eq!(
            tt.classify(o(0), v(0), 2007),
            Some(TruthClass::OutdatedTrue)
        );
        assert_eq!(tt.classify(o(0), v(9), 2007), Some(TruthClass::False));
        // As of 2006: Google current, AT&T "from the future" counts as false.
        assert_eq!(tt.classify(o(0), v(1), 2006), Some(TruthClass::CurrentTrue));
        assert_eq!(tt.classify(o(0), v(2), 2006), Some(TruthClass::False));
        // Unknown object.
        assert_eq!(tt.classify(o(5), v(0), 2007), None);
        // Before any truth.
        assert_eq!(tt.classify(o(0), v(0), 2001), None);
    }

    #[test]
    fn truth_class_predicates() {
        assert!(TruthClass::CurrentTrue.was_ever_true());
        assert!(TruthClass::OutdatedTrue.was_ever_true());
        assert!(!TruthClass::False.was_ever_true());
    }

    #[test]
    fn temporal_snapshot_projection() {
        let tt = dong_truth();
        assert_eq!(tt.snapshot_at(2006).value(o(0)), Some(v(1)));
        assert_eq!(tt.snapshot_at(2010).value(o(0)), Some(v(2)));
        assert_eq!(tt.snapshot_at(2000).len(), 0);
        assert_eq!(tt.current(o(0)), Some(v(2)));
        assert_eq!(tt.horizon(), Some(2007));
        assert_eq!(tt.len(), 1);
        assert!(!tt.is_empty());
    }

    #[test]
    fn temporal_record_incremental() {
        let mut tt = TemporalTruth::new();
        assert!(tt.is_empty());
        assert_eq!(tt.horizon(), None);
        tt.record(o(1), 5, v(0));
        tt.record(o(1), 9, v(1));
        assert_eq!(tt.value_at(o(1), 7), Some(v(0)));
        assert_eq!(tt.current(o(1)), Some(v(1)));
    }
}
