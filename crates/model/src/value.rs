//! The value domain.
//!
//! The paper deliberately does not constrain value domains: sources assert
//! atomic cell values ("UW"), numeric values, ordinal opinions ("Good"), or
//! whole tuples (author lists). [`Value`] covers those cases with a hashable,
//! totally ordered enum so values can be interned to [`ValueId`]s and
//! compared cheaply inside detection loops.

use std::fmt;

use serde::{Deserialize, Serialize};

pub use crate::ids::ValueId;

/// A value asserted by a source for a data item.
///
/// `Value` is `Eq + Hash + Ord` so it can be interned and used as a map key.
/// Real-valued measurements should be quantised by the caller (the paper's
/// settings — affiliations, author lists, ratings — are all discrete; see
/// [`Value::Rating`] for ordinal scales).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// An atomic textual value, e.g. an affiliation or a publisher name.
    Text(String),
    /// An integer value, e.g. a publication year.
    Int(i64),
    /// An ordinal rating on a small scale, e.g. 0 = Bad, 1 = Neutral, 2 = Good.
    Rating(u8),
    /// An ordered list value, e.g. an author list.
    List(Vec<Value>),
    /// An explicit "no value / withdrawn" marker, distinct from not covering
    /// the item at all (used for deletions in temporal traces).
    Absent,
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Convenience constructor for an author-list style value.
    pub fn list_of_texts<I, S>(items: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Value::List(items.into_iter().map(Value::text).collect())
    }

    /// Returns the inner text for `Text` values.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the inner integer for `Int` values.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the rating level for `Rating` values.
    pub fn as_rating(&self) -> Option<u8> {
        match self {
            Value::Rating(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the list elements for `List` values.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for the explicit [`Value::Absent`] marker.
    pub fn is_absent(&self) -> bool {
        matches!(self, Value::Absent)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Rating(r) => write!(f, "#{r}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Absent => write!(f, "⊥"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::text("UW").as_text(), Some("UW"));
        assert_eq!(Value::Int(2007).as_int(), Some(2007));
        assert_eq!(Value::Rating(2).as_rating(), Some(2));
        assert!(Value::Absent.is_absent());
        assert_eq!(Value::text("UW").as_int(), None);
        assert_eq!(Value::Int(1).as_text(), None);
        assert_eq!(Value::Rating(0).as_list(), None);
    }

    #[test]
    fn list_of_texts_builds_nested_values() {
        let v = Value::list_of_texts(["Bloch", "Gafter"]);
        let items = v.as_list().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].as_text(), Some("Bloch"));
    }

    #[test]
    fn values_hash_and_compare() {
        let mut set = HashSet::new();
        set.insert(Value::text("UW"));
        set.insert(Value::text("UW"));
        set.insert(Value::text("MSR"));
        set.insert(Value::Int(3));
        assert_eq!(set.len(), 3);
        assert!(Value::Text("a".into()) < Value::Text("b".into()));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Value::text("UW").to_string(), "UW");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::Rating(1).to_string(), "#1");
        assert_eq!(Value::list_of_texts(["A", "B"]).to_string(), "[A, B]");
        assert_eq!(Value::Absent.to_string(), "⊥");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from("x".to_string()), Value::text("x"));
        assert_eq!(Value::from(9i64), Value::Int(9));
    }

    #[test]
    fn serde_roundtrip() {
        let v = Value::List(vec![Value::text("a"), Value::Int(1), Value::Rating(2)]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
