//! The workspace-wide error type.
//!
//! Every fallible constructor and validator in the workspace — model
//! construction and lookup, detection/fusion parameter validation, datagen
//! configuration — reports a [`SailingError`] so callers can match on the
//! failure instead of parsing strings. The error flows unchanged through
//! `sailing-core`, `sailing-fusion`, `sailing-query`, `sailing-recommend`,
//! and the `sailing` facade, which all re-export it.

use std::fmt;

/// Errors raised anywhere in the sailing workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum SailingError {
    /// A name was used before being interned in the corresponding catalog.
    UnknownName {
        /// Which catalog the lookup targeted ("source", "object", "value").
        kind: &'static str,
        /// The offending name.
        name: String,
    },
    /// A claim referenced an id that was never issued.
    UnknownId {
        /// Which catalog the id belongs to.
        kind: &'static str,
        /// The raw id value.
        id: u32,
    },
    /// A probability outside `[0, 1]` was supplied where clamping is not
    /// appropriate (e.g. explicit distribution input).
    InvalidProbability(
        /// The offending probability.
        f64,
    ),
    /// A temporal operation was requested on data without timestamps.
    MissingTemporalInfo {
        /// Human-readable context for the failed operation.
        context: &'static str,
    },
    /// A detection/fusion parameter violated its documented constraint.
    InvalidParameter {
        /// The parameter's field name (e.g. `copy_rate`).
        param: &'static str,
        /// Why the supplied value is rejected.
        reason: String,
    },
    /// A generator or engine configuration is structurally invalid.
    InvalidConfig {
        /// What was being configured (e.g. `WorldConfig`).
        context: &'static str,
        /// Why the configuration is rejected.
        reason: String,
    },
    /// A persistent-store operation failed at the filesystem level.
    ///
    /// Raised only for *infrastructure* failures (the directory cannot be
    /// created, a write or rename fails); a damaged or stale store **file**
    /// is never an error — readers degrade it to a cold cache miss.
    Persist {
        /// The path the operation targeted.
        path: String,
        /// The underlying I/O failure, rendered.
        reason: String,
    },
    /// A persistent-store write failed on the **background writer thread**,
    /// after the originating `put` had already returned to its caller.
    ///
    /// Deferred failures are never silently lost: each is counted in the
    /// store's `PersistStats::write_errors`, retained for
    /// `PersistentStore::take_write_errors`, and the first one pending is
    /// returned by the next `flush()` drain. The dropped entry itself is a
    /// cache of recomputable work — losing it is a future cold miss, not
    /// data loss.
    PersistDeferred {
        /// The path the background write targeted.
        path: String,
        /// The underlying I/O failure, rendered.
        reason: String,
    },
}

impl SailingError {
    /// Convenience constructor for an out-of-`[0, 1]` parameter.
    pub fn param_outside_unit(param: &'static str, value: f64) -> Self {
        SailingError::InvalidParameter {
            param,
            reason: format!("{value} outside [0, 1]"),
        }
    }

    /// Convenience constructor for [`SailingError::InvalidParameter`].
    pub fn param(param: &'static str, reason: impl Into<String>) -> Self {
        SailingError::InvalidParameter {
            param,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`SailingError::InvalidConfig`].
    pub fn config(context: &'static str, reason: impl Into<String>) -> Self {
        SailingError::InvalidConfig {
            context,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`SailingError::Persist`].
    pub fn persist(path: impl Into<String>, reason: impl std::fmt::Display) -> Self {
        SailingError::Persist {
            path: path.into(),
            reason: reason.to_string(),
        }
    }

    /// Re-labels a persist error as having happened on the background
    /// writer thread ([`SailingError::PersistDeferred`]). Non-persist
    /// errors pass through unchanged.
    pub fn into_deferred(self) -> Self {
        match self {
            SailingError::Persist { path, reason } => {
                SailingError::PersistDeferred { path, reason }
            }
            other => other,
        }
    }
}

impl fmt::Display for SailingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SailingError::UnknownName { kind, name } => {
                write!(f, "unknown {kind} name: {name:?}")
            }
            SailingError::UnknownId { kind, id } => write!(f, "unknown {kind} id: {id}"),
            SailingError::InvalidProbability(p) => {
                write!(f, "probability {p} outside [0, 1]")
            }
            SailingError::MissingTemporalInfo { context } => {
                write!(f, "temporal information required but missing: {context}")
            }
            SailingError::InvalidParameter { param, reason } => {
                write!(f, "invalid parameter {param}: {reason}")
            }
            SailingError::InvalidConfig { context, reason } => {
                write!(f, "invalid {context}: {reason}")
            }
            SailingError::Persist { path, reason } => {
                write!(f, "persistent store failure at {path}: {reason}")
            }
            SailingError::PersistDeferred { path, reason } => {
                write!(
                    f,
                    "persistent store background write failed at {path}: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for SailingError {}

/// Workspace-standard result alias.
pub type SailingResult<T> = Result<T, SailingError>;

/// Historical name of the model-layer error, kept as an alias through the
/// typed-error migration.
pub type ModelError = SailingError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SailingError::UnknownName {
            kind: "source",
            name: "S9".into(),
        };
        assert!(e.to_string().contains("source"));
        assert!(e.to_string().contains("S9"));

        assert!(SailingError::UnknownId {
            kind: "object",
            id: 7
        }
        .to_string()
        .contains('7'));
        assert!(SailingError::InvalidProbability(1.5)
            .to_string()
            .contains("1.5"));
        assert!(SailingError::MissingTemporalInfo { context: "history" }
            .to_string()
            .contains("history"));
        assert!(SailingError::param_outside_unit("copy_rate", 2.0)
            .to_string()
            .contains("copy_rate"));
        assert!(SailingError::config("WorldConfig", "no sources")
            .to_string()
            .contains("WorldConfig"));
        assert!(SailingError::persist("/store/x", "disk full")
            .into_deferred()
            .to_string()
            .contains("background write"));
    }

    #[test]
    fn into_deferred_relabels_only_persist() {
        let deferred = SailingError::persist("/store/a.sail", "io").into_deferred();
        assert!(matches!(deferred, SailingError::PersistDeferred { .. }));
        let other = SailingError::InvalidProbability(2.0).into_deferred();
        assert_eq!(other, SailingError::InvalidProbability(2.0));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&SailingError::InvalidProbability(2.0));
    }

    #[test]
    fn model_error_alias_matches() {
        // The legacy alias stays pattern-matchable.
        let e: ModelError = SailingError::UnknownId {
            kind: "value",
            id: 3,
        };
        assert!(matches!(e, ModelError::UnknownId { kind: "value", .. }));
    }
}
