//! Error type for model construction and lookup.

use std::fmt;

/// Errors raised while building or querying the model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A name was used before being interned in the corresponding catalog.
    UnknownName {
        /// Which catalog the lookup targeted ("source", "object", "value").
        kind: &'static str,
        /// The offending name.
        name: String,
    },
    /// A claim referenced an id that was never issued.
    UnknownId {
        /// Which catalog the id belongs to.
        kind: &'static str,
        /// The raw id value.
        id: u32,
    },
    /// A probability outside `[0, 1]` was supplied where clamping is not
    /// appropriate (e.g. explicit distribution input).
    InvalidProbability(
        /// The offending probability.
        f64,
    ),
    /// A temporal operation was requested on data without timestamps.
    MissingTemporalInfo {
        /// Human-readable context for the failed operation.
        context: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownName { kind, name } => {
                write!(f, "unknown {kind} name: {name:?}")
            }
            ModelError::UnknownId { kind, id } => write!(f, "unknown {kind} id: {id}"),
            ModelError::InvalidProbability(p) => {
                write!(f, "probability {p} outside [0, 1]")
            }
            ModelError::MissingTemporalInfo { context } => {
                write!(f, "temporal information required but missing: {context}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::UnknownName {
            kind: "source",
            name: "S9".into(),
        };
        assert!(e.to_string().contains("source"));
        assert!(e.to_string().contains("S9"));

        assert!(ModelError::UnknownId { kind: "object", id: 7 }
            .to_string()
            .contains('7'));
        assert!(ModelError::InvalidProbability(1.5).to_string().contains("1.5"));
        assert!(ModelError::MissingTemporalInfo { context: "history" }
            .to_string()
            .contains("history"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&ModelError::InvalidProbability(2.0));
    }
}
