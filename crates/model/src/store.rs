//! The indexed claim store and its snapshot view.
//!
//! [`ClaimStore`] owns the three catalogs (sources, objects, values) and the
//! flat claim list, with per-source and per-object indexes. It is immutable
//! once built; construction goes through [`ClaimStoreBuilder`].
//!
//! [`SnapshotView`] materialises the paper's *snapshot* setting: for each
//! `(source, object)` pair only the most recent claim survives, giving one
//! value per source per covered object (Table 1 shape). All snapshot-mode
//! algorithms in `sailing-core` consume this view.
//!
//! # Columnar (CSR) layout
//!
//! The snapshot is the data plane of every hot loop in the workspace
//! (candidate-pair enumeration is `Σ support²`, pairwise detection is
//! `Σ overlap` per iteration), so it is stored as two compressed-sparse-row
//! indexes over flat arenas instead of nested hash maps:
//!
//! * `src_offsets`/`src_entries` — per source, a contiguous slice of
//!   `(ObjectId, ValueId)` assertions **sorted by object**. `value(s, o)`
//!   is a binary search; `overlap(a, b)` is a sorted-merge intersection of
//!   two contiguous slices (no hashing, linear cache-friendly scans).
//! * `obj_offsets`/`obj_entries` — per object, a contiguous slice of
//!   `(SourceId, ValueId)` assertions **sorted by source**; this is the
//!   inverted index candidate-pair enumeration walks.
//! * `obj_distinct` — the number of distinct values asserted per object,
//!   precomputed once so `distinct_values` (the `n` in every vote weight
//!   and pair likelihood) is O(1) instead of a per-call hash count.
//!
//! Invariants (upheld by every constructor, relied on by consumers):
//! offsets are monotone with `len() == dimension + 1`; each `(source,
//! object)` pair appears at most once; source slices are strictly sorted by
//! object and object slices strictly sorted by source; both arenas contain
//! the same assertions. The serde representation is **not** the CSR arrays:
//! snapshots serialize in the legacy map-per-source JSON shape so stored
//! artifacts stay wire-compatible across the layout change. One deliberate
//! narrowing: because the CSR offsets allocate per dense id, documents
//! whose id space is implausibly larger than their assertion count (see
//! [`serde::plausible_id_space`]) are rejected instead of allocated —
//! catalog ids are dense, so real artifacts always pass.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Content, Deserialize, Error as SerdeError, Serialize};

use crate::claim::{Claim, Timestamp};
use crate::delta::Delta;
use crate::equivalence::{ValueEquivalence, ValueQuotient};
use crate::error::ModelError;
use crate::ids::{Catalog, ObjectId, SourceId};
use crate::value::{Value, ValueId};

/// Incrementally assembles a [`ClaimStore`].
#[derive(Debug, Default, Clone)]
pub struct ClaimStoreBuilder {
    sources: Catalog<String, SourceId>,
    objects: Catalog<String, ObjectId>,
    values: Catalog<Value, ValueId>,
    claims: Vec<Claim>,
}

impl ClaimStoreBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a source name.
    pub fn source(&mut self, name: &str) -> SourceId {
        self.sources.intern(&name.to_string())
    }

    /// Interns an object (data item) name.
    pub fn object(&mut self, name: &str) -> ObjectId {
        self.objects.intern(&name.to_string())
    }

    /// Interns a value.
    pub fn value(&mut self, value: &Value) -> ValueId {
        self.values.intern(value)
    }

    /// Adds an untimed, certain claim, interning all names.
    pub fn add(&mut self, source: &str, object: &str, value: impl Into<Value>) -> &mut Self {
        let s = self.source(source);
        let o = self.object(object);
        let v = self.value(&value.into());
        self.claims.push(Claim::snapshot(s, o, v));
        self
    }

    /// Adds a timestamped, certain claim, interning all names.
    pub fn add_timed(
        &mut self,
        source: &str,
        object: &str,
        value: impl Into<Value>,
        time: Timestamp,
    ) -> &mut Self {
        let s = self.source(source);
        let o = self.object(object);
        let v = self.value(&value.into());
        self.claims.push(Claim::timed(s, o, v, time));
        self
    }

    /// Adds a fully specified claim with pre-interned ids.
    ///
    /// # Errors
    /// Returns [`ModelError::UnknownId`] if any id was not issued by this
    /// builder, and [`ModelError::InvalidProbability`] for probabilities
    /// outside `[0, 1]`.
    pub fn add_claim(&mut self, claim: Claim) -> Result<&mut Self, ModelError> {
        if claim.source.index() >= self.sources.len() {
            return Err(ModelError::UnknownId {
                kind: "source",
                id: claim.source.0,
            });
        }
        if claim.object.index() >= self.objects.len() {
            return Err(ModelError::UnknownId {
                kind: "object",
                id: claim.object.0,
            });
        }
        if claim.value.index() >= self.values.len() {
            return Err(ModelError::UnknownId {
                kind: "value",
                id: claim.value.0,
            });
        }
        if !(0.0..=1.0).contains(&claim.probability) {
            return Err(ModelError::InvalidProbability(claim.probability));
        }
        self.claims.push(claim);
        Ok(self)
    }

    /// Number of claims added so far.
    pub fn claim_count(&self) -> usize {
        self.claims.len()
    }

    /// Finalises the store, building all indexes.
    pub fn build(self) -> ClaimStore {
        let mut by_source: Vec<Vec<u32>> = vec![Vec::new(); self.sources.len()];
        let mut by_object: Vec<Vec<u32>> = vec![Vec::new(); self.objects.len()];
        for (i, c) in self.claims.iter().enumerate() {
            let i = i as u32;
            by_source[c.source.index()].push(i);
            by_object[c.object.index()].push(i);
        }
        // Materialise the value arena once; every snapshot taken from this
        // store shares it by `Arc`, which is what lets
        // [`SnapshotView::quotient`] partition values without a catalog in
        // reach.
        let value_arena = Arc::new(self.values.iter().cloned().collect::<Vec<Value>>());
        ClaimStore {
            sources: self.sources,
            objects: self.objects,
            values: self.values,
            claims: self.claims,
            by_source,
            by_object,
            value_arena,
        }
    }
}

/// An immutable, indexed collection of claims from many sources.
#[derive(Debug, Clone)]
pub struct ClaimStore {
    sources: Catalog<String, SourceId>,
    objects: Catalog<String, ObjectId>,
    values: Catalog<Value, ValueId>,
    claims: Vec<Claim>,
    by_source: Vec<Vec<u32>>,
    by_object: Vec<Vec<u32>>,
    /// The interned values in id order, shared with every snapshot.
    value_arena: Arc<Vec<Value>>,
}

impl ClaimStore {
    /// Number of distinct sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of distinct objects (data items).
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Number of distinct interned values.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Total number of claims.
    pub fn num_claims(&self) -> usize {
        self.claims.len()
    }

    /// All claims, in insertion order.
    pub fn claims(&self) -> &[Claim] {
        &self.claims
    }

    /// All source ids.
    pub fn source_ids(&self) -> impl Iterator<Item = SourceId> + '_ {
        self.sources.ids()
    }

    /// All object ids.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.ids()
    }

    /// The name behind a source id.
    pub fn source_name(&self, id: SourceId) -> Option<&str> {
        self.sources.name(id).map(String::as_str)
    }

    /// The name behind an object id.
    pub fn object_name(&self, id: ObjectId) -> Option<&str> {
        self.objects.name(id).map(String::as_str)
    }

    /// The value behind a value id.
    pub fn value(&self, id: ValueId) -> Option<&Value> {
        self.values.name(id)
    }

    /// Looks up a source id by name.
    pub fn source_id(&self, name: &str) -> Option<SourceId> {
        self.sources.lookup(&name.to_string())
    }

    /// Looks up an object id by name.
    pub fn object_id(&self, name: &str) -> Option<ObjectId> {
        self.objects.lookup(&name.to_string())
    }

    /// Looks up a value id for an exact value.
    pub fn value_id(&self, value: &Value) -> Option<ValueId> {
        self.values.lookup(value)
    }

    /// Claims asserted by `source`, in insertion order.
    pub fn claims_of_source(&self, source: SourceId) -> impl Iterator<Item = &Claim> {
        self.by_source
            .get(source.index())
            .into_iter()
            .flatten()
            .map(move |&i| &self.claims[i as usize])
    }

    /// Claims about `object`, in insertion order.
    pub fn claims_on_object(&self, object: ObjectId) -> impl Iterator<Item = &Claim> {
        self.by_object
            .get(object.index())
            .into_iter()
            .flatten()
            .map(move |&i| &self.claims[i as usize])
    }

    /// Builds the snapshot view: the most recent claim per `(source, object)`.
    ///
    /// Untimed claims are treated as *current* (they out-date any timestamped
    /// claim); among equal times the later-inserted claim wins, so repeated
    /// `add` calls behave like upserts.
    pub fn snapshot(&self) -> SnapshotView {
        self.snapshot_at(None)
    }

    /// Builds the snapshot as of time `t` (inclusive). Claims with no
    /// timestamp are included only when `t` is `None`.
    pub fn snapshot_at(&self, t: Option<Timestamp>) -> SnapshotView {
        // Rank: None (untimed/current) above any timestamp.
        type Rank = (i64, i64);
        fn rank(time: Option<Timestamp>) -> Rank {
            match time {
                None => (1, 0),
                Some(ts) => (0, ts),
            }
        }
        let mut latest: HashMap<(SourceId, ObjectId), (usize, Rank)> = HashMap::new();
        for (i, c) in self.claims.iter().enumerate() {
            if let (Some(cutoff), Some(ts)) = (t, c.time) {
                if ts > cutoff {
                    continue;
                }
            }
            if t.is_some() && c.time.is_none() {
                continue;
            }
            let r = rank(c.time);
            let entry = latest.entry((c.source, c.object)).or_insert((i, r));
            // `>=` so later insertion wins ties.
            if (r, i) >= (entry.1, entry.0) {
                *entry = (i, r);
            }
        }

        let mut entries: Vec<_> = latest.into_iter().collect();
        // Deterministic order regardless of hash-map iteration.
        entries.sort_by_key(|&((s, o), _)| (s, o));
        let mut rows = Vec::with_capacity(entries.len());
        for ((s, o), (i, _)) in entries {
            let v = self.claims[i].value;
            if let Some(val) = self.values.name(v) {
                if val.is_absent() {
                    continue; // withdrawn value: source no longer covers object
                }
            }
            rows.push((s, o, v));
        }
        SnapshotView::from_unique_sorted(self.sources.len(), self.objects.len(), rows)
            .with_values(Arc::clone(&self.value_arena))
    }
}

/// One value per source per covered object: the paper's snapshot setting.
///
/// Stored as two CSR indexes over flat arenas (see the module docs): the
/// per-source side drives `value`/`assertions_of`/`overlap`, the per-object
/// side drives `assertions_on`/`value_counts`, and a precomputed
/// distinct-value column makes `distinct_values` O(1). Equality compares
/// content (dimensions + assertions); the canonical CSR layout makes the
/// field-wise comparison exactly that. The optional value arena is
/// advisory payload metadata (it enables [`SnapshotView::quotient`]) and
/// deliberately takes no part in equality, hashing, or the wire format.
#[derive(Debug, Clone)]
pub struct SnapshotView {
    num_sources: usize,
    num_objects: usize,
    /// `src_entries[src_offsets[s]..src_offsets[s+1]]` = source `s`'s
    /// assertions, sorted by object.
    src_offsets: Vec<u32>,
    src_entries: Vec<(ObjectId, ValueId)>,
    /// `obj_entries[obj_offsets[o]..obj_offsets[o+1]]` = object `o`'s
    /// assertions, sorted by source.
    obj_offsets: Vec<u32>,
    obj_entries: Vec<(SourceId, ValueId)>,
    /// Distinct values asserted per object.
    obj_distinct: Vec<u32>,
    /// The interned values in id order, when the snapshot's producer had
    /// them (snapshots built from a [`ClaimStore`]; snapshots rebuilt from
    /// the wire or from bare triples carry `None`).
    values: Option<Arc<Vec<Value>>>,
}

// Equality is CSR content only: two snapshots asserting the same
// `(source, object, value)` set are the same snapshot whether or not one
// of them happens to carry the payload arena. The persist tier relies on
// this — stored snapshots round-trip through the arena-less wire shape
// and must still verify equal against live ones.
impl PartialEq for SnapshotView {
    fn eq(&self, other: &Self) -> bool {
        self.num_sources == other.num_sources
            && self.num_objects == other.num_objects
            && self.src_offsets == other.src_offsets
            && self.src_entries == other.src_entries
            && self.obj_offsets == other.obj_offsets
            && self.obj_entries == other.obj_entries
            && self.obj_distinct == other.obj_distinct
    }
}

impl Eq for SnapshotView {}

impl Default for SnapshotView {
    fn default() -> Self {
        Self::from_unique_sorted(0, 0, Vec::new())
    }
}

/// Sorted-merge intersection of two per-source assertion slices.
///
/// When the side to advance is much longer than the other, the skip is a
/// binary search (galloping) instead of a linear walk, so a tiny
/// specialist screened against a near-global source costs
/// `O(min · log max)` rather than `O(max)`.
struct OverlapIter<'a> {
    a: &'a [(ObjectId, ValueId)],
    b: &'a [(ObjectId, ValueId)],
}

/// Advance-by-search kicks in once the lagging side is this many times
/// longer than the other.
const GALLOP_FACTOR: usize = 16;

impl Iterator for OverlapIter<'_> {
    type Item = (ObjectId, ValueId, ValueId);

    fn next(&mut self) -> Option<Self::Item> {
        while let (Some(&(oa, va)), Some(&(ob, vb))) = (self.a.first(), self.b.first()) {
            match oa.cmp(&ob) {
                std::cmp::Ordering::Less => {
                    if self.a.len() > GALLOP_FACTOR * self.b.len() {
                        let skip = self.a.partition_point(|&(o, _)| o < ob);
                        self.a = &self.a[skip..];
                    } else {
                        self.a = &self.a[1..];
                    }
                }
                std::cmp::Ordering::Greater => {
                    if self.b.len() > GALLOP_FACTOR * self.a.len() {
                        let skip = self.b.partition_point(|&(o, _)| o < oa);
                        self.b = &self.b[skip..];
                    } else {
                        self.b = &self.b[1..];
                    }
                }
                std::cmp::Ordering::Equal => {
                    self.a = &self.a[1..];
                    self.b = &self.b[1..];
                    return Some((oa, va, vb));
                }
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.a.len().min(self.b.len())))
    }
}

impl SnapshotView {
    /// Builds a snapshot view directly from `(source, object, value)` triples.
    ///
    /// Ids must be dense; `num_sources`/`num_objects` bound the id spaces.
    /// Later triples overwrite earlier ones for the same `(source, object)`.
    pub fn from_triples(
        num_sources: usize,
        num_objects: usize,
        triples: impl IntoIterator<Item = (SourceId, ObjectId, ValueId)>,
    ) -> Self {
        let mut rows: Vec<(SourceId, ObjectId, ValueId, u32)> = triples
            .into_iter()
            .enumerate()
            .map(|(i, (s, o, v))| (s, o, v, i as u32))
            .collect();
        // Stable (source, object) order with the *last* insertion winning.
        rows.sort_unstable_by_key(|&(s, o, _, i)| (s, o, i));
        let mut unique: Vec<(SourceId, ObjectId, ValueId)> = Vec::with_capacity(rows.len());
        for &(s, o, v, _) in &rows {
            match unique.last_mut() {
                Some(last) if last.0 == s && last.1 == o => last.2 = v,
                _ => unique.push((s, o, v)),
            }
        }
        Self::from_unique_sorted(num_sources, num_objects, unique)
    }

    /// Core constructor: `rows` must be sorted by `(source, object)` with
    /// unique `(source, object)` pairs; both CSR sides and the distinct
    /// counts are built in two linear passes.
    fn from_unique_sorted(
        num_sources: usize,
        num_objects: usize,
        rows: Vec<(SourceId, ObjectId, ValueId)>,
    ) -> Self {
        debug_assert!(rows.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        let n = rows.len();
        let mut src_offsets = vec![0u32; num_sources + 1];
        let mut obj_offsets = vec![0u32; num_objects + 1];
        for &(s, o, _) in &rows {
            src_offsets[s.index() + 1] += 1;
            obj_offsets[o.index() + 1] += 1;
        }
        for i in 1..src_offsets.len() {
            src_offsets[i] += src_offsets[i - 1];
        }
        for i in 1..obj_offsets.len() {
            obj_offsets[i] += obj_offsets[i - 1];
        }
        let mut src_entries = Vec::with_capacity(n);
        let mut obj_entries = vec![(SourceId(0), ValueId(0)); n];
        let mut obj_fill: Vec<u32> = obj_offsets[..num_objects].to_vec();
        // Rows arrive sorted by (source, object): the source side is a plain
        // append, and scattering into per-object buckets in that order
        // leaves every object slice sorted by source.
        for &(s, o, v) in &rows {
            src_entries.push((o, v));
            let slot = &mut obj_fill[o.index()];
            obj_entries[*slot as usize] = (s, v);
            *slot += 1;
        }
        let mut obj_distinct = vec![0u32; num_objects];
        let mut scratch: Vec<ValueId> = Vec::new();
        for o in 0..num_objects {
            let slice = &obj_entries[obj_offsets[o] as usize..obj_offsets[o + 1] as usize];
            scratch.clear();
            scratch.extend(slice.iter().map(|&(_, v)| v));
            scratch.sort_unstable();
            scratch.dedup();
            obj_distinct[o] = scratch.len() as u32;
        }
        Self {
            num_sources,
            num_objects,
            src_offsets,
            src_entries,
            obj_offsets,
            obj_entries,
            obj_distinct,
            values: None,
        }
    }

    /// Number of sources (including sources covering nothing).
    pub fn num_sources(&self) -> usize {
        self.num_sources
    }

    /// Number of objects (including objects covered by nobody).
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// One source's assertions as a contiguous `(object, value)` slice,
    /// sorted by object. Empty for out-of-range sources.
    #[inline]
    pub fn source_assertions(&self, source: SourceId) -> &[(ObjectId, ValueId)] {
        let s = source.index();
        if s >= self.num_sources {
            return &[];
        }
        &self.src_entries[self.src_offsets[s] as usize..self.src_offsets[s + 1] as usize]
    }

    /// The value `source` asserts for `object` in this snapshot.
    #[inline]
    pub fn value(&self, source: SourceId, object: ObjectId) -> Option<ValueId> {
        let slice = self.source_assertions(source);
        slice
            .binary_search_by_key(&object, |&(o, _)| o)
            .ok()
            .map(|i| slice[i].1)
    }

    /// All `(object, value)` assertions of one source, ascending by object.
    pub fn assertions_of(
        &self,
        source: SourceId,
    ) -> impl Iterator<Item = (ObjectId, ValueId)> + '_ {
        self.source_assertions(source).iter().copied()
    }

    /// All `(source, value)` assertions about one object, sorted by source.
    #[inline]
    pub fn assertions_on(&self, object: ObjectId) -> &[(SourceId, ValueId)] {
        let o = object.index();
        if o >= self.num_objects {
            return &[];
        }
        &self.obj_entries[self.obj_offsets[o] as usize..self.obj_offsets[o + 1] as usize]
    }

    /// How many objects `source` covers.
    #[inline]
    pub fn coverage(&self, source: SourceId) -> usize {
        self.source_assertions(source).len()
    }

    /// How many sources cover `object`.
    #[inline]
    pub fn support(&self, object: ObjectId) -> usize {
        self.assertions_on(object).len()
    }

    /// Distinct values asserted for `object`, with their supporter counts,
    /// sorted by descending support then by value id.
    pub fn value_counts(&self, object: ObjectId) -> Vec<(ValueId, usize)> {
        let slice = self.assertions_on(object);
        let mut out: Vec<(ValueId, usize)> = Vec::with_capacity(self.distinct_values(object));
        // Per-object supports are small; a linear probe beats hashing and
        // keeps the output deterministic.
        for &(_, v) in slice {
            match out.iter_mut().find(|e| e.0 == v) {
                Some(e) => e.1 += 1,
                None => out.push((v, 1)),
            }
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Number of distinct values asserted for `object` (precomputed: O(1)).
    #[inline]
    pub fn distinct_values(&self, object: ObjectId) -> usize {
        self.obj_distinct
            .get(object.index())
            .map_or(0, |&d| d as usize)
    }

    /// Objects covered by *both* sources, with both values:
    /// `(object, value_a, value_b)`, ascending by object — a sorted-merge
    /// intersection of two contiguous slices.
    pub fn overlap(
        &self,
        a: SourceId,
        b: SourceId,
    ) -> impl Iterator<Item = (ObjectId, ValueId, ValueId)> + '_ {
        OverlapIter {
            a: self.source_assertions(a),
            b: self.source_assertions(b),
        }
    }

    /// Size of the overlap (objects covered by both sources).
    pub fn overlap_size(&self, a: SourceId, b: SourceId) -> usize {
        self.overlap(a, b).count()
    }

    /// Total number of `(source, object)` assertions in this snapshot.
    #[inline]
    pub fn num_assertions(&self) -> usize {
        self.src_entries.len()
    }

    /// A cheap content hash over the CSR arenas: two snapshots holding the
    /// same assertions (same dimensions, same `(source, object, value)`
    /// set) hash equal, regardless of how they were constructed.
    ///
    /// This is the cache key for the `sailing` facade's analysis cache —
    /// an FxHash-style multiply-xor over the flat arrays, one word per
    /// assertion, so hashing costs one linear scan and no allocation. It is
    /// *not* cryptographic; collisions are possible in principle, so use it
    /// for caching, never for integrity.
    pub fn content_hash(&self) -> u64 {
        // The per-source CSR side fully determines the snapshot (the
        // object side is derived from it), so hashing dims + src offsets +
        // src entries covers everything.
        let mut h = fx_mix(0x53_61_69_6c_69_6e_67, self.num_sources as u64);
        h = fx_mix(h, self.num_objects as u64);
        for &off in &self.src_offsets {
            h = fx_mix(h, u64::from(off));
        }
        for &(o, v) in &self.src_entries {
            h = fx_mix(h, (u64::from(o.0) << 32) | u64::from(v.0));
        }
        h
    }

    /// Canonical JSON text of this snapshot: the legacy map-per-source wire
    /// shape, rendered deterministically (the CSR layout fixes the entry
    /// order, and the writer emits floats in shortest-round-trip form).
    /// Two snapshots holding the same assertions produce byte-identical
    /// text, which is what the persistent store's checksums cover.
    pub fn to_canonical_json(&self) -> String {
        serde::json::write(&self.serialize())
    }

    /// Parses a snapshot back from its canonical (or any legacy
    /// map-shaped) JSON text. Inverse of
    /// [`SnapshotView::to_canonical_json`]; content hashes survive the
    /// round-trip.
    ///
    /// # Errors
    /// Returns the underlying parse/shape error; persistent-store readers
    /// treat any error as a cold cache miss.
    pub fn from_json_str(text: &str) -> Result<Self, SerdeError> {
        Self::deserialize(&serde::json::parse(text)?)
    }

    /// Applies a sealed [`Delta`] to this snapshot, producing the
    /// post-delta snapshot without rescanning any claim history.
    ///
    /// The delta's arena and the per-source CSR slices are both sorted by
    /// `(source, object)`, so this is one linear sorted-merge: upserts
    /// overwrite (or extend) the source's slice, retractions drop the
    /// entry, untouched slices are copied through verbatim. The result is
    /// **canonical** — equal (same [`SnapshotView::content_hash`], same
    /// CSR columns) to a full rebuild from the post-delta claim set — so
    /// cache keys and persisted artifacts derived from it behave exactly
    /// as if the snapshot had been rebuilt from scratch. Id spaces grow to
    /// cover any source/object the delta names beyond the current bounds.
    pub fn apply_delta(&self, delta: &Delta) -> SnapshotView {
        let num_sources = self.num_sources.max(delta.min_source_space());
        let num_objects = self.num_objects.max(delta.min_object_space());
        let ops = delta.ops();
        let mut rows: Vec<(SourceId, ObjectId, ValueId)> =
            Vec::with_capacity(self.src_entries.len() + ops.len());
        let mut next_op = 0usize;
        for s in 0..num_sources {
            let sid = SourceId::from_index(s);
            let base = self.source_assertions(sid);
            let mut bi = 0usize;
            while next_op < ops.len() && ops[next_op].0 == sid {
                let (_, o, v) = ops[next_op];
                while bi < base.len() && base[bi].0 < o {
                    rows.push((sid, base[bi].0, base[bi].1));
                    bi += 1;
                }
                if bi < base.len() && base[bi].0 == o {
                    bi += 1; // overwritten upsert or retracted entry
                }
                if let Some(v) = v {
                    rows.push((sid, o, v));
                }
                next_op += 1;
            }
            for &(o, v) in &base[bi..] {
                rows.push((sid, o, v));
            }
        }
        let mut out = Self::from_unique_sorted(num_sources, num_objects, rows);
        // The arena describes interned values, not assertions; the delta
        // may name ids beyond it (streamed values carry no payloads) and
        // those are simply uncovered.
        out.values = self.values.clone();
        out
    }

    /// The interned value arena backing this snapshot's ids, when known.
    /// `values()[v.index()]` is the payload behind `v` for ids the arena
    /// covers; ids at or beyond its length (e.g. streamed in without
    /// payloads) are opaque.
    pub fn values(&self) -> Option<&[Value]> {
        self.values.as_deref().map(Vec::as_slice)
    }

    /// Attaches a value arena (in id order) to this snapshot, replacing
    /// any existing one. The arena is advisory: it does not participate
    /// in equality, [`SnapshotView::content_hash`], or serialization.
    pub fn with_values(mut self, values: Arc<Vec<Value>>) -> Self {
        self.values = Some(values);
        self
    }

    /// The smallest value-id space covering both the arena and every
    /// assertion in this snapshot.
    pub fn value_space(&self) -> usize {
        let asserted = self
            .src_entries
            .iter()
            .map(|&(_, v)| v.index() + 1)
            .max()
            .unwrap_or(0);
        asserted.max(self.values.as_deref().map_or(0, Vec::len))
    }

    /// Builds the quotient of this snapshot's value arena under `equiv`.
    ///
    /// Snapshots without an arena (wire round-trips, bare triples,
    /// history replays) quotient over the empty arena: every asserted id
    /// is an implicit singleton, so the quotient is the identity — a
    /// non-exact backend degrades to exact matching rather than guessing.
    pub fn quotient(&self, equiv: &dyn ValueEquivalence) -> ValueQuotient {
        ValueQuotient::build(equiv, self.values().unwrap_or(&[]))
    }

    /// Rewrites every assertion's value to its class representative under
    /// `quotient`, producing the snapshot the discovery hot loops run
    /// over: two sources that asserted equivalent values now assert the
    /// *same* `ValueId`, so the integer comparisons in overlap merging,
    /// dissimilarity, copy detection, and voting see the quotient space
    /// for free. `(source, object)` keys are untouched, distinct-value
    /// counts are rebuilt, and the same arena is carried along. Identity
    /// quotients return a plain clone.
    pub fn quotiented(&self, quotient: &ValueQuotient) -> SnapshotView {
        if quotient.is_identity() {
            return self.clone();
        }
        let rows: Vec<(SourceId, ObjectId, ValueId)> = (0..self.num_sources)
            .flat_map(|s| {
                let sid = SourceId::from_index(s);
                self.source_assertions(sid)
                    .iter()
                    .map(move |&(o, v)| (sid, o, quotient.representative_of(v)))
            })
            .collect();
        let mut out = Self::from_unique_sorted(self.num_sources, self.num_objects, rows);
        out.values = self.values.clone();
        out
    }
}

/// One FxHash-style mixing step (rotate, xor, multiply by a large odd
/// constant) — the same recurrence rustc's FxHasher uses, defined here
/// because the build environment has no crates.io access. Public so every
/// content digest in the workspace ([`SnapshotView::content_hash`], the
/// `sailing` facade's cache keys) mixes with one hash family instead of
/// drifting copies of the constant.
#[inline]
pub fn fx_mix(hash: u64, word: u64) -> u64 {
    const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    (hash.rotate_left(5) ^ word).wrapping_mul(K)
}

// The CSR arrays are an in-memory layout, not a wire format: snapshots
// serialize in the legacy `{"per_source": [...], "per_object": [...]}`
// shape so persisted artifacts survive the layout change unchanged.
impl Serialize for SnapshotView {
    fn serialize(&self) -> Content {
        let per_source = Content::Seq(
            (0..self.num_sources)
                .map(|s| {
                    Content::Map(
                        self.source_assertions(SourceId::from_index(s))
                            .iter()
                            .map(|&(o, v)| (Content::U64(o.0 as u64), Content::U64(v.0 as u64)))
                            .collect(),
                    )
                })
                .collect(),
        );
        let per_object = Content::Seq(
            (0..self.num_objects)
                .map(|o| {
                    Content::Seq(
                        self.assertions_on(ObjectId::from_index(o))
                            .iter()
                            .map(|&(s, v)| {
                                Content::Seq(vec![
                                    Content::U64(s.0 as u64),
                                    Content::U64(v.0 as u64),
                                ])
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        Content::Map(vec![
            (Content::Str("per_source".to_string()), per_source),
            (Content::Str("per_object".to_string()), per_object),
        ])
    }
}

impl Deserialize for SnapshotView {
    fn deserialize(content: &Content) -> Result<Self, SerdeError> {
        let field = |name: &str| {
            content
                .field(name)
                .ok_or_else(|| SerdeError::msg(format!("SnapshotView: missing field `{name}`")))
        };
        let per_source = match field("per_source")? {
            Content::Seq(s) => s,
            other => {
                return Err(SerdeError::msg(format!(
                    "SnapshotView: per_source must be a sequence, found {other:?}"
                )))
            }
        };
        let num_objects = match field("per_object")? {
            Content::Seq(s) => s.len(),
            other => {
                return Err(SerdeError::msg(format!(
                    "SnapshotView: per_object must be a sequence, found {other:?}"
                )))
            }
        };
        let mut rows = Vec::new();
        let mut max_object = 0usize;
        for (s, source_map) in per_source.iter().enumerate() {
            let map = match source_map {
                Content::Map(m) => m,
                other => {
                    return Err(SerdeError::msg(format!(
                        "SnapshotView: per_source[{s}] must be a map, found {other:?}"
                    )))
                }
            };
            for (k, v) in map {
                // JSON map keys come back as strings; `u32::deserialize`
                // re-parses them.
                let o = u32::deserialize(k)?;
                let val = u32::deserialize(v)?;
                max_object = max_object.max(o as usize + 1);
                rows.push((SourceId::from_index(s), ObjectId(o), ValueId(val)));
            }
        }
        // `per_object` is redundant with `per_source`; its length defines
        // the object-id space. A document may legally reference objects
        // beyond it (the old hash layout tolerated that), so grow — but the
        // CSR offsets allocate per id, so reject documents whose id space
        // is absurdly larger than their content (a 30-byte document must
        // not force a multi-gigabyte allocation).
        let num_objects = num_objects.max(max_object);
        if !serde::plausible_id_space(num_objects, rows.len()) {
            return Err(SerdeError::msg(format!(
                "SnapshotView: object id space {num_objects} is implausibly \
                 large for {} assertions",
                rows.len()
            )));
        }
        Ok(Self::from_triples(per_source.len(), num_objects, rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ClaimStore {
        let mut b = ClaimStoreBuilder::new();
        b.add("S1", "Suciu", "UW")
            .add("S1", "Dong", "AT&T")
            .add("S2", "Suciu", "MSR")
            .add("S2", "Dong", "Google")
            .add("S3", "Dong", "UW");
        b.build()
    }

    #[test]
    fn builder_interns_and_counts() {
        let store = sample_store();
        assert_eq!(store.num_sources(), 3);
        assert_eq!(store.num_objects(), 2);
        assert_eq!(store.num_values(), 4); // UW, AT&T, MSR, Google
        assert_eq!(store.num_claims(), 5);
    }

    #[test]
    fn name_lookups_roundtrip() {
        let store = sample_store();
        let s1 = store.source_id("S1").unwrap();
        assert_eq!(store.source_name(s1), Some("S1"));
        let dong = store.object_id("Dong").unwrap();
        assert_eq!(store.object_name(dong), Some("Dong"));
        let uw = store.value_id(&Value::text("UW")).unwrap();
        assert_eq!(store.value(uw), Some(&Value::text("UW")));
        assert_eq!(store.source_id("nope"), None);
    }

    #[test]
    fn per_source_and_per_object_indexes() {
        let store = sample_store();
        let s2 = store.source_id("S2").unwrap();
        assert_eq!(store.claims_of_source(s2).count(), 2);
        let dong = store.object_id("Dong").unwrap();
        assert_eq!(store.claims_on_object(dong).count(), 3);
    }

    #[test]
    fn add_claim_validates_ids_and_probability() {
        let mut b = ClaimStoreBuilder::new();
        let s = b.source("S1");
        let o = b.object("Dong");
        let v = b.value(&Value::text("UW"));
        assert!(b.add_claim(Claim::snapshot(s, o, v)).is_ok());
        assert!(matches!(
            b.add_claim(Claim::snapshot(SourceId(9), o, v)),
            Err(ModelError::UnknownId { kind: "source", .. })
        ));
        assert!(matches!(
            b.add_claim(Claim::snapshot(s, ObjectId(9), v)),
            Err(ModelError::UnknownId { kind: "object", .. })
        ));
        assert!(matches!(
            b.add_claim(Claim::snapshot(s, o, ValueId(9))),
            Err(ModelError::UnknownId { kind: "value", .. })
        ));
        let bad = Claim {
            probability: 1.5,
            ..Claim::snapshot(s, o, v)
        };
        assert!(matches!(
            b.add_claim(bad),
            Err(ModelError::InvalidProbability(_))
        ));
    }

    #[test]
    fn snapshot_takes_latest_claim() {
        let mut b = ClaimStoreBuilder::new();
        b.add_timed("S1", "Dong", "UW", 2002)
            .add_timed("S1", "Dong", "Google", 2006)
            .add_timed("S1", "Dong", "AT&T", 2007);
        let store = b.build();
        let snap = store.snapshot();
        let s1 = store.source_id("S1").unwrap();
        let dong = store.object_id("Dong").unwrap();
        let att = store.value_id(&Value::text("AT&T")).unwrap();
        assert_eq!(snap.value(s1, dong), Some(att));
    }

    #[test]
    fn snapshot_untimed_wins_and_upserts() {
        let mut b = ClaimStoreBuilder::new();
        b.add_timed("S1", "Dong", "Google", 2006)
            .add("S1", "Dong", "AT&T") // untimed = current
            .add("S2", "Dong", "UW")
            .add("S2", "Dong", "MSR"); // later add wins ties
        let store = b.build();
        let snap = store.snapshot();
        let dong = store.object_id("Dong").unwrap();
        let s1 = store.source_id("S1").unwrap();
        let s2 = store.source_id("S2").unwrap();
        assert_eq!(snap.value(s1, dong), store.value_id(&Value::text("AT&T")));
        assert_eq!(snap.value(s2, dong), store.value_id(&Value::text("MSR")));
    }

    #[test]
    fn snapshot_at_cutoff() {
        let mut b = ClaimStoreBuilder::new();
        b.add_timed("S1", "Dong", "UW", 2002)
            .add_timed("S1", "Dong", "Google", 2006)
            .add_timed("S1", "Dong", "AT&T", 2007)
            .add("S1", "Suciu", "UW"); // untimed, excluded from dated snapshots
        let store = b.build();
        let s1 = store.source_id("S1").unwrap();
        let dong = store.object_id("Dong").unwrap();
        let suciu = store.object_id("Suciu").unwrap();

        let snap2006 = store.snapshot_at(Some(2006));
        assert_eq!(
            snap2006.value(s1, dong),
            store.value_id(&Value::text("Google"))
        );
        assert_eq!(snap2006.value(s1, suciu), None);

        let snap2004 = store.snapshot_at(Some(2004));
        assert_eq!(snap2004.value(s1, dong), store.value_id(&Value::text("UW")));

        let snap2000 = store.snapshot_at(Some(2000));
        assert_eq!(snap2000.value(s1, dong), None);
    }

    #[test]
    fn absent_value_removes_coverage() {
        let mut b = ClaimStoreBuilder::new();
        b.add_timed("S1", "Dong", "UW", 2002);
        b.add_timed("S1", "Dong", Value::Absent, 2005);
        let store = b.build();
        let s1 = store.source_id("S1").unwrap();
        let dong = store.object_id("Dong").unwrap();
        assert_eq!(store.snapshot().value(s1, dong), None);
        assert_eq!(store.snapshot().coverage(s1), 0);
        // But the 2002 snapshot still has it.
        assert_eq!(
            store.snapshot_at(Some(2002)).value(s1, dong),
            store.value_id(&Value::text("UW"))
        );
    }

    #[test]
    fn snapshot_counts_and_support() {
        let store = sample_store();
        let snap = store.snapshot();
        let dong = store.object_id("Dong").unwrap();
        let suciu = store.object_id("Suciu").unwrap();
        assert_eq!(snap.support(dong), 3);
        assert_eq!(snap.support(suciu), 2);
        assert_eq!(snap.distinct_values(dong), 3);
        assert_eq!(snap.num_assertions(), 5);
        let s1 = store.source_id("S1").unwrap();
        assert_eq!(snap.coverage(s1), 2);
    }

    #[test]
    fn value_counts_sorted_by_support() {
        let mut b = ClaimStoreBuilder::new();
        b.add("S1", "o", "UW")
            .add("S2", "o", "UW")
            .add("S3", "o", "MSR");
        let store = b.build();
        let o = store.object_id("o").unwrap();
        let counts = store.snapshot().value_counts(o);
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[0].1, 2);
        assert_eq!(store.value(counts[0].0), Some(&Value::text("UW")));
    }

    #[test]
    fn overlap_iterates_common_objects() {
        let store = sample_store();
        let snap = store.snapshot();
        let s1 = store.source_id("S1").unwrap();
        let s2 = store.source_id("S2").unwrap();
        let s3 = store.source_id("S3").unwrap();
        assert_eq!(snap.overlap_size(s1, s2), 2);
        assert_eq!(snap.overlap_size(s1, s3), 1);
        let mut pairs: Vec<_> = snap.overlap(s1, s2).collect();
        pairs.sort_by_key(|&(o, _, _)| o);
        let dong = store.object_id("Dong").unwrap();
        let (o, va, vb) = pairs.iter().find(|&&(o, _, _)| o == dong).copied().unwrap();
        assert_eq!(o, dong);
        assert_eq!(store.value(va), Some(&Value::text("AT&T")));
        assert_eq!(store.value(vb), Some(&Value::text("Google")));
    }

    #[test]
    fn overlap_orientation_is_stable_under_swap() {
        let store = sample_store();
        let snap = store.snapshot();
        let s1 = store.source_id("S1").unwrap();
        let s2 = store.source_id("S2").unwrap();
        let ab: Vec<_> = snap.overlap(s1, s2).collect();
        let ba: Vec<_> = snap.overlap(s2, s1).collect();
        for (o, va, vb) in ab {
            assert!(ba.contains(&(o, vb, va)));
        }
    }

    #[test]
    fn from_triples_matches_store_snapshot() {
        let store = sample_store();
        let snap = store.snapshot();
        let triples: Vec<_> = store
            .claims()
            .iter()
            .map(|c| (c.source, c.object, c.value))
            .collect();
        let direct = SnapshotView::from_triples(store.num_sources(), store.num_objects(), triples);
        for s in store.source_ids() {
            for o in store.object_ids() {
                assert_eq!(snap.value(s, o), direct.value(s, o));
            }
        }
        assert_eq!(snap.num_assertions(), direct.num_assertions());
    }

    #[test]
    fn snapshot_serde_keeps_legacy_map_shape() {
        let store = sample_store();
        let snap = store.snapshot();
        let json = serde::json::write(&snap.serialize());
        // The wire format is the pre-CSR map-per-source shape.
        assert!(json.starts_with(r#"{"per_source":[{"#), "{json}");
        assert!(json.contains(r#""per_object":[["#), "{json}");
        let back = SnapshotView::deserialize(&serde::json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.num_sources(), snap.num_sources());
        assert_eq!(back.num_objects(), snap.num_objects());
        assert_eq!(back.num_assertions(), snap.num_assertions());
        for s in store.source_ids() {
            for o in store.object_ids() {
                assert_eq!(back.value(s, o), snap.value(s, o));
            }
        }

        // A hand-written legacy document (string keys, as JSON text always
        // delivers them) still deserializes.
        let legacy = r#"{"per_source":[{"0":1},{"0":2}],"per_object":[[[0,1],[1,2]],[]]}"#;
        let view = SnapshotView::deserialize(&serde::json::parse(legacy).unwrap()).unwrap();
        assert_eq!(view.num_sources(), 2);
        assert_eq!(view.num_objects(), 2);
        assert_eq!(view.value(SourceId(0), ObjectId(0)), Some(ValueId(1)));
        assert_eq!(view.value(SourceId(1), ObjectId(0)), Some(ValueId(2)));
        assert_eq!(view.support(ObjectId(0)), 2);
    }

    #[test]
    fn snapshot_deserialize_tolerates_and_bounds_stray_object_ids() {
        // An object id beyond per_object's length (the old hash layout
        // accepted this) must deserialize, not panic: the id space grows.
        let stray = r#"{"per_source":[{"5":1}],"per_object":[[],[]]}"#;
        let view = SnapshotView::deserialize(&serde::json::parse(stray).unwrap()).unwrap();
        assert_eq!(view.num_objects(), 6);
        assert_eq!(view.value(SourceId(0), ObjectId(5)), Some(ValueId(1)));
        // But an absurd id space for a tiny document is rejected instead of
        // allocating gigabytes of offsets.
        let bomb = r#"{"per_source":[{"4294967295":1}],"per_object":[]}"#;
        assert!(SnapshotView::deserialize(&serde::json::parse(bomb).unwrap()).is_err());
    }

    #[test]
    fn overlap_gallops_through_asymmetric_coverage() {
        // One near-global source vs a tiny specialist: the merge must find
        // the right intersection (galloping path) with correct values.
        let mut triples = Vec::new();
        for o in 0..5000u32 {
            triples.push((SourceId(0), ObjectId(o), ValueId(o)));
        }
        for &o in &[17u32, 1999, 4998] {
            triples.push((SourceId(1), ObjectId(o), ValueId(o + 10_000)));
        }
        let snap = SnapshotView::from_triples(2, 5000, triples);
        let hits: Vec<_> = snap.overlap(SourceId(0), SourceId(1)).collect();
        assert_eq!(
            hits,
            vec![
                (ObjectId(17), ValueId(17), ValueId(10_017)),
                (ObjectId(1999), ValueId(1999), ValueId(11_999)),
                (ObjectId(4998), ValueId(4998), ValueId(14_998)),
            ]
        );
        let rev: Vec<_> = snap.overlap(SourceId(1), SourceId(0)).collect();
        assert_eq!(rev.len(), 3);
        assert_eq!(rev[0], (ObjectId(17), ValueId(10_017), ValueId(17)));
        assert_eq!(snap.overlap_size(SourceId(0), SourceId(1)), 3);
    }

    #[test]
    fn csr_slices_are_sorted_and_consistent() {
        let store = sample_store();
        let snap = store.snapshot();
        let mut total = 0;
        for s in store.source_ids() {
            let slice = snap.source_assertions(s);
            assert!(
                slice.windows(2).all(|w| w[0].0 < w[1].0),
                "sorted by object"
            );
            total += slice.len();
        }
        assert_eq!(total, snap.num_assertions());
        for o in store.object_ids() {
            let slice = snap.assertions_on(o);
            assert!(
                slice.windows(2).all(|w| w[0].0 < w[1].0),
                "sorted by source"
            );
            for &(s, v) in slice {
                assert_eq!(snap.value(s, o), Some(v));
            }
            assert_eq!(snap.distinct_values(o), snap.value_counts(o).len());
        }
    }

    #[test]
    fn from_triples_last_write_wins() {
        let triples = vec![
            (SourceId(0), ObjectId(0), ValueId(1)),
            (SourceId(0), ObjectId(1), ValueId(2)),
            (SourceId(0), ObjectId(0), ValueId(3)), // overwrites value 1
        ];
        let snap = SnapshotView::from_triples(1, 2, triples);
        assert_eq!(snap.value(SourceId(0), ObjectId(0)), Some(ValueId(3)));
        assert_eq!(snap.num_assertions(), 2);
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let snap = SnapshotView::from_triples(0, 0, Vec::new());
        assert_eq!(snap.num_sources(), 0);
        assert_eq!(snap.num_objects(), 0);
        assert_eq!(snap.num_assertions(), 0);
        assert_eq!(snap.value(SourceId(0), ObjectId(0)), None);
        assert_eq!(snap.assertions_on(ObjectId(3)), &[]);
    }

    #[test]
    fn content_hash_is_construction_independent() {
        let store = sample_store();
        let snap = store.snapshot();
        // Same assertions delivered in a different order → same hash.
        let mut triples: Vec<_> = store
            .claims()
            .iter()
            .map(|c| (c.source, c.object, c.value))
            .collect();
        triples.reverse();
        let rebuilt = SnapshotView::from_triples(store.num_sources(), store.num_objects(), triples);
        assert_eq!(snap.content_hash(), rebuilt.content_hash());
        // And a serde round-trip preserves it.
        let json = serde::json::write(&snap.serialize());
        let back = SnapshotView::deserialize(&serde::json::parse(&json).unwrap()).unwrap();
        assert_eq!(snap.content_hash(), back.content_hash());
    }

    #[test]
    fn apply_delta_matches_full_rebuild() {
        let base_triples = vec![
            (SourceId(0), ObjectId(0), ValueId(1)),
            (SourceId(0), ObjectId(2), ValueId(2)),
            (SourceId(1), ObjectId(0), ValueId(1)),
            (SourceId(1), ObjectId(1), ValueId(3)),
            (SourceId(2), ObjectId(2), ValueId(4)),
        ];
        let base = SnapshotView::from_triples(3, 3, base_triples.clone());

        let mut b = Delta::builder();
        b.assert_value(SourceId(0), ObjectId(1), ValueId(5)); // new object for S0
        b.assert_value(SourceId(1), ObjectId(0), ValueId(9)); // overwrite
        b.retract(SourceId(2), ObjectId(2)); // S2 vanishes
        b.assert_value(SourceId(3), ObjectId(3), ValueId(6)); // new source + object
        let delta = b.build();

        let applied = base.apply_delta(&delta);
        let rebuilt = SnapshotView::from_triples(
            4,
            4,
            vec![
                (SourceId(0), ObjectId(0), ValueId(1)),
                (SourceId(0), ObjectId(1), ValueId(5)),
                (SourceId(0), ObjectId(2), ValueId(2)),
                (SourceId(1), ObjectId(0), ValueId(9)),
                (SourceId(1), ObjectId(1), ValueId(3)),
                (SourceId(3), ObjectId(3), ValueId(6)),
            ],
        );
        assert_eq!(applied, rebuilt);
        assert_eq!(applied.content_hash(), rebuilt.content_hash());
        assert_eq!(applied.num_sources(), 4);
        assert_eq!(applied.num_objects(), 4);
        assert_eq!(applied.coverage(SourceId(2)), 0);
        assert_eq!(applied.value(SourceId(1), ObjectId(0)), Some(ValueId(9)));

        // An empty delta is the identity.
        let same = base.apply_delta(&Delta::builder().build());
        assert_eq!(same, base);
        assert_eq!(same.content_hash(), base.content_hash());

        // Retracting a pair that was never asserted is a no-op on content
        // (though it may widen the id space it names).
        let mut b = Delta::builder();
        b.retract(SourceId(1), ObjectId(2));
        let noop = base.apply_delta(&b.build());
        assert_eq!(noop, base);
    }

    #[test]
    fn snapshots_carry_the_value_arena_and_equality_ignores_it() {
        let store = sample_store();
        let snap = store.snapshot();
        let arena = snap.values().expect("store snapshots carry the arena");
        assert_eq!(arena.len(), store.num_values());
        assert_eq!(arena[0], Value::text("UW"));
        assert_eq!(snap.value_space(), store.num_values());

        // The wire shape drops the arena, but the round-trip still
        // compares equal and hashes identically.
        let back = SnapshotView::from_json_str(&snap.to_canonical_json()).unwrap();
        assert!(back.values().is_none());
        assert_eq!(back, snap);
        assert_eq!(back.content_hash(), snap.content_hash());

        // apply_delta carries the arena through, even past its coverage.
        let mut b = Delta::builder();
        b.assert_value(SourceId(0), ObjectId(0), ValueId(9));
        let bumped = snap.apply_delta(&b.build());
        assert_eq!(bumped.values().map(<[Value]>::len), Some(arena.len()));
        assert_eq!(bumped.value_space(), 10);
    }

    #[test]
    fn quotiented_rewrites_values_to_representatives() {
        use crate::equivalence::NumericTolerance;
        let mut b = ClaimStoreBuilder::new();
        b.add("S1", "o0", "3.14")
            .add("S2", "o0", "3.140")
            .add("S3", "o0", "2.71")
            .add("S1", "o1", "3.140");
        let store = b.build();
        let snap = store.snapshot();
        let q = snap.quotient(&NumericTolerance::new(1e-6).unwrap());
        assert!(!q.is_identity());
        let quot = snap.quotiented(&q);
        let v314 = store.value_id(&Value::text("3.14")).unwrap();
        let v271 = store.value_id(&Value::text("2.71")).unwrap();
        let o0 = store.object_id("o0").unwrap();
        let o1 = store.object_id("o1").unwrap();
        for s in ["S1", "S2"] {
            let sid = store.source_id(s).unwrap();
            assert_eq!(quot.value(sid, o0), Some(v314));
        }
        assert_eq!(quot.value(store.source_id("S3").unwrap(), o0), Some(v271));
        assert_eq!(quot.value(store.source_id("S1").unwrap(), o1), Some(v314));
        // Distinct-value counts see the quotient space.
        assert_eq!(snap.distinct_values(o0), 3);
        assert_eq!(quot.distinct_values(o0), 2);
        // The arena rides along, and the original is untouched.
        assert!(quot.values().is_some());
        assert_ne!(quot.content_hash(), snap.content_hash());

        // An identity quotient leaves the snapshot bitwise identical.
        let exact = snap.quotiented(&snap.quotient(&crate::equivalence::Exact));
        assert_eq!(exact, snap);
        assert_eq!(exact.content_hash(), snap.content_hash());
    }

    #[test]
    fn arenaless_snapshots_quotient_to_identity() {
        use crate::equivalence::HashedDigest;
        let snap = SnapshotView::from_triples(
            2,
            1,
            vec![
                (SourceId(0), ObjectId(0), ValueId(3)),
                (SourceId(1), ObjectId(0), ValueId(7)),
            ],
        );
        assert!(snap.values().is_none());
        let q = snap.quotient(&HashedDigest::new(42));
        assert!(q.is_identity());
        assert_eq!(q.coverage(), 0);
        assert_eq!(snap.quotiented(&q), snap);
        assert_eq!(snap.value_space(), 8);
    }

    #[test]
    fn content_hash_distinguishes_changed_snapshots() {
        let base = SnapshotView::from_triples(
            2,
            2,
            vec![
                (SourceId(0), ObjectId(0), ValueId(1)),
                (SourceId(1), ObjectId(1), ValueId(2)),
            ],
        );
        // One changed value.
        let changed_value = SnapshotView::from_triples(
            2,
            2,
            vec![
                (SourceId(0), ObjectId(0), ValueId(9)),
                (SourceId(1), ObjectId(1), ValueId(2)),
            ],
        );
        // Same assertions attributed to a different source.
        let moved = SnapshotView::from_triples(
            2,
            2,
            vec![
                (SourceId(1), ObjectId(0), ValueId(1)),
                (SourceId(0), ObjectId(1), ValueId(2)),
            ],
        );
        // Same assertions, wider object space.
        let widened = SnapshotView::from_triples(
            2,
            3,
            vec![
                (SourceId(0), ObjectId(0), ValueId(1)),
                (SourceId(1), ObjectId(1), ValueId(2)),
            ],
        );
        assert_ne!(base.content_hash(), changed_value.content_hash());
        assert_ne!(base.content_hash(), moved.content_hash());
        assert_ne!(base.content_hash(), widened.content_hash());
        assert_ne!(
            base.content_hash(),
            SnapshotView::from_triples(0, 0, Vec::new()).content_hash()
        );
    }
}
