//! The indexed claim store and its snapshot view.
//!
//! [`ClaimStore`] owns the three catalogs (sources, objects, values) and the
//! flat claim list, with per-source and per-object indexes. It is immutable
//! once built; construction goes through [`ClaimStoreBuilder`].
//!
//! [`SnapshotView`] materialises the paper's *snapshot* setting: for each
//! `(source, object)` pair only the most recent claim survives, giving one
//! value per source per covered object (Table 1 shape). All snapshot-mode
//! algorithms in `sailing-core` consume this view.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::claim::{Claim, Timestamp};
use crate::error::ModelError;
use crate::ids::{Catalog, ObjectId, SourceId};
use crate::value::{Value, ValueId};

/// Incrementally assembles a [`ClaimStore`].
#[derive(Debug, Default, Clone)]
pub struct ClaimStoreBuilder {
    sources: Catalog<String, SourceId>,
    objects: Catalog<String, ObjectId>,
    values: Catalog<Value, ValueId>,
    claims: Vec<Claim>,
}

impl ClaimStoreBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a source name.
    pub fn source(&mut self, name: &str) -> SourceId {
        self.sources.intern(&name.to_string())
    }

    /// Interns an object (data item) name.
    pub fn object(&mut self, name: &str) -> ObjectId {
        self.objects.intern(&name.to_string())
    }

    /// Interns a value.
    pub fn value(&mut self, value: &Value) -> ValueId {
        self.values.intern(value)
    }

    /// Adds an untimed, certain claim, interning all names.
    pub fn add(&mut self, source: &str, object: &str, value: impl Into<Value>) -> &mut Self {
        let s = self.source(source);
        let o = self.object(object);
        let v = self.value(&value.into());
        self.claims.push(Claim::snapshot(s, o, v));
        self
    }

    /// Adds a timestamped, certain claim, interning all names.
    pub fn add_timed(
        &mut self,
        source: &str,
        object: &str,
        value: impl Into<Value>,
        time: Timestamp,
    ) -> &mut Self {
        let s = self.source(source);
        let o = self.object(object);
        let v = self.value(&value.into());
        self.claims.push(Claim::timed(s, o, v, time));
        self
    }

    /// Adds a fully specified claim with pre-interned ids.
    ///
    /// # Errors
    /// Returns [`ModelError::UnknownId`] if any id was not issued by this
    /// builder, and [`ModelError::InvalidProbability`] for probabilities
    /// outside `[0, 1]`.
    pub fn add_claim(&mut self, claim: Claim) -> Result<&mut Self, ModelError> {
        if claim.source.index() >= self.sources.len() {
            return Err(ModelError::UnknownId {
                kind: "source",
                id: claim.source.0,
            });
        }
        if claim.object.index() >= self.objects.len() {
            return Err(ModelError::UnknownId {
                kind: "object",
                id: claim.object.0,
            });
        }
        if claim.value.index() >= self.values.len() {
            return Err(ModelError::UnknownId {
                kind: "value",
                id: claim.value.0,
            });
        }
        if !(0.0..=1.0).contains(&claim.probability) {
            return Err(ModelError::InvalidProbability(claim.probability));
        }
        self.claims.push(claim);
        Ok(self)
    }

    /// Number of claims added so far.
    pub fn claim_count(&self) -> usize {
        self.claims.len()
    }

    /// Finalises the store, building all indexes.
    pub fn build(self) -> ClaimStore {
        let mut by_source: Vec<Vec<u32>> = vec![Vec::new(); self.sources.len()];
        let mut by_object: Vec<Vec<u32>> = vec![Vec::new(); self.objects.len()];
        for (i, c) in self.claims.iter().enumerate() {
            let i = i as u32;
            by_source[c.source.index()].push(i);
            by_object[c.object.index()].push(i);
        }
        ClaimStore {
            sources: self.sources,
            objects: self.objects,
            values: self.values,
            claims: self.claims,
            by_source,
            by_object,
        }
    }
}

/// An immutable, indexed collection of claims from many sources.
#[derive(Debug, Clone)]
pub struct ClaimStore {
    sources: Catalog<String, SourceId>,
    objects: Catalog<String, ObjectId>,
    values: Catalog<Value, ValueId>,
    claims: Vec<Claim>,
    by_source: Vec<Vec<u32>>,
    by_object: Vec<Vec<u32>>,
}

impl ClaimStore {
    /// Number of distinct sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of distinct objects (data items).
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Number of distinct interned values.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Total number of claims.
    pub fn num_claims(&self) -> usize {
        self.claims.len()
    }

    /// All claims, in insertion order.
    pub fn claims(&self) -> &[Claim] {
        &self.claims
    }

    /// All source ids.
    pub fn source_ids(&self) -> impl Iterator<Item = SourceId> + '_ {
        self.sources.ids()
    }

    /// All object ids.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.ids()
    }

    /// The name behind a source id.
    pub fn source_name(&self, id: SourceId) -> Option<&str> {
        self.sources.name(id).map(String::as_str)
    }

    /// The name behind an object id.
    pub fn object_name(&self, id: ObjectId) -> Option<&str> {
        self.objects.name(id).map(String::as_str)
    }

    /// The value behind a value id.
    pub fn value(&self, id: ValueId) -> Option<&Value> {
        self.values.name(id)
    }

    /// Looks up a source id by name.
    pub fn source_id(&self, name: &str) -> Option<SourceId> {
        self.sources.lookup(&name.to_string())
    }

    /// Looks up an object id by name.
    pub fn object_id(&self, name: &str) -> Option<ObjectId> {
        self.objects.lookup(&name.to_string())
    }

    /// Looks up a value id for an exact value.
    pub fn value_id(&self, value: &Value) -> Option<ValueId> {
        self.values.lookup(value)
    }

    /// Claims asserted by `source`, in insertion order.
    pub fn claims_of_source(&self, source: SourceId) -> impl Iterator<Item = &Claim> {
        self.by_source
            .get(source.index())
            .into_iter()
            .flatten()
            .map(move |&i| &self.claims[i as usize])
    }

    /// Claims about `object`, in insertion order.
    pub fn claims_on_object(&self, object: ObjectId) -> impl Iterator<Item = &Claim> {
        self.by_object
            .get(object.index())
            .into_iter()
            .flatten()
            .map(move |&i| &self.claims[i as usize])
    }

    /// Builds the snapshot view: the most recent claim per `(source, object)`.
    ///
    /// Untimed claims are treated as *current* (they out-date any timestamped
    /// claim); among equal times the later-inserted claim wins, so repeated
    /// `add` calls behave like upserts.
    pub fn snapshot(&self) -> SnapshotView {
        self.snapshot_at(None)
    }

    /// Builds the snapshot as of time `t` (inclusive). Claims with no
    /// timestamp are included only when `t` is `None`.
    pub fn snapshot_at(&self, t: Option<Timestamp>) -> SnapshotView {
        // Rank: None (untimed/current) above any timestamp.
        type Rank = (i64, i64);
        fn rank(time: Option<Timestamp>) -> Rank {
            match time {
                None => (1, 0),
                Some(ts) => (0, ts),
            }
        }
        let mut latest: HashMap<(SourceId, ObjectId), (usize, Rank)> = HashMap::new();
        for (i, c) in self.claims.iter().enumerate() {
            if let (Some(cutoff), Some(ts)) = (t, c.time) {
                if ts > cutoff {
                    continue;
                }
            }
            if t.is_some() && c.time.is_none() {
                continue;
            }
            let r = rank(c.time);
            let entry = latest.entry((c.source, c.object)).or_insert((i, r));
            // `>=` so later insertion wins ties.
            if (r, i) >= (entry.1, entry.0) {
                *entry = (i, r);
            }
        }

        let num_sources = self.sources.len();
        let num_objects = self.objects.len();
        let mut per_source: Vec<HashMap<ObjectId, ValueId>> = vec![HashMap::new(); num_sources];
        let mut per_object: Vec<Vec<(SourceId, ValueId)>> = vec![Vec::new(); num_objects];
        let mut entries: Vec<_> = latest.into_iter().collect();
        // Deterministic order regardless of hash-map iteration.
        entries.sort_by_key(|&((s, o), _)| (s, o));
        for ((s, o), (i, _)) in entries {
            let v = self.claims[i].value;
            if let Some(val) = self.values.name(v) {
                if val.is_absent() {
                    continue; // withdrawn value: source no longer covers object
                }
            }
            per_source[s.index()].insert(o, v);
            per_object[o.index()].push((s, v));
        }
        SnapshotView {
            per_source,
            per_object,
        }
    }
}

/// One value per source per covered object: the paper's snapshot setting.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SnapshotView {
    per_source: Vec<HashMap<ObjectId, ValueId>>,
    per_object: Vec<Vec<(SourceId, ValueId)>>,
}

impl SnapshotView {
    /// Builds a snapshot view directly from `(source, object, value)` triples.
    ///
    /// Ids must be dense; `num_sources`/`num_objects` bound the id spaces.
    /// Later triples overwrite earlier ones for the same `(source, object)`.
    pub fn from_triples(
        num_sources: usize,
        num_objects: usize,
        triples: impl IntoIterator<Item = (SourceId, ObjectId, ValueId)>,
    ) -> Self {
        let mut per_source: Vec<HashMap<ObjectId, ValueId>> = vec![HashMap::new(); num_sources];
        for (s, o, v) in triples {
            per_source[s.index()].insert(o, v);
        }
        let mut per_object: Vec<Vec<(SourceId, ValueId)>> = vec![Vec::new(); num_objects];
        for (s, m) in per_source.iter().enumerate() {
            let mut items: Vec<_> = m.iter().map(|(&o, &v)| (o, v)).collect();
            items.sort_by_key(|&(o, _)| o);
            for (o, v) in items {
                per_object[o.index()].push((SourceId::from_index(s), v));
            }
        }
        Self {
            per_source,
            per_object,
        }
    }

    /// Number of sources (including sources covering nothing).
    pub fn num_sources(&self) -> usize {
        self.per_source.len()
    }

    /// Number of objects (including objects covered by nobody).
    pub fn num_objects(&self) -> usize {
        self.per_object.len()
    }

    /// The value `source` asserts for `object` in this snapshot.
    #[inline]
    pub fn value(&self, source: SourceId, object: ObjectId) -> Option<ValueId> {
        self.per_source.get(source.index())?.get(&object).copied()
    }

    /// All `(object, value)` assertions of one source.
    pub fn assertions_of(
        &self,
        source: SourceId,
    ) -> impl Iterator<Item = (ObjectId, ValueId)> + '_ {
        self.per_source
            .get(source.index())
            .into_iter()
            .flat_map(|m| m.iter().map(|(&o, &v)| (o, v)))
    }

    /// All `(source, value)` assertions about one object, sorted by source.
    pub fn assertions_on(&self, object: ObjectId) -> &[(SourceId, ValueId)] {
        self.per_object
            .get(object.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// How many objects `source` covers.
    pub fn coverage(&self, source: SourceId) -> usize {
        self.per_source.get(source.index()).map_or(0, HashMap::len)
    }

    /// How many sources cover `object`.
    pub fn support(&self, object: ObjectId) -> usize {
        self.assertions_on(object).len()
    }

    /// Distinct values asserted for `object`, with their supporter counts,
    /// sorted by descending support then by value id.
    pub fn value_counts(&self, object: ObjectId) -> Vec<(ValueId, usize)> {
        let mut counts: HashMap<ValueId, usize> = HashMap::new();
        for &(_, v) in self.assertions_on(object) {
            *counts.entry(v).or_insert(0) += 1;
        }
        let mut out: Vec<_> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Number of distinct values asserted for `object`.
    pub fn distinct_values(&self, object: ObjectId) -> usize {
        self.value_counts(object).len()
    }

    /// Objects covered by *both* sources, with both values:
    /// `(object, value_a, value_b)`.
    pub fn overlap(
        &self,
        a: SourceId,
        b: SourceId,
    ) -> impl Iterator<Item = (ObjectId, ValueId, ValueId)> + '_ {
        let (small, large, swapped) = {
            let ca = self.coverage(a);
            let cb = self.coverage(b);
            if ca <= cb {
                (a, b, false)
            } else {
                (b, a, true)
            }
        };
        self.assertions_of(small).filter_map(move |(o, v_small)| {
            self.value(large, o).map(|v_large| {
                if swapped {
                    (o, v_large, v_small)
                } else {
                    (o, v_small, v_large)
                }
            })
        })
    }

    /// Size of the overlap (objects covered by both sources).
    pub fn overlap_size(&self, a: SourceId, b: SourceId) -> usize {
        self.overlap(a, b).count()
    }

    /// Total number of `(source, object)` assertions in this snapshot.
    pub fn num_assertions(&self) -> usize {
        self.per_source.iter().map(HashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ClaimStore {
        let mut b = ClaimStoreBuilder::new();
        b.add("S1", "Suciu", "UW")
            .add("S1", "Dong", "AT&T")
            .add("S2", "Suciu", "MSR")
            .add("S2", "Dong", "Google")
            .add("S3", "Dong", "UW");
        b.build()
    }

    #[test]
    fn builder_interns_and_counts() {
        let store = sample_store();
        assert_eq!(store.num_sources(), 3);
        assert_eq!(store.num_objects(), 2);
        assert_eq!(store.num_values(), 4); // UW, AT&T, MSR, Google
        assert_eq!(store.num_claims(), 5);
    }

    #[test]
    fn name_lookups_roundtrip() {
        let store = sample_store();
        let s1 = store.source_id("S1").unwrap();
        assert_eq!(store.source_name(s1), Some("S1"));
        let dong = store.object_id("Dong").unwrap();
        assert_eq!(store.object_name(dong), Some("Dong"));
        let uw = store.value_id(&Value::text("UW")).unwrap();
        assert_eq!(store.value(uw), Some(&Value::text("UW")));
        assert_eq!(store.source_id("nope"), None);
    }

    #[test]
    fn per_source_and_per_object_indexes() {
        let store = sample_store();
        let s2 = store.source_id("S2").unwrap();
        assert_eq!(store.claims_of_source(s2).count(), 2);
        let dong = store.object_id("Dong").unwrap();
        assert_eq!(store.claims_on_object(dong).count(), 3);
    }

    #[test]
    fn add_claim_validates_ids_and_probability() {
        let mut b = ClaimStoreBuilder::new();
        let s = b.source("S1");
        let o = b.object("Dong");
        let v = b.value(&Value::text("UW"));
        assert!(b.add_claim(Claim::snapshot(s, o, v)).is_ok());
        assert!(matches!(
            b.add_claim(Claim::snapshot(SourceId(9), o, v)),
            Err(ModelError::UnknownId { kind: "source", .. })
        ));
        assert!(matches!(
            b.add_claim(Claim::snapshot(s, ObjectId(9), v)),
            Err(ModelError::UnknownId { kind: "object", .. })
        ));
        assert!(matches!(
            b.add_claim(Claim::snapshot(s, o, ValueId(9))),
            Err(ModelError::UnknownId { kind: "value", .. })
        ));
        let bad = Claim {
            probability: 1.5,
            ..Claim::snapshot(s, o, v)
        };
        assert!(matches!(
            b.add_claim(bad),
            Err(ModelError::InvalidProbability(_))
        ));
    }

    #[test]
    fn snapshot_takes_latest_claim() {
        let mut b = ClaimStoreBuilder::new();
        b.add_timed("S1", "Dong", "UW", 2002)
            .add_timed("S1", "Dong", "Google", 2006)
            .add_timed("S1", "Dong", "AT&T", 2007);
        let store = b.build();
        let snap = store.snapshot();
        let s1 = store.source_id("S1").unwrap();
        let dong = store.object_id("Dong").unwrap();
        let att = store.value_id(&Value::text("AT&T")).unwrap();
        assert_eq!(snap.value(s1, dong), Some(att));
    }

    #[test]
    fn snapshot_untimed_wins_and_upserts() {
        let mut b = ClaimStoreBuilder::new();
        b.add_timed("S1", "Dong", "Google", 2006)
            .add("S1", "Dong", "AT&T") // untimed = current
            .add("S2", "Dong", "UW")
            .add("S2", "Dong", "MSR"); // later add wins ties
        let store = b.build();
        let snap = store.snapshot();
        let dong = store.object_id("Dong").unwrap();
        let s1 = store.source_id("S1").unwrap();
        let s2 = store.source_id("S2").unwrap();
        assert_eq!(snap.value(s1, dong), store.value_id(&Value::text("AT&T")));
        assert_eq!(snap.value(s2, dong), store.value_id(&Value::text("MSR")));
    }

    #[test]
    fn snapshot_at_cutoff() {
        let mut b = ClaimStoreBuilder::new();
        b.add_timed("S1", "Dong", "UW", 2002)
            .add_timed("S1", "Dong", "Google", 2006)
            .add_timed("S1", "Dong", "AT&T", 2007)
            .add("S1", "Suciu", "UW"); // untimed, excluded from dated snapshots
        let store = b.build();
        let s1 = store.source_id("S1").unwrap();
        let dong = store.object_id("Dong").unwrap();
        let suciu = store.object_id("Suciu").unwrap();

        let snap2006 = store.snapshot_at(Some(2006));
        assert_eq!(
            snap2006.value(s1, dong),
            store.value_id(&Value::text("Google"))
        );
        assert_eq!(snap2006.value(s1, suciu), None);

        let snap2004 = store.snapshot_at(Some(2004));
        assert_eq!(snap2004.value(s1, dong), store.value_id(&Value::text("UW")));

        let snap2000 = store.snapshot_at(Some(2000));
        assert_eq!(snap2000.value(s1, dong), None);
    }

    #[test]
    fn absent_value_removes_coverage() {
        let mut b = ClaimStoreBuilder::new();
        b.add_timed("S1", "Dong", "UW", 2002);
        b.add_timed("S1", "Dong", Value::Absent, 2005);
        let store = b.build();
        let s1 = store.source_id("S1").unwrap();
        let dong = store.object_id("Dong").unwrap();
        assert_eq!(store.snapshot().value(s1, dong), None);
        assert_eq!(store.snapshot().coverage(s1), 0);
        // But the 2002 snapshot still has it.
        assert_eq!(
            store.snapshot_at(Some(2002)).value(s1, dong),
            store.value_id(&Value::text("UW"))
        );
    }

    #[test]
    fn snapshot_counts_and_support() {
        let store = sample_store();
        let snap = store.snapshot();
        let dong = store.object_id("Dong").unwrap();
        let suciu = store.object_id("Suciu").unwrap();
        assert_eq!(snap.support(dong), 3);
        assert_eq!(snap.support(suciu), 2);
        assert_eq!(snap.distinct_values(dong), 3);
        assert_eq!(snap.num_assertions(), 5);
        let s1 = store.source_id("S1").unwrap();
        assert_eq!(snap.coverage(s1), 2);
    }

    #[test]
    fn value_counts_sorted_by_support() {
        let mut b = ClaimStoreBuilder::new();
        b.add("S1", "o", "UW")
            .add("S2", "o", "UW")
            .add("S3", "o", "MSR");
        let store = b.build();
        let o = store.object_id("o").unwrap();
        let counts = store.snapshot().value_counts(o);
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[0].1, 2);
        assert_eq!(store.value(counts[0].0), Some(&Value::text("UW")));
    }

    #[test]
    fn overlap_iterates_common_objects() {
        let store = sample_store();
        let snap = store.snapshot();
        let s1 = store.source_id("S1").unwrap();
        let s2 = store.source_id("S2").unwrap();
        let s3 = store.source_id("S3").unwrap();
        assert_eq!(snap.overlap_size(s1, s2), 2);
        assert_eq!(snap.overlap_size(s1, s3), 1);
        let mut pairs: Vec<_> = snap.overlap(s1, s2).collect();
        pairs.sort_by_key(|&(o, _, _)| o);
        let dong = store.object_id("Dong").unwrap();
        let (o, va, vb) = pairs.iter().find(|&&(o, _, _)| o == dong).copied().unwrap();
        assert_eq!(o, dong);
        assert_eq!(store.value(va), Some(&Value::text("AT&T")));
        assert_eq!(store.value(vb), Some(&Value::text("Google")));
    }

    #[test]
    fn overlap_orientation_is_stable_under_swap() {
        let store = sample_store();
        let snap = store.snapshot();
        let s1 = store.source_id("S1").unwrap();
        let s2 = store.source_id("S2").unwrap();
        let ab: Vec<_> = snap.overlap(s1, s2).collect();
        let ba: Vec<_> = snap.overlap(s2, s1).collect();
        for (o, va, vb) in ab {
            assert!(ba.contains(&(o, vb, va)));
        }
    }

    #[test]
    fn from_triples_matches_store_snapshot() {
        let store = sample_store();
        let snap = store.snapshot();
        let triples: Vec<_> = store
            .claims()
            .iter()
            .map(|c| (c.source, c.object, c.value))
            .collect();
        let direct = SnapshotView::from_triples(store.num_sources(), store.num_objects(), triples);
        for s in store.source_ids() {
            for o in store.object_ids() {
                assert_eq!(snap.value(s, o), direct.value(s, o));
            }
        }
        assert_eq!(snap.num_assertions(), direct.num_assertions());
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let snap = SnapshotView::from_triples(0, 0, Vec::new());
        assert_eq!(snap.num_sources(), 0);
        assert_eq!(snap.num_objects(), 0);
        assert_eq!(snap.num_assertions(), 0);
        assert_eq!(snap.value(SourceId(0), ObjectId(0)), None);
        assert_eq!(snap.assertions_on(ObjectId(3)), &[]);
    }
}
