//! The iterative Bayesian loop: truth ↔ accuracy ↔ dependence.
//!
//! "A solution strategy can be devised using Bayesian analysis by iteratively
//! determining true values, computing accuracy of sources, and discovering
//! dependence between sources" (Section 3.2). [`AccuCopy`] runs that loop on
//! a snapshot to a fixpoint; with copy detection disabled
//! ([`DetectionParams::accu_baseline`]) it degenerates to accuracy-weighted
//! voting (the dependence-*unaware* comparator used throughout the
//! experiments).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use sailing_model::{fx_mix, Delta, ObjectId, SailingError, SnapshotView, SourceId, ValueId};

use crate::accuracy::{estimate_accuracies, max_delta};
use crate::pairs::{candidate_pairs, detect_all_with_pairs};
use crate::params::DetectionParams;
use crate::partial;
use crate::report::{Direction, PairDependence, SourceReport};
use crate::truth::{naive_probabilities, weighted_vote, DependenceMatrix, ValueProbabilities};

/// Dependence-aware truth discovery, run as a converging iteration.
#[derive(Debug, Clone)]
pub struct AccuCopy {
    params: DetectionParams,
    watchdog: Watchdog,
}

/// Why a discovery run stopped iterating. Richer than the boolean
/// [`PipelineResult::converged`] (which stays the source of truth for
/// warm-start gating): the watchdog outcomes distinguish a run that
/// burned its whole iteration budget from one that was *ended early* as
/// provably spinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Termination {
    /// The accuracy fixpoint was reached (`converged == true`).
    Converged,
    /// `max_iterations` elapsed without convergence — the historical
    /// non-converged outcome, and the default when no richer record
    /// exists (deserialized legacy results, hand-built values).
    #[default]
    IterationCap,
    /// The [`Watchdog`] recognised an exact recurrence of the iteration
    /// state: the loop is in a cycle of this period and would spin until
    /// the cap without ever converging, so it was ended immediately.
    LimitCycle {
        /// Iterations between the two identical states (≥ 2; a
        /// period-1 recurrence is a fixpoint and reports `Converged`).
        period: usize,
    },
    /// The [`Watchdog`] wall-clock deadline elapsed mid-run.
    DeadlineExceeded,
}

impl Termination {
    /// The record implied by a bare convergence flag — what legacy
    /// carriers (the persist wire, fusion outcomes) can reconstruct.
    pub fn from_converged(converged: bool) -> Self {
        if converged {
            Termination::Converged
        } else {
            Termination::IterationCap
        }
    }

    /// `true` for the two watchdog outcomes ([`Termination::LimitCycle`],
    /// [`Termination::DeadlineExceeded`]).
    pub fn is_watchdog_stop(self) -> bool {
        matches!(
            self,
            Termination::LimitCycle { .. } | Termination::DeadlineExceeded
        )
    }
}

/// Runaway-run protection for the discovery loop: a wall-clock deadline
/// and/or limit-cycle detection. Off by default — the historical
/// behaviour is to iterate until convergence or `max_iterations`.
///
/// The numerics caution in this workspace's roadmap is real: with the
/// default hard damping threshold the vote map is discontinuous, and
/// sparse snapshots can oscillate between states forever instead of
/// converging. A watchdogged run ends such a spin as a **typed
/// non-converged outcome** ([`Termination::LimitCycle`] /
/// [`Termination::DeadlineExceeded`], with `converged == false` so the
/// warm-start gate keeps rejecting it) instead of silently burning the
/// whole iteration budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Watchdog {
    /// Wall-clock budget for one `run`/`run_warm` call; checked between
    /// iterations, so one iteration always completes.
    pub deadline: Option<Duration>,
    /// Record a digest of each iteration's end state and stop the moment
    /// a state recurs exactly. Costs one hash of the accuracy and
    /// posterior vectors per iteration and O(iterations) memory.
    pub detect_limit_cycles: bool,
}

impl Watchdog {
    /// The inert watchdog (no deadline, no cycle detection).
    pub fn off() -> Self {
        Self::default()
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Enables limit-cycle detection.
    #[must_use]
    pub fn limit_cycles(mut self) -> Self {
        self.detect_limit_cycles = true;
        self
    }

    /// `true` when any protection is armed.
    pub fn is_active(self) -> bool {
        self.deadline.is_some() || self.detect_limit_cycles
    }
}

/// Everything the pipeline learned about a snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Posterior value distributions per object.
    pub probabilities: ValueProbabilities,
    /// Converged accuracy per source (indexed by [`SourceId`]).
    pub accuracies: Vec<f64>,
    /// Detected pairwise dependences (candidate pairs only).
    pub dependences: Vec<PairDependence>,
    /// Iterations actually run.
    pub iterations: usize,
    /// Whether the accuracy fixpoint was reached before the iteration cap.
    pub converged: bool,
    /// Why the run stopped — convergence, the iteration cap, or a
    /// [`Watchdog`] stop. Not on the canonical wire (the persist format
    /// and [`PipelineResult::content_digest`] are pinned by golden
    /// fixtures); a deserialized result carries the record implied by its
    /// `converged` flag.
    #[serde(skip)]
    pub termination: Termination,
}

impl PipelineResult {
    /// Hard truth decisions: most probable value per object.
    pub fn decisions(&self) -> HashMap<ObjectId, ValueId> {
        self.probabilities.decisions()
    }

    /// Hard truth decisions in ascending object order — deterministic
    /// iteration for reproducible downstream output.
    pub fn decisions_sorted(&self) -> std::collections::BTreeMap<ObjectId, ValueId> {
        self.probabilities.decisions_sorted()
    }

    /// Pairs whose dependence posterior crosses `threshold`, most probable
    /// first.
    pub fn dependent_pairs(&self, threshold: f64) -> Vec<&PairDependence> {
        let mut out: Vec<_> = self
            .dependences
            .iter()
            .filter(|p| p.is_dependent(threshold))
            .collect();
        // `total_cmp` keeps the sort NaN-safe: a detector emitting a NaN
        // posterior must not panic the reporting path.
        out.sort_by(|x, y| y.probability.total_cmp(&x.probability));
        out
    }

    /// The dependence matrix implied by the detected pairs.
    pub fn dependence_matrix(&self) -> DependenceMatrix {
        DependenceMatrix::from_pairs(&self.dependences)
    }

    /// Per-source summary: accuracy, coverage, copier probability and mean
    /// vote independence.
    pub fn source_reports(&self, snapshot: &SnapshotView) -> Vec<SourceReport> {
        self.source_reports_with(snapshot, &self.dependence_matrix())
    }

    /// Canonical JSON text of this result: field order and collection
    /// order are fixed by the struct layout (no hash-map iteration
    /// anywhere on the wire), and floats render in shortest-round-trip
    /// form, so equal results produce byte-identical text and a parse of
    /// the text reproduces every `f64` bit for bit. This is the payload
    /// the persistent analysis store checksums and re-loads in place of a
    /// cold discovery run.
    pub fn to_canonical_json(&self) -> String {
        serde::json::write(&self.serialize())
    }

    /// Parses a result back from its canonical JSON text. Inverse of
    /// [`PipelineResult::to_canonical_json`]: posteriors, accuracies, and
    /// the convergence record survive exactly ([`Self::content_digest`] is
    /// invariant under the round-trip).
    ///
    /// # Errors
    /// Returns the underlying parse/shape error; persistent-store readers
    /// treat any error as a cold cache miss.
    pub fn from_json_str(text: &str) -> Result<Self, serde::Error> {
        let mut result = Self::deserialize(&serde::json::parse(text)?)?;
        // The wire deliberately carries only `converged` (format pinned
        // by golden fixtures); rebuild the equivalent termination record.
        result.termination = Termination::from_converged(result.converged);
        Ok(result)
    }

    /// An order-sensitive digest over everything a strategy could
    /// legitimately warm-start from — accuracies, posterior distributions,
    /// dependence count, and convergence. Two results digesting equal
    /// present the same seed to a warm-started discovery run, so the
    /// digest serves as the *provenance* half of analysis-cache and
    /// persistent-store keys. Mixes with the same hash family as
    /// [`SnapshotView::content_hash`] ([`sailing_model::fx_mix`]); not
    /// cryptographic.
    pub fn content_digest(&self) -> u64 {
        let mut h = sailing_model::fx_mix(0x70_72_69_6f_72, self.accuracies.len() as u64);
        for a in &self.accuracies {
            h = sailing_model::fx_mix(h, a.to_bits());
        }
        for o in self.probabilities.objects() {
            h = sailing_model::fx_mix(h, u64::from(o.0));
            for &(v, p) in self.probabilities.distribution(o) {
                h = sailing_model::fx_mix(h, u64::from(v.0));
                h = sailing_model::fx_mix(h, p.to_bits());
            }
        }
        h = sailing_model::fx_mix(h, self.dependences.len() as u64);
        sailing_model::fx_mix(h, u64::from(self.converged))
    }

    /// Like [`PipelineResult::source_reports`], reusing an
    /// already-materialised dependence matrix instead of rebuilding it —
    /// the path the `sailing` facade's cached analysis takes.
    pub fn source_reports_with(
        &self,
        snapshot: &SnapshotView,
        matrix: &DependenceMatrix,
    ) -> Vec<SourceReport> {
        (0..snapshot.num_sources())
            .map(|idx| {
                let s = SourceId::from_index(idx);
                let copier_probability = (0..snapshot.num_sources())
                    .filter(|&j| j != idx)
                    .map(|j| matrix.dep_on(s, SourceId::from_index(j)))
                    .fold(0.0, f64::max);
                let mut independence = 1.0;
                for j in 0..snapshot.num_sources() {
                    if j != idx {
                        independence *= 1.0 - matrix.dep_on(s, SourceId::from_index(j));
                    }
                }
                SourceReport {
                    source: s,
                    accuracy: self.accuracies.get(idx).copied().unwrap_or(0.5),
                    coverage: snapshot.coverage(s),
                    copier_probability,
                    mean_independence: independence,
                }
            })
            .collect()
    }
}

impl AccuCopy {
    /// Creates a pipeline after validating the parameters.
    pub fn new(params: DetectionParams) -> Result<Self, SailingError> {
        params.validate()?;
        Ok(Self {
            params,
            watchdog: Watchdog::off(),
        })
    }

    /// Creates the dependence-aware pipeline with default parameters.
    pub fn with_defaults() -> Self {
        Self {
            params: DetectionParams::default(),
            watchdog: Watchdog::off(),
        }
    }

    /// Creates the ACCU baseline (accuracy-aware, dependence-unaware).
    pub fn baseline() -> Self {
        Self {
            params: DetectionParams::accu_baseline(),
            watchdog: Watchdog::off(),
        }
    }

    /// Arms the discovery watchdog (see [`Watchdog`]). Off by default.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// The parameters in force.
    pub fn params(&self) -> &DetectionParams {
        &self.params
    }

    /// The watchdog in force ([`Watchdog::off`] unless armed).
    pub fn watchdog(&self) -> Watchdog {
        self.watchdog
    }

    /// Runs the loop to convergence on `snapshot`.
    ///
    /// Each iteration: (1) vote with the current accuracies and dependence
    /// matrix; (2) re-detect dependence from the fresh value probabilities;
    /// (3) re-vote with the fresh dependences so copied votes are damped
    /// *before* accuracies are re-estimated — otherwise a copier cluster
    /// inflates its own accuracy in the first round and the iteration can
    /// lock onto the copied values; (4) re-estimate accuracies and test
    /// convergence.
    ///
    /// The candidate-pair list is snapshot-invariant, so it is enumerated
    /// once here and threaded through every iteration's detection pass.
    pub fn run(&self, snapshot: &SnapshotView) -> PipelineResult {
        self.run_warm(snapshot, None)
    }

    /// Like [`AccuCopy::run`], optionally **warm-started** from a previous
    /// epoch's converged result.
    ///
    /// With `prior = None` this is exactly the cold loop. With a converged
    /// prior, the accuracy vector is seeded from the prior's converged
    /// accuracies (resized with the configured initial accuracy for sources
    /// the prior never saw), so on a snapshot that differs from the prior's
    /// by a small delta the iteration starts near the fixpoint and
    /// converges in fewer rounds. Warm starting trades iterations, not
    /// answers: the loop, its convergence criterion, and its fixpoint are
    /// unchanged — the `sailing` facade's timeline tests pin warm-vs-cold
    /// posterior parity. Priors that never converged (or estimate no
    /// accuracies at all) are ignored rather than trusted.
    pub fn run_warm(
        &self,
        snapshot: &SnapshotView,
        prior: Option<&PipelineResult>,
    ) -> PipelineResult {
        let p = &self.params;
        let mut accuracies = seed_accuracies(p, snapshot, prior);
        let mut dependences: Vec<PairDependence> = Vec::new();
        let mut matrix = DependenceMatrix::new();
        let candidates = if p.enable_copy_detection {
            candidate_pairs(snapshot, p.min_overlap)
        } else {
            Vec::new()
        };
        // Bootstrap with naive vote shares even when warm (see
        // `truth::naive_probabilities`): the bootstrap beliefs feed the
        // *first* dependence-detection pass, and seeding it with saturated
        // posteriors — the prior's, or any weighted vote's — hides the
        // shared-false-value mass copy detection needs, steering the loop
        // into the copier-locked fixpoint. Warmth lives in the accuracy
        // seed alone, which is what the convergence criterion measures.
        let mut probabilities = naive_probabilities(snapshot);
        let mut iterations = 0;
        let mut converged = false;
        let mut termination = Termination::IterationCap;
        let started = Instant::now();
        // Digests of each iteration's end state, in order — empty (and
        // cost-free) unless limit-cycle detection is armed.
        let mut seen_states: Vec<u64> = Vec::new();

        while iterations < p.max_iterations {
            iterations += 1;
            if p.enable_copy_detection {
                dependences =
                    detect_all_with_pairs(snapshot, &candidates, &probabilities, &accuracies, p);
                refine_directions(snapshot, &probabilities, &mut dependences);
                matrix = DependenceMatrix::from_pairs(&dependences);
            }
            probabilities = weighted_vote(snapshot, &accuracies, &matrix, p);
            let new_accuracies = estimate_accuracies(snapshot, &probabilities, p);
            let delta = max_delta(&accuracies, &new_accuracies);
            accuracies = new_accuracies;
            if delta < p.convergence_epsilon {
                converged = true;
                termination = Termination::Converged;
                break;
            }
            probabilities = weighted_vote(snapshot, &accuracies, &matrix, p);
            // Watchdog checks run between iterations, so one iteration
            // always completes and a converged run is never interrupted.
            if self.watchdog.detect_limit_cycles {
                let digest = state_digest(&accuracies, &probabilities);
                if let Some(seen_at) = seen_states.iter().position(|&d| d == digest) {
                    // The full iteration state (accuracies + posteriors,
                    // from which the next dependence pass derives
                    // deterministically) recurred exactly: the loop is in
                    // a cycle and will never converge. End it now.
                    termination = Termination::LimitCycle {
                        period: seen_states.len() - seen_at,
                    };
                    break;
                }
                seen_states.push(digest);
            }
            if let Some(deadline) = self.watchdog.deadline {
                if started.elapsed() >= deadline {
                    termination = Termination::DeadlineExceeded;
                    break;
                }
            }
        }

        PipelineResult {
            probabilities,
            accuracies,
            dependences,
            iterations,
            converged,
            termination,
        }
    }
}

/// Which path [`AccuCopy::run_delta`] took — the typed record the ingest
/// tier folds into its stats, so "incremental" vs "fell back to a full
/// run" is observable rather than inferred from timings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaOutcome {
    /// Only the dirty component was re-converged; everything outside it
    /// was spliced through from the previous result unchanged.
    Incremental,
    /// The dirty closure reached more of the object space than the
    /// caller's `max_dirty_fraction` allows, so the full
    /// [`AccuCopy::run_warm`] ran instead.
    DirtyFractionExceeded {
        /// Fraction of the object space the dirty closure reached.
        dirty_fraction: f64,
    },
    /// No usable prior (absent, non-converged, or accuracy-blind). The
    /// warm-start gating rule applies to deltas too — a mid-oscillation
    /// state must not seed anything — so the full warm run (which itself
    /// degrades to cold) ran instead.
    PriorNotConverged,
    /// The strategy has no incremental path
    /// ([`TruthDiscovery::run_delta`](crate::TruthDiscovery::run_delta)'s
    /// default); its plain warm entry ran over the whole snapshot.
    Unsupported,
}

impl DeltaOutcome {
    /// `true` only for the genuinely incremental path.
    pub fn is_incremental(self) -> bool {
        matches!(self, DeltaOutcome::Incremental)
    }
}

/// A [`AccuCopy::run_delta`] result: a full-snapshot [`PipelineResult`]
/// (indistinguishable in shape from a [`AccuCopy::run_warm`] result) plus
/// the provenance of how it was produced.
#[derive(Debug, Clone)]
pub struct DeltaRun {
    /// The full-snapshot result.
    pub result: PipelineResult,
    /// Which path produced it.
    pub outcome: DeltaOutcome,
    /// Objects in the dirty closure (the whole object space on the
    /// fallback paths — a fallback re-converges everything).
    pub dirty_objects: usize,
    /// Sources in the dirty closure (ditto).
    pub dirty_sources: usize,
}

impl AccuCopy {
    /// Incrementally re-converges after a [`Delta`], seeding from the
    /// previous **converged** result and re-running the loop only where
    /// the delta can have changed anything.
    ///
    /// `snapshot` must be the *post-delta* snapshot (i.e.
    /// `prev_snapshot.apply_delta(delta)`), and `prev` the result of
    /// analysing the pre-delta snapshot. The dirty set starts from the
    /// objects the delta touches plus the sources asserting on them, and
    /// that one-hop rule is propagated through the vote → accuracy →
    /// dependence loop until it closes: a dirty object dirties every
    /// source asserting on it, a dirty source dirties every object it
    /// asserts. At the fixpoint the dirty set is a union of connected
    /// components of the source–object bipartite graph, and every term
    /// the loop computes — per-object votes, per-source accuracy
    /// estimates, candidate pairs (screened at overlap ≥ 1) — is local to
    /// a component, so the clean remainder provably cannot move: its
    /// previous converged values are spliced through verbatim while only
    /// the dirty component is extracted (order-preserving compaction, so
    /// per-component float operations run in the same order a full run
    /// would) and re-converged by the unmodified [`AccuCopy::run_warm`]
    /// loop. Posteriors therefore match a full warm re-analysis to within
    /// the convergence tolerance; the facade's property tests pin 1e-9.
    ///
    /// When the closure exceeds `max_dirty_fraction` of the object space
    /// (or the prior fails the warm-start gate) this falls back to the
    /// full [`AccuCopy::run_warm`] with a typed [`DeltaOutcome`] saying
    /// so.
    pub fn run_delta(
        &self,
        snapshot: &SnapshotView,
        prev: Option<&PipelineResult>,
        delta: &Delta,
        max_dirty_fraction: f64,
    ) -> DeltaRun {
        let p = &self.params;
        let num_sources = snapshot.num_sources();
        let num_objects = snapshot.num_objects();
        let gated = prev.filter(|r| r.converged && !r.accuracies.is_empty());
        let Some(prev) = gated else {
            return DeltaRun {
                result: self.run_warm(snapshot, prev),
                outcome: DeltaOutcome::PriorNotConverged,
                dirty_objects: num_objects,
                dirty_sources: num_sources,
            };
        };
        if delta.is_empty() {
            return DeltaRun {
                // The previous result verbatim; no iterations were spent
                // on this (empty) delta.
                result: PipelineResult {
                    iterations: 0,
                    ..prev.clone()
                },
                outcome: DeltaOutcome::Incremental,
                dirty_objects: 0,
                dirty_sources: 0,
            };
        }

        // Dirty closure: alternate the two one-hop expansions until both
        // worklists drain. Ids beyond the snapshot's spaces cannot occur
        // when `snapshot` was built by `apply_delta` (it grows to cover
        // the delta); stray ids from a mismatched caller are ignored.
        let mut src_dirty = vec![false; num_sources];
        let mut obj_dirty = vec![false; num_objects];
        let mut src_stack: Vec<SourceId> = Vec::new();
        let mut obj_stack: Vec<ObjectId> = Vec::new();
        for o in delta.touched_objects() {
            if o.index() < num_objects {
                obj_dirty[o.index()] = true;
                obj_stack.push(o);
            }
        }
        for s in delta.touched_sources() {
            if s.index() < num_sources {
                src_dirty[s.index()] = true;
                src_stack.push(s);
            }
        }
        loop {
            if let Some(o) = obj_stack.pop() {
                for &(s, _) in snapshot.assertions_on(o) {
                    if !src_dirty[s.index()] {
                        src_dirty[s.index()] = true;
                        src_stack.push(s);
                    }
                }
                continue;
            }
            if let Some(s) = src_stack.pop() {
                for &(o, _) in snapshot.source_assertions(s) {
                    if !obj_dirty[o.index()] {
                        obj_dirty[o.index()] = true;
                        obj_stack.push(o);
                    }
                }
                continue;
            }
            break;
        }
        let dirty_objects = obj_dirty.iter().filter(|&&d| d).count();
        let dirty_sources = src_dirty.iter().filter(|&&d| d).count();
        let dirty_fraction = dirty_objects as f64 / num_objects.max(1) as f64;
        if dirty_fraction > max_dirty_fraction {
            return DeltaRun {
                result: self.run_warm(snapshot, Some(prev)),
                outcome: DeltaOutcome::DirtyFractionExceeded { dirty_fraction },
                dirty_objects: num_objects,
                dirty_sources: num_sources,
            };
        }

        // Extract the dirty component as a compact sub-snapshot. The
        // remaps are monotone, so CSR iteration order — and with it every
        // float summation order — matches the full run's.
        let sub_sources: Vec<SourceId> = (0..num_sources)
            .filter(|&i| src_dirty[i])
            .map(SourceId::from_index)
            .collect();
        let sub_objects: Vec<ObjectId> = (0..num_objects)
            .filter(|&i| obj_dirty[i])
            .map(ObjectId::from_index)
            .collect();
        let mut obj_remap = vec![u32::MAX; num_objects];
        for (compact, o) in sub_objects.iter().enumerate() {
            obj_remap[o.index()] = compact as u32;
        }
        let mut rows = Vec::new();
        for (compact, &s) in sub_sources.iter().enumerate() {
            for &(o, v) in snapshot.source_assertions(s) {
                // Every object a dirty source asserts is dirty (closure),
                // so the remap is always populated here.
                rows.push((
                    SourceId::from_index(compact),
                    ObjectId(obj_remap[o.index()]),
                    v,
                ));
            }
        }
        let sub_snapshot = SnapshotView::from_triples(sub_sources.len(), sub_objects.len(), rows);
        let sub_prior = PipelineResult {
            probabilities: ValueProbabilities::default(),
            accuracies: sub_sources
                .iter()
                .map(|s| {
                    prev.accuracies
                        .get(s.index())
                        .copied()
                        .unwrap_or(p.initial_accuracy)
                })
                .collect(),
            dependences: Vec::new(),
            iterations: 0,
            converged: true,
            termination: Termination::Converged,
        };
        let sub = self.run_warm(&sub_snapshot, Some(&sub_prior));

        // Splice the re-converged component back over the previous
        // result; the clean remainder is carried through untouched.
        let mut accuracies = prev.accuracies.clone();
        accuracies.resize(num_sources, p.initial_accuracy);
        for (compact, &s) in sub_sources.iter().enumerate() {
            accuracies[s.index()] = sub.accuracies[compact];
        }
        let mut per_object: Vec<(ObjectId, Vec<(ValueId, f64)>)> = Vec::new();
        for idx in 0..num_objects {
            let o = ObjectId::from_index(idx);
            let dist = if obj_dirty[idx] {
                sub.probabilities
                    .distribution(ObjectId(obj_remap[idx]))
                    .to_vec()
            } else {
                prev.probabilities.distribution(o).to_vec()
            };
            if !dist.is_empty() {
                per_object.push((o, dist));
            }
        }
        let probabilities = ValueProbabilities::from_object_distributions(per_object);
        let mut dependences: Vec<PairDependence> = prev
            .dependences
            .iter()
            .filter(|d| {
                d.a.index() < num_sources
                    && d.b.index() < num_sources
                    && !src_dirty[d.a.index()]
                    && !src_dirty[d.b.index()]
            })
            .cloned()
            .collect();
        for d in &sub.dependences {
            let mut mapped = d.clone();
            mapped.a = sub_sources[d.a.index()];
            mapped.b = sub_sources[d.b.index()];
            dependences.push(mapped);
        }
        // Candidate enumeration is sorted by (a, b); keep the merged list
        // in the same canonical order.
        dependences.sort_by_key(|x| (x.a, x.b));

        DeltaRun {
            result: PipelineResult {
                probabilities,
                accuracies,
                dependences,
                iterations: sub.iterations,
                converged: sub.converged,
                termination: sub.termination,
            },
            outcome: DeltaOutcome::Incremental,
            dirty_objects,
            dirty_sources,
        }
    }
}

/// Order-sensitive digest of one iteration's end state: every accuracy
/// bit and every posterior (object, value, probability) bit. Exact
/// recurrence of this digest means the deterministic loop has entered a
/// cycle. Same hash family as [`SnapshotView::content_hash`]; a 64-bit
/// collision would end a run a few iterations early as a (correctly
/// non-converged) `LimitCycle` — a wrong *diagnosis label* at worst,
/// never a wrong posterior served.
pub(crate) fn state_digest(accuracies: &[f64], probabilities: &ValueProbabilities) -> u64 {
    let mut h = fx_mix(0x63_79_63_6c_65, accuracies.len() as u64); // "cycle"
    for a in accuracies {
        h = fx_mix(h, a.to_bits());
    }
    for o in probabilities.objects() {
        h = fx_mix(h, u64::from(o.0));
        for &(v, p) in probabilities.distribution(o) {
            h = fx_mix(h, u64::from(v.0));
            h = fx_mix(h, p.to_bits());
        }
    }
    h
}

/// The warm-start accuracy seed shared by [`AccuCopy::run_warm`] and the
/// sharded coordinator bootstrap ([`crate::shard`]) — one definition so
/// the gating rule cannot drift between the two paths.
///
/// A prior from an accuracy-blind strategy (empty accuracy vector)
/// carries nothing to warm-start from, and a *non-converged* prior is a
/// mid-oscillation state, not a posterior — seeding from one measurably
/// steers the loop into a different attractor than the cold bootstrap
/// reaches (observed on seeded temporal worlds). Both fall back to the
/// cold start.
pub(crate) fn seed_accuracies(
    params: &DetectionParams,
    snapshot: &SnapshotView,
    prior: Option<&PipelineResult>,
) -> Vec<f64> {
    let prior = prior.filter(|r| r.converged && !r.accuracies.is_empty());
    match prior {
        Some(r) => {
            let mut seeded = r.accuracies.clone();
            // Pads new sources with the initial accuracy; equally
            // shrinks a longer prior to this snapshot's source count.
            seeded.resize(snapshot.num_sources(), params.initial_accuracy);
            for a in &mut seeded {
                *a = params.clamp_accuracy(*a);
            }
            seeded
        }
        None => vec![params.initial_accuracy; snapshot.num_sources()],
    }
}

/// Blends the likelihood-based direction posterior with the
/// overlap-property hint (Section 3.2, intuition 2).
pub(crate) fn refine_directions(
    snapshot: &SnapshotView,
    probs: &ValueProbabilities,
    deps: &mut [PairDependence],
) {
    for dep in deps {
        if let Some(hint) = partial::direction_hint(snapshot, dep.a, dep.b, probs) {
            // Equal-weight blend of the two independent direction signals.
            dep.prob_a_on_b = 0.5 * dep.prob_a_on_b + 0.5 * hint;
            dep.direction = if dep.probability < 0.5 || (dep.prob_a_on_b - 0.5).abs() < 0.1 {
                Direction::Unknown
            } else if dep.prob_a_on_b > 0.5 {
                Direction::AOnB
            } else {
                Direction::BOnA
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_model::fixtures;

    #[test]
    fn table1_accu_copy_recovers_all_truths() {
        // Example 3.1: ignoring the values of the copy cluster lets the
        // accurate source win everywhere.
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let result = AccuCopy::with_defaults().run(&snap);
        let precision = truth.decision_precision(&result.decisions()).unwrap();
        assert_eq!(
            precision, 1.0,
            "dependence-aware fusion must be correct on all five researchers; \
             accuracies={:?}",
            result.accuracies
        );
    }

    #[test]
    fn table1_baseline_follows_the_copiers() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let result = AccuCopy::baseline().run(&snap);
        let precision = truth.decision_precision(&result.decisions()).unwrap();
        assert!(
            precision < 1.0,
            "the dependence-unaware baseline should be misled on Table 1"
        );
        assert!(result.dependences.is_empty());
    }

    #[test]
    fn table1_flags_the_cluster_not_the_independents() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let result = AccuCopy::with_defaults().run(&snap);
        let s = |n: &str| store.source_id(n).unwrap();
        let find = |a: SourceId, b: SourceId| {
            let (a, b) = if a < b { (a, b) } else { (b, a) };
            result
                .dependences
                .iter()
                .find(|p| p.a == a && p.b == b)
                .unwrap()
                .probability
        };
        for (x, y) in [("S3", "S4"), ("S3", "S5"), ("S4", "S5")] {
            assert!(
                find(s(x), s(y)) > 0.8,
                "{x}-{y} should be flagged: {}",
                find(s(x), s(y))
            );
        }
        assert!(
            find(s("S1"), s("S2")) < 0.5,
            "S1-S2 share only true values: {}",
            find(s("S1"), s("S2"))
        );
    }

    #[test]
    fn table1_accuracy_ordering_is_recovered() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let result = AccuCopy::with_defaults().run(&snap);
        let a = |n: &str| result.accuracies[store.source_id(n).unwrap().index()];
        assert!(a("S1") > a("S2"), "S1 perfect vs S2 3/5");
        assert!(a("S2") > a("S3"), "S2 3/5 vs S3 2/5");
    }

    #[test]
    fn pipeline_converges_and_reports() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let result = AccuCopy::with_defaults().run(&snap);
        assert!(result.converged, "Table 1 should converge quickly");
        assert!(result.iterations <= 20);
        let reports = result.source_reports(&snap);
        assert_eq!(reports.len(), 5);
        let s4 = store.source_id("S4").unwrap();
        let s1 = store.source_id("S1").unwrap();
        let r4 = reports.iter().find(|r| r.source == s4).unwrap();
        let r1 = reports.iter().find(|r| r.source == s1).unwrap();
        assert!(r4.copier_probability > r1.copier_probability);
        assert!(r1.mean_independence > r4.mean_independence);
        assert_eq!(r1.coverage, 5);
    }

    #[test]
    fn dependent_pairs_sorted_and_thresholded() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let result = AccuCopy::with_defaults().run(&snap);
        let pairs = result.dependent_pairs(0.8);
        assert!(!pairs.is_empty());
        assert!(pairs
            .windows(2)
            .all(|w| w[0].probability >= w[1].probability));
        assert!(pairs.iter().all(|p| p.probability >= 0.8));
    }

    #[test]
    fn invalid_params_rejected() {
        let bad = DetectionParams {
            copy_rate: 2.0,
            ..DetectionParams::default()
        };
        assert!(AccuCopy::new(bad).is_err());
        assert!(AccuCopy::new(DetectionParams::default()).is_ok());
    }

    #[test]
    fn empty_snapshot_is_fine() {
        let snap = SnapshotView::from_triples(0, 0, Vec::new());
        let result = AccuCopy::with_defaults().run(&snap);
        assert!(result.decisions().is_empty());
        assert!(result.dependences.is_empty());
        assert!(result.converged);
    }

    #[test]
    fn warm_start_none_is_exactly_the_cold_run() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let pipeline = AccuCopy::with_defaults();
        let cold = pipeline.run(&snap);
        let warm_none = pipeline.run_warm(&snap, None);
        assert_eq!(cold.iterations, warm_none.iterations);
        assert_eq!(cold.accuracies, warm_none.accuracies);
    }

    #[test]
    fn warm_start_from_own_result_converges_fast_and_agrees() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let pipeline = AccuCopy::with_defaults();
        let cold = pipeline.run(&snap);
        let warm = pipeline.run_warm(&snap, Some(&cold));
        // Restarting at the fixpoint must stay at the fixpoint, in fewer
        // iterations than the cold climb.
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        assert!(warm.converged);
        assert_eq!(warm.decisions(), cold.decisions());
        assert_eq!(truth.decision_precision(&warm.decisions()), Some(1.0));
        for (w, c) in warm.accuracies.iter().zip(&cold.accuracies) {
            assert!((w - c).abs() < 1e-3, "warm {w} vs cold {c}");
        }
    }

    #[test]
    fn warm_start_ignores_accuracy_blind_priors_and_resizes() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let pipeline = AccuCopy::with_defaults();
        // A naive-vote prior (no accuracies) must behave exactly like cold.
        let naive_prior = PipelineResult {
            probabilities: naive_probabilities(&snap),
            accuracies: Vec::new(),
            dependences: Vec::new(),
            iterations: 1,
            converged: true,
            termination: Termination::Converged,
        };
        let cold = pipeline.run(&snap);
        let warm = pipeline.run_warm(&snap, Some(&naive_prior));
        assert_eq!(cold.iterations, warm.iterations);
        assert_eq!(cold.accuracies, warm.accuracies);
        // A prior with a shorter accuracy vector is padded, a longer one
        // truncated — no panics, sane output either way.
        let mut short = cold.clone();
        short.accuracies.truncate(2);
        let padded = pipeline.run_warm(&snap, Some(&short));
        assert_eq!(padded.accuracies.len(), snap.num_sources());
        let mut long = cold.clone();
        long.accuracies.extend([0.7; 4]);
        let truncated = pipeline.run_warm(&snap, Some(&long));
        assert_eq!(truncated.accuracies.len(), snap.num_sources());
    }

    #[test]
    fn serde_roundtrip() {
        let (store, _) = fixtures::table1();
        let result = AccuCopy::with_defaults().run(&store.snapshot());
        let json = serde_json::to_string(&result).unwrap();
        let back: PipelineResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.iterations, result.iterations);
        for (x, y) in back.accuracies.iter().zip(&result.accuracies) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn termination_is_not_on_the_wire_and_rebuilds_from_converged() {
        let (store, _) = fixtures::table1();
        let result = AccuCopy::with_defaults().run(&store.snapshot());
        assert_eq!(result.termination, Termination::Converged);
        let json = result.to_canonical_json();
        assert!(
            !json.contains("termination"),
            "the pinned wire must not grow a field"
        );
        let back = PipelineResult::from_json_str(&json).unwrap();
        assert_eq!(back.termination, Termination::Converged);
        // A non-converged record rebuilds as the iteration cap.
        let mut capped = result.clone();
        capped.converged = false;
        capped.termination = Termination::DeadlineExceeded;
        let back = PipelineResult::from_json_str(&capped.to_canonical_json()).unwrap();
        assert_eq!(back.termination, Termination::IterationCap);
        assert_eq!(
            capped.content_digest(),
            {
                let mut t = capped.clone();
                t.termination = Termination::IterationCap;
                t.content_digest()
            },
            "termination must not leak into the provenance digest"
        );
    }

    #[test]
    fn watchdog_deadline_stops_a_run_as_a_typed_outcome() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        // A zero deadline elapses after the very first iteration — the
        // deterministic way to pin the deadline path without sleeping.
        let watchdogged =
            AccuCopy::with_defaults().with_watchdog(Watchdog::off().deadline(Duration::ZERO));
        let result = watchdogged.run(&snap);
        assert_eq!(result.iterations, 1, "one iteration always completes");
        assert!(!result.converged);
        assert_eq!(result.termination, Termination::DeadlineExceeded);
        assert!(result.termination.is_watchdog_stop());
        // A generous deadline never interferes with convergence.
        let relaxed = AccuCopy::with_defaults().with_watchdog(
            Watchdog::off()
                .deadline(Duration::from_secs(3600))
                .limit_cycles(),
        );
        let result = relaxed.run(&snap);
        assert!(result.converged);
        assert_eq!(result.termination, Termination::Converged);
    }

    #[test]
    fn watchdog_off_is_the_historical_loop() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let plain = AccuCopy::with_defaults().run(&snap);
        let armed = AccuCopy::with_defaults()
            .with_watchdog(Watchdog::off().limit_cycles())
            .run(&snap);
        assert_eq!(plain.iterations, armed.iterations);
        assert_eq!(plain.accuracies, armed.accuracies);
        assert_eq!(plain.content_digest(), armed.content_digest());
        assert!(!Watchdog::off().is_active());
        assert!(Watchdog::off().limit_cycles().is_active());
    }

    /// Two disjoint source/object blocks. Block A: sources 0–2 over
    /// objects 0–3; block B: sources 3–5 over objects 4–7. Values are
    /// namespaced per object (`o*10 + k`, `k = 0` true), each source is
    /// wrong on one object of its block.
    fn block_world() -> SnapshotView {
        let mut triples = Vec::new();
        for block in 0..2u32 {
            for s in 0..3u32 {
                let sid = SourceId(block * 3 + s);
                for o in 0..4u32 {
                    let oid = ObjectId(block * 4 + o);
                    let k = u32::from(o == s + 1); // source s wrong on object s+1
                    triples.push((sid, oid, ValueId(oid.0 * 10 + k)));
                }
            }
        }
        SnapshotView::from_triples(6, 8, triples)
    }

    fn delta_params() -> DetectionParams {
        // Per the workspace numerics caution: continuous vote map + tight
        // epsilon, so fixpoints are stable and parity is meaningful.
        DetectionParams {
            hard_damping_threshold: 1.0,
            convergence_epsilon: 1e-12,
            ..DetectionParams::default()
        }
    }

    #[test]
    fn run_delta_parity_with_full_warm_rerun() {
        let base = block_world();
        let pipeline = AccuCopy::new(delta_params()).unwrap();
        let prev = pipeline.run(&base);
        assert!(prev.converged, "block world must converge");

        // Delta confined to block A: one flipped value, one new source.
        let mut b = Delta::builder();
        b.assert_value(SourceId(1), ObjectId(0), ValueId(1));
        for o in 0..4u32 {
            b.assert_value(SourceId(6), ObjectId(o), ValueId(o * 10));
        }
        let delta = b.build();
        let after = base.apply_delta(&delta);

        let run = pipeline.run_delta(&after, Some(&prev), &delta, 0.9);
        let full = pipeline.run_warm(&after, Some(&prev));

        assert_eq!(run.outcome, DeltaOutcome::Incremental);
        assert!(run.outcome.is_incremental());
        assert_eq!(run.dirty_objects, 4, "block A objects only");
        assert_eq!(run.dirty_sources, 4, "sources 0-2 plus the new 6");
        assert!(run.result.converged);
        assert_eq!(run.result.termination, Termination::Converged);
        assert!(run.result.iterations <= full.iterations);

        // Posterior and accuracy parity with the full warm re-analysis.
        assert_eq!(run.result.accuracies.len(), full.accuracies.len());
        for (i, (x, y)) in run
            .result
            .accuracies
            .iter()
            .zip(&full.accuracies)
            .enumerate()
        {
            assert!((x - y).abs() < 1e-9, "accuracy[{i}]: {x} vs {y}");
        }
        for o in 0..after.num_objects() {
            let o = ObjectId::from_index(o);
            for &(v, p) in full.probabilities.distribution(o) {
                let q = run.result.probabilities.prob(o, v);
                assert!((p - q).abs() < 1e-9, "posterior({o:?}, {v:?}): {p} vs {q}");
            }
        }
        // The clean block B is spliced through bit-for-bit.
        for s in 3..6 {
            assert_eq!(run.result.accuracies[s], prev.accuracies[s]);
        }
        for o in 4..8u32 {
            assert_eq!(
                run.result.probabilities.distribution(ObjectId(o)),
                prev.probabilities.distribution(ObjectId(o))
            );
        }
    }

    #[test]
    fn run_delta_gates_and_falls_back() {
        let base = block_world();
        let pipeline = AccuCopy::new(delta_params()).unwrap();
        let prev = pipeline.run(&base);
        let mut b = Delta::builder();
        b.assert_value(SourceId(0), ObjectId(0), ValueId(1));
        let delta = b.build();
        let after = base.apply_delta(&delta);

        // A zero dirty budget forces the typed full fallback, which must
        // be exactly the full warm run.
        let run = pipeline.run_delta(&after, Some(&prev), &delta, 0.0);
        assert!(matches!(
            run.outcome,
            DeltaOutcome::DirtyFractionExceeded { dirty_fraction } if dirty_fraction > 0.0
        ));
        assert_eq!(run.dirty_objects, after.num_objects());
        let full = pipeline.run_warm(&after, Some(&prev));
        assert_eq!(run.result.accuracies, full.accuracies);
        assert_eq!(run.result.content_digest(), full.content_digest());

        // A non-converged prior fails the warm-start gate.
        let mut spun = prev.clone();
        spun.converged = false;
        let run = pipeline.run_delta(&after, Some(&spun), &delta, 0.9);
        assert_eq!(run.outcome, DeltaOutcome::PriorNotConverged);
        let cold = pipeline.run(&after);
        assert_eq!(run.result.content_digest(), cold.content_digest());
        let run = pipeline.run_delta(&after, None, &delta, 0.9);
        assert_eq!(run.outcome, DeltaOutcome::PriorNotConverged);

        // An empty delta is a no-op: the prior is returned as-is.
        let run = pipeline.run_delta(&base, Some(&prev), &Delta::builder().build(), 0.9);
        assert_eq!(run.outcome, DeltaOutcome::Incremental);
        assert_eq!(run.dirty_objects, 0);
        assert_eq!(run.result.iterations, 0);
        assert_eq!(run.result.content_digest(), prev.content_digest());
    }

    #[test]
    fn run_delta_handles_retraction_only_deltas() {
        let base = block_world();
        let pipeline = AccuCopy::new(delta_params()).unwrap();
        let prev = pipeline.run(&base);
        // Source 4 vanishes entirely from block B.
        let mut b = Delta::builder();
        for o in 4..8u32 {
            b.retract(SourceId(4), ObjectId(o));
        }
        let delta = b.build();
        let after = base.apply_delta(&delta);
        assert_eq!(after.coverage(SourceId(4)), 0);

        let run = pipeline.run_delta(&after, Some(&prev), &delta, 0.9);
        let full = pipeline.run_warm(&after, Some(&prev));
        assert_eq!(run.outcome, DeltaOutcome::Incremental);
        assert_eq!(run.dirty_objects, 4, "block B objects");
        for (i, (x, y)) in run
            .result
            .accuracies
            .iter()
            .zip(&full.accuracies)
            .enumerate()
        {
            assert!((x - y).abs() < 1e-9, "accuracy[{i}]: {x} vs {y}");
        }
        for o in 0..after.num_objects() {
            let o = ObjectId::from_index(o);
            for &(v, p) in full.probabilities.distribution(o) {
                let q = run.result.probabilities.prob(o, v);
                assert!((p - q).abs() < 1e-9, "posterior({o:?}, {v:?}): {p} vs {q}");
            }
        }
    }
}
