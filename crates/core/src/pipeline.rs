//! The iterative Bayesian loop: truth ↔ accuracy ↔ dependence.
//!
//! "A solution strategy can be devised using Bayesian analysis by iteratively
//! determining true values, computing accuracy of sources, and discovering
//! dependence between sources" (Section 3.2). [`AccuCopy`] runs that loop on
//! a snapshot to a fixpoint; with copy detection disabled
//! ([`DetectionParams::accu_baseline`]) it degenerates to accuracy-weighted
//! voting (the dependence-*unaware* comparator used throughout the
//! experiments).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sailing_model::{ObjectId, SailingError, SnapshotView, SourceId, ValueId};

use crate::accuracy::{estimate_accuracies, max_delta};
use crate::pairs::{candidate_pairs, detect_all_with_pairs};
use crate::params::DetectionParams;
use crate::partial;
use crate::report::{Direction, PairDependence, SourceReport};
use crate::truth::{naive_probabilities, weighted_vote, DependenceMatrix, ValueProbabilities};

/// Dependence-aware truth discovery, run as a converging iteration.
#[derive(Debug, Clone)]
pub struct AccuCopy {
    params: DetectionParams,
}

/// Everything the pipeline learned about a snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Posterior value distributions per object.
    pub probabilities: ValueProbabilities,
    /// Converged accuracy per source (indexed by [`SourceId`]).
    pub accuracies: Vec<f64>,
    /// Detected pairwise dependences (candidate pairs only).
    pub dependences: Vec<PairDependence>,
    /// Iterations actually run.
    pub iterations: usize,
    /// Whether the accuracy fixpoint was reached before the iteration cap.
    pub converged: bool,
}

impl PipelineResult {
    /// Hard truth decisions: most probable value per object.
    pub fn decisions(&self) -> HashMap<ObjectId, ValueId> {
        self.probabilities.decisions()
    }

    /// Hard truth decisions in ascending object order — deterministic
    /// iteration for reproducible downstream output.
    pub fn decisions_sorted(&self) -> std::collections::BTreeMap<ObjectId, ValueId> {
        self.probabilities.decisions_sorted()
    }

    /// Pairs whose dependence posterior crosses `threshold`, most probable
    /// first.
    pub fn dependent_pairs(&self, threshold: f64) -> Vec<&PairDependence> {
        let mut out: Vec<_> = self
            .dependences
            .iter()
            .filter(|p| p.is_dependent(threshold))
            .collect();
        // `total_cmp` keeps the sort NaN-safe: a detector emitting a NaN
        // posterior must not panic the reporting path.
        out.sort_by(|x, y| y.probability.total_cmp(&x.probability));
        out
    }

    /// The dependence matrix implied by the detected pairs.
    pub fn dependence_matrix(&self) -> DependenceMatrix {
        DependenceMatrix::from_pairs(&self.dependences)
    }

    /// Per-source summary: accuracy, coverage, copier probability and mean
    /// vote independence.
    pub fn source_reports(&self, snapshot: &SnapshotView) -> Vec<SourceReport> {
        self.source_reports_with(snapshot, &self.dependence_matrix())
    }

    /// Canonical JSON text of this result: field order and collection
    /// order are fixed by the struct layout (no hash-map iteration
    /// anywhere on the wire), and floats render in shortest-round-trip
    /// form, so equal results produce byte-identical text and a parse of
    /// the text reproduces every `f64` bit for bit. This is the payload
    /// the persistent analysis store checksums and re-loads in place of a
    /// cold discovery run.
    pub fn to_canonical_json(&self) -> String {
        serde::json::write(&self.serialize())
    }

    /// Parses a result back from its canonical JSON text. Inverse of
    /// [`PipelineResult::to_canonical_json`]: posteriors, accuracies, and
    /// the convergence record survive exactly ([`Self::content_digest`] is
    /// invariant under the round-trip).
    ///
    /// # Errors
    /// Returns the underlying parse/shape error; persistent-store readers
    /// treat any error as a cold cache miss.
    pub fn from_json_str(text: &str) -> Result<Self, serde::Error> {
        Self::deserialize(&serde::json::parse(text)?)
    }

    /// An order-sensitive digest over everything a strategy could
    /// legitimately warm-start from — accuracies, posterior distributions,
    /// dependence count, and convergence. Two results digesting equal
    /// present the same seed to a warm-started discovery run, so the
    /// digest serves as the *provenance* half of analysis-cache and
    /// persistent-store keys. Mixes with the same hash family as
    /// [`SnapshotView::content_hash`] ([`sailing_model::fx_mix`]); not
    /// cryptographic.
    pub fn content_digest(&self) -> u64 {
        let mut h = sailing_model::fx_mix(0x70_72_69_6f_72, self.accuracies.len() as u64);
        for a in &self.accuracies {
            h = sailing_model::fx_mix(h, a.to_bits());
        }
        for o in self.probabilities.objects() {
            h = sailing_model::fx_mix(h, u64::from(o.0));
            for &(v, p) in self.probabilities.distribution(o) {
                h = sailing_model::fx_mix(h, u64::from(v.0));
                h = sailing_model::fx_mix(h, p.to_bits());
            }
        }
        h = sailing_model::fx_mix(h, self.dependences.len() as u64);
        sailing_model::fx_mix(h, u64::from(self.converged))
    }

    /// Like [`PipelineResult::source_reports`], reusing an
    /// already-materialised dependence matrix instead of rebuilding it —
    /// the path the `sailing` facade's cached analysis takes.
    pub fn source_reports_with(
        &self,
        snapshot: &SnapshotView,
        matrix: &DependenceMatrix,
    ) -> Vec<SourceReport> {
        (0..snapshot.num_sources())
            .map(|idx| {
                let s = SourceId::from_index(idx);
                let copier_probability = (0..snapshot.num_sources())
                    .filter(|&j| j != idx)
                    .map(|j| matrix.dep_on(s, SourceId::from_index(j)))
                    .fold(0.0, f64::max);
                let mut independence = 1.0;
                for j in 0..snapshot.num_sources() {
                    if j != idx {
                        independence *= 1.0 - matrix.dep_on(s, SourceId::from_index(j));
                    }
                }
                SourceReport {
                    source: s,
                    accuracy: self.accuracies.get(idx).copied().unwrap_or(0.5),
                    coverage: snapshot.coverage(s),
                    copier_probability,
                    mean_independence: independence,
                }
            })
            .collect()
    }
}

impl AccuCopy {
    /// Creates a pipeline after validating the parameters.
    pub fn new(params: DetectionParams) -> Result<Self, SailingError> {
        params.validate()?;
        Ok(Self { params })
    }

    /// Creates the dependence-aware pipeline with default parameters.
    pub fn with_defaults() -> Self {
        Self {
            params: DetectionParams::default(),
        }
    }

    /// Creates the ACCU baseline (accuracy-aware, dependence-unaware).
    pub fn baseline() -> Self {
        Self {
            params: DetectionParams::accu_baseline(),
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> &DetectionParams {
        &self.params
    }

    /// Runs the loop to convergence on `snapshot`.
    ///
    /// Each iteration: (1) vote with the current accuracies and dependence
    /// matrix; (2) re-detect dependence from the fresh value probabilities;
    /// (3) re-vote with the fresh dependences so copied votes are damped
    /// *before* accuracies are re-estimated — otherwise a copier cluster
    /// inflates its own accuracy in the first round and the iteration can
    /// lock onto the copied values; (4) re-estimate accuracies and test
    /// convergence.
    ///
    /// The candidate-pair list is snapshot-invariant, so it is enumerated
    /// once here and threaded through every iteration's detection pass.
    pub fn run(&self, snapshot: &SnapshotView) -> PipelineResult {
        self.run_warm(snapshot, None)
    }

    /// Like [`AccuCopy::run`], optionally **warm-started** from a previous
    /// epoch's converged result.
    ///
    /// With `prior = None` this is exactly the cold loop. With a converged
    /// prior, the accuracy vector is seeded from the prior's converged
    /// accuracies (resized with the configured initial accuracy for sources
    /// the prior never saw), so on a snapshot that differs from the prior's
    /// by a small delta the iteration starts near the fixpoint and
    /// converges in fewer rounds. Warm starting trades iterations, not
    /// answers: the loop, its convergence criterion, and its fixpoint are
    /// unchanged — the `sailing` facade's timeline tests pin warm-vs-cold
    /// posterior parity. Priors that never converged (or estimate no
    /// accuracies at all) are ignored rather than trusted.
    pub fn run_warm(
        &self,
        snapshot: &SnapshotView,
        prior: Option<&PipelineResult>,
    ) -> PipelineResult {
        let p = &self.params;
        // A prior from an accuracy-blind strategy (empty accuracy vector)
        // carries nothing to warm-start from, and a *non-converged* prior
        // is a mid-oscillation state, not a posterior — seeding from one
        // measurably steers the loop into a different attractor than the
        // cold bootstrap reaches (observed on seeded temporal worlds).
        // Both fall back to the cold start.
        let prior = prior.filter(|r| r.converged && !r.accuracies.is_empty());
        let mut accuracies = match prior {
            Some(r) => {
                let mut seeded = r.accuracies.clone();
                // Pads new sources with the initial accuracy; equally
                // shrinks a longer prior to this snapshot's source count.
                seeded.resize(snapshot.num_sources(), p.initial_accuracy);
                for a in &mut seeded {
                    *a = p.clamp_accuracy(*a);
                }
                seeded
            }
            None => vec![p.initial_accuracy; snapshot.num_sources()],
        };
        let mut dependences: Vec<PairDependence> = Vec::new();
        let mut matrix = DependenceMatrix::new();
        let candidates = if p.enable_copy_detection {
            candidate_pairs(snapshot, p.min_overlap)
        } else {
            Vec::new()
        };
        // Bootstrap with naive vote shares even when warm (see
        // `truth::naive_probabilities`): the bootstrap beliefs feed the
        // *first* dependence-detection pass, and seeding it with saturated
        // posteriors — the prior's, or any weighted vote's — hides the
        // shared-false-value mass copy detection needs, steering the loop
        // into the copier-locked fixpoint. Warmth lives in the accuracy
        // seed alone, which is what the convergence criterion measures.
        let mut probabilities = naive_probabilities(snapshot);
        let mut iterations = 0;
        let mut converged = false;

        while iterations < p.max_iterations {
            iterations += 1;
            if p.enable_copy_detection {
                dependences =
                    detect_all_with_pairs(snapshot, &candidates, &probabilities, &accuracies, p);
                refine_directions(snapshot, &probabilities, &mut dependences);
                matrix = DependenceMatrix::from_pairs(&dependences);
            }
            probabilities = weighted_vote(snapshot, &accuracies, &matrix, p);
            let new_accuracies = estimate_accuracies(snapshot, &probabilities, p);
            let delta = max_delta(&accuracies, &new_accuracies);
            accuracies = new_accuracies;
            if delta < p.convergence_epsilon {
                converged = true;
                break;
            }
            probabilities = weighted_vote(snapshot, &accuracies, &matrix, p);
        }

        PipelineResult {
            probabilities,
            accuracies,
            dependences,
            iterations,
            converged,
        }
    }
}

/// Blends the likelihood-based direction posterior with the
/// overlap-property hint (Section 3.2, intuition 2).
fn refine_directions(
    snapshot: &SnapshotView,
    probs: &ValueProbabilities,
    deps: &mut [PairDependence],
) {
    for dep in deps {
        if let Some(hint) = partial::direction_hint(snapshot, dep.a, dep.b, probs) {
            // Equal-weight blend of the two independent direction signals.
            dep.prob_a_on_b = 0.5 * dep.prob_a_on_b + 0.5 * hint;
            dep.direction = if dep.probability < 0.5 || (dep.prob_a_on_b - 0.5).abs() < 0.1 {
                Direction::Unknown
            } else if dep.prob_a_on_b > 0.5 {
                Direction::AOnB
            } else {
                Direction::BOnA
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_model::fixtures;

    #[test]
    fn table1_accu_copy_recovers_all_truths() {
        // Example 3.1: ignoring the values of the copy cluster lets the
        // accurate source win everywhere.
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let result = AccuCopy::with_defaults().run(&snap);
        let precision = truth.decision_precision(&result.decisions()).unwrap();
        assert_eq!(
            precision, 1.0,
            "dependence-aware fusion must be correct on all five researchers; \
             accuracies={:?}",
            result.accuracies
        );
    }

    #[test]
    fn table1_baseline_follows_the_copiers() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let result = AccuCopy::baseline().run(&snap);
        let precision = truth.decision_precision(&result.decisions()).unwrap();
        assert!(
            precision < 1.0,
            "the dependence-unaware baseline should be misled on Table 1"
        );
        assert!(result.dependences.is_empty());
    }

    #[test]
    fn table1_flags_the_cluster_not_the_independents() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let result = AccuCopy::with_defaults().run(&snap);
        let s = |n: &str| store.source_id(n).unwrap();
        let find = |a: SourceId, b: SourceId| {
            let (a, b) = if a < b { (a, b) } else { (b, a) };
            result
                .dependences
                .iter()
                .find(|p| p.a == a && p.b == b)
                .unwrap()
                .probability
        };
        for (x, y) in [("S3", "S4"), ("S3", "S5"), ("S4", "S5")] {
            assert!(
                find(s(x), s(y)) > 0.8,
                "{x}-{y} should be flagged: {}",
                find(s(x), s(y))
            );
        }
        assert!(
            find(s("S1"), s("S2")) < 0.5,
            "S1-S2 share only true values: {}",
            find(s("S1"), s("S2"))
        );
    }

    #[test]
    fn table1_accuracy_ordering_is_recovered() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let result = AccuCopy::with_defaults().run(&snap);
        let a = |n: &str| result.accuracies[store.source_id(n).unwrap().index()];
        assert!(a("S1") > a("S2"), "S1 perfect vs S2 3/5");
        assert!(a("S2") > a("S3"), "S2 3/5 vs S3 2/5");
    }

    #[test]
    fn pipeline_converges_and_reports() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let result = AccuCopy::with_defaults().run(&snap);
        assert!(result.converged, "Table 1 should converge quickly");
        assert!(result.iterations <= 20);
        let reports = result.source_reports(&snap);
        assert_eq!(reports.len(), 5);
        let s4 = store.source_id("S4").unwrap();
        let s1 = store.source_id("S1").unwrap();
        let r4 = reports.iter().find(|r| r.source == s4).unwrap();
        let r1 = reports.iter().find(|r| r.source == s1).unwrap();
        assert!(r4.copier_probability > r1.copier_probability);
        assert!(r1.mean_independence > r4.mean_independence);
        assert_eq!(r1.coverage, 5);
    }

    #[test]
    fn dependent_pairs_sorted_and_thresholded() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let result = AccuCopy::with_defaults().run(&snap);
        let pairs = result.dependent_pairs(0.8);
        assert!(!pairs.is_empty());
        assert!(pairs
            .windows(2)
            .all(|w| w[0].probability >= w[1].probability));
        assert!(pairs.iter().all(|p| p.probability >= 0.8));
    }

    #[test]
    fn invalid_params_rejected() {
        let bad = DetectionParams {
            copy_rate: 2.0,
            ..DetectionParams::default()
        };
        assert!(AccuCopy::new(bad).is_err());
        assert!(AccuCopy::new(DetectionParams::default()).is_ok());
    }

    #[test]
    fn empty_snapshot_is_fine() {
        let snap = SnapshotView::from_triples(0, 0, Vec::new());
        let result = AccuCopy::with_defaults().run(&snap);
        assert!(result.decisions().is_empty());
        assert!(result.dependences.is_empty());
        assert!(result.converged);
    }

    #[test]
    fn warm_start_none_is_exactly_the_cold_run() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let pipeline = AccuCopy::with_defaults();
        let cold = pipeline.run(&snap);
        let warm_none = pipeline.run_warm(&snap, None);
        assert_eq!(cold.iterations, warm_none.iterations);
        assert_eq!(cold.accuracies, warm_none.accuracies);
    }

    #[test]
    fn warm_start_from_own_result_converges_fast_and_agrees() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let pipeline = AccuCopy::with_defaults();
        let cold = pipeline.run(&snap);
        let warm = pipeline.run_warm(&snap, Some(&cold));
        // Restarting at the fixpoint must stay at the fixpoint, in fewer
        // iterations than the cold climb.
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        assert!(warm.converged);
        assert_eq!(warm.decisions(), cold.decisions());
        assert_eq!(truth.decision_precision(&warm.decisions()), Some(1.0));
        for (w, c) in warm.accuracies.iter().zip(&cold.accuracies) {
            assert!((w - c).abs() < 1e-3, "warm {w} vs cold {c}");
        }
    }

    #[test]
    fn warm_start_ignores_accuracy_blind_priors_and_resizes() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let pipeline = AccuCopy::with_defaults();
        // A naive-vote prior (no accuracies) must behave exactly like cold.
        let naive_prior = PipelineResult {
            probabilities: naive_probabilities(&snap),
            accuracies: Vec::new(),
            dependences: Vec::new(),
            iterations: 1,
            converged: true,
        };
        let cold = pipeline.run(&snap);
        let warm = pipeline.run_warm(&snap, Some(&naive_prior));
        assert_eq!(cold.iterations, warm.iterations);
        assert_eq!(cold.accuracies, warm.accuracies);
        // A prior with a shorter accuracy vector is padded, a longer one
        // truncated — no panics, sane output either way.
        let mut short = cold.clone();
        short.accuracies.truncate(2);
        let padded = pipeline.run_warm(&snap, Some(&short));
        assert_eq!(padded.accuracies.len(), snap.num_sources());
        let mut long = cold.clone();
        long.accuracies.extend([0.7; 4]);
        let truncated = pipeline.run_warm(&snap, Some(&long));
        assert_eq!(truncated.accuracies.len(), snap.num_sources());
    }

    #[test]
    fn serde_roundtrip() {
        let (store, _) = fixtures::table1();
        let result = AccuCopy::with_defaults().run(&store.snapshot());
        let json = serde_json::to_string(&result).unwrap();
        let back: PipelineResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.iterations, result.iterations);
        for (x, y) in back.accuracies.iter().zip(&result.accuracies) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
