//! Tunable parameters for dependence discovery.

use serde::{Deserialize, Serialize};

use sailing_model::SailingError;

/// Parameters of snapshot dependence detection and the joint pipeline.
///
/// Defaults follow the conventions of the authors' Bayesian copy-detection
/// line of work: a small prior on dependence, a substantial per-item copy
/// rate once dependence exists, and a modest universe of plausible false
/// values per item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionParams {
    /// Prior probability that an arbitrary ordered source pair is dependent.
    pub prior_dependence: f64,
    /// Probability that a dependent source copies any particular shared item
    /// (the per-item copy rate `c`).
    pub copy_rate: f64,
    /// Probability a copied value is altered in transit (Table 1's `S5`
    /// "makes a change during the copying process"). A non-zero rate keeps a
    /// single divergent value from vetoing an otherwise perfect copy match.
    pub copy_mutation_rate: f64,
    /// Once a pair's dependence posterior reaches this threshold, the
    /// lower-ranked supporter's vote is ignored outright instead of
    /// fractionally damped — the paper's "we would like to ignore values
    /// that are copied" (Section 4, Data fusion).
    pub hard_damping_threshold: f64,
    /// Assumed number of plausible *false* values per item (`n`). The larger
    /// `n`, the stronger the evidence from a shared false value. Per-object
    /// observed diversity overrides this lower bound.
    pub n_false_values: usize,
    /// Initial source accuracy before any iteration.
    pub initial_accuracy: f64,
    /// Accuracies are clamped into `[accuracy_floor, accuracy_ceiling]` to
    /// keep vote weights and likelihoods finite.
    pub accuracy_floor: f64,
    /// See [`DetectionParams::accuracy_floor`].
    pub accuracy_ceiling: f64,
    /// Pairs sharing fewer objects than this are never tested (Example 4.1
    /// uses 10 shared books as the screening threshold).
    pub min_overlap: usize,
    /// Maximum iterations of the truth ↔ accuracy ↔ dependence loop.
    pub max_iterations: usize,
    /// The loop stops once no source accuracy moves by more than this.
    pub convergence_epsilon: f64,
    /// When `false`, the pipeline runs accuracy-weighted voting only
    /// (the ACCU baseline) without discounting copied votes.
    pub enable_copy_detection: bool,
    /// Number of worker threads for pairwise detection (1 = sequential).
    pub threads: usize,
}

impl Default for DetectionParams {
    fn default() -> Self {
        Self {
            prior_dependence: 0.2,
            copy_rate: 0.8,
            copy_mutation_rate: 0.1,
            hard_damping_threshold: 0.15,
            n_false_values: 10,
            initial_accuracy: 0.8,
            accuracy_floor: 0.05,
            accuracy_ceiling: 0.99,
            min_overlap: 3,
            max_iterations: 20,
            convergence_epsilon: 1e-4,
            enable_copy_detection: true,
            threads: 1,
        }
    }
}

impl DetectionParams {
    /// Parameters for the ACCU baseline: accuracy-aware but
    /// dependence-unaware.
    pub fn accu_baseline() -> Self {
        Self {
            enable_copy_detection: false,
            ..Self::default()
        }
    }

    /// Clamps an accuracy estimate into the configured band.
    #[inline]
    pub fn clamp_accuracy(&self, a: f64) -> f64 {
        a.clamp(self.accuracy_floor, self.accuracy_ceiling)
    }

    /// Validates parameter consistency; reports the first violated
    /// constraint as a typed [`SailingError::InvalidParameter`].
    pub fn validate(&self) -> Result<(), SailingError> {
        fn prob(name: &'static str, p: f64) -> Result<(), SailingError> {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(SailingError::param_outside_unit(name, p))
            }
        }
        prob("prior_dependence", self.prior_dependence)?;
        prob("copy_rate", self.copy_rate)?;
        prob("copy_mutation_rate", self.copy_mutation_rate)?;
        prob("hard_damping_threshold", self.hard_damping_threshold)?;
        prob("initial_accuracy", self.initial_accuracy)?;
        prob("accuracy_floor", self.accuracy_floor)?;
        prob("accuracy_ceiling", self.accuracy_ceiling)?;
        if self.accuracy_floor >= self.accuracy_ceiling {
            return Err(SailingError::param(
                "accuracy_floor",
                format!(
                    "{} must be below accuracy_ceiling {}",
                    self.accuracy_floor, self.accuracy_ceiling
                ),
            ));
        }
        if self.n_false_values == 0 {
            return Err(SailingError::param("n_false_values", "must be at least 1"));
        }
        if self.max_iterations == 0 {
            return Err(SailingError::param("max_iterations", "must be at least 1"));
        }
        if self.threads == 0 {
            return Err(SailingError::param("threads", "must be at least 1"));
        }
        if self.convergence_epsilon <= 0.0 {
            return Err(SailingError::param(
                "convergence_epsilon",
                "must be positive",
            ));
        }
        Ok(())
    }
}

/// Parameters of temporal (update-trace) dependence detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalParams {
    /// Prior probability of dependence for an ordered pair.
    pub prior_dependence: f64,
    /// Per-update copy rate once dependent.
    pub copy_rate: f64,
    /// Maximum lag (in trace time units) for an update of the candidate
    /// copier to count as a repetition of the original's update. Captures
    /// *lazy copiers* (Example 3.2: `S3` trails `S1` by about a year).
    pub max_lag: i64,
    /// Pairs sharing fewer objects than this are not tested.
    pub min_overlap: usize,
    /// Additive smoothing for update-rarity estimates.
    pub rarity_smoothing: f64,
}

impl Default for TemporalParams {
    fn default() -> Self {
        Self {
            prior_dependence: 0.2,
            copy_rate: 0.8,
            max_lag: 2,
            min_overlap: 2,
            rarity_smoothing: 0.5,
        }
    }
}

impl TemporalParams {
    /// Validates parameter consistency.
    pub fn validate(&self) -> Result<(), SailingError> {
        if !(0.0..=1.0).contains(&self.prior_dependence) {
            return Err(SailingError::param_outside_unit(
                "prior_dependence",
                self.prior_dependence,
            ));
        }
        if !(0.0..=1.0).contains(&self.copy_rate) {
            return Err(SailingError::param_outside_unit(
                "copy_rate",
                self.copy_rate,
            ));
        }
        if self.max_lag < 0 {
            return Err(SailingError::param("max_lag", "must be non-negative"));
        }
        if self.rarity_smoothing <= 0.0 {
            return Err(SailingError::param("rarity_smoothing", "must be positive"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert_eq!(DetectionParams::default().validate(), Ok(()));
        assert_eq!(TemporalParams::default().validate(), Ok(()));
        assert_eq!(DetectionParams::accu_baseline().validate(), Ok(()));
    }

    #[test]
    fn accu_baseline_disables_copy_detection() {
        assert!(!DetectionParams::accu_baseline().enable_copy_detection);
        assert!(DetectionParams::default().enable_copy_detection);
    }

    #[test]
    fn clamp_accuracy_respects_band() {
        let p = DetectionParams::default();
        assert_eq!(p.clamp_accuracy(1.0), p.accuracy_ceiling);
        assert_eq!(p.clamp_accuracy(0.0), p.accuracy_floor);
        assert_eq!(p.clamp_accuracy(0.5), 0.5);
    }

    #[test]
    fn validation_catches_bad_probabilities() {
        let bad = DetectionParams {
            prior_dependence: 1.5,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = DetectionParams {
            copy_rate: -0.1,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_catches_structural_errors() {
        let bad = DetectionParams {
            accuracy_floor: 0.9,
            accuracy_ceiling: 0.5,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = DetectionParams {
            n_false_values: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = DetectionParams {
            max_iterations: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = DetectionParams {
            threads: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = DetectionParams {
            convergence_epsilon: 0.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn temporal_validation() {
        let bad = TemporalParams {
            max_lag: -1,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = TemporalParams {
            rarity_smoothing: 0.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = TemporalParams {
            prior_dependence: 2.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = TemporalParams {
            copy_rate: 2.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let p = DetectionParams::default();
        let back: DetectionParams =
            serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        assert_eq!(p, back);
    }
}
