//! Result types shared by the detectors.

use serde::{Deserialize, Serialize};

use sailing_model::SourceId;

/// Which flavour of dependence a detector found (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DependenceKind {
    /// One source copies (a subset of) another's values.
    Similarity,
    /// One source deliberately contradicts another's values.
    Dissimilarity,
}

/// The inferred direction of a dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// `a` depends on `b` (e.g. `a` copies from `b`).
    AOnB,
    /// `b` depends on `a`.
    BOnA,
    /// The evidence does not favour either direction.
    Unknown,
}

impl Direction {
    /// Flips the direction (for swapping the pair orientation).
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Direction::AOnB => Direction::BOnA,
            Direction::BOnA => Direction::AOnB,
            Direction::Unknown => Direction::Unknown,
        }
    }
}

/// Detected dependence between one unordered pair of sources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairDependence {
    /// First source of the pair (lower id).
    pub a: SourceId,
    /// Second source of the pair (higher id).
    pub b: SourceId,
    /// Posterior probability that the pair is dependent at all.
    pub probability: f64,
    /// Posterior probability of `a` depending on `b`, given dependence.
    pub prob_a_on_b: f64,
    /// Which kind of dependence was detected.
    pub kind: DependenceKind,
    /// The favoured direction.
    pub direction: Direction,
    /// Number of shared objects the decision is based on.
    pub overlap: usize,
    /// Detector-specific diagnostic (e.g. estimated copying lag for temporal
    /// detection, log-likelihood ratio for snapshot detection).
    pub diagnostic: f64,
}

impl PairDependence {
    /// Canonicalises the orientation so `a < b`, flipping direction-sensitive
    /// fields as needed.
    #[must_use]
    pub fn canonical(mut self) -> Self {
        if self.a > self.b {
            std::mem::swap(&mut self.a, &mut self.b);
            self.prob_a_on_b = 1.0 - self.prob_a_on_b;
            self.direction = self.direction.flipped();
        }
        self
    }

    /// The source this dependence says is the *dependent* one, if the
    /// direction is resolved.
    pub fn dependent_source(&self) -> Option<SourceId> {
        match self.direction {
            Direction::AOnB => Some(self.a),
            Direction::BOnA => Some(self.b),
            Direction::Unknown => None,
        }
    }

    /// The source this dependence says is the *original*, if resolved.
    pub fn original_source(&self) -> Option<SourceId> {
        match self.direction {
            Direction::AOnB => Some(self.b),
            Direction::BOnA => Some(self.a),
            Direction::Unknown => None,
        }
    }

    /// `true` when the posterior crosses `threshold`.
    pub fn is_dependent(&self, threshold: f64) -> bool {
        self.probability >= threshold
    }
}

/// Per-source summary produced by the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceReport {
    /// The source.
    pub source: SourceId,
    /// Estimated accuracy after convergence.
    pub accuracy: f64,
    /// Number of objects the source covers.
    pub coverage: usize,
    /// Probability that the source is a copier of *someone*
    /// (max over its pairwise dependence posteriors where it is the
    /// dependent side).
    pub copier_probability: f64,
    /// Mean probability that this source's individual votes were provided
    /// independently (1.0 for a source with no detected dependence).
    pub mean_independence: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pd(a: u32, b: u32) -> PairDependence {
        PairDependence {
            a: SourceId(a),
            b: SourceId(b),
            probability: 0.9,
            prob_a_on_b: 0.8,
            kind: DependenceKind::Similarity,
            direction: Direction::AOnB,
            overlap: 5,
            diagnostic: 1.5,
        }
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::AOnB.flipped(), Direction::BOnA);
        assert_eq!(Direction::BOnA.flipped(), Direction::AOnB);
        assert_eq!(Direction::Unknown.flipped(), Direction::Unknown);
    }

    #[test]
    fn canonical_orders_and_flips() {
        let p = pd(3, 1).canonical();
        assert_eq!(p.a, SourceId(1));
        assert_eq!(p.b, SourceId(3));
        assert!((p.prob_a_on_b - 0.2).abs() < 1e-12);
        assert_eq!(p.direction, Direction::BOnA);

        let q = pd(1, 3).canonical();
        assert_eq!(q.a, SourceId(1));
        assert_eq!(q.direction, Direction::AOnB);
    }

    #[test]
    fn dependent_and_original() {
        let p = pd(1, 3);
        assert_eq!(p.dependent_source(), Some(SourceId(1)));
        assert_eq!(p.original_source(), Some(SourceId(3)));
        let mut q = p.clone();
        q.direction = Direction::Unknown;
        assert_eq!(q.dependent_source(), None);
        assert_eq!(q.original_source(), None);
    }

    #[test]
    fn threshold_check() {
        let p = pd(1, 2);
        assert!(p.is_dependent(0.5));
        assert!(p.is_dependent(0.9));
        assert!(!p.is_dependent(0.95));
    }

    #[test]
    fn serde_roundtrip() {
        let p = pd(1, 2);
        let back: PairDependence =
            serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        assert_eq!(p, back);
    }
}
