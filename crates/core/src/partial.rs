//! The overlap-property test: partial copying and direction evidence.
//!
//! Section 3.2's second intuition: "we consider the data source whose
//! different subsets of data show different properties ... as more likely to
//! be dependent on the other". For snapshot data the property function is
//! accuracy: if a source's accuracy on the items it shares with another
//! source differs significantly from its accuracy on its private items, the
//! shared part was probably copied (Section 3.1, *Partial dependence*).

use sailing_model::{SnapshotView, SourceId};

use crate::truth::ValueProbabilities;

/// Accuracy of one source contrasted between its overlap with another source
/// and its private remainder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapContrast {
    /// Expected accuracy on the shared items.
    pub overlap_accuracy: f64,
    /// Expected accuracy on the private items.
    pub private_accuracy: f64,
    /// Number of shared items.
    pub overlap_count: usize,
    /// Number of private items.
    pub private_count: usize,
    /// Two-proportion z statistic (overlap minus private); large magnitude
    /// means the two subsets behave like different sources.
    pub z_score: f64,
}

impl OverlapContrast {
    /// Absolute contrast — the paper's `f(D1 ∩ D2) ≠ f(D1 \ D2)` signal.
    pub fn contrast(&self) -> f64 {
        (self.overlap_accuracy - self.private_accuracy).abs()
    }

    /// `true` when the contrast is significant at the given z threshold
    /// (1.96 ≈ 5%).
    pub fn is_significant(&self, z_threshold: f64) -> bool {
        self.z_score.abs() >= z_threshold
    }
}

/// Computes the overlap/private accuracy contrast of `subject` with respect
/// to `other`, using the current value probabilities as soft truth.
///
/// Returns `None` when either subset is empty (no contrast measurable).
pub fn overlap_contrast(
    snapshot: &SnapshotView,
    subject: SourceId,
    other: SourceId,
    probs: &ValueProbabilities,
) -> Option<OverlapContrast> {
    let mut overlap_sum = 0.0;
    let mut overlap_n = 0usize;
    let mut private_sum = 0.0;
    let mut private_n = 0usize;
    for (object, value) in snapshot.assertions_of(subject) {
        let p = probs.prob(object, value);
        if snapshot.value(other, object).is_some() {
            overlap_sum += p;
            overlap_n += 1;
        } else {
            private_sum += p;
            private_n += 1;
        }
    }
    if overlap_n == 0 || private_n == 0 {
        return None;
    }
    let p1 = overlap_sum / overlap_n as f64;
    let p2 = private_sum / private_n as f64;
    let pooled = (overlap_sum + private_sum) / (overlap_n + private_n) as f64;
    let se = (pooled * (1.0 - pooled) * (1.0 / overlap_n as f64 + 1.0 / private_n as f64))
        .sqrt()
        .max(1e-9);
    Some(OverlapContrast {
        overlap_accuracy: p1,
        private_accuracy: p2,
        overlap_count: overlap_n,
        private_count: private_n,
        z_score: (p1 - p2) / se,
    })
}

/// Direction hint from the overlap-property intuition: of the two sources,
/// the one whose behaviour *changes more* between shared and private items
/// is the likelier copier.
///
/// Returns the probability that `a` is the dependent side, in `[0, 1]`,
/// or `None` when neither source has measurable contrast.
pub fn direction_hint(
    snapshot: &SnapshotView,
    a: SourceId,
    b: SourceId,
    probs: &ValueProbabilities,
) -> Option<f64> {
    let ca = overlap_contrast(snapshot, a, b, probs);
    let cb = overlap_contrast(snapshot, b, a, probs);
    match (ca, cb) {
        (Some(ca), Some(cb)) => {
            let wa = ca.contrast();
            let wb = cb.contrast();
            if wa + wb < 1e-9 {
                Some(0.5)
            } else {
                Some(wa / (wa + wb))
            }
        }
        // A source with *no private data* is fully contained in the other —
        // containment is itself copying evidence for the contained side.
        (None, Some(_)) => Some(0.8),
        (Some(_), None) => Some(0.2),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DetectionParams;
    use crate::truth::{weighted_vote, DependenceMatrix};
    use sailing_model::ClaimStoreBuilder;

    /// A world where PC copies `orig` on half its items (the shared half,
    /// where `orig` is wrong) and answers correctly on its private half.
    fn partial_copier_world() -> (sailing_model::ClaimStore, ValueProbabilities) {
        let mut b = ClaimStoreBuilder::new();
        // 6 shared objects: orig asserts a wrong value, PC copies it.
        for i in 0..6 {
            let o = format!("shared{i}");
            b.add("orig", &o, "wrong");
            b.add("pc", &o, "wrong");
            // 3 independent accurate voters establish the consensus truth.
            b.add("v1", &o, "right");
            b.add("v2", &o, "right");
            b.add("v3", &o, "right");
        }
        // 6 private objects where PC is right.
        for i in 0..6 {
            let o = format!("private{i}");
            b.add("pc", &o, "right");
            b.add("v1", &o, "right");
            b.add("v2", &o, "right");
        }
        let store = b.build();
        let snap = store.snapshot();
        let params = DetectionParams::default();
        let accs = vec![params.initial_accuracy; snap.num_sources()];
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params);
        (store, probs)
    }

    #[test]
    fn partial_copier_shows_contrast() {
        let (store, probs) = partial_copier_world();
        let snap = store.snapshot();
        let pc = store.source_id("pc").unwrap();
        let orig = store.source_id("orig").unwrap();
        let c = overlap_contrast(&snap, pc, orig, &probs).unwrap();
        assert_eq!(c.overlap_count, 6);
        assert_eq!(c.private_count, 6);
        assert!(
            c.overlap_accuracy < c.private_accuracy,
            "copied (wrong) half must look less accurate: {c:?}"
        );
        assert!(c.contrast() > 0.3);
        assert!(c.is_significant(1.96));
        assert!(c.z_score < 0.0);
    }

    #[test]
    fn consistent_source_shows_no_contrast() {
        let (store, probs) = partial_copier_world();
        let snap = store.snapshot();
        let v1 = store.source_id("v1").unwrap();
        let v2 = store.source_id("v2").unwrap();
        // v1 is right everywhere; contrast vs v2 should be tiny.
        if let Some(c) = overlap_contrast(&snap, v1, v2, &probs) {
            assert!(c.contrast() < 0.15, "uniformly accurate source: {c:?}");
        }
    }

    #[test]
    fn contrast_requires_both_subsets() {
        let (store, probs) = partial_copier_world();
        let snap = store.snapshot();
        let orig = store.source_id("orig").unwrap();
        let pc = store.source_id("pc").unwrap();
        // orig has no private items relative to pc → None.
        assert!(overlap_contrast(&snap, orig, pc, &probs).is_none());
    }

    #[test]
    fn direction_hint_blames_the_partial_copier() {
        let (store, probs) = partial_copier_world();
        let snap = store.snapshot();
        let pc = store.source_id("pc").unwrap();
        let orig = store.source_id("orig").unwrap();
        // orig ⊂ pc: containment puts weight on orig? No — orig has no
        // private data, so the hint reports the contained source (orig) as
        // the likelier copier at 0.8 when asked with orig first.
        let hint = direction_hint(&snap, orig, pc, &probs).unwrap();
        assert!((hint - 0.8).abs() < 1e-9);
        let hint_rev = direction_hint(&snap, pc, orig, &probs).unwrap();
        assert!((hint_rev - 0.2).abs() < 1e-9);
    }

    #[test]
    fn direction_hint_symmetric_when_balanced() {
        let mut b = ClaimStoreBuilder::new();
        for i in 0..4 {
            b.add("a", &format!("s{i}"), "v");
            b.add("b", &format!("s{i}"), "v");
            b.add("a", &format!("pa{i}"), "v");
            b.add("b", &format!("pb{i}"), "v");
        }
        let store = b.build();
        let snap = store.snapshot();
        let params = DetectionParams::default();
        let accs = vec![params.initial_accuracy; snap.num_sources()];
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params);
        let a = store.source_id("a").unwrap();
        let bb = store.source_id("b").unwrap();
        let hint = direction_hint(&snap, a, bb, &probs).unwrap();
        assert!((hint - 0.5).abs() < 0.2);
    }
}
