//! Pair-sharded distributed analysis: the dependence-detection pass of
//! the [`AccuCopy`] loop split over contiguous slices of the canonical
//! candidate-pair list.
//!
//! Per iteration, dependence detection is O(|pairs|) pairwise Bayesian
//! tests and dominates the loop's cost, while the vote/estimate tail is
//! cheap and global. The decomposition here exploits that split: a
//! **coordinator** owns the outer iteration, **workers** (threads or
//! cooperating processes) each run [`AccuCopy::run_shard`] over one
//! [`PairRange`] of the sorted pair list, and the coordinator folds the
//! resulting [`PartialDependence`] records back together with
//! [`AccuCopy::merge_partials`], which rebuilds the full
//! [`DependenceMatrix`] and runs the vote → accuracy-estimate →
//! convergence tail.
//!
//! # Exactness
//!
//! The sharded loop is **bitwise identical** to [`AccuCopy::run_warm`],
//! not merely close:
//!
//! * candidate enumeration ([`crate::pairs::candidate_pairs`]) is a
//!   deterministic, sorted function of the snapshot, so every worker
//!   sees the same list and slicing commutes with detection;
//! * per-pair detection and direction refinement touch no cross-pair
//!   state, so concatenating per-range outputs in range order
//!   reproduces the monolithic detection output element for element;
//! * the merge tail replays `run_warm`'s iteration body in the same
//!   order on the same `f64`s (vote with the *old* accuracies,
//!   re-estimate, convergence test, and only then the second vote).
//!
//! Each partial is stamped with the [`state digest`](PartialDependence::state_digest)
//! of the iteration state it was computed against; the merge rejects
//! stale or mismatched partials rather than folding them in, so a
//! worker that raced an old epoch can never skew the posterior.
//!
//! The discovery [`Watchdog`](crate::Watchdog) is **not** armed on the
//! sharded path: the coordinator's iteration cap is the only stop, and
//! callers needing wall-clock bounds enforce them around the fan-out.

use serde::{Deserialize, Serialize};

use sailing_model::{SailingError, SnapshotView};

use crate::accuracy::{estimate_accuracies, max_delta};
use crate::pairs::{candidate_pairs, detect_all_with_pairs};
use crate::pipeline::{refine_directions, seed_accuracies, state_digest};
use crate::pipeline::{AccuCopy, PipelineResult, Termination};
use crate::report::PairDependence;
use crate::truth::{naive_probabilities, DependenceMatrix};
use crate::truth::{weighted_vote, ValueProbabilities};

/// One contiguous half-open slice `[start, end)` of the canonical sorted
/// candidate-pair list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PairRange {
    /// First pair index covered (inclusive).
    pub start: usize,
    /// One past the last pair index covered.
    pub end: usize,
}

impl PairRange {
    /// Number of candidate pairs in the range.
    pub fn len(self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// `true` when the range covers no pairs.
    pub fn is_empty(self) -> bool {
        self.end <= self.start
    }
}

/// Dependence posteriors for one pair-range shard at one iteration —
/// the unit workers publish and the coordinator merges.
///
/// Serializable (canonical JSON via [`PartialDependence::to_canonical_json`])
/// so cooperating worker *processes* can publish partials through the
/// persistent store's blob API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialDependence {
    /// The slice of the canonical pair list this partial covers.
    pub range: PairRange,
    /// Length of the full candidate-pair list the worker enumerated —
    /// lets the merge confirm every worker saw the same snapshot-derived
    /// list before trusting the tiling.
    pub total_pairs: usize,
    /// Digest of the iteration state (accuracies + posteriors) the
    /// detection ran against; the merge rejects partials whose digest
    /// differs from the coordinator's own.
    pub state_digest: u64,
    /// Detected dependences for the range, in canonical pair order.
    pub dependences: Vec<PairDependence>,
}

impl PartialDependence {
    /// Canonical JSON text of this partial (same guarantees as
    /// [`PipelineResult::to_canonical_json`]: byte-identical for equal
    /// partials, floats round-trip bit for bit).
    pub fn to_canonical_json(&self) -> String {
        serde::json::write(&self.serialize())
    }

    /// Parses a partial back from its canonical JSON text.
    ///
    /// # Errors
    /// Returns the underlying parse/shape error; coordinators treat any
    /// error as "partial not available" and recompute locally.
    pub fn from_json_str(text: &str) -> Result<Self, serde::Error> {
        Self::deserialize(&serde::json::parse(text)?)
    }
}

/// The outcome of merging one iteration's partials.
#[derive(Debug, Clone)]
pub struct ShardStep {
    /// The post-iteration state: updated posteriors, accuracies, and the
    /// merged dependences, with `iterations` advanced and `converged` /
    /// `termination` reflecting this iteration's convergence test. When
    /// `done`, this is the final result.
    pub state: PipelineResult,
    /// `true` once the loop should stop — converged, or the iteration
    /// cap was reached.
    pub done: bool,
}

/// The digest a [`PartialDependence`] computed against `state` must
/// carry ([`PartialDependence::state_digest`]) — what a coordinator
/// compares before *adopting* a partial published by a cooperating
/// process, so a stale one is recomputed locally instead of poisoning
/// the merge.
pub fn iteration_digest(state: &PipelineResult) -> u64 {
    state_digest(&state.accuracies, &state.probabilities)
}

/// Splits `[0, total_pairs)` into at most `workers` contiguous
/// near-equal ranges (earlier ranges take the remainder). Always returns
/// at least one range; with `total_pairs == 0` that single range is
/// empty, so a copy-detection-free run still produces a valid tiling.
pub fn shard_ranges(total_pairs: usize, workers: usize) -> Vec<PairRange> {
    if total_pairs == 0 {
        return vec![PairRange { start: 0, end: 0 }];
    }
    let workers = workers.clamp(1, total_pairs);
    let base = total_pairs / workers;
    let extra = total_pairs % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for i in 0..workers {
        let len = base + usize::from(i < extra);
        out.push(PairRange {
            start,
            end: start + len,
        });
        start += len;
    }
    out
}

impl AccuCopy {
    /// Length of the canonical candidate-pair list for `snapshot` under
    /// these parameters — zero when copy detection is disabled. This is
    /// the `total_pairs` that [`shard_ranges`] should tile.
    pub fn pair_count(&self, snapshot: &SnapshotView) -> usize {
        if self.params().enable_copy_detection {
            candidate_pairs(snapshot, self.params().min_overlap).len()
        } else {
            0
        }
    }

    /// The iteration-zero state every participant must agree on before
    /// the first fan-out: naive bootstrap posteriors and the (optionally
    /// warm-seeded) accuracy vector, with `iterations == 0`. Shares the
    /// warm-start gating of [`AccuCopy::run_warm`] — non-converged or
    /// accuracy-blind priors are ignored.
    pub fn bootstrap_sharded(
        &self,
        snapshot: &SnapshotView,
        prior: Option<&PipelineResult>,
    ) -> PipelineResult {
        PipelineResult {
            probabilities: naive_probabilities(snapshot),
            accuracies: seed_accuracies(self.params(), snapshot, prior),
            dependences: Vec::new(),
            iterations: 0,
            converged: false,
            termination: Termination::IterationCap,
        }
    }

    /// Runs one shard's dependence-detection pass (detection plus
    /// per-pair direction refinement) against the current iteration
    /// `state`, over `range` of the canonical candidate-pair list.
    ///
    /// The range is clamped to the list actually enumerated from
    /// `snapshot`, so a caller-supplied range that overshoots (e.g.
    /// computed against a different snapshot) yields a short partial the
    /// merge's tiling check will reject rather than a panic.
    pub fn run_shard(
        &self,
        snapshot: &SnapshotView,
        range: PairRange,
        state: &PipelineResult,
    ) -> PartialDependence {
        let p = self.params();
        let candidates = if p.enable_copy_detection {
            candidate_pairs(snapshot, p.min_overlap)
        } else {
            Vec::new()
        };
        let total = candidates.len();
        let start = range.start.min(total);
        let end = range.end.clamp(start, total);
        let mut dependences = detect_all_with_pairs(
            snapshot,
            &candidates[start..end],
            &state.probabilities,
            &state.accuracies,
            p,
        );
        refine_directions(snapshot, &state.probabilities, &mut dependences);
        PartialDependence {
            range: PairRange { start, end },
            total_pairs: total,
            state_digest: state_digest(&state.accuracies, &state.probabilities),
            dependences,
        }
    }

    /// Merges one iteration's partials and runs the cheap global tail:
    /// concatenates the per-range dependences in canonical order,
    /// rebuilds the full [`DependenceMatrix`], votes with the *old*
    /// accuracies, re-estimates accuracies, tests convergence, and (only
    /// when not converged) re-votes with the fresh accuracies — exactly
    /// [`AccuCopy::run_warm`]'s iteration body.
    ///
    /// # Errors
    /// Rejects (without partial effects) any fan-in that cannot be
    /// trusted to reproduce the monolithic pass:
    /// * no partials at all;
    /// * partials disagreeing on the candidate-list length;
    /// * a partial computed against a different iteration state
    ///   (digest mismatch — the stale-worker case);
    /// * ranges that gap, overlap, or fail to cover `[0, total_pairs)`
    ///   (duplicated claims must be deduplicated by the caller).
    pub fn merge_partials(
        &self,
        snapshot: &SnapshotView,
        state: &PipelineResult,
        partials: &[PartialDependence],
    ) -> Result<ShardStep, SailingError> {
        let p = self.params();
        let Some(first) = partials.first() else {
            return Err(SailingError::config(
                "shard merge",
                "no partials to merge; every iteration needs a full tiling",
            ));
        };
        let expected_digest = state_digest(&state.accuracies, &state.probabilities);
        let total = first.total_pairs;
        let mut sorted: Vec<&PartialDependence> = partials.iter().collect();
        sorted.sort_by_key(|part| (part.range.start, part.range.end));
        let mut cursor = 0usize;
        for part in &sorted {
            if part.total_pairs != total {
                return Err(SailingError::config(
                    "shard merge",
                    format!(
                        "partials disagree on the candidate-pair list: {} vs {}",
                        part.total_pairs, total
                    ),
                ));
            }
            if part.state_digest != expected_digest {
                return Err(SailingError::config(
                    "shard merge",
                    format!(
                        "stale partial for pairs [{}, {}): state digest {:016x} != {:016x}",
                        part.range.start, part.range.end, part.state_digest, expected_digest
                    ),
                ));
            }
            if part.range.start != cursor || part.range.end < part.range.start {
                return Err(SailingError::config(
                    "shard merge",
                    format!(
                        "ranges gap or overlap at pair {}: next partial covers [{}, {})",
                        cursor, part.range.start, part.range.end
                    ),
                ));
            }
            cursor = part.range.end;
        }
        if cursor != total {
            return Err(SailingError::config(
                "shard merge",
                format!("ranges cover [0, {cursor}) of {total} candidate pairs"),
            ));
        }

        let mut dependences: Vec<PairDependence> = Vec::new();
        let matrix = if p.enable_copy_detection {
            for part in &sorted {
                dependences.extend(part.dependences.iter().cloned());
            }
            DependenceMatrix::from_pairs(&dependences)
        } else {
            // `run_warm` never touches the matrix or the dependence list
            // with detection off; mirror that exactly.
            DependenceMatrix::new()
        };

        let iterations = state.iterations + 1;
        let mut probabilities: ValueProbabilities =
            weighted_vote(snapshot, &state.accuracies, &matrix, p);
        let new_accuracies = estimate_accuracies(snapshot, &probabilities, p);
        let delta = max_delta(&state.accuracies, &new_accuracies);
        let accuracies = new_accuracies;
        let converged = delta < p.convergence_epsilon;
        if !converged {
            // The second vote damps copied votes with the fresh
            // accuracies before the next detection pass; a converged
            // iteration skips it, exactly as the monolithic loop does.
            probabilities = weighted_vote(snapshot, &accuracies, &matrix, p);
        }
        Ok(ShardStep {
            done: converged || iterations >= p.max_iterations,
            state: PipelineResult {
                probabilities,
                accuracies,
                dependences,
                iterations,
                converged,
                termination: if converged {
                    Termination::Converged
                } else {
                    Termination::IterationCap
                },
            },
        })
    }

    /// The inline (single-participant) sharded driver: fans each
    /// iteration's detection over `workers` ranges via
    /// [`AccuCopy::run_shard`] and folds them with
    /// [`AccuCopy::merge_partials`]. Produces a result bitwise identical
    /// to [`AccuCopy::run_warm`] (without the watchdog) — the reference
    /// the engine's threaded and multi-process drivers are pinned
    /// against.
    ///
    /// # Errors
    /// Propagates [`AccuCopy::merge_partials`] failures; none occur when
    /// the partials come from this driver's own fan-out.
    pub fn run_sharded(
        &self,
        snapshot: &SnapshotView,
        prior: Option<&PipelineResult>,
        workers: usize,
    ) -> Result<PipelineResult, SailingError> {
        let ranges = shard_ranges(self.pair_count(snapshot), workers);
        let mut state = self.bootstrap_sharded(snapshot, prior);
        while state.iterations < self.params().max_iterations {
            let partials: Vec<PartialDependence> = ranges
                .iter()
                .map(|&range| self.run_shard(snapshot, range, &state))
                .collect();
            let step = self.merge_partials(snapshot, &state, &partials)?;
            state = step.state;
            if step.done {
                break;
            }
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DetectionParams;
    use sailing_model::fixtures;

    fn assert_bitwise_equal(sharded: &PipelineResult, monolithic: &PipelineResult) {
        assert_eq!(sharded.iterations, monolithic.iterations);
        assert_eq!(sharded.converged, monolithic.converged);
        assert_eq!(sharded.accuracies.len(), monolithic.accuracies.len());
        for (i, (a, b)) in sharded
            .accuracies
            .iter()
            .zip(&monolithic.accuracies)
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "accuracy[{i}] {a} vs {b}");
        }
        for o in monolithic.probabilities.objects() {
            let got = sharded.probabilities.distribution(o);
            let want = monolithic.probabilities.distribution(o);
            assert_eq!(got.len(), want.len(), "distribution width for {o:?}");
            for (&(v, p), &(w, q)) in got.iter().zip(want) {
                assert_eq!(v, w, "value order for {o:?}");
                assert_eq!(p.to_bits(), q.to_bits(), "posterior({o:?}, {v:?})");
            }
        }
        assert_eq!(sharded.dependences, monolithic.dependences);
    }

    #[test]
    fn shard_ranges_tile_exactly() {
        for (total, workers) in [(0, 4), (1, 4), (7, 3), (12, 4), (5, 1), (3, 9)] {
            let ranges = shard_ranges(total, workers);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= workers.max(1));
            let mut cursor = 0;
            for r in &ranges {
                assert_eq!(r.start, cursor, "total={total} workers={workers}");
                assert!(r.end >= r.start);
                cursor = r.end;
            }
            assert_eq!(cursor, total, "total={total} workers={workers}");
        }
    }

    #[test]
    fn sharded_matches_monolithic_bitwise_on_table1() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let pipeline = AccuCopy::with_defaults();
        let monolithic = pipeline.run(&snap);
        for workers in [1, 2, 3, 16] {
            let sharded = pipeline.run_sharded(&snap, None, workers).unwrap();
            assert_bitwise_equal(&sharded, &monolithic);
        }
        let sharded = pipeline.run_sharded(&snap, None, 3).unwrap();
        assert_eq!(
            truth.decision_precision(&sharded.decisions()).unwrap(),
            1.0,
            "the sharded loop keeps the paper's Table 1 outcome"
        );
    }

    #[test]
    fn sharded_matches_monolithic_with_copy_detection_off() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let pipeline = AccuCopy::baseline();
        assert_eq!(pipeline.pair_count(&snap), 0);
        let monolithic = pipeline.run(&snap);
        let sharded = pipeline.run_sharded(&snap, None, 4).unwrap();
        assert_bitwise_equal(&sharded, &monolithic);
        assert!(sharded.dependences.is_empty());
    }

    #[test]
    fn sharded_warm_start_matches_monolithic_warm_start() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let pipeline = AccuCopy::with_defaults();
        let prior = pipeline.run(&snap);
        assert!(prior.converged);
        let warm = pipeline.run_warm(&snap, Some(&prior));
        let sharded = pipeline.run_sharded(&snap, Some(&prior), 2).unwrap();
        assert_bitwise_equal(&sharded, &warm);
    }

    #[test]
    fn merge_rejects_gaps_overlaps_and_stale_partials() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let pipeline = AccuCopy::with_defaults();
        let state = pipeline.bootstrap_sharded(&snap, None);
        let total = pipeline.pair_count(&snap);
        assert!(total >= 2, "table1 must produce at least two candidates");
        let ranges = shard_ranges(total, 2);
        let partials: Vec<PartialDependence> = ranges
            .iter()
            .map(|&r| pipeline.run_shard(&snap, r, &state))
            .collect();

        // The honest tiling merges.
        assert!(pipeline.merge_partials(&snap, &state, &partials).is_ok());

        // A missing range is a gap.
        let err = pipeline
            .merge_partials(&snap, &state, &partials[..1])
            .unwrap_err();
        assert!(err.to_string().contains("cover"), "{err}");

        // A duplicated range overlaps.
        let mut dup = partials.clone();
        dup.push(partials[0].clone());
        assert!(pipeline.merge_partials(&snap, &state, &dup).is_err());

        // A partial from a different iteration state is stale.
        let mut stale = partials.clone();
        stale[0].state_digest ^= 1;
        let err = pipeline.merge_partials(&snap, &state, &stale).unwrap_err();
        assert!(err.to_string().contains("stale"), "{err}");

        // Disagreement on the candidate list is rejected.
        let mut other = partials.clone();
        other[1].total_pairs += 1;
        assert!(pipeline.merge_partials(&snap, &state, &other).is_err());

        // No partials at all is rejected.
        assert!(pipeline.merge_partials(&snap, &state, &[]).is_err());
    }

    #[test]
    fn partial_dependence_round_trips_canonical_json() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let pipeline = AccuCopy::new(DetectionParams {
            convergence_epsilon: 1e-12,
            max_iterations: 50,
            ..DetectionParams::default()
        })
        .unwrap();
        let state = pipeline.bootstrap_sharded(&snap, None);
        let total = pipeline.pair_count(&snap);
        let partial = pipeline.run_shard(
            &snap,
            PairRange {
                start: 0,
                end: total,
            },
            &state,
        );
        assert!(!partial.dependences.is_empty());
        let text = partial.to_canonical_json();
        let back = PartialDependence::from_json_str(&text).unwrap();
        assert_eq!(back, partial);
        assert_eq!(back.to_canonical_json(), text, "canonical text is stable");
    }
}
