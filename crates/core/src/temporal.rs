//! Temporal dependence: reasoning over update traces.
//!
//! The paper's temporal intuitions (Section 3.2):
//!
//! 1. shared *never-true* values are strong copying evidence, shared
//!    *outdated-true* values are weak (they were simply correct once);
//! 2. sources performing the *same rare updates in a close time frame* are
//!    likely dependent;
//! 3. accuracy asymmetry between what a source publishes *earlier* vs
//!    *later* than another source reveals the copying direction.
//!
//! Intuitions 1 and 2 are captured jointly by weighting each matched update
//! with its **rarity**: an update many sources eventually perform (an
//! outdated-true value) is common and carries little evidence, while an
//! update only the suspected pair performs (a shared false value, or an
//! idiosyncratic edit) is rare and carries a lot. Intuition 3 is exposed as
//! [`precedence_contrast`] and folded into the direction posterior. The lag
//! of matched updates is reported so *lazy copiers* (Example 3.2's `S3`)
//! are identified together with their copying delay.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sailing_model::{History, ObjectId, SourceId, TemporalTruth, ValueId};

use crate::params::TemporalParams;
use crate::report::{DependenceKind, Direction, PairDependence};

/// Per-pair temporal evidence, before the Bayesian combination.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TemporalEvidence {
    /// Updates of `b` that repeat an earlier (within-lag) update of `a`.
    pub matched_b_after_a: usize,
    /// Updates of `a` that repeat an earlier (within-lag) update of `b`.
    pub matched_a_after_b: usize,
    /// Total updates of `a` on shared objects.
    pub updates_a: usize,
    /// Total updates of `b` on shared objects.
    pub updates_b: usize,
    /// Lags (in trace time units) of the `b`-after-`a` matches.
    pub lags_b_after_a: Vec<i64>,
    /// Lags of the `a`-after-`b` matches.
    pub lags_a_after_b: Vec<i64>,
    /// Number of objects covered by both.
    pub shared_objects: usize,
}

impl TemporalEvidence {
    /// Median of a lag collection; `None` when no match exists.
    fn median(lags: &[i64]) -> Option<i64> {
        if lags.is_empty() {
            return None;
        }
        let mut sorted = lags.to_vec();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }

    /// Median lag with which `b` trails `a` — the *laziness* of a `b`-copies-
    /// `a` copier.
    pub fn median_lag_b_after_a(&self) -> Option<i64> {
        Self::median(&self.lags_b_after_a)
    }

    /// Median lag with which `a` trails `b`.
    pub fn median_lag_a_after_b(&self) -> Option<i64> {
        Self::median(&self.lags_a_after_b)
    }
}

/// How rare each `(object, value)` update is across the whole corpus:
/// the fraction of sources covering the object that ever assert the value.
#[derive(Debug, Clone, Default)]
pub struct UpdateRarity {
    /// `(object, value) → sources ever asserting it`.
    asserters: HashMap<(ObjectId, ValueId), usize>,
    /// `object → sources ever covering it`.
    coverers: HashMap<ObjectId, usize>,
    smoothing: f64,
}

impl UpdateRarity {
    /// Precomputes assertion frequencies over the history.
    pub fn from_history(history: &History, smoothing: f64) -> Self {
        let mut asserters: HashMap<(ObjectId, ValueId), usize> = HashMap::new();
        let mut coverers: HashMap<ObjectId, usize> = HashMap::new();
        for s in 0..history.num_sources() {
            let sid = SourceId::from_index(s);
            for (o, trace) in history.traces_of(sid) {
                *coverers.entry(o).or_insert(0) += 1;
                let mut seen: Vec<ValueId> = Vec::new();
                for &(_, v) in trace.updates() {
                    if !seen.contains(&v) {
                        seen.push(v);
                        *asserters.entry((o, v)).or_insert(0) += 1;
                    }
                }
            }
        }
        Self {
            asserters,
            coverers,
            smoothing,
        }
    }

    /// Smoothed probability that an arbitrary source covering `object` would
    /// independently assert `value` at some point.
    pub fn frequency(&self, object: ObjectId, value: ValueId) -> f64 {
        let k = self.asserters.get(&(object, value)).copied().unwrap_or(0) as f64;
        let n = self.coverers.get(&object).copied().unwrap_or(0) as f64;
        // Exclude the asserting source itself from both counts: we ask how
        // likely *another* source is to make the same update.
        let lambda = self.smoothing;
        ((k - 1.0).max(0.0) + lambda) / ((n - 1.0).max(0.0) + 2.0 * lambda)
    }
}

/// Collects the raw matched-update evidence for one pair.
pub fn gather_evidence(
    history: &History,
    a: SourceId,
    b: SourceId,
    params: &TemporalParams,
) -> TemporalEvidence {
    let mut ev = TemporalEvidence::default();
    for (object, trace_a) in history.traces_of(a) {
        let Some(trace_b) = history.trace(b, object) else {
            continue;
        };
        ev.shared_objects += 1;
        ev.updates_a += trace_a.len();
        ev.updates_b += trace_b.len();
        // b repeating a.
        for &(tb, v) in trace_b.updates() {
            if let Some(ta) = trace_a.first_asserted(v) {
                let lag = tb - ta;
                if (0..=params.max_lag).contains(&lag) {
                    ev.matched_b_after_a += 1;
                    ev.lags_b_after_a.push(lag);
                }
            }
        }
        // a repeating b.
        for &(ta, v) in trace_a.updates() {
            if let Some(tb) = trace_b.first_asserted(v) {
                let lag = ta - tb;
                if (0..=params.max_lag).contains(&lag) {
                    ev.matched_a_after_b += 1;
                    ev.lags_a_after_b.push(lag);
                }
            }
        }
    }
    ev
}

/// Tests one source pair on the update-trace evidence.
///
/// Returns `None` when the pair shares fewer than
/// [`TemporalParams::min_overlap`] objects.
pub fn detect_pair(
    history: &History,
    rarity: &UpdateRarity,
    a: SourceId,
    b: SourceId,
    params: &TemporalParams,
) -> Option<PairDependence> {
    let c = params.copy_rate;
    let mut shared_objects = 0usize;
    // Log-likelihoods: [independent, a copies b, b copies a].
    let mut logs = [0.0f64; 3];
    let mut lags_b_after_a: Vec<i64> = Vec::new();
    let mut lags_a_after_b: Vec<i64> = Vec::new();

    for (object, trace_a) in history.traces_of(a) {
        let Some(trace_b) = history.trace(b, object) else {
            continue;
        };
        shared_objects += 1;
        // Each update is one event. Under independence a source makes a
        // given update with its corpus frequency q; under "x copies y" an
        // update of x that repeats y within the lag window has probability
        // c + (1−c)·q, and an unmatched update (1−c)·q (the copier missed
        // it or provided it independently).
        for &(tb, v) in trace_b.updates() {
            let q = rarity.frequency(object, v).clamp(1e-6, 1.0 - 1e-6);
            let matched = trace_a
                .first_asserted(v)
                .map(|ta| (0..=params.max_lag).contains(&(tb - ta)))
                .unwrap_or(false);
            logs[0] += q.ln();
            logs[1] += q.ln(); // a-copies-b does not explain b's updates
            logs[2] += if matched {
                if let Some(ta) = trace_a.first_asserted(v) {
                    lags_b_after_a.push(tb - ta);
                }
                (c + (1.0 - c) * q).ln()
            } else {
                ((1.0 - c) * q).ln()
            };
        }
        for &(ta, v) in trace_a.updates() {
            let q = rarity.frequency(object, v).clamp(1e-6, 1.0 - 1e-6);
            let matched = trace_b
                .first_asserted(v)
                .map(|tb| (0..=params.max_lag).contains(&(ta - tb)))
                .unwrap_or(false);
            logs[0] += q.ln();
            logs[2] += q.ln();
            logs[1] += if matched {
                if let Some(tb) = trace_b.first_asserted(v) {
                    lags_a_after_b.push(ta - tb);
                }
                (c + (1.0 - c) * q).ln()
            } else {
                ((1.0 - c) * q).ln()
            };
        }
    }

    if shared_objects < params.min_overlap.max(1) {
        return None;
    }

    let prior = params.prior_dependence;
    let joint = [
        (1.0 - prior).max(1e-12).ln() + logs[0],
        (prior / 2.0).max(1e-12).ln() + logs[1],
        (prior / 2.0).max(1e-12).ln() + logs[2],
    ];
    let m = joint.iter().fold(f64::NEG_INFINITY, |x, &y| x.max(y));
    let exps: Vec<f64> = joint.iter().map(|&l| (l - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    let (p_ab, p_ba) = (exps[1] / z, exps[2] / z);
    let probability = p_ab + p_ba;
    let prob_a_on_b = if probability > 0.0 {
        p_ab / probability
    } else {
        0.5
    };
    let direction = if probability < 0.5 || (prob_a_on_b - 0.5).abs() < 0.1 {
        Direction::Unknown
    } else if prob_a_on_b > 0.5 {
        Direction::AOnB
    } else {
        Direction::BOnA
    };
    // Diagnostic: the median copying lag of the favoured direction — the
    // copier's laziness.
    let lag = if prob_a_on_b > 0.5 {
        TemporalEvidence::median(&lags_a_after_b)
    } else {
        TemporalEvidence::median(&lags_b_after_a)
    };
    Some(
        PairDependence {
            a,
            b,
            probability,
            prob_a_on_b,
            kind: DependenceKind::Similarity,
            direction,
            overlap: shared_objects,
            diagnostic: lag.unwrap_or(0) as f64,
        }
        .canonical(),
    )
}

/// Tests every source pair in the history.
pub fn detect_all(history: &History, params: &TemporalParams) -> Vec<PairDependence> {
    let rarity = UpdateRarity::from_history(history, params.rarity_smoothing);
    let n = history.num_sources();
    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if let Some(dep) = detect_pair(
                history,
                &rarity,
                SourceId::from_index(i),
                SourceId::from_index(j),
                params,
            ) {
                out.push(dep);
            }
        }
    }
    out
}

/// Estimates the temporal truth by majority over source assertions at each
/// update time — the detector-side stand-in for an oracle, used to classify
/// values as current / outdated / never-true without ground truth.
pub fn consensus_truth(history: &History) -> TemporalTruth {
    let mut truth = TemporalTruth::new();
    // One snapshot per change point — the epochs are exactly the history's
    // distinct update times.
    for t in history.change_points() {
        let snap = history.snapshot_at(t);
        for idx in 0..history.num_objects() {
            let o = ObjectId::from_index(idx);
            if let Some((v, _)) = snap.value_counts(o).into_iter().next() {
                truth.record(o, t, v);
            }
        }
    }
    truth
}

/// Accuracy contrast of `a` between shared values it published *before* `b`
/// and shared values it published *after* `b` (temporal intuition 3).
///
/// Uses `truth` (typically [`consensus_truth`]) to judge correctness at
/// publication time. Returns `(accuracy_earlier, accuracy_later)`;
/// a copier is accurate in what it publishes later (copied) and not in what
/// it publishes earlier (its own), an original the other way round.
pub fn precedence_contrast(
    history: &History,
    a: SourceId,
    b: SourceId,
    truth: &TemporalTruth,
) -> Option<(f64, f64)> {
    let mut earlier = (0.0, 0usize);
    let mut later = (0.0, 0usize);
    for (object, trace_a) in history.traces_of(a) {
        let Some(trace_b) = history.trace(b, object) else {
            continue;
        };
        for &(ta, v) in trace_a.updates() {
            let Some(tb) = trace_b.first_asserted(v) else {
                continue;
            };
            let correct = truth
                .classify(object, v, ta)
                .map(|cls| cls == sailing_model::TruthClass::CurrentTrue)
                .unwrap_or(false);
            let bucket = if ta <= tb { &mut earlier } else { &mut later };
            bucket.0 += if correct { 1.0 } else { 0.0 };
            bucket.1 += 1;
        }
    }
    if earlier.1 == 0 || later.1 == 0 {
        return None;
    }
    Some((earlier.0 / earlier.1 as f64, later.0 / later.1 as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_model::fixtures;

    fn table3() -> (sailing_model::ClaimStore, History) {
        let (store, history, _) = fixtures::table3();
        (store, history)
    }

    #[test]
    fn rarity_counts() {
        let (store, history) = table3();
        let rarity = UpdateRarity::from_history(&history, 0.5);
        let dong = store.object_id("Dong").unwrap();
        let uw = store.value_id(&sailing_model::Value::text("UW")).unwrap();
        let att = store.value_id(&sailing_model::Value::text("AT&T")).unwrap();
        // Everyone asserts UW for Dong at some point; only S1 asserts AT&T.
        assert!(rarity.frequency(dong, uw) > rarity.frequency(dong, att));
    }

    #[test]
    fn table3_s3_detected_as_lazy_copier_of_s1() {
        // Example 3.2: "S3 is dependent on S1, but just lazy in copying".
        let (store, history) = table3();
        let params = TemporalParams::default();
        let rarity = UpdateRarity::from_history(&history, params.rarity_smoothing);
        let s1 = store.source_id("S1").unwrap();
        let s3 = store.source_id("S3").unwrap();
        let dep = detect_pair(&history, &rarity, s1, s3, &params).unwrap();
        let s2 = store.source_id("S2").unwrap();
        let dep12 = detect_pair(&history, &rarity, s1, s2, &params).unwrap();
        assert!(
            dep.probability > dep12.probability,
            "S1–S3 ({}) must outrank S1–S2 ({})",
            dep.probability,
            dep12.probability
        );
        // Direction: S3 depends on S1.
        let p_s3_dep = if dep.a == s3 {
            dep.prob_a_on_b
        } else {
            1.0 - dep.prob_a_on_b
        };
        assert!(p_s3_dep > 0.5, "direction should blame S3: {dep:?}");
        // Laziness: the copying lag is about a year.
        assert!(dep.diagnostic >= 1.0, "lag diagnostic: {}", dep.diagnostic);
    }

    #[test]
    fn evidence_gathering_matches_lags() {
        let (store, history) = table3();
        let s1 = store.source_id("S1").unwrap();
        let s3 = store.source_id("S3").unwrap();
        let ev = gather_evidence(&history, s1, s3, &TemporalParams::default());
        assert_eq!(ev.shared_objects, 5);
        // All five S3 updates repeat an S1 update with lag 1 (2002→2003 or
        // 2006→2007).
        assert_eq!(ev.matched_b_after_a, 5);
        assert_eq!(ev.median_lag_b_after_a(), Some(1));
        assert_eq!(ev.matched_a_after_b, 0);
        assert_eq!(ev.median_lag_a_after_b(), None);
    }

    #[test]
    fn detect_all_on_table3() {
        let (store, history) = table3();
        let deps = detect_all(&history, &TemporalParams::default());
        assert_eq!(deps.len(), 3);
        let s = |n: &str| store.source_id(n).unwrap();
        let find = |a: SourceId, b: SourceId| {
            deps.iter()
                .find(|p| (p.a, p.b) == if a < b { (a, b) } else { (b, a) })
                .unwrap()
        };
        let p13 = find(s("S1"), s("S3")).probability;
        let p12 = find(s("S1"), s("S2")).probability;
        assert!(p13 > p12);
    }

    #[test]
    fn consensus_truth_matches_majority() {
        let (store, history) = table3();
        let truth = consensus_truth(&history);
        // At 2007 the consensus for Balazinska is UW.
        let bal = store.object_id("Balazinska").unwrap();
        let uw = store.value_id(&sailing_model::Value::text("UW")).unwrap();
        assert_eq!(truth.value_at(bal, 2007), Some(uw));
        assert!(truth.horizon().is_some());
    }

    #[test]
    fn precedence_contrast_detects_direction() {
        // Intuition 3. Per object the truth is u until 2004, v from 2004,
        // w from 2005. The copier guesses v prematurely (its own, wrong at
        // publication); the original publishes v and w on time; the copier
        // copies w a year late (still correct). So the copier is wrong on
        // shared values it publishes *earlier* than the original and right
        // on those it publishes *later* — the copying signature.
        let mut truth = TemporalTruth::new();
        let mut h = History::new(2, 4);
        let original = SourceId(0);
        let copier = SourceId(1);
        for i in 0..4u32 {
            let o = ObjectId(i);
            let (u, v, w) = (ValueId(i * 3), ValueId(i * 3 + 1), ValueId(i * 3 + 2));
            truth.record(o, 2000, u);
            truth.record(o, 2004, v);
            truth.record(o, 2005, w);
            h.record(copier, o, 2001, v); // premature guess, false in 2001
            h.record(original, o, 2004, v); // correct
            h.record(original, o, 2005, w); // correct
            h.record(copier, o, 2006, w); // lazy copy, still correct
        }
        let (earlier, later) = precedence_contrast(&h, copier, original, &truth).unwrap();
        assert!(
            later > earlier,
            "copier accurate later ({later}) not earlier ({earlier})"
        );
        let (e2, l2) = precedence_contrast(&h, original, copier, &truth).unwrap();
        assert!(e2 >= l2, "original accurate in what it publishes first");
    }

    #[test]
    fn min_overlap_gate() {
        let (store, history) = table3();
        let params = TemporalParams {
            min_overlap: 10,
            ..Default::default()
        };
        let rarity = UpdateRarity::from_history(&history, params.rarity_smoothing);
        let s1 = store.source_id("S1").unwrap();
        let s2 = store.source_id("S2").unwrap();
        assert!(detect_pair(&history, &rarity, s1, s2, &params).is_none());
    }

    #[test]
    fn independent_sources_with_disjoint_updates_not_flagged() {
        let mut h = History::new(2, 6);
        for i in 0..6u32 {
            h.record(SourceId(0), ObjectId(i), 2000 + i as i64, ValueId(i));
            h.record(SourceId(1), ObjectId(i), 2000 + i as i64, ValueId(100 + i));
        }
        let params = TemporalParams::default();
        let rarity = UpdateRarity::from_history(&h, params.rarity_smoothing);
        let dep = detect_pair(&h, &rarity, SourceId(0), SourceId(1), &params).unwrap();
        assert!(dep.probability < 0.5, "{dep:?}");
    }
}
