//! Dependence-aware truth discovery: weighted voting with independence
//! damping.
//!
//! This is the fusion half of the paper's iterative scheme: "ignore values
//! that are copied (but not necessarily the values independently provided by
//! copiers)" (Section 4, Data fusion). Every source votes for the value it
//! asserts; a source's vote weight grows with its estimated accuracy and
//! shrinks with the probability that its value was copied from a
//! higher-ranked supporter of the same value.
//!
//! # Columnar layout
//!
//! Both posterior containers live on the per-iteration hot path (every pair
//! likelihood probes `prob`, every vote round rebuilds the distributions),
//! so they mirror the snapshot's CSR layout instead of nesting hash maps:
//!
//! * [`ValueProbabilities`] is an offsets-plus-arena index keyed by dense
//!   [`ObjectId`]: `distribution(o)` is a contiguous slice lookup, `prob`
//!   a short linear scan of that slice (distributions hold a handful of
//!   observed values, sorted by descending probability).
//! * [`DependenceMatrix`] is a per-source adjacency list sorted by target,
//!   so `dep_on(s, t)` is a binary search in `s`'s row instead of a hash
//!   of the `(s, t)` pair.
//!
//! Both serialize in their legacy map-shaped JSON (`{"dist": {...}}` /
//! `{"entries": {...}}`) so persisted pipeline results remain readable
//! across the layout change. One deliberate narrowing: because the CSR
//! arrays allocate per dense id, documents whose id space is implausibly
//! larger than their entry count (see [`serde::plausible_id_space`]) are
//! rejected instead of allocated — ids from this workspace's catalogs are
//! dense, so real artifacts always pass.

use std::collections::{BTreeMap, HashMap};

use serde::{Content, Deserialize, Error as SerdeError, Serialize};

use sailing_model::{ObjectId, SnapshotView, SourceId, ValueId};

use crate::params::DetectionParams;
use crate::report::{Direction, PairDependence};

/// Pairwise dependence posteriors in a form optimised for vote damping.
///
/// `dep_on(s, t)` answers: with what probability does `s` depend on (copy
/// from) `t`? Stored as a per-source adjacency list sorted by target id.
#[derive(Debug, Clone, Default)]
pub struct DependenceMatrix {
    /// `adj[s]` = `(target source index, P(s depends on target))`, sorted
    /// by target. Rows past the last recorded source are simply absent.
    adj: Vec<Vec<(u32, f64)>>,
    entries: usize,
}

impl DependenceMatrix {
    /// An empty matrix: every pair independent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the matrix from pair reports.
    ///
    /// For each pair the overall dependence probability is split between the
    /// two directions according to `prob_a_on_b`; an unresolved
    /// [`Direction::Unknown`] therefore damps both sides halfway, which is
    /// the conservative choice.
    pub fn from_pairs(pairs: &[PairDependence]) -> Self {
        let mut directed = Vec::with_capacity(pairs.len() * 2);
        for p in pairs {
            let p = p.clone().canonical();
            directed.push((p.a, p.b, p.probability * p.prob_a_on_b));
            directed.push((p.b, p.a, p.probability * (1.0 - p.prob_a_on_b)));
        }
        Self::from_directed(directed)
    }

    /// Builds from directed `(s, t, p)` entries; a later entry for the same
    /// `(s, t)` overwrites an earlier one.
    fn from_directed(directed: Vec<(SourceId, SourceId, f64)>) -> Self {
        let rows = directed
            .iter()
            .map(|&(s, _, _)| s.index() + 1)
            .max()
            .unwrap_or(0);
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); rows];
        for (s, t, p) in directed {
            adj[s.index()].push((t.0, p));
        }
        let mut entries = 0;
        for row in &mut adj {
            // Stable by target: among duplicates the later insertion is the
            // later element, and the dedup keeps it (matching the old
            // hash-map overwrite semantics).
            row.sort_by_key(|&(t, _)| t);
            let mut write = 0usize;
            for read in 0..row.len() {
                if write > 0 && row[write - 1].0 == row[read].0 {
                    row[write - 1] = row[read];
                } else {
                    row[write] = row[read];
                    write += 1;
                }
            }
            row.truncate(write);
            entries += row.len();
        }
        Self { adj, entries }
    }

    /// Probability that `s` depends on `t`.
    #[inline]
    pub fn dep_on(&self, s: SourceId, t: SourceId) -> f64 {
        match self.adj.get(s.index()) {
            Some(row) => row
                .binary_search_by_key(&t.0, |&(target, _)| target)
                .map_or(0.0, |i| row[i].1),
            None => 0.0,
        }
    }

    /// Probability that `s` and `t` are dependent in either direction.
    #[inline]
    pub fn dependent(&self, s: SourceId, t: SourceId) -> f64 {
        (self.dep_on(s, t) + self.dep_on(t, s)).min(1.0)
    }

    /// Number of directed entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// `true` when no dependence is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

// Wire-compatible with the old `{"entries": {"[s,t]": p}}` hash-map shape.
impl Serialize for DependenceMatrix {
    fn serialize(&self) -> Content {
        let mut entries = Vec::with_capacity(self.entries);
        for (s, row) in self.adj.iter().enumerate() {
            for &(t, p) in row {
                entries.push((
                    Content::Seq(vec![Content::U64(s as u64), Content::U64(t as u64)]),
                    Content::F64(p),
                ));
            }
        }
        Content::Map(vec![(
            Content::Str("entries".to_string()),
            Content::Map(entries),
        )])
    }
}

impl Deserialize for DependenceMatrix {
    fn deserialize(content: &Content) -> Result<Self, SerdeError> {
        let entries = content
            .field("entries")
            .ok_or_else(|| SerdeError::msg("DependenceMatrix: missing field `entries`"))?;
        let entries = match entries {
            Content::Map(m) => m,
            other => {
                return Err(SerdeError::msg(format!(
                    "DependenceMatrix: entries must be a map, found {other:?}"
                )))
            }
        };
        let mut directed = Vec::with_capacity(entries.len());
        for (k, v) in entries {
            // JSON delivers composite keys as embedded-JSON strings.
            let reparsed;
            let key = match k {
                Content::Str(s) => {
                    reparsed = serde::json::parse(s)
                        .map_err(|e| SerdeError::msg(format!("DependenceMatrix key: {e}")))?;
                    &reparsed
                }
                other => other,
            };
            let (s, t) = <(u32, u32)>::deserialize(key)?;
            directed.push((SourceId(s), SourceId(t), f64::deserialize(v)?));
        }
        // The adjacency allocates one row per source id; refuse documents
        // whose id space is implausibly larger than their entry count so a
        // tiny document cannot force a huge allocation.
        let rows = directed
            .iter()
            .map(|&(s, _, _)| s.index() + 1)
            .max()
            .unwrap_or(0);
        if !serde::plausible_id_space(rows, directed.len()) {
            return Err(SerdeError::msg(format!(
                "DependenceMatrix: source id space {rows} is implausibly \
                 large for {} entries",
                directed.len()
            )));
        }
        Ok(Self::from_directed(directed))
    }
}

/// Per-object posterior distributions over asserted values.
///
/// Stored as a CSR index over dense [`ObjectId`]s: `arena[offsets[o] ..
/// offsets[o+1]]` is object `o`'s distribution, descending by probability.
/// Objects outside the indexed range (or with no assertions) have empty
/// distributions.
#[derive(Debug, Clone)]
pub struct ValueProbabilities {
    offsets: Vec<u32>,
    arena: Vec<(ValueId, f64)>,
}

impl Default for ValueProbabilities {
    fn default() -> Self {
        Self {
            offsets: vec![0],
            arena: Vec::new(),
        }
    }
}

impl ValueProbabilities {
    /// Builds from sparse `(object, distribution)` pairs in any order
    /// (objects absent from `per_object` get empty distributions; the id
    /// space is the largest object id named plus one). This is the
    /// reconstruction entry external stores use — the persistent analysis
    /// store's compact payload decodes through it.
    pub fn from_object_distributions(per_object: Vec<(ObjectId, Vec<(ValueId, f64)>)>) -> Self {
        let num_objects = per_object
            .iter()
            .map(|&(o, _)| o.index() + 1)
            .max()
            .unwrap_or(0);
        let mut dense: Vec<Vec<(ValueId, f64)>> = vec![Vec::new(); num_objects];
        for (o, d) in per_object {
            dense[o.index()] = d;
        }
        Self::from_ordered(num_objects, dense.into_iter())
    }

    /// Builds from per-object distributions delivered in ascending object
    /// order (one call per object id, empty distributions allowed).
    fn from_ordered(
        num_objects: usize,
        per_object: impl Iterator<Item = Vec<(ValueId, f64)>>,
    ) -> Self {
        let mut offsets = Vec::with_capacity(num_objects + 1);
        offsets.push(0u32);
        let mut arena = Vec::new();
        for dist in per_object {
            arena.extend(dist);
            offsets.push(arena.len() as u32);
        }
        Self { offsets, arena }
    }

    /// The probability that `value` is the true value of `object`
    /// (0 if never asserted).
    #[inline]
    pub fn prob(&self, object: ObjectId, value: ValueId) -> f64 {
        self.distribution(object)
            .iter()
            .find(|&&(v, _)| v == value)
            .map_or(0.0, |&(_, p)| p)
    }

    /// The most probable value of `object` with its probability.
    pub fn best(&self, object: ObjectId) -> Option<(ValueId, f64)> {
        self.distribution(object).first().copied()
    }

    /// The full distribution for `object`, descending by probability.
    #[inline]
    pub fn distribution(&self, object: ObjectId) -> &[(ValueId, f64)] {
        let o = object.index();
        if o + 1 >= self.offsets.len() {
            return &[];
        }
        &self.arena[self.offsets[o] as usize..self.offsets[o + 1] as usize]
    }

    /// Hard decisions: the most probable value per object.
    pub fn decisions(&self) -> HashMap<ObjectId, ValueId> {
        self.objects()
            .into_iter()
            .filter_map(|o| self.best(o).map(|(v, _)| (o, v)))
            .collect()
    }

    /// Hard decisions in ascending object order — iteration over the result
    /// is deterministic across calls and runs, unlike [`Self::decisions`],
    /// whose hash-map iteration order is randomized per process.
    pub fn decisions_sorted(&self) -> BTreeMap<ObjectId, ValueId> {
        self.objects()
            .into_iter()
            .filter_map(|o| self.best(o).map(|(v, _)| (o, v)))
            .collect()
    }

    /// Objects with at least one asserted value, ascending.
    pub fn objects(&self) -> Vec<ObjectId> {
        self.offsets
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0] < w[1])
            .map(|(o, _)| ObjectId::from_index(o))
            .collect()
    }

    /// Number of objects with a distribution.
    pub fn len(&self) -> usize {
        self.offsets.windows(2).filter(|w| w[0] < w[1]).count()
    }

    /// `true` when no object has a distribution.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }
}

// Wire-compatible with the old `{"dist": {object: [[value, p], ...]}}`
// hash-map shape; only covered objects appear, like the old map.
impl Serialize for ValueProbabilities {
    fn serialize(&self) -> Content {
        let entries = self
            .objects()
            .into_iter()
            .map(|o| {
                (
                    Content::U64(o.0 as u64),
                    Content::Seq(
                        self.distribution(o)
                            .iter()
                            .map(|&(v, p)| {
                                Content::Seq(vec![Content::U64(v.0 as u64), Content::F64(p)])
                            })
                            .collect(),
                    ),
                )
            })
            .collect();
        Content::Map(vec![(
            Content::Str("dist".to_string()),
            Content::Map(entries),
        )])
    }
}

impl Deserialize for ValueProbabilities {
    fn deserialize(content: &Content) -> Result<Self, SerdeError> {
        let dist = content
            .field("dist")
            .ok_or_else(|| SerdeError::msg("ValueProbabilities: missing field `dist`"))?;
        let dist = match dist {
            Content::Map(m) => m,
            other => {
                return Err(SerdeError::msg(format!(
                    "ValueProbabilities: dist must be a map, found {other:?}"
                )))
            }
        };
        let mut per_object: Vec<(u32, Vec<(ValueId, f64)>)> = Vec::with_capacity(dist.len());
        for (k, v) in dist {
            let o = u32::deserialize(k)?;
            let d = <Vec<(u32, f64)>>::deserialize(v)?
                .into_iter()
                .map(|(v, p)| (ValueId(v), p))
                .collect();
            per_object.push((o, d));
        }
        per_object.sort_by_key(|&(o, _)| o);
        let num_objects = per_object.last().map_or(0, |&(o, _)| o as usize + 1);
        // The CSR offsets allocate per object id; refuse documents whose id
        // space is implausibly larger than their entry count so a tiny
        // document cannot force a huge allocation.
        if !serde::plausible_id_space(num_objects, per_object.len()) {
            return Err(SerdeError::msg(format!(
                "ValueProbabilities: object id space {num_objects} is \
                 implausibly large for {} distributions",
                per_object.len()
            )));
        }
        Ok(Self::from_object_distributions(
            per_object
                .into_iter()
                .map(|(o, d)| (ObjectId(o), d))
                .collect(),
        ))
    }
}

/// The vote weight of a source with accuracy `a` against `n` plausible false
/// values: `ln(n·a / (1−a))`.
///
/// This is the standard Bayesian vote count: under the uniform-false-value
/// model a source asserting `v` multiplies the odds of `v` being true by
/// `n·a/(1−a)`.
#[inline]
pub fn vote_weight(accuracy: f64, n_false: usize, params: &DetectionParams) -> f64 {
    let a = params.clamp_accuracy(accuracy);
    ((n_false as f64) * a / (1.0 - a)).ln()
}

/// Effective number of false values for an object: the configured floor or
/// the observed value diversity, whichever is larger.
#[inline]
pub fn effective_n_false(
    snapshot: &SnapshotView,
    object: ObjectId,
    params: &DetectionParams,
) -> usize {
    params
        .n_false_values
        .max(snapshot.distinct_values(object).saturating_sub(1))
        .max(1)
}

/// The effective-`n` column for a whole snapshot, indexed by [`ObjectId`].
///
/// `effective_n_false` is snapshot-invariant, yet the pre-columnar pipeline
/// recomputed it — including a fresh hash count in `distinct_values` — for
/// every shared object of every candidate pair in every iteration
/// (Σ-overlap × iterations times). [`crate::pairs::detect_all_with_pairs`]
/// hoists it once per detection pass (an O(num_objects) column build over
/// the O(1) precomputed distinct counts) and shares the slice with every
/// worker via [`crate::copy::pair_likelihoods_with`].
pub fn effective_n_false_table(snapshot: &SnapshotView, params: &DetectionParams) -> Vec<f64> {
    (0..snapshot.num_objects())
        .map(|idx| effective_n_false(snapshot, ObjectId::from_index(idx), params) as f64)
        .collect()
}

/// One round of dependence-damped weighted voting.
///
/// For each object, supporters of each value are processed in descending
/// accuracy order; a supporter's weight is multiplied by
/// `Π (1 − c·P(s depends on s'))` over the already-counted supporters `s'` of
/// the same value — a copied vote contributes almost nothing beyond its
/// original. Scores are turned into probabilities with the uniform-false
/// prior: unobserved values share the zero-score mass.
pub fn weighted_vote(
    snapshot: &SnapshotView,
    accuracies: &[f64],
    deps: &DependenceMatrix,
    params: &DetectionParams,
) -> ValueProbabilities {
    let num_objects = snapshot.num_objects();
    let mut offsets = Vec::with_capacity(num_objects + 1);
    offsets.push(0u32);
    let mut arena: Vec<(ValueId, f64)> = Vec::with_capacity(snapshot.num_assertions());
    // Scratch buffers reused across objects: supporters grouped by value,
    // per-value supporter ordering, and per-value scores.
    let mut grouped: Vec<(ValueId, SourceId)> = Vec::new();
    let mut ordered: Vec<SourceId> = Vec::new();
    let mut scores: Vec<(ValueId, f64)> = Vec::new();

    for idx in 0..num_objects {
        let object = ObjectId::from_index(idx);
        let assertions = snapshot.assertions_on(object);
        if assertions.is_empty() {
            offsets.push(arena.len() as u32);
            continue;
        }
        let n_false = effective_n_false(snapshot, object, params);

        // Group supporters per value, in deterministic (value, source)
        // order — the per-object slice is small, so a sort beats hashing.
        grouped.clear();
        grouped.extend(assertions.iter().map(|&(s, v)| (v, s)));
        grouped.sort_unstable();

        scores.clear();
        let mut start = 0usize;
        while start < grouped.len() {
            let value = grouped[start].0;
            let mut end = start + 1;
            while end < grouped.len() && grouped[end].0 == value {
                end += 1;
            }
            ordered.clear();
            ordered.extend(grouped[start..end].iter().map(|&(_, s)| s));
            // Highest-accuracy supporter first: it keeps its full vote and
            // damps the (likely copied) votes below it.
            ordered.sort_by(|&x, &y| {
                let ax = accuracies.get(x.index()).copied().unwrap_or(0.5);
                let ay = accuracies.get(y.index()).copied().unwrap_or(0.5);
                ay.total_cmp(&ax).then(x.cmp(&y))
            });
            let mut score = 0.0;
            for (i, &s) in ordered.iter().enumerate() {
                let a = accuracies.get(s.index()).copied().unwrap_or(0.5);
                let mut independence = 1.0;
                for &prev in &ordered[..i] {
                    // Either direction of dependence means the value was
                    // provided independently at most once between the two
                    // sources; the earlier-processed source keeps the
                    // credit, so the later one is damped by the *total*
                    // dependence probability. Past the hard threshold the
                    // copied vote is ignored outright ("we would like to
                    // ignore values that are copied", Section 4).
                    let dep = deps.dependent(s, prev);
                    independence *= if dep >= params.hard_damping_threshold {
                        0.0
                    } else {
                        1.0 - params.copy_rate * dep
                    };
                }
                score += independence * vote_weight(a, n_false, params);
            }
            scores.push((value, score));
            start = end;
        }

        // Softmax over observed values plus the unobserved remainder of the
        // (1 true + n false) universe at score 0.
        let unobserved = (n_false + 1).saturating_sub(scores.len()) as f64;
        let max_score = scores
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0);
        let mut z = unobserved * (-max_score).exp();
        for &(_, s) in &scores {
            z += (s - max_score).exp();
        }
        let object_start = arena.len();
        arena.extend(scores.iter().map(|&(v, s)| (v, (s - max_score).exp() / z)));
        arena[object_start..].sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        offsets.push(arena.len() as u32);
    }
    ValueProbabilities { offsets, arena }
}

/// The least-committal starting belief: each object's naive vote shares.
///
/// The iterative pipeline bootstraps from these instead of a weighted-vote
/// softmax: with no accuracy information yet, treating every source as an
/// independent high-weight witness makes the majority value look certain and
/// hides the shared-false-value mass that copy detection feeds on. Vote
/// shares keep a 3-vs-2 split at 0.6/0.4 — uncertain enough for the shared
/// minority/majority false values to register as copying evidence.
pub fn naive_probabilities(snapshot: &SnapshotView) -> ValueProbabilities {
    let num_objects = snapshot.num_objects();
    let mut offsets = Vec::with_capacity(num_objects + 1);
    offsets.push(0u32);
    let mut arena: Vec<(ValueId, f64)> = Vec::new();
    for idx in 0..num_objects {
        let object = ObjectId::from_index(idx);
        let counts = snapshot.value_counts(object);
        let total: usize = counts.iter().map(|&(_, c)| c).sum();
        if total > 0 {
            arena.extend(
                counts
                    .into_iter()
                    .map(|(v, c)| (v, c as f64 / total as f64)),
            );
        }
        offsets.push(arena.len() as u32);
    }
    ValueProbabilities { offsets, arena }
}

/// Convenience: a matrix asserting a single certain dependence `s` on `t`.
pub fn single_dependence(s: SourceId, t: SourceId) -> DependenceMatrix {
    DependenceMatrix::from_pairs(&[PairDependence {
        a: s,
        b: t,
        probability: 1.0,
        prob_a_on_b: 1.0,
        kind: crate::report::DependenceKind::Similarity,
        direction: Direction::AOnB,
        overlap: 0,
        diagnostic: 0.0,
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::DependenceKind;
    use sailing_model::fixtures;
    use sailing_model::Value;

    fn params() -> DetectionParams {
        DetectionParams::default()
    }

    #[test]
    fn matrix_from_pairs_splits_directions() {
        let p = PairDependence {
            a: SourceId(1),
            b: SourceId(2),
            probability: 0.8,
            prob_a_on_b: 0.75,
            kind: DependenceKind::Similarity,
            direction: Direction::AOnB,
            overlap: 4,
            diagnostic: 0.0,
        };
        let m = DependenceMatrix::from_pairs(&[p]);
        assert!((m.dep_on(SourceId(1), SourceId(2)) - 0.6).abs() < 1e-12);
        assert!((m.dep_on(SourceId(2), SourceId(1)) - 0.2).abs() < 1e-12);
        assert!((m.dependent(SourceId(1), SourceId(2)) - 0.8).abs() < 1e-12);
        assert_eq!(m.dep_on(SourceId(1), SourceId(3)), 0.0);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn vote_weight_monotone_in_accuracy() {
        let p = params();
        let w_low = vote_weight(0.6, 10, &p);
        let w_high = vote_weight(0.9, 10, &p);
        assert!(w_high > w_low);
        assert!(vote_weight(0.9, 100, &p) > w_high);
    }

    #[test]
    fn weighted_vote_equal_weights_matches_majority() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let accs = vec![0.8; snap.num_sources()];
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params());
        let naive = crate::vote::naive_vote(&snap);
        for (&o, &v) in &naive {
            // With equal accuracies and no dependence, the weighted winner on
            // non-tied objects is the majority value.
            if snap.value_counts(o)[0].1 > snap.value_counts(o).get(1).map_or(0, |x| x.1) {
                assert_eq!(probs.best(o).unwrap().0, v);
            }
        }
    }

    #[test]
    fn distributions_are_valid_probabilities() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let accs = vec![0.8; snap.num_sources()];
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params());
        for o in probs.objects() {
            let d = probs.distribution(o);
            let total: f64 = d.iter().map(|&(_, p)| p).sum();
            assert!(total <= 1.0 + 1e-9, "mass {total} exceeds 1");
            assert!(d.iter().all(|&(_, p)| (0.0..=1.0).contains(&p)));
            // Sorted descending.
            assert!(d.windows(2).all(|w| w[0].1 >= w[1].1));
        }
    }

    #[test]
    fn damping_cancels_copied_votes() {
        // Three sources assert "UW"; S2 and S3 copy S1 with certainty.
        // One accurate independent source asserts "Google".
        let mut b = sailing_model::ClaimStoreBuilder::new();
        b.add("S0", "Halevy", "Google")
            .add("S1", "Halevy", "UW")
            .add("S2", "Halevy", "UW")
            .add("S3", "Halevy", "UW");
        let store = b.build();
        let snap = store.snapshot();
        let s1 = store.source_id("S1").unwrap();
        let s2 = store.source_id("S2").unwrap();
        let s3 = store.source_id("S3").unwrap();
        let mk = |s: SourceId, t: SourceId| PairDependence {
            a: s,
            b: t,
            probability: 1.0,
            prob_a_on_b: 1.0,
            kind: DependenceKind::Similarity,
            direction: Direction::AOnB,
            overlap: 1,
            diagnostic: 0.0,
        };
        let deps = DependenceMatrix::from_pairs(&[mk(s2, s1), mk(s3, s1)]);
        // S0 slightly more accurate than the copier cluster's root.
        let accs = vec![0.9, 0.7, 0.7, 0.7];
        let p = DetectionParams {
            copy_rate: 1.0,
            ..params()
        };
        let probs = weighted_vote(&snap, &accs, &deps, &p);
        let halevy = store.object_id("Halevy").unwrap();
        let google = store.value_id(&Value::text("Google")).unwrap();
        assert_eq!(
            probs.best(halevy).unwrap().0,
            google,
            "damped copies should not outvote the accurate independent source"
        );

        // Without damping, the three UW votes win.
        let undamped = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &p);
        let uw = store.value_id(&Value::text("UW")).unwrap();
        assert_eq!(undamped.best(halevy).unwrap().0, uw);
    }

    #[test]
    fn single_dependence_helper() {
        let m = single_dependence(SourceId(4), SourceId(2));
        assert!((m.dep_on(SourceId(4), SourceId(2)) - 1.0).abs() < 1e-12);
        assert_eq!(m.dep_on(SourceId(2), SourceId(4)), 0.0);
    }

    #[test]
    fn value_probabilities_accessors() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let accs = vec![0.8; snap.num_sources()];
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params());
        assert_eq!(probs.len(), 5);
        assert!(!probs.is_empty());
        let o = probs.objects()[0];
        let (v, p) = probs.best(o).unwrap();
        assert!(probs.prob(o, v) == p);
        assert_eq!(probs.prob(o, ValueId(9999)), 0.0);
        let decisions = probs.decisions();
        assert_eq!(decisions.len(), 5);
        assert_eq!(decisions[&o], v);
    }

    #[test]
    fn deserialize_rejects_implausible_id_spaces() {
        // A tiny document must not be able to force a gigabyte allocation
        // by naming one gigantic id.
        let bomb = r#"{"dist":{"4294967295":[]}}"#;
        assert!(ValueProbabilities::deserialize(&serde::json::parse(bomb).unwrap()).is_err());
        let bomb = r#"{"entries":{"[4294967295,0]":0.5}}"#;
        assert!(DependenceMatrix::deserialize(&serde::json::parse(bomb).unwrap()).is_err());
        // Legacy-shaped documents with sane ids still parse.
        let ok = r#"{"dist":{"3":[[7,1.0]]}}"#;
        let vp = ValueProbabilities::deserialize(&serde::json::parse(ok).unwrap()).unwrap();
        assert_eq!(vp.best(ObjectId(3)), Some((ValueId(7), 1.0)));
        let ok = r#"{"entries":{"[2,1]":0.8}}"#;
        let m = DependenceMatrix::deserialize(&serde::json::parse(ok).unwrap()).unwrap();
        assert!((m.dep_on(SourceId(2), SourceId(1)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let snap = SnapshotView::from_triples(0, 0, Vec::new());
        let probs = weighted_vote(&snap, &[], &DependenceMatrix::new(), &params());
        assert!(probs.is_empty());
        assert_eq!(probs.best(ObjectId(0)), None);
        assert_eq!(probs.distribution(ObjectId(0)), &[]);
    }
}
