//! Dependence-aware truth discovery: weighted voting with independence
//! damping.
//!
//! This is the fusion half of the paper's iterative scheme: "ignore values
//! that are copied (but not necessarily the values independently provided by
//! copiers)" (Section 4, Data fusion). Every source votes for the value it
//! asserts; a source's vote weight grows with its estimated accuracy and
//! shrinks with the probability that its value was copied from a
//! higher-ranked supporter of the same value.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sailing_model::{ObjectId, SnapshotView, SourceId, ValueId};

use crate::params::DetectionParams;
use crate::report::{Direction, PairDependence};

/// Pairwise dependence posteriors in a form optimised for vote damping.
///
/// `dep_on(s, t)` answers: with what probability does `s` depend on (copy
/// from) `t`?
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DependenceMatrix {
    entries: HashMap<(SourceId, SourceId), f64>,
}

impl DependenceMatrix {
    /// An empty matrix: every pair independent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the matrix from pair reports.
    ///
    /// For each pair the overall dependence probability is split between the
    /// two directions according to `prob_a_on_b`; an unresolved
    /// [`Direction::Unknown`] therefore damps both sides halfway, which is
    /// the conservative choice.
    pub fn from_pairs(pairs: &[PairDependence]) -> Self {
        let mut entries = HashMap::new();
        for p in pairs {
            let p = p.clone().canonical();
            entries.insert((p.a, p.b), p.probability * p.prob_a_on_b);
            entries.insert((p.b, p.a), p.probability * (1.0 - p.prob_a_on_b));
        }
        Self { entries }
    }

    /// Probability that `s` depends on `t`.
    #[inline]
    pub fn dep_on(&self, s: SourceId, t: SourceId) -> f64 {
        self.entries.get(&(s, t)).copied().unwrap_or(0.0)
    }

    /// Probability that `s` and `t` are dependent in either direction.
    #[inline]
    pub fn dependent(&self, s: SourceId, t: SourceId) -> f64 {
        (self.dep_on(s, t) + self.dep_on(t, s)).min(1.0)
    }

    /// Number of directed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no dependence is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Per-object posterior distributions over asserted values.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ValueProbabilities {
    dist: HashMap<ObjectId, Vec<(ValueId, f64)>>,
}

impl ValueProbabilities {
    /// The probability that `value` is the true value of `object`
    /// (0 if never asserted).
    pub fn prob(&self, object: ObjectId, value: ValueId) -> f64 {
        self.dist
            .get(&object)
            .and_then(|d| d.iter().find(|&&(v, _)| v == value))
            .map_or(0.0, |&(_, p)| p)
    }

    /// The most probable value of `object` with its probability.
    pub fn best(&self, object: ObjectId) -> Option<(ValueId, f64)> {
        self.dist.get(&object).and_then(|d| d.first()).copied()
    }

    /// The full distribution for `object`, descending by probability.
    pub fn distribution(&self, object: ObjectId) -> &[(ValueId, f64)] {
        self.dist.get(&object).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Hard decisions: the most probable value per object.
    pub fn decisions(&self) -> HashMap<ObjectId, ValueId> {
        self.dist
            .iter()
            .filter_map(|(&o, d)| d.first().map(|&(v, _)| (o, v)))
            .collect()
    }

    /// Objects with at least one asserted value, ascending.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut o: Vec<_> = self.dist.keys().copied().collect();
        o.sort();
        o
    }

    /// Number of objects with a distribution.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// `true` when no object has a distribution.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }
}

/// The vote weight of a source with accuracy `a` against `n` plausible false
/// values: `ln(n·a / (1−a))`.
///
/// This is the standard Bayesian vote count: under the uniform-false-value
/// model a source asserting `v` multiplies the odds of `v` being true by
/// `n·a/(1−a)`.
#[inline]
pub fn vote_weight(accuracy: f64, n_false: usize, params: &DetectionParams) -> f64 {
    let a = params.clamp_accuracy(accuracy);
    ((n_false as f64) * a / (1.0 - a)).ln()
}

/// Effective number of false values for an object: the configured floor or
/// the observed value diversity, whichever is larger.
#[inline]
pub fn effective_n_false(
    snapshot: &SnapshotView,
    object: ObjectId,
    params: &DetectionParams,
) -> usize {
    params
        .n_false_values
        .max(snapshot.distinct_values(object).saturating_sub(1))
        .max(1)
}

/// One round of dependence-damped weighted voting.
///
/// For each object, supporters of each value are processed in descending
/// accuracy order; a supporter's weight is multiplied by
/// `Π (1 − c·P(s depends on s'))` over the already-counted supporters `s'` of
/// the same value — a copied vote contributes almost nothing beyond its
/// original. Scores are turned into probabilities with the uniform-false
/// prior: unobserved values share the zero-score mass.
pub fn weighted_vote(
    snapshot: &SnapshotView,
    accuracies: &[f64],
    deps: &DependenceMatrix,
    params: &DetectionParams,
) -> ValueProbabilities {
    let mut dist = HashMap::new();
    for idx in 0..snapshot.num_objects() {
        let object = ObjectId::from_index(idx);
        let assertions = snapshot.assertions_on(object);
        if assertions.is_empty() {
            continue;
        }
        let n_false = effective_n_false(snapshot, object, params);

        // Group supporters per value.
        let mut supporters: HashMap<ValueId, Vec<SourceId>> = HashMap::new();
        for &(s, v) in assertions {
            supporters.entry(v).or_default().push(s);
        }

        let mut scores: Vec<(ValueId, f64)> = Vec::with_capacity(supporters.len());
        for (&value, sources) in &supporters {
            let mut ordered: Vec<SourceId> = sources.clone();
            // Highest-accuracy supporter first: it keeps its full vote and
            // damps the (likely copied) votes below it.
            ordered.sort_by(|&x, &y| {
                let ax = accuracies.get(x.index()).copied().unwrap_or(0.5);
                let ay = accuracies.get(y.index()).copied().unwrap_or(0.5);
                ay.total_cmp(&ax).then(x.cmp(&y))
            });
            let mut score = 0.0;
            for (i, &s) in ordered.iter().enumerate() {
                let a = accuracies.get(s.index()).copied().unwrap_or(0.5);
                let mut independence = 1.0;
                for &prev in &ordered[..i] {
                    // Either direction of dependence means the value was
                    // provided independently at most once between the two
                    // sources; the earlier-processed source keeps the
                    // credit, so the later one is damped by the *total*
                    // dependence probability. Past the hard threshold the
                    // copied vote is ignored outright ("we would like to
                    // ignore values that are copied", Section 4).
                    let dep = deps.dependent(s, prev);
                    independence *= if dep >= params.hard_damping_threshold {
                        0.0
                    } else {
                        1.0 - params.copy_rate * dep
                    };
                }
                score += independence * vote_weight(a, n_false, params);
            }
            scores.push((value, score));
        }

        // Softmax over observed values plus the unobserved remainder of the
        // (1 true + n false) universe at score 0.
        let unobserved = (n_false + 1).saturating_sub(scores.len()) as f64;
        let max_score = scores
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0);
        let mut z = unobserved * (-max_score).exp();
        for &(_, s) in &scores {
            z += (s - max_score).exp();
        }
        let mut probs: Vec<(ValueId, f64)> = scores
            .into_iter()
            .map(|(v, s)| (v, (s - max_score).exp() / z))
            .collect();
        probs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        dist.insert(object, probs);
    }
    ValueProbabilities { dist }
}

/// The least-committal starting belief: each object's naive vote shares.
///
/// The iterative pipeline bootstraps from these instead of a weighted-vote
/// softmax: with no accuracy information yet, treating every source as an
/// independent high-weight witness makes the majority value look certain and
/// hides the shared-false-value mass that copy detection feeds on. Vote
/// shares keep a 3-vs-2 split at 0.6/0.4 — uncertain enough for the shared
/// minority/majority false values to register as copying evidence.
pub fn naive_probabilities(snapshot: &SnapshotView) -> ValueProbabilities {
    let mut dist = HashMap::new();
    for idx in 0..snapshot.num_objects() {
        let object = ObjectId::from_index(idx);
        let counts = snapshot.value_counts(object);
        let total: usize = counts.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            continue;
        }
        dist.insert(
            object,
            counts
                .into_iter()
                .map(|(v, c)| (v, c as f64 / total as f64))
                .collect(),
        );
    }
    ValueProbabilities { dist }
}

/// Convenience: a matrix asserting a single certain dependence `s` on `t`.
pub fn single_dependence(s: SourceId, t: SourceId) -> DependenceMatrix {
    DependenceMatrix::from_pairs(&[PairDependence {
        a: s,
        b: t,
        probability: 1.0,
        prob_a_on_b: 1.0,
        kind: crate::report::DependenceKind::Similarity,
        direction: Direction::AOnB,
        overlap: 0,
        diagnostic: 0.0,
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::DependenceKind;
    use sailing_model::fixtures;
    use sailing_model::Value;

    fn params() -> DetectionParams {
        DetectionParams::default()
    }

    #[test]
    fn matrix_from_pairs_splits_directions() {
        let p = PairDependence {
            a: SourceId(1),
            b: SourceId(2),
            probability: 0.8,
            prob_a_on_b: 0.75,
            kind: DependenceKind::Similarity,
            direction: Direction::AOnB,
            overlap: 4,
            diagnostic: 0.0,
        };
        let m = DependenceMatrix::from_pairs(&[p]);
        assert!((m.dep_on(SourceId(1), SourceId(2)) - 0.6).abs() < 1e-12);
        assert!((m.dep_on(SourceId(2), SourceId(1)) - 0.2).abs() < 1e-12);
        assert!((m.dependent(SourceId(1), SourceId(2)) - 0.8).abs() < 1e-12);
        assert_eq!(m.dep_on(SourceId(1), SourceId(3)), 0.0);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn vote_weight_monotone_in_accuracy() {
        let p = params();
        let w_low = vote_weight(0.6, 10, &p);
        let w_high = vote_weight(0.9, 10, &p);
        assert!(w_high > w_low);
        assert!(vote_weight(0.9, 100, &p) > w_high);
    }

    #[test]
    fn weighted_vote_equal_weights_matches_majority() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let accs = vec![0.8; snap.num_sources()];
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params());
        let naive = crate::vote::naive_vote(&snap);
        for (&o, &v) in &naive {
            // With equal accuracies and no dependence, the weighted winner on
            // non-tied objects is the majority value.
            if snap.value_counts(o)[0].1 > snap.value_counts(o).get(1).map_or(0, |x| x.1) {
                assert_eq!(probs.best(o).unwrap().0, v);
            }
        }
    }

    #[test]
    fn distributions_are_valid_probabilities() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let accs = vec![0.8; snap.num_sources()];
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params());
        for o in probs.objects() {
            let d = probs.distribution(o);
            let total: f64 = d.iter().map(|&(_, p)| p).sum();
            assert!(total <= 1.0 + 1e-9, "mass {total} exceeds 1");
            assert!(d.iter().all(|&(_, p)| (0.0..=1.0).contains(&p)));
            // Sorted descending.
            assert!(d.windows(2).all(|w| w[0].1 >= w[1].1));
        }
    }

    #[test]
    fn damping_cancels_copied_votes() {
        // Three sources assert "UW"; S2 and S3 copy S1 with certainty.
        // One accurate independent source asserts "Google".
        let mut b = sailing_model::ClaimStoreBuilder::new();
        b.add("S0", "Halevy", "Google")
            .add("S1", "Halevy", "UW")
            .add("S2", "Halevy", "UW")
            .add("S3", "Halevy", "UW");
        let store = b.build();
        let snap = store.snapshot();
        let s1 = store.source_id("S1").unwrap();
        let s2 = store.source_id("S2").unwrap();
        let s3 = store.source_id("S3").unwrap();
        let mk = |s: SourceId, t: SourceId| PairDependence {
            a: s,
            b: t,
            probability: 1.0,
            prob_a_on_b: 1.0,
            kind: DependenceKind::Similarity,
            direction: Direction::AOnB,
            overlap: 1,
            diagnostic: 0.0,
        };
        let deps = DependenceMatrix::from_pairs(&[mk(s2, s1), mk(s3, s1)]);
        // S0 slightly more accurate than the copier cluster's root.
        let accs = vec![0.9, 0.7, 0.7, 0.7];
        let p = DetectionParams {
            copy_rate: 1.0,
            ..params()
        };
        let probs = weighted_vote(&snap, &accs, &deps, &p);
        let halevy = store.object_id("Halevy").unwrap();
        let google = store.value_id(&Value::text("Google")).unwrap();
        assert_eq!(
            probs.best(halevy).unwrap().0,
            google,
            "damped copies should not outvote the accurate independent source"
        );

        // Without damping, the three UW votes win.
        let undamped = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &p);
        let uw = store.value_id(&Value::text("UW")).unwrap();
        assert_eq!(undamped.best(halevy).unwrap().0, uw);
    }

    #[test]
    fn single_dependence_helper() {
        let m = single_dependence(SourceId(4), SourceId(2));
        assert!((m.dep_on(SourceId(4), SourceId(2)) - 1.0).abs() < 1e-12);
        assert_eq!(m.dep_on(SourceId(2), SourceId(4)), 0.0);
    }

    #[test]
    fn value_probabilities_accessors() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let accs = vec![0.8; snap.num_sources()];
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params());
        assert_eq!(probs.len(), 5);
        assert!(!probs.is_empty());
        let o = probs.objects()[0];
        let (v, p) = probs.best(o).unwrap();
        assert!(probs.prob(o, v) == p);
        assert_eq!(probs.prob(o, ValueId(9999)), 0.0);
        let decisions = probs.decisions();
        assert_eq!(decisions.len(), 5);
        assert_eq!(decisions[&o], v);
    }

    #[test]
    fn empty_inputs() {
        let snap = SnapshotView::from_triples(0, 0, Vec::new());
        let probs = weighted_vote(&snap, &[], &DependenceMatrix::new(), &params());
        assert!(probs.is_empty());
        assert_eq!(probs.best(ObjectId(0)), None);
        assert_eq!(probs.distribution(ObjectId(0)), &[]);
    }
}
