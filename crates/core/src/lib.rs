//! # sailing-core
//!
//! Discovery of **dependence between data sources** — the primary
//! contribution of *Sailing the Information Ocean with Awareness of Currents*
//! (CIDR 2009).
//!
//! The paper distinguishes two kinds of dependence (Section 2.2):
//!
//! * **similarity-dependence** — a source copies values from another source,
//!   boosting the copied values' vote counts under naive voting (Table 1);
//! * **dissimilarity-dependence** — a source deliberately provides values
//!   conflicting with another source's, cancelling its votes (Table 2).
//!
//! and two observation regimes: a single **snapshot** per source, or full
//! **temporal** update traces (Table 3).
//!
//! This crate implements the paper's Section 3.2 solution sketch:
//!
//! * [`vote`] — naive voting, the baseline dependence defeats;
//! * [`copy`] — Bayesian snapshot copy detection built on the
//!   shared-false-value intuition ("students sharing wrong quiz answers");
//! * [`partial`] — the overlap-property test (intuition 2: a copier's
//!   accuracy differs between what it shares and what it provides alone),
//!   used for direction and partial-copier detection;
//! * [`dissim`] — dissimilarity-dependence detection on opinion data with
//!   item-consensus residualisation (the "correlated information" challenge);
//! * [`temporal`] — update-trace dependence: rare shared updates, copying
//!   lag estimation (lazy copiers), out-of-date vs false classification;
//! * [`truth`] — dependence-aware truth discovery: weighted voting where
//!   copied votes are damped by their probability of being independent;
//! * [`pipeline`] — the iterative Bayesian loop the paper proposes:
//!   *determine true values ↔ compute source accuracy ↔ discover
//!   dependence*, run to fixpoint;
//! * [`pairs`] — scalable candidate-pair enumeration with shared-object
//!   pruning and optional parallelism (the "huge number of data sources"
//!   challenge);
//! * [`shard`] — pair-sharded distributed analysis: the detection pass
//!   split over contiguous ranges of the candidate-pair list, merged
//!   back bitwise-identically to the monolithic loop (the same
//!   challenge, scaled past one thread or one process);
//! * [`discovery`] — the [`TruthDiscovery`] strategy trait making the
//!   naive / ACCU / ACCU-COPY ladder pluggable objects consumed by fusion,
//!   query answering, recommendation, and the `sailing` facade.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod copy;
pub mod discovery;
pub mod dissim;
pub mod pairs;
pub mod params;
pub mod partial;
pub mod pipeline;
pub mod report;
pub mod shard;
pub mod temporal;
pub mod truth;
pub mod vote;

pub use discovery::{Accu, NaiveVote, TruthDiscovery};
pub use params::{DetectionParams, TemporalParams};
pub use pipeline::{AccuCopy, DeltaOutcome, DeltaRun, PipelineResult, Termination, Watchdog};
pub use report::{DependenceKind, Direction, PairDependence, SourceReport};
pub use sailing_model::{SailingError, SailingResult};
pub use shard::{iteration_digest, shard_ranges, PairRange, PartialDependence, ShardStep};
