//! Source accuracy estimation.
//!
//! The paper's iterative scheme alternates "determining true values,
//! computing accuracy of sources, and discovering dependence" (Section 3.2).
//! This module is the middle step: given the current belief about which
//! values are true, a source's accuracy is the expected fraction of its
//! assertions that are true.

use sailing_model::{SnapshotView, SourceId};

use crate::params::DetectionParams;
use crate::truth::ValueProbabilities;

/// Estimates every source's accuracy from the current value probabilities.
///
/// `accuracy(s) = (Σ P(v true) + λ·a₀) / (count + λ)` over the source's
/// assertions, with one pseudo-observation at the prior accuracy `a₀`
/// ([`DetectionParams::initial_accuracy`]) so tiny sources do not collapse to
/// 0 or 1. Results are clamped into the configured accuracy band.
pub fn estimate_accuracies(
    snapshot: &SnapshotView,
    probs: &ValueProbabilities,
    params: &DetectionParams,
) -> Vec<f64> {
    const PSEUDO: f64 = 1.0;
    (0..snapshot.num_sources())
        .map(|idx| {
            let s = SourceId::from_index(idx);
            let mut total = 0.0;
            let mut count = 0usize;
            for (o, v) in snapshot.assertions_of(s) {
                total += probs.prob(o, v);
                count += 1;
            }
            let smoothed = (total + PSEUDO * params.initial_accuracy) / (count as f64 + PSEUDO);
            params.clamp_accuracy(smoothed)
        })
        .collect()
}

/// Largest absolute accuracy change between two estimates — the pipeline's
/// convergence criterion.
pub fn max_delta(old: &[f64], new: &[f64]) -> f64 {
    old.iter()
        .zip(new)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::{weighted_vote, DependenceMatrix};
    use sailing_model::fixtures;

    #[test]
    fn accurate_source_scores_higher_once_truth_is_known() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        // Feed the *true* distribution: truth value probability 1.
        let params = DetectionParams::default();
        // Build probabilities by voting with oracle-like accuracies: give S1
        // maximal accuracy so its values dominate.
        let mut accs = vec![0.5; snap.num_sources()];
        accs[store.source_id("S1").unwrap().index()] = 0.99;
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params);
        let est = estimate_accuracies(&snap, &probs, &params);
        let s1 = store.source_id("S1").unwrap();
        let s3 = store.source_id("S3").unwrap();
        assert!(
            est[s1.index()] > est[s3.index()],
            "S1 (all true) must outrank S3 (mostly false): {est:?}"
        );
        // Sanity: ground truth agrees S1 is perfect.
        assert_eq!(truth.accuracy_of(&snap, s1), Some(1.0));
    }

    #[test]
    fn estimates_stay_in_band() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let params = DetectionParams::default();
        let accs = vec![0.8; snap.num_sources()];
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params);
        for a in estimate_accuracies(&snap, &probs, &params) {
            assert!((params.accuracy_floor..=params.accuracy_ceiling).contains(&a));
        }
    }

    #[test]
    fn source_without_assertions_gets_prior() {
        let snap = sailing_model::SnapshotView::from_triples(
            2,
            1,
            vec![(
                SourceId(0),
                sailing_model::ObjectId(0),
                sailing_model::ValueId(0),
            )],
        );
        let params = DetectionParams::default();
        let accs = vec![0.8, 0.8];
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params);
        let est = estimate_accuracies(&snap, &probs, &params);
        assert!((est[1] - params.initial_accuracy).abs() < 1e-12);
    }

    #[test]
    fn max_delta_works() {
        assert!((max_delta(&[0.5, 0.6], &[0.5, 0.9]) - 0.3).abs() < 1e-12);
        assert_eq!(max_delta(&[], &[]), 0.0);
        assert!((max_delta(&[0.2], &[0.1]) - 0.1).abs() < 1e-12);
    }
}
