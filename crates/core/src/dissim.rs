//! Dissimilarity-dependence detection on opinion data.
//!
//! Table 2's reviewer `R4` "has a strong opinion on `R1`'s tastes and chooses
//! to provide opposite ratings for all of `R1`'s ratings" — the paper's
//! *dissimilarity-dependence*. This module tests every rater pair against
//! five hypotheses: independent, `a` copies `b`, `b` copies `a`, `a` inverts
//! `b`, `b` inverts `a`.
//!
//! The *correlated information* challenge (Section 3.1) — "a high similarity
//! between the ratings of two raters for the various Star Wars movies may
//! simply reflect a popular opinion amongst science fiction fans" — is
//! handled by **residualising against the per-item consensus**: the
//! independence model predicts a rater's rating from what *everyone else*
//! said about the item, so agreeing with the crowd is never evidence of
//! dependence. Disable [`DissimParams::residualize`] to measure exactly how
//! many false positives that correction prevents (experiment E11).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sailing_model::{ClaimStore, ObjectId, SailingError, SourceId, Value};

use crate::report::{DependenceKind, Direction, PairDependence};

/// Parameters of dissimilarity/similarity detection on ratings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DissimParams {
    /// Prior probability that an arbitrary ordered pair is dependent
    /// (split equally over the four dependent hypotheses).
    pub prior_dependence: f64,
    /// Probability that a dependent rater mirrors/inverts any particular
    /// shared item.
    pub dependence_rate: f64,
    /// Predict a rater's rating from the per-item consensus (`true`, the
    /// paper's correlated-information correction) or only from the rater's
    /// own global rating distribution (`false`).
    pub residualize: bool,
    /// Pairs sharing fewer items than this are not tested.
    pub min_overlap: usize,
    /// Additive smoothing weight for the consensus/marginal mixture.
    pub smoothing: f64,
}

impl Default for DissimParams {
    fn default() -> Self {
        Self {
            prior_dependence: 0.2,
            dependence_rate: 0.8,
            residualize: true,
            min_overlap: 3,
            smoothing: 2.0,
        }
    }
}

impl DissimParams {
    /// Validates parameter consistency.
    pub fn validate(&self) -> Result<(), SailingError> {
        if !(0.0..=1.0).contains(&self.prior_dependence) {
            return Err(SailingError::param_outside_unit(
                "prior_dependence",
                self.prior_dependence,
            ));
        }
        if !(0.0..=1.0).contains(&self.dependence_rate) {
            return Err(SailingError::param_outside_unit(
                "dependence_rate",
                self.dependence_rate,
            ));
        }
        if self.smoothing <= 0.0 {
            return Err(SailingError::param("smoothing", "must be positive"));
        }
        Ok(())
    }
}

/// A dense view of ordinal ratings: one optional rating per (rater, item).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatingView {
    ratings: Vec<HashMap<ObjectId, u8>>,
    per_item: Vec<Vec<(SourceId, u8)>>,
    scale_max: u8,
}

impl RatingView {
    /// Builds from `(rater, item, rating)` triples on a `0..=scale_max`
    /// scale. Ratings above the scale are clamped.
    pub fn from_triples(
        num_sources: usize,
        num_objects: usize,
        scale_max: u8,
        triples: impl IntoIterator<Item = (SourceId, ObjectId, u8)>,
    ) -> Self {
        let mut ratings: Vec<HashMap<ObjectId, u8>> = vec![HashMap::new(); num_sources];
        for (s, o, r) in triples {
            ratings[s.index()].insert(o, r.min(scale_max));
        }
        let mut per_item: Vec<Vec<(SourceId, u8)>> = vec![Vec::new(); num_objects];
        for (s, m) in ratings.iter().enumerate() {
            let mut items: Vec<_> = m.iter().map(|(&o, &r)| (o, r)).collect();
            items.sort_by_key(|&(o, _)| o);
            for (o, r) in items {
                per_item[o.index()].push((SourceId::from_index(s), r));
            }
        }
        Self {
            ratings,
            per_item,
            scale_max,
        }
    }

    /// Extracts all [`Value::Rating`] claims from a store's snapshot.
    pub fn from_store(store: &ClaimStore, scale_max: u8) -> Self {
        let snap = store.snapshot();
        let triples: Vec<_> = (0..store.num_sources())
            .flat_map(|s| {
                let sid = SourceId::from_index(s);
                snap.assertions_of(sid)
                    .filter_map(|(o, v)| match store.value(v) {
                        Some(&Value::Rating(r)) => Some((sid, o, r)),
                        _ => None,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        Self::from_triples(store.num_sources(), store.num_objects(), scale_max, triples)
    }

    /// The rating scale's maximum level (`0..=scale_max`).
    pub fn scale_max(&self) -> u8 {
        self.scale_max
    }

    /// Number of raters.
    pub fn num_sources(&self) -> usize {
        self.ratings.len()
    }

    /// Number of items.
    pub fn num_objects(&self) -> usize {
        self.per_item.len()
    }

    /// The rating `rater` gave `item`.
    pub fn rating(&self, rater: SourceId, item: ObjectId) -> Option<u8> {
        self.ratings.get(rater.index())?.get(&item).copied()
    }

    /// All ratings on one item.
    pub fn ratings_on(&self, item: ObjectId) -> &[(SourceId, u8)] {
        self.per_item
            .get(item.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All `(item, rating)` pairs of one rater.
    pub fn ratings_of(&self, rater: SourceId) -> impl Iterator<Item = (ObjectId, u8)> + '_ {
        self.ratings
            .get(rater.index())
            .into_iter()
            .flat_map(|m| m.iter().map(|(&o, &r)| (o, r)))
    }

    /// Items both raters rated, with both ratings.
    pub fn shared_items(&self, a: SourceId, b: SourceId) -> Vec<(ObjectId, u8, u8)> {
        let mut out: Vec<_> = self
            .ratings_of(a)
            .filter_map(|(o, ra)| self.rating(b, o).map(|rb| (o, ra, rb)))
            .collect();
        out.sort_by_key(|&(o, _, _)| o);
        out
    }

    /// The rater's global rating distribution, add-one smoothed.
    pub fn marginal(&self, rater: SourceId) -> Vec<f64> {
        let levels = self.scale_max as usize + 1;
        let mut counts = vec![1.0f64; levels];
        let mut total = levels as f64;
        for (_, r) in self.ratings_of(rater) {
            counts[r as usize] += 1.0;
            total += 1.0;
        }
        counts.iter().map(|c| c / total).collect()
    }

    /// Mean rating of one item across all raters.
    pub fn item_mean(&self, item: ObjectId) -> Option<f64> {
        let rs = self.ratings_on(item);
        if rs.is_empty() {
            return None;
        }
        Some(rs.iter().map(|&(_, r)| r as f64).sum::<f64>() / rs.len() as f64)
    }
}

/// How strongly a rater tracks the per-item consensus: the smoothed fraction
/// of its ratings that equal the mode of the *other* raters on the item.
///
/// This is the calibration the correlated-information correction needs: the
/// independence null predicts each rater by its **own** consensus affinity,
/// so two raters who both track popular opinion agree exactly as often as
/// the null expects, and only *co-deviation* from consensus is left as
/// dependence evidence.
pub fn consensus_affinity(view: &RatingView, rater: SourceId) -> f64 {
    let mut matches = 0usize;
    let mut total = 0usize;
    for (item, r) in view.ratings_of(rater) {
        let Some(mode) = item_mode(view, item, &[rater]) else {
            continue;
        };
        total += 1;
        if r == mode {
            matches += 1;
        }
    }
    (matches as f64 + 1.0) / (total as f64 + 2.0)
}

/// The most common rating on `item` among raters not in `exclude`
/// (ties break toward the lowest level). `None` when nobody else rated it.
fn item_mode(view: &RatingView, item: ObjectId, exclude: &[SourceId]) -> Option<u8> {
    let levels = view.scale_max() as usize + 1;
    let mut counts = vec![0usize; levels];
    let mut any = false;
    for &(s, r) in view.ratings_on(item) {
        if exclude.contains(&s) {
            continue;
        }
        counts[r as usize] += 1;
        any = true;
    }
    any.then(|| {
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(lvl, &c)| (c, std::cmp::Reverse(lvl)))
            .map(|(lvl, _)| lvl as u8)
            .unwrap()
    })
}

/// Predictive distribution for one rater's rating of one item under
/// independence.
///
/// With residualisation: probability `affinity` on the item's consensus
/// mode (computed excluding the tested pair), and the remaining mass spread
/// over the other levels following the smoothed reference counts. Without:
/// the rater's global marginal.
fn predictive(
    view: &RatingView,
    item: ObjectId,
    rater: SourceId,
    exclude: (SourceId, SourceId),
    marginal: &[f64],
    affinity: f64,
    params: &DissimParams,
) -> Vec<f64> {
    let levels = view.scale_max() as usize + 1;
    if !params.residualize {
        return marginal.to_vec();
    }
    let mut counts = vec![0.0f64; levels];
    for &(s, r) in view.ratings_on(item) {
        if s == exclude.0 || s == exclude.1 || s == rater {
            continue;
        }
        counts[r as usize] += 1.0;
    }
    let Some(mode) = item_mode(view, item, &[exclude.0, exclude.1, rater]) else {
        return marginal.to_vec();
    };
    let lambda = params.smoothing;
    let off_total: f64 = (0..levels)
        .filter(|&r| r != mode as usize)
        .map(|r| counts[r] + lambda * marginal[r])
        .sum();
    (0..levels)
        .map(|r| {
            if r == mode as usize {
                affinity
            } else {
                (1.0 - affinity) * (counts[r] + lambda * marginal[r]) / off_total.max(1e-12)
            }
        })
        .collect()
}

/// Tests one rater pair. Returns `None` below the overlap threshold.
pub fn detect_pair(
    view: &RatingView,
    a: SourceId,
    b: SourceId,
    params: &DissimParams,
) -> Option<PairDependence> {
    let shared = view.shared_items(a, b);
    if shared.len() < params.min_overlap.max(1) {
        return None;
    }
    let c = params.dependence_rate;
    let top = view.scale_max();
    let marg_a = view.marginal(a);
    let marg_b = view.marginal(b);
    let aff_a = consensus_affinity(view, a);
    let aff_b = consensus_affinity(view, b);

    // Log-likelihoods: [indep, sim a←b, sim b←a, dissim a←b, dissim b←a]
    // where "a←b" means a is the dependent side (reacts to b).
    let mut logs = [0.0f64; 5];
    for &(item, ra, rb) in &shared {
        let pa = predictive(view, item, a, (a, b), &marg_a, aff_a, params);
        let pb = predictive(view, item, b, (a, b), &marg_b, aff_b, params);
        let pa_ra = pa[ra as usize].max(1e-9);
        let pb_rb = pb[rb as usize].max(1e-9);

        logs[0] += pa_ra.ln() + pb_rb.ln();
        let mimic = |hit: bool, base: f64| {
            (if hit {
                c + (1.0 - c) * base
            } else {
                (1.0 - c) * base
            })
            .max(1e-12)
        };
        // sim: dependent repeats the other's rating.
        logs[1] += pb_rb.ln() + mimic(ra == rb, pa_ra).ln();
        logs[2] += pa_ra.ln() + mimic(rb == ra, pb_rb).ln();
        // dissim: dependent inverts the other's rating on the scale.
        logs[3] += pb_rb.ln() + mimic(ra == top - rb, pa_ra).ln();
        logs[4] += pa_ra.ln() + mimic(rb == top - ra, pb_rb).ln();
    }

    let prior_dep = params.prior_dependence;
    let log_prior = [
        (1.0 - prior_dep).max(1e-12).ln(),
        (prior_dep / 4.0).max(1e-12).ln(),
        (prior_dep / 4.0).max(1e-12).ln(),
        (prior_dep / 4.0).max(1e-12).ln(),
        (prior_dep / 4.0).max(1e-12).ln(),
    ];
    let joint: Vec<f64> = logs.iter().zip(log_prior).map(|(l, p)| l + p).collect();
    let m = joint.iter().fold(f64::NEG_INFINITY, |x, &y| x.max(y));
    let exps: Vec<f64> = joint.iter().map(|&l| (l - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    let post: Vec<f64> = exps.iter().map(|e| e / z).collect();

    let p_sim = post[1] + post[2];
    let p_dissim = post[3] + post[4];
    let probability = p_sim + p_dissim;
    let kind = if p_dissim >= p_sim {
        DependenceKind::Dissimilarity
    } else {
        DependenceKind::Similarity
    };
    // Probability a is the dependent side, given dependence.
    let p_a_dep = post[1] + post[3];
    let prob_a_on_b = if probability > 0.0 {
        p_a_dep / probability
    } else {
        0.5
    };
    let direction = if probability < 0.5 || (prob_a_on_b - 0.5).abs() < 0.1 {
        Direction::Unknown
    } else if prob_a_on_b > 0.5 {
        Direction::AOnB
    } else {
        Direction::BOnA
    };
    Some(
        PairDependence {
            a,
            b,
            probability,
            prob_a_on_b,
            kind,
            direction,
            overlap: shared.len(),
            diagnostic: logs[1].max(logs[2]).max(logs[3]).max(logs[4]) - logs[0],
        }
        .canonical(),
    )
}

/// Tests every rater pair with sufficient overlap, sorted by source ids.
pub fn detect_all(view: &RatingView, params: &DissimParams) -> Vec<PairDependence> {
    let n = view.num_sources();
    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if let Some(dep) = detect_pair(
                view,
                SourceId::from_index(i),
                SourceId::from_index(j),
                params,
            ) {
                out.push(dep);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_model::fixtures;

    fn table2_view() -> (sailing_model::ClaimStore, RatingView) {
        let store = fixtures::table2();
        let view = RatingView::from_store(&store, 2);
        (store, view)
    }

    #[test]
    fn rating_view_extraction() {
        let (store, view) = table2_view();
        assert_eq!(view.num_sources(), 4);
        assert_eq!(view.num_objects(), 3);
        assert_eq!(view.scale_max(), 2);
        let r1 = store.source_id("R1").unwrap();
        let pianist = store.object_id("The Pianist").unwrap();
        assert_eq!(view.rating(r1, pianist), Some(2));
        assert_eq!(view.ratings_on(pianist).len(), 4);
        assert_eq!(
            view.shared_items(r1, store.source_id("R4").unwrap()).len(),
            3
        );
        assert!((view.item_mean(pianist).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn marginal_is_distribution() {
        let (store, view) = table2_view();
        let m = view.marginal(store.source_id("R1").unwrap());
        assert_eq!(m.len(), 3);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table2_r1_r4_is_top_dissimilarity_pair() {
        // Example 2.2: R4 inverts R1. With only three movies the posterior is
        // necessarily soft, but R1–R4 must be the highest-scoring
        // dissimilarity pair and be classified as Dissimilarity.
        let (store, view) = table2_view();
        let params = DissimParams {
            min_overlap: 3,
            ..Default::default()
        };
        let deps = detect_all(&view, &params);
        let r1 = store.source_id("R1").unwrap();
        let r4 = store.source_id("R4").unwrap();
        let pair = deps.iter().find(|p| p.a == r1 && p.b == r4).unwrap();
        assert_eq!(pair.kind, DependenceKind::Dissimilarity);
        let top_dissim = deps
            .iter()
            .filter(|p| p.kind == DependenceKind::Dissimilarity)
            .max_by(|x, y| x.probability.partial_cmp(&y.probability).unwrap())
            .unwrap();
        assert_eq!((top_dissim.a, top_dissim.b), (r1, r4));
    }

    #[test]
    fn perfect_inverter_at_scale_is_certain() {
        // 40 items: b always rates top - a's rating; 4 independent raters.
        let mut triples = Vec::new();
        let n_items = 40;
        for i in 0..n_items {
            let o = ObjectId(i);
            let ra = (i % 3) as u8;
            triples.push((SourceId(0), o, ra));
            triples.push((SourceId(1), o, 2 - ra));
            triples.push((SourceId(2), o, ((i / 3) % 3) as u8));
            triples.push((SourceId(3), o, ((i / 2) % 3) as u8));
        }
        let view = RatingView::from_triples(4, n_items as usize, 2, triples);
        let dep = detect_pair(&view, SourceId(0), SourceId(1), &DissimParams::default()).unwrap();
        assert!(dep.probability > 0.99, "{dep:?}");
        assert_eq!(dep.kind, DependenceKind::Dissimilarity);
    }

    #[test]
    fn perfect_copier_detected_as_similarity() {
        let mut triples = Vec::new();
        for i in 0..40u32 {
            let o = ObjectId(i);
            let ra = (i % 3) as u8;
            triples.push((SourceId(0), o, ra));
            triples.push((SourceId(1), o, ra));
            triples.push((SourceId(2), o, ((7 * i + 1) % 3) as u8));
            triples.push((SourceId(3), o, ((5 * i + 2) % 3) as u8));
        }
        let view = RatingView::from_triples(4, 40, 2, triples);
        let dep = detect_pair(&view, SourceId(0), SourceId(1), &DissimParams::default()).unwrap();
        assert!(dep.probability > 0.99);
        assert_eq!(dep.kind, DependenceKind::Similarity);
    }

    /// Deterministic xorshift for reproducible pseudo-random test ratings.
    fn rng_stream(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    }

    #[test]
    fn residualization_suppresses_consensus_false_positives() {
        // Every rater mostly follows the item's intrinsic popularity: raters
        // agree massively, but only because the items are polarising ("Star
        // Wars fans"). With residualisation the pair must not be flagged;
        // without it, it is.
        let mut triples = Vec::new();
        let n_items = 60u32;
        for s in 0..6u32 {
            let mut rng = rng_stream(s as u64 + 1);
            for i in 0..n_items {
                let popular = (i % 2) as u8 * 2; // items alternate Bad/Good
                let r = if rng() % 10 < 8 {
                    popular
                } else {
                    (rng() % 3) as u8
                };
                triples.push((SourceId(s), ObjectId(i), r));
            }
        }
        let view = RatingView::from_triples(6, n_items as usize, 2, triples);
        let with = detect_pair(&view, SourceId(0), SourceId(1), &DissimParams::default()).unwrap();
        let without = detect_pair(
            &view,
            SourceId(0),
            SourceId(1),
            &DissimParams {
                residualize: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            with.probability < 0.5,
            "residualised detector must tolerate consensus agreement: {}",
            with.probability
        );
        assert!(
            without.probability > 0.9,
            "unresidualised detector should be fooled: {}",
            without.probability
        );
    }

    #[test]
    fn independent_raters_not_flagged() {
        let mut triples = Vec::new();
        for s in 0..3u32 {
            let mut rng = rng_stream(s as u64 + 77);
            for i in 0..60u32 {
                triples.push((SourceId(s), ObjectId(i), (rng() % 3) as u8));
            }
        }
        let view = RatingView::from_triples(3, 60, 2, triples);
        let dep = detect_pair(&view, SourceId(0), SourceId(1), &DissimParams::default()).unwrap();
        assert!(dep.probability < 0.5, "{dep:?}");
    }

    #[test]
    fn min_overlap_gate() {
        let (_, view) = table2_view();
        let params = DissimParams {
            min_overlap: 4,
            ..Default::default()
        };
        assert!(detect_pair(&view, SourceId(0), SourceId(3), &params).is_none());
    }

    #[test]
    fn params_validate() {
        assert!(DissimParams::default().validate().is_ok());
        assert!(DissimParams {
            prior_dependence: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DissimParams {
            dependence_rate: 1.2,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DissimParams {
            smoothing: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn detect_all_covers_all_pairs() {
        let (_, view) = table2_view();
        let deps = detect_all(&view, &DissimParams::default());
        assert_eq!(deps.len(), 6); // C(4,2)
        assert!(deps.iter().all(|p| p.a < p.b));
        assert!(deps.iter().all(|p| (0.0..=1.0).contains(&p.probability)));
    }
}
