//! Pluggable truth-discovery strategies.
//!
//! The paper's programme is one loop — *determine true values ↔ compute
//! source accuracy ↔ discover dependence* — instantiated at three rungs of
//! the experiment ladder: naive voting, accuracy-weighted voting (ACCU),
//! and the full dependence-aware pipeline (ACCU-COPY). [`TruthDiscovery`]
//! makes the rung a first-class object: fusion, the online-query planner,
//! the recommender, and the `sailing` facade all consume `dyn
//! TruthDiscovery` instead of re-matching a strategy enum, so new
//! strategies (e.g. a future sharded or incremental pipeline) plug in
//! without touching the downstream crates.

use sailing_model::{Delta, SailingError, SnapshotView};

use crate::params::DetectionParams;
use crate::pipeline::{AccuCopy, DeltaOutcome, DeltaRun, PipelineResult, Termination};
use crate::truth::naive_probabilities;

/// A truth-discovery strategy: everything that can turn a snapshot of
/// conflicting claims into per-object value beliefs (and, for the
/// dependence-aware rungs, source accuracies and pairwise dependences).
///
/// Implementations must be deterministic for a given snapshot so cached
/// [`PipelineResult`]s can be reused across fusion, query planning, and
/// recommendation.
pub trait TruthDiscovery: Send + Sync {
    /// Short display name used in experiment tables and reports.
    fn name(&self) -> &'static str;

    /// Runs the strategy over a snapshot.
    fn discover(&self, snapshot: &SnapshotView) -> PipelineResult;

    /// Runs the strategy **warm-started** from a previous epoch's result —
    /// the incremental entry the `sailing` facade's `TimelineSession` uses
    /// when walking a history change point by change point.
    ///
    /// The contract is *speed, not answers*: implementations may use the
    /// prior to start iterating closer to the fixpoint (fewer rounds on a
    /// small snapshot delta) but must converge to the same result the cold
    /// [`TruthDiscovery::discover`] would produce, up to the convergence
    /// tolerance. The default implementation ignores the prior and runs
    /// cold, so single-shot strategies (e.g. naive voting) need no code.
    fn run_warm(&self, snapshot: &SnapshotView, prior: Option<&PipelineResult>) -> PipelineResult {
        let _ = prior;
        self.discover(snapshot)
    }

    /// Runs the strategy **delta-incrementally**: `snapshot` is the
    /// post-delta snapshot and `prev` the previous epoch's result for the
    /// pre-delta one. Strategies with a real incremental path (the
    /// ACCU-COPY family) re-converge only what the delta can have changed
    /// and splice the rest through; the default implementation has none
    /// and runs the plain warm entry over the whole snapshot, reported as
    /// [`DeltaOutcome::Unsupported`]. Like [`TruthDiscovery::run_warm`],
    /// the contract is *speed, not answers* — posteriors must match a
    /// full re-analysis up to the convergence tolerance either way.
    fn run_delta(
        &self,
        snapshot: &SnapshotView,
        prev: Option<&PipelineResult>,
        delta: &Delta,
        max_dirty_fraction: f64,
    ) -> DeltaRun {
        let _ = (delta, max_dirty_fraction);
        DeltaRun {
            result: self.run_warm(snapshot, prev),
            outcome: DeltaOutcome::Unsupported,
            dirty_objects: snapshot.num_objects(),
            dirty_sources: snapshot.num_sources(),
        }
    }

    /// `true` when the strategy estimates per-source accuracies.
    fn estimates_accuracies(&self) -> bool {
        true
    }

    /// `true` when the strategy detects source dependences.
    fn detects_dependence(&self) -> bool {
        true
    }

    /// The detection parameters the strategy runs with, when it has any.
    ///
    /// Consumers that vote downstream of discovery (fusion damping, online
    /// sessions) should prefer these over their own defaults so the whole
    /// loop uses one parameter set; `None` means the strategy is
    /// parameter-free (e.g. naive voting).
    fn detection_params(&self) -> Option<&DetectionParams> {
        None
    }
}

/// Majority voting — the paper's inadequate baseline (Section 1).
///
/// Produces naive vote shares as "probabilities", no accuracy estimates,
/// and no dependences.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveVote;

impl NaiveVote {
    /// Creates the naive-voting strategy.
    pub fn new() -> Self {
        NaiveVote
    }
}

impl TruthDiscovery for NaiveVote {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn discover(&self, snapshot: &SnapshotView) -> PipelineResult {
        PipelineResult {
            probabilities: naive_probabilities(snapshot),
            accuracies: Vec::new(),
            dependences: Vec::new(),
            iterations: 1,
            converged: true,
            termination: Termination::Converged,
        }
    }

    fn estimates_accuracies(&self) -> bool {
        false
    }

    fn detects_dependence(&self) -> bool {
        false
    }
}

/// Accuracy-weighted voting without dependence awareness — the ACCU
/// baseline used throughout the experiments.
#[derive(Debug, Clone)]
pub struct Accu {
    pipeline: AccuCopy,
}

impl Accu {
    /// Creates the ACCU baseline with default parameters.
    pub fn with_defaults() -> Self {
        Self {
            pipeline: AccuCopy::baseline(),
        }
    }

    /// Creates the ACCU baseline from explicit parameters (copy detection
    /// is forced off).
    pub fn new(params: DetectionParams) -> Result<Self, SailingError> {
        let params = DetectionParams {
            enable_copy_detection: false,
            ..params
        };
        Ok(Self {
            pipeline: AccuCopy::new(params)?,
        })
    }

    /// The parameters in force.
    pub fn params(&self) -> &DetectionParams {
        self.pipeline.params()
    }
}

impl Default for Accu {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl TruthDiscovery for Accu {
    fn name(&self) -> &'static str {
        "accu"
    }

    fn discover(&self, snapshot: &SnapshotView) -> PipelineResult {
        self.pipeline.run(snapshot)
    }

    fn run_warm(&self, snapshot: &SnapshotView, prior: Option<&PipelineResult>) -> PipelineResult {
        self.pipeline.run_warm(snapshot, prior)
    }

    fn run_delta(
        &self,
        snapshot: &SnapshotView,
        prev: Option<&PipelineResult>,
        delta: &Delta,
        max_dirty_fraction: f64,
    ) -> DeltaRun {
        self.pipeline
            .run_delta(snapshot, prev, delta, max_dirty_fraction)
    }

    fn detects_dependence(&self) -> bool {
        false
    }

    fn detection_params(&self) -> Option<&DetectionParams> {
        Some(self.pipeline.params())
    }
}

impl TruthDiscovery for AccuCopy {
    fn name(&self) -> &'static str {
        if self.params().enable_copy_detection {
            "accu-copy"
        } else {
            "accu"
        }
    }

    fn discover(&self, snapshot: &SnapshotView) -> PipelineResult {
        self.run(snapshot)
    }

    fn run_warm(&self, snapshot: &SnapshotView, prior: Option<&PipelineResult>) -> PipelineResult {
        AccuCopy::run_warm(self, snapshot, prior)
    }

    fn run_delta(
        &self,
        snapshot: &SnapshotView,
        prev: Option<&PipelineResult>,
        delta: &Delta,
        max_dirty_fraction: f64,
    ) -> DeltaRun {
        AccuCopy::run_delta(self, snapshot, prev, delta, max_dirty_fraction)
    }

    fn detects_dependence(&self) -> bool {
        self.params().enable_copy_detection
    }

    fn detection_params(&self) -> Option<&DetectionParams> {
        Some(self.params())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_model::fixtures;

    fn strategies() -> Vec<Box<dyn TruthDiscovery>> {
        vec![
            Box::new(NaiveVote::new()),
            Box::new(Accu::with_defaults()),
            Box::new(AccuCopy::with_defaults()),
        ]
    }

    #[test]
    fn names_and_capabilities() {
        let s = strategies();
        assert_eq!(s[0].name(), "naive");
        assert_eq!(s[1].name(), "accu");
        assert_eq!(s[2].name(), "accu-copy");
        assert!(!s[0].estimates_accuracies());
        assert!(s[1].estimates_accuracies());
        assert!(!s[1].detects_dependence());
        assert!(s[2].detects_dependence());
    }

    #[test]
    fn table1_ladder_through_the_trait() {
        // The paper's headline, driven entirely through trait objects.
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let mut precisions = Vec::new();
        for s in strategies() {
            let result = s.discover(&snap);
            precisions.push(truth.decision_precision(&result.decisions()).unwrap());
        }
        assert!(
            (precisions[0] - 0.4).abs() < 1e-9,
            "naive follows the copiers"
        );
        assert_eq!(precisions[2], 1.0, "accu-copy recovers all truths");
        assert!(precisions[2] >= precisions[1]);
    }

    #[test]
    fn naive_matches_naive_vote() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let via_trait = NaiveVote::new().discover(&snap).decisions();
        let direct = crate::vote::naive_vote(&snap);
        assert_eq!(via_trait, direct);
    }

    #[test]
    fn accu_forces_copy_detection_off() {
        let accu = Accu::new(DetectionParams::default()).unwrap();
        assert!(!accu.params().enable_copy_detection);
        assert!(Accu::new(DetectionParams {
            copy_rate: 7.0,
            ..DetectionParams::default()
        })
        .is_err());
        let (store, _) = fixtures::table1();
        let result = Accu::default().discover(&store.snapshot());
        assert!(result.dependences.is_empty());
    }

    #[test]
    fn run_warm_defaults_to_cold_and_accelerates_iterative_strategies() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        // Single-shot strategy: warm is the cold run (default impl).
        let naive = NaiveVote::new();
        let cold = naive.discover(&snap);
        let warm = naive.run_warm(&snap, Some(&cold));
        assert_eq!(warm.iterations, cold.iterations);
        // Iterative strategies restart near the fixpoint.
        for s in [&strategies()[1], &strategies()[2]] {
            let cold = s.discover(&snap);
            let warm = s.run_warm(&snap, Some(&cold));
            assert!(
                warm.iterations < cold.iterations,
                "{}: warm {} vs cold {}",
                s.name(),
                warm.iterations,
                cold.iterations
            );
            assert_eq!(warm.decisions(), cold.decisions());
        }
    }

    #[test]
    fn accu_copy_name_tracks_params() {
        assert_eq!(TruthDiscovery::name(&AccuCopy::baseline()), "accu");
        assert_eq!(
            TruthDiscovery::name(&AccuCopy::with_defaults()),
            "accu-copy"
        );
    }
}
