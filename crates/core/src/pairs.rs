//! Scalable candidate-pair enumeration and parallel pairwise detection.
//!
//! "Given the huge number of data sources ... determining dependence between
//! sources in a scalable manner is extremely challenging" (Section 1).
//! Testing all `O(S²)` pairs is wasteful when most pairs share nothing: only
//! pairs that co-cover at least `min_overlap` objects can ever be flagged
//! (the paper's Example 4.1 screens AbeBooks bookstore pairs by "at least
//! the same 10 books"). [`candidate_pairs`] enumerates exactly those pairs
//! from a per-object inverted index; [`detect_all`] fans the surviving pairs
//! out across worker threads.

use std::collections::HashMap;

use sailing_model::{ObjectId, SnapshotView, SourceId};

use crate::copy;
use crate::params::DetectionParams;
use crate::report::PairDependence;
use crate::truth::ValueProbabilities;

/// Enumerates unordered source pairs sharing at least `min_overlap` objects,
/// with their exact overlap counts, sorted by source ids.
///
/// Cost is `Σ_o support(o)²` rather than `S² · O` — proportional to the
/// actual co-coverage in the data.
pub fn candidate_pairs(
    snapshot: &SnapshotView,
    min_overlap: usize,
) -> Vec<(SourceId, SourceId, usize)> {
    let mut counts: HashMap<(SourceId, SourceId), usize> = HashMap::new();
    for idx in 0..snapshot.num_objects() {
        let assertions = snapshot.assertions_on(ObjectId::from_index(idx));
        for (i, &(a, _)) in assertions.iter().enumerate() {
            for &(b, _) in &assertions[i + 1..] {
                let key = if a < b { (a, b) } else { (b, a) };
                *counts.entry(key).or_insert(0) += 1;
            }
        }
    }
    let mut pairs: Vec<_> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_overlap.max(1))
        .map(|((a, b), c)| (a, b, c))
        .collect();
    pairs.sort();
    pairs
}

/// Number of pairs the naive all-pairs strategy would test.
pub fn all_pairs_count(num_sources: usize) -> usize {
    num_sources * num_sources.saturating_sub(1) / 2
}

/// Runs snapshot copy detection over every candidate pair, optionally in
/// parallel ([`DetectionParams::threads`]).
///
/// The output is sorted by `(a, b)` and therefore deterministic regardless
/// of thread count.
pub fn detect_all(
    snapshot: &SnapshotView,
    probs: &ValueProbabilities,
    accuracies: &[f64],
    params: &DetectionParams,
) -> Vec<PairDependence> {
    let pairs = candidate_pairs(snapshot, params.min_overlap);
    let threads = params.threads.max(1);
    if threads == 1 || pairs.len() < 2 * threads {
        return pairs
            .iter()
            .filter_map(|&(a, b, _)| copy::detect_pair(snapshot, a, b, probs, accuracies, params))
            .collect();
    }

    let chunk = pairs.len().div_ceil(threads);
    let mut results: Vec<Vec<PairDependence>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    slice
                        .iter()
                        .filter_map(|&(a, b, _)| {
                            copy::detect_pair(snapshot, a, b, probs, accuracies, params)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("detection worker panicked"));
        }
    });
    let mut out: Vec<PairDependence> = results.into_iter().flatten().collect();
    out.sort_by_key(|p| (p.a, p.b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::{weighted_vote, DependenceMatrix};
    use sailing_model::fixtures;

    #[test]
    fn candidate_pairs_on_table1_is_complete() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        // All 5 sources cover all 5 objects → C(5,2)=10 pairs, overlap 5.
        let pairs = candidate_pairs(&snap, 1);
        assert_eq!(pairs.len(), 10);
        assert!(pairs.iter().all(|&(_, _, c)| c == 5));
        assert_eq!(all_pairs_count(5), 10);
    }

    #[test]
    fn min_overlap_prunes() {
        let mut b = sailing_model::ClaimStoreBuilder::new();
        b.add("A", "x", "1").add("B", "x", "1"); // overlap 1
        b.add("C", "y", "1").add("C", "z", "1");
        b.add("D", "y", "1").add("D", "z", "1"); // overlap 2
        let store = b.build();
        let snap = store.snapshot();
        assert_eq!(candidate_pairs(&snap, 1).len(), 2);
        assert_eq!(candidate_pairs(&snap, 2).len(), 1);
        assert_eq!(candidate_pairs(&snap, 3).len(), 0);
        // min_overlap 0 behaves like 1 (disjoint sources never pair).
        assert_eq!(candidate_pairs(&snap, 0).len(), 2);
    }

    #[test]
    fn pairs_are_canonical_and_sorted() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let pairs = candidate_pairs(&snap, 1);
        assert!(pairs.iter().all(|&(a, b, _)| a < b));
        assert!(pairs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn detect_all_sequential_equals_parallel() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let params = DetectionParams::default();
        let accs = vec![params.initial_accuracy; snap.num_sources()];
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params);

        let seq = detect_all(&snap, &probs, &accs, &params);
        let par_params = DetectionParams {
            threads: 4,
            ..params
        };
        let par = detect_all(&snap, &probs, &accs, &par_params);
        assert_eq!(seq.len(), par.len());
        for (x, y) in seq.iter().zip(&par) {
            assert_eq!(x.a, y.a);
            assert_eq!(x.b, y.b);
            assert!((x.probability - y.probability).abs() < 1e-12);
        }
    }

    #[test]
    fn detect_all_flags_the_copy_cluster() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let params = DetectionParams::default();
        let accs = vec![params.initial_accuracy; snap.num_sources()];
        let probs = crate::truth::naive_probabilities(&snap);
        let deps = detect_all(&snap, &probs, &accs, &params);
        let s = |n: &str| store.source_id(n).unwrap();
        let find = |a: SourceId, b: SourceId| {
            let (a, b) = if a < b { (a, b) } else { (b, a) };
            deps.iter().find(|p| p.a == a && p.b == b).unwrap()
        };
        let p34 = find(s("S3"), s("S4")).probability;
        let p12 = find(s("S1"), s("S2")).probability;
        assert!(p34 > 0.35, "one-shot cluster evidence: {p34}");
        assert!(p12 < p34);
    }

    #[test]
    fn empty_snapshot_no_pairs() {
        let snap = SnapshotView::from_triples(0, 0, Vec::new());
        assert!(candidate_pairs(&snap, 1).is_empty());
    }
}
