//! Scalable candidate-pair enumeration and parallel pairwise detection.
//!
//! "Given the huge number of data sources ... determining dependence between
//! sources in a scalable manner is extremely challenging" (Section 1).
//! Testing all `O(S²)` pairs is wasteful when most pairs share nothing: only
//! pairs that co-cover at least `min_overlap` objects can ever be flagged
//! (the paper's Example 4.1 screens AbeBooks bookstore pairs by "at least
//! the same 10 books"). [`candidate_pairs`] enumerates exactly those pairs
//! from a per-object inverted index; [`detect_all`] fans the surviving pairs
//! out across worker threads.

use std::collections::HashMap;

use sailing_model::{ObjectId, SnapshotView, SourceId};

use crate::copy;
use crate::params::DetectionParams;
use crate::report::PairDependence;
use crate::truth::ValueProbabilities;

/// Enumerates unordered source pairs sharing at least `min_overlap` objects,
/// with their exact overlap counts, sorted by source ids.
///
/// Cost is `Σ_o support(o)²` rather than `S² · O` — proportional to the
/// actual co-coverage in the data.
pub fn candidate_pairs(
    snapshot: &SnapshotView,
    min_overlap: usize,
) -> Vec<(SourceId, SourceId, usize)> {
    let mut counts: HashMap<(SourceId, SourceId), usize> = HashMap::new();
    for idx in 0..snapshot.num_objects() {
        let assertions = snapshot.assertions_on(ObjectId::from_index(idx));
        for (i, &(a, _)) in assertions.iter().enumerate() {
            for &(b, _) in &assertions[i + 1..] {
                let key = if a < b { (a, b) } else { (b, a) };
                *counts.entry(key).or_insert(0) += 1;
            }
        }
    }
    let mut pairs: Vec<_> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_overlap.max(1))
        .map(|((a, b), c)| (a, b, c))
        .collect();
    pairs.sort();
    pairs
}

/// Number of pairs the naive all-pairs strategy would test.
pub fn all_pairs_count(num_sources: usize) -> usize {
    num_sources * num_sources.saturating_sub(1) / 2
}

/// Runs snapshot copy detection over every candidate pair, optionally in
/// parallel ([`DetectionParams::threads`]).
///
/// The output is sorted by `(a, b)` and therefore deterministic regardless
/// of thread count.
pub fn detect_all(
    snapshot: &SnapshotView,
    probs: &ValueProbabilities,
    accuracies: &[f64],
    params: &DetectionParams,
) -> Vec<PairDependence> {
    let pairs = candidate_pairs(snapshot, params.min_overlap);
    detect_all_with_pairs(snapshot, &pairs, probs, accuracies, params)
}

/// [`detect_all`] over an already-enumerated candidate-pair list.
///
/// The pair list is snapshot-invariant, so iterative callers (the
/// [`crate::AccuCopy`] loop) enumerate it **once per snapshot** and thread
/// it through every iteration instead of rebuilding the inverted-index
/// counts each round. The per-object effective-`n` column is hoisted here,
/// once per call, and shared by every worker.
///
/// The parallel fan-out assigns pairs to workers by **overlap-weighted
/// balanced chunks** (longest-processing-time greedy): per-pair cost is
/// proportional to its overlap, and overlap counts are heavily skewed, so
/// equal-length contiguous chunks let one fat chunk serialize the scope.
/// The output is sorted by `(a, b)` and therefore deterministic regardless
/// of thread count or chunk shape.
pub fn detect_all_with_pairs(
    snapshot: &SnapshotView,
    pairs: &[(SourceId, SourceId, usize)],
    probs: &ValueProbabilities,
    accuracies: &[f64],
    params: &DetectionParams,
) -> Vec<PairDependence> {
    let n_false = crate::truth::effective_n_false_table(snapshot, params);
    let threads = params.threads.max(1);
    if threads == 1 || pairs.len() < 2 * threads {
        let mut out: Vec<PairDependence> = pairs
            .iter()
            .filter_map(|&(a, b, _)| {
                copy::detect_pair_with(snapshot, a, b, probs, accuracies, &n_false, params)
            })
            .collect();
        // The caller may hand pairs in any order (e.g. a shard's LPT
        // ordering); sorted output must not depend on the thread count.
        out.sort_by_key(|p| (p.a, p.b));
        return out;
    }

    let chunks = balanced_chunks(pairs, threads);
    let n_false = &n_false;
    let mut results: Vec<Vec<PairDependence>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .filter_map(|&(a, b, _)| {
                            copy::detect_pair_with(
                                snapshot, a, b, probs, accuracies, n_false, params,
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("detection worker panicked"));
        }
    });
    let mut out: Vec<PairDependence> = results.into_iter().flatten().collect();
    out.sort_by_key(|p| (p.a, p.b));
    out
}

/// Splits pairs into at most `threads` buckets with near-equal total
/// overlap weight: pairs are taken heaviest-first and each goes to the
/// currently lightest bucket (the classic LPT greedy, within 4/3 of
/// optimal). Deterministic for a given input.
fn balanced_chunks(
    pairs: &[(SourceId, SourceId, usize)],
    threads: usize,
) -> Vec<Vec<(SourceId, SourceId, usize)>> {
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    // Heaviest first; index tiebreak keeps the assignment deterministic.
    order.sort_by_key(|&i| (std::cmp::Reverse(pairs[i].2), i));
    let mut buckets: Vec<Vec<(SourceId, SourceId, usize)>> = vec![Vec::new(); threads];
    let mut loads = vec![0usize; threads];
    for i in order {
        let lightest = loads
            .iter()
            .enumerate()
            .min_by_key(|&(b, &load)| (load, b))
            .map(|(b, _)| b)
            .expect("at least one bucket");
        // Every pair costs at least the detection setup, so weight 0 still
        // counts as 1 toward the balance.
        loads[lightest] += pairs[i].2.max(1);
        buckets[lightest].push(pairs[i]);
    }
    buckets.retain(|b| !b.is_empty());
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::{weighted_vote, DependenceMatrix};
    use sailing_model::fixtures;

    #[test]
    fn candidate_pairs_on_table1_is_complete() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        // All 5 sources cover all 5 objects → C(5,2)=10 pairs, overlap 5.
        let pairs = candidate_pairs(&snap, 1);
        assert_eq!(pairs.len(), 10);
        assert!(pairs.iter().all(|&(_, _, c)| c == 5));
        assert_eq!(all_pairs_count(5), 10);
    }

    #[test]
    fn min_overlap_prunes() {
        let mut b = sailing_model::ClaimStoreBuilder::new();
        b.add("A", "x", "1").add("B", "x", "1"); // overlap 1
        b.add("C", "y", "1").add("C", "z", "1");
        b.add("D", "y", "1").add("D", "z", "1"); // overlap 2
        let store = b.build();
        let snap = store.snapshot();
        assert_eq!(candidate_pairs(&snap, 1).len(), 2);
        assert_eq!(candidate_pairs(&snap, 2).len(), 1);
        assert_eq!(candidate_pairs(&snap, 3).len(), 0);
        // min_overlap 0 behaves like 1 (disjoint sources never pair).
        assert_eq!(candidate_pairs(&snap, 0).len(), 2);
    }

    #[test]
    fn pairs_are_canonical_and_sorted() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let pairs = candidate_pairs(&snap, 1);
        assert!(pairs.iter().all(|&(a, b, _)| a < b));
        assert!(pairs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn detect_all_sequential_equals_parallel() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let params = DetectionParams::default();
        let accs = vec![params.initial_accuracy; snap.num_sources()];
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params);

        let seq = detect_all(&snap, &probs, &accs, &params);
        let par_params = DetectionParams {
            threads: 4,
            ..params
        };
        let par = detect_all(&snap, &probs, &accs, &par_params);
        assert_eq!(seq.len(), par.len());
        for (x, y) in seq.iter().zip(&par) {
            assert_eq!(x.a, y.a);
            assert_eq!(x.b, y.b);
            assert!((x.probability - y.probability).abs() < 1e-12);
        }
    }

    #[test]
    fn detect_all_flags_the_copy_cluster() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let params = DetectionParams::default();
        let accs = vec![params.initial_accuracy; snap.num_sources()];
        let probs = crate::truth::naive_probabilities(&snap);
        let deps = detect_all(&snap, &probs, &accs, &params);
        let s = |n: &str| store.source_id(n).unwrap();
        let find = |a: SourceId, b: SourceId| {
            let (a, b) = if a < b { (a, b) } else { (b, a) };
            deps.iter().find(|p| p.a == a && p.b == b).unwrap()
        };
        let p34 = find(s("S3"), s("S4")).probability;
        let p12 = find(s("S1"), s("S2")).probability;
        assert!(p34 > 0.35, "one-shot cluster evidence: {p34}");
        assert!(p12 < p34);
    }

    #[test]
    fn empty_snapshot_no_pairs() {
        let snap = SnapshotView::from_triples(0, 0, Vec::new());
        assert!(candidate_pairs(&snap, 1).is_empty());
    }

    #[test]
    fn detect_all_equals_hoisted_pair_list() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let params = DetectionParams::default();
        let accs = vec![params.initial_accuracy; snap.num_sources()];
        let probs = crate::truth::naive_probabilities(&snap);

        let direct = detect_all(&snap, &probs, &accs, &params);
        let pairs = candidate_pairs(&snap, params.min_overlap);
        let hoisted = detect_all_with_pairs(&snap, &pairs, &probs, &accs, &params);
        assert_eq!(direct.len(), hoisted.len());
        for (x, y) in direct.iter().zip(&hoisted) {
            assert_eq!((x.a, x.b), (y.a, y.b));
            assert_eq!(x.probability, y.probability);
            assert_eq!(x.prob_a_on_b, y.prob_a_on_b);
        }
    }

    #[test]
    fn balanced_chunks_cover_all_pairs_with_bounded_skew() {
        // Heavily skewed weights: one fat pair plus many light ones.
        let mut pairs: Vec<(SourceId, SourceId, usize)> =
            (1..=20u32).map(|i| (SourceId(0), SourceId(i), 2)).collect();
        pairs.push((SourceId(21), SourceId(22), 40));
        let chunks = balanced_chunks(&pairs, 4);
        assert!(chunks.len() <= 4);
        let total: usize = chunks.iter().map(Vec::len).sum();
        assert_eq!(total, pairs.len(), "every pair assigned exactly once");
        let mut seen: Vec<_> = chunks.iter().flatten().copied().collect();
        seen.sort();
        let mut expected = pairs.clone();
        expected.sort();
        assert_eq!(seen, expected);
        // The fat pair must sit alone-ish: no bucket may hold more than the
        // fat weight plus one light pair's worth beyond the mean.
        let loads: Vec<usize> = chunks
            .iter()
            .map(|c| c.iter().map(|&(_, _, w)| w.max(1)).sum())
            .collect();
        let max = *loads.iter().max().unwrap();
        assert!(
            max <= 40 + 2,
            "LPT must not stack light pairs onto the fat bucket: {loads:?}"
        );
    }

    #[test]
    fn skewed_world_parallel_matches_sequential() {
        // A world where one source pair overlaps on everything and the rest
        // barely overlap — the chunking's worst case pre-balancing.
        let mut b = sailing_model::ClaimStoreBuilder::new();
        for i in 0..30 {
            let o = format!("o{i}");
            b.add("big1", &o, "v").add("big2", &o, "v");
            if i < 3 {
                b.add("small1", &o, "v").add("small2", &o, "w");
            }
        }
        let store = b.build();
        let snap = store.snapshot();
        let params = DetectionParams::default();
        let accs = vec![params.initial_accuracy; snap.num_sources()];
        let probs = crate::truth::naive_probabilities(&snap);
        let seq = detect_all(&snap, &probs, &accs, &params);
        let par = detect_all(
            &snap,
            &probs,
            &accs,
            &DetectionParams {
                threads: 3,
                ..params
            },
        );
        assert_eq!(seq.len(), par.len());
        for (x, y) in seq.iter().zip(&par) {
            assert_eq!((x.a, x.b), (y.a, y.b));
            assert_eq!(x.probability, y.probability);
        }
    }
}
