//! Bayesian snapshot copy detection (similarity-dependence).
//!
//! Implements the paper's key snapshot intuition (Section 3.2): *data sources
//! that share common false values are much more likely to be dependent than
//! data sources that share common true values* — "akin to how teachers
//! determine if students copied from each other in a multiple-choice quiz".
//!
//! For a source pair, each shared object contributes evidence depending on
//! whether the two values agree and how likely the agreed value is to be
//! true. Under independence a shared *false* value requires both sources to
//! independently pick the same wrong value out of `n` possibilities — very
//! unlikely — while under copying it merely requires the original to be
//! wrong. The posterior over {independent, A copies B, B copies A} follows
//! by Bayes' rule.

use sailing_model::{SnapshotView, SourceId};

use crate::params::DetectionParams;
use crate::report::{DependenceKind, Direction, PairDependence};
use crate::truth::{effective_n_false, ValueProbabilities};

/// Per-hypothesis log-likelihoods of one pair's joint observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairLikelihoods {
    /// Log-likelihood under independence.
    pub log_independent: f64,
    /// Log-likelihood under "`a` copies from `b`".
    pub log_a_copies_b: f64,
    /// Log-likelihood under "`b` copies from `a`".
    pub log_b_copies_a: f64,
    /// Number of shared objects.
    pub overlap: usize,
    /// Soft count of shared values weighted by probability of being false.
    pub shared_false_mass: f64,
}

/// Probability of both sources asserting the same value, split by the value
/// being true/false, plus the probability of differing — under independence.
fn independent_probs(aa: f64, ab: f64, n: f64) -> (f64, f64, f64) {
    let pt = aa * ab;
    let pf = (1.0 - aa) * (1.0 - ab) / n;
    let pd = (1.0 - pt - pf).max(1e-12);
    (pt, pf, pd)
}

/// Same, under "the copier copies each item with rate `c` from an original
/// with accuracy `a_orig`, mutating the copied value with rate `mu`";
/// `a_copier` is the copier's own accuracy for the independent remainder.
fn copying_probs(a_orig: f64, a_copier: f64, c: f64, mu: f64, n: f64) -> (f64, f64, f64) {
    let (pt_ind, pf_ind, pd_ind) = independent_probs(a_orig, a_copier, n);
    let keep = c * (1.0 - mu);
    let pt = keep * a_orig + (1.0 - c) * pt_ind;
    let pf = keep * (1.0 - a_orig) + (1.0 - c) * pf_ind;
    let pd = (c * mu + (1.0 - c) * pd_ind).max(1e-12);
    (pt, pf, pd)
}

/// The nine per-object hypothesis probabilities of one pair, which depend
/// only on the pair's accuracies, the copy parameters, and `n`.
#[derive(Debug, Clone, Copy)]
struct HypothesisProbs {
    /// Independent: shared-true, shared-false, differ.
    ind: (f64, f64, f64),
    /// "`a` copies `b`": the original is `b`.
    a_on_b: (f64, f64, f64),
    /// "`b` copies `a`": the original is `a`.
    b_on_a: (f64, f64, f64),
}

/// Per-pair cache of [`HypothesisProbs`] keyed by `n`.
///
/// Across one pair's overlap the accuracies and copy parameters are fixed,
/// so the triples vary only with the per-object effective `n`. The
/// pre-columnar code recomputed all nine probabilities for every shared
/// object; here each distinct `n` is computed once. `n` is always an
/// integral count (the effective-false-value count, bounded by the
/// per-object value diversity), so the cache is a direct-indexed table —
/// O(1) hits regardless of how many distinct `n` values an overlap spans.
struct PairHypotheses {
    aa: f64,
    ab: f64,
    c: f64,
    mu: f64,
    by_n: Vec<Option<HypothesisProbs>>,
}

impl PairHypotheses {
    fn new(aa: f64, ab: f64, c: f64, mu: f64) -> Self {
        Self {
            aa,
            ab,
            c,
            mu,
            by_n: Vec::new(),
        }
    }

    #[inline]
    fn probs_for(&mut self, n: f64) -> HypothesisProbs {
        let idx = n as usize;
        if idx >= self.by_n.len() {
            self.by_n.resize(idx + 1, None);
        }
        if let Some(h) = self.by_n[idx] {
            return h;
        }
        let h = HypothesisProbs {
            ind: independent_probs(self.aa, self.ab, n),
            a_on_b: copying_probs(self.ab, self.aa, self.c, self.mu, n),
            b_on_a: copying_probs(self.aa, self.ab, self.c, self.mu, n),
        };
        self.by_n[idx] = Some(h);
        h
    }
}

/// Computes the three hypothesis log-likelihoods for a pair from the current
/// value probabilities.
///
/// The truth of a shared value is a latent variable: a shared value that is
/// true with probability `p` contributes the **marginal** likelihood
/// `ln(p·P_sharedtrue + (1−p)·P_sharedfalse)` to each hypothesis. The
/// marginal (not the expected log-likelihood — Jensen's inequality makes
/// that difference decisive) keeps the evidence weak while the truth is
/// still uncertain, so honest sources that merely share disputed values are
/// not flagged; as the iterative scheme sharpens the truth estimates,
/// confidently-false shared values dominate exactly as the paper's
/// intuition 1 prescribes.
pub fn pair_likelihoods(
    snapshot: &SnapshotView,
    a: SourceId,
    b: SourceId,
    probs: &ValueProbabilities,
    accuracies: &[f64],
    params: &DetectionParams,
) -> PairLikelihoods {
    pair_likelihoods_impl(snapshot, a, b, probs, accuracies, params, |object| {
        effective_n_false(snapshot, object, params) as f64
    })
}

/// [`pair_likelihoods`] with the effective-`n` column hoisted out: `n_false`
/// is [`crate::truth::effective_n_false_table`]'s output, computed once per iteration (it
/// is snapshot-invariant) instead of once per shared object per pair.
pub fn pair_likelihoods_with(
    snapshot: &SnapshotView,
    a: SourceId,
    b: SourceId,
    probs: &ValueProbabilities,
    accuracies: &[f64],
    n_false: &[f64],
    params: &DetectionParams,
) -> PairLikelihoods {
    pair_likelihoods_impl(snapshot, a, b, probs, accuracies, params, |object| {
        n_false.get(object.index()).copied().unwrap_or(1.0)
    })
}

fn pair_likelihoods_impl(
    snapshot: &SnapshotView,
    a: SourceId,
    b: SourceId,
    probs: &ValueProbabilities,
    accuracies: &[f64],
    params: &DetectionParams,
    n_of: impl Fn(sailing_model::ObjectId) -> f64,
) -> PairLikelihoods {
    let aa = params.clamp_accuracy(accuracies.get(a.index()).copied().unwrap_or(0.5));
    let ab = params.clamp_accuracy(accuracies.get(b.index()).copied().unwrap_or(0.5));
    let mut hyp = PairHypotheses::new(aa, ab, params.copy_rate, params.copy_mutation_rate);

    let mut out = PairLikelihoods {
        log_independent: 0.0,
        log_a_copies_b: 0.0,
        log_b_copies_a: 0.0,
        overlap: 0,
        shared_false_mass: 0.0,
    };

    for (object, va, vb) in snapshot.overlap(a, b) {
        out.overlap += 1;
        let h = hyp.probs_for(n_of(object));
        let (it, if_, id) = h.ind;
        let (abt, abf, abd) = h.a_on_b;
        let (bat, baf, bad) = h.b_on_a;

        if va == vb {
            let p_true = probs.prob(object, va);
            let p_false = 1.0 - p_true;
            out.shared_false_mass += p_false;
            out.log_independent += (p_true * it + p_false * if_).max(1e-300).ln();
            out.log_a_copies_b += (p_true * abt + p_false * abf).max(1e-300).ln();
            out.log_b_copies_a += (p_true * bat + p_false * baf).max(1e-300).ln();
        } else {
            out.log_independent += id.ln();
            out.log_a_copies_b += abd.ln();
            out.log_b_copies_a += bad.ln();
        }
    }
    out
}

/// Turns the three log-likelihoods into a posterior [`PairDependence`].
pub fn posterior(
    a: SourceId,
    b: SourceId,
    lik: &PairLikelihoods,
    params: &DetectionParams,
) -> PairDependence {
    let prior_dep = params.prior_dependence;
    let log_priors = [
        (1.0 - prior_dep).max(1e-12).ln(),
        (prior_dep / 2.0).max(1e-12).ln(),
        (prior_dep / 2.0).max(1e-12).ln(),
    ];
    let logs = [
        log_priors[0] + lik.log_independent,
        log_priors[1] + lik.log_a_copies_b,
        log_priors[2] + lik.log_b_copies_a,
    ];
    let m = logs.iter().fold(f64::NEG_INFINITY, |x, &y| x.max(y));
    let exps: Vec<f64> = logs.iter().map(|&l| (l - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    let p_ind = exps[0] / z;
    let p_ab = exps[1] / z;
    let p_ba = exps[2] / z;

    let probability = 1.0 - p_ind;
    let prob_a_on_b = if p_ab + p_ba > 0.0 {
        p_ab / (p_ab + p_ba)
    } else {
        0.5
    };
    let direction = if probability < 0.5 || (prob_a_on_b - 0.5).abs() < 0.1 {
        Direction::Unknown
    } else if prob_a_on_b > 0.5 {
        Direction::AOnB
    } else {
        Direction::BOnA
    };
    PairDependence {
        a,
        b,
        probability,
        prob_a_on_b,
        kind: DependenceKind::Similarity,
        direction,
        overlap: lik.overlap,
        diagnostic: lik.log_a_copies_b.max(lik.log_b_copies_a) - lik.log_independent,
    }
    .canonical()
}

/// Detects copying for one pair; `None` when the overlap is below
/// [`DetectionParams::min_overlap`].
pub fn detect_pair(
    snapshot: &SnapshotView,
    a: SourceId,
    b: SourceId,
    probs: &ValueProbabilities,
    accuracies: &[f64],
    params: &DetectionParams,
) -> Option<PairDependence> {
    let lik = pair_likelihoods(snapshot, a, b, probs, accuracies, params);
    (lik.overlap >= params.min_overlap).then(|| posterior(a, b, &lik, params))
}

/// [`detect_pair`] with the effective-`n` column hoisted out — the form the
/// batched [`crate::pairs::detect_all_with_pairs`] fan-out uses.
pub fn detect_pair_with(
    snapshot: &SnapshotView,
    a: SourceId,
    b: SourceId,
    probs: &ValueProbabilities,
    accuracies: &[f64],
    n_false: &[f64],
    params: &DetectionParams,
) -> Option<PairDependence> {
    let lik = pair_likelihoods_with(snapshot, a, b, probs, accuracies, n_false, params);
    (lik.overlap >= params.min_overlap).then(|| posterior(a, b, &lik, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::{naive_probabilities, weighted_vote, DependenceMatrix};
    use sailing_model::fixtures;

    fn setup_table1() -> (
        sailing_model::ClaimStore,
        SnapshotView,
        ValueProbabilities,
        Vec<f64>,
        DetectionParams,
    ) {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let params = DetectionParams::default();
        let accs = vec![params.initial_accuracy; snap.num_sources()];
        let probs = naive_probabilities(&snap);
        (store, snap, probs, accs, params)
    }

    #[test]
    fn exact_copiers_are_detected() {
        // One-shot detection from five objects is necessarily soft (the
        // iterative pipeline sharpens it to ≈1); what must hold is that the
        // exact copy stands above the dependence prior and above every
        // independent pair.
        let (store, snap, probs, accs, params) = setup_table1();
        let s3 = store.source_id("S3").unwrap();
        let s4 = store.source_id("S4").unwrap();
        let dep = detect_pair(&snap, s3, s4, &probs, &accs, &params).unwrap();
        assert!(
            dep.probability > 0.35 && dep.diagnostic > 0.5,
            "S3–S4 share five identical values incl. disputed ones: {dep:?}"
        );
        assert_eq!(dep.overlap, 5);
        let s1 = store.source_id("S1").unwrap();
        let s2 = store.source_id("S2").unwrap();
        let indep = detect_pair(&snap, s1, s2, &probs, &accs, &params).unwrap();
        assert!(dep.probability > 2.0 * indep.probability);
    }

    #[test]
    fn near_copiers_are_detected() {
        let (store, snap, probs, accs, params) = setup_table1();
        let s3 = store.source_id("S3").unwrap();
        let s5 = store.source_id("S5").unwrap();
        let dep = detect_pair(&snap, s3, s5, &probs, &accs, &params).unwrap();
        let s1 = store.source_id("S1").unwrap();
        let s2 = store.source_id("S2").unwrap();
        let indep = detect_pair(&snap, s1, s2, &probs, &accs, &params).unwrap();
        assert!(
            dep.probability > indep.probability,
            "S5 copies S3 with one change and must outrank S1–S2: {} vs {}",
            dep.probability,
            indep.probability
        );
        assert!(
            dep.probability > 0.15,
            "above the hard-damping bar: {dep:?}"
        );
    }

    #[test]
    fn independent_accurate_sources_are_not_flagged() {
        let (store, snap, probs, accs, params) = setup_table1();
        let s1 = store.source_id("S1").unwrap();
        let s2 = store.source_id("S2").unwrap();
        let dep = detect_pair(&snap, s1, s2, &probs, &accs, &params).unwrap();
        let s3 = store.source_id("S3").unwrap();
        let s4 = store.source_id("S4").unwrap();
        let cluster = detect_pair(&snap, s3, s4, &probs, &accs, &params).unwrap();
        assert!(
            dep.probability < cluster.probability,
            "S1–S2 (shared true values) must score far below S3–S4: {} vs {}",
            dep.probability,
            cluster.probability
        );
    }

    #[test]
    fn min_overlap_gate() {
        let (store, snap, probs, accs, _) = setup_table1();
        let params = DetectionParams {
            min_overlap: 6,
            ..DetectionParams::default()
        };
        let s3 = store.source_id("S3").unwrap();
        let s4 = store.source_id("S4").unwrap();
        assert!(detect_pair(&snap, s3, s4, &probs, &accs, &params).is_none());
    }

    #[test]
    fn shared_false_values_outweigh_shared_true_values() {
        // Two synthetic pairs with identical overlap size: one shares values
        // believed true, the other values believed false. The latter must
        // produce a larger likelihood ratio — the paper's central intuition.
        let mut b = sailing_model::ClaimStoreBuilder::new();
        for i in 0..8 {
            let o = format!("obj{i}");
            b.add("T1", &o, "right")
                .add("T2", &o, "right")
                .add("W1", &o, "wrong")
                .add("W2", &o, "wrong")
                // Three extra independent voters make "right" the consensus.
                .add("V1", &o, "right")
                .add("V2", &o, "right")
                .add("V3", &o, "right");
        }
        let store = b.build();
        let snap = store.snapshot();
        let params = DetectionParams::default();
        let accs = vec![params.initial_accuracy; snap.num_sources()];
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params);

        let t = |n: &str| store.source_id(n).unwrap();
        let lik_true = pair_likelihoods(&snap, t("T1"), t("T2"), &probs, &accs, &params);
        let lik_false = pair_likelihoods(&snap, t("W1"), t("W2"), &probs, &accs, &params);
        let ratio_true = lik_true.log_a_copies_b - lik_true.log_independent;
        let ratio_false = lik_false.log_a_copies_b - lik_false.log_independent;
        assert!(
            ratio_false > ratio_true + 1.0,
            "shared-false evidence {ratio_false} must dominate shared-true {ratio_true}"
        );
        assert!(lik_false.shared_false_mass > lik_true.shared_false_mass);
    }

    #[test]
    fn posterior_probabilities_are_coherent() {
        let (store, snap, probs, accs, params) = setup_table1();
        for a in store.source_ids() {
            for b in store.source_ids() {
                if a >= b {
                    continue;
                }
                let dep = detect_pair(&snap, a, b, &probs, &accs, &params).unwrap();
                assert!((0.0..=1.0).contains(&dep.probability));
                assert!((0.0..=1.0).contains(&dep.prob_a_on_b));
                assert!(dep.a < dep.b);
            }
        }
    }

    #[test]
    fn direction_prefers_the_less_accurate_copier() {
        // Original O is accurate everywhere; copier C repeats O's values on
        // shared objects but is wrong on its private ones, so C's accuracy
        // estimate is lower. The direction posterior should lean toward
        // "C copies O" (the hypothesis where the original is accurate).
        let mut b = sailing_model::ClaimStoreBuilder::new();
        for i in 0..6 {
            let o = format!("shared{i}");
            b.add("O", &o, "v");
            b.add("C", &o, "v");
            b.add("X1", &o, "v");
            b.add("X2", &o, "other");
        }
        let store = b.build();
        let snap = store.snapshot();
        let params = DetectionParams::default();
        let o_id = store.source_id("O").unwrap();
        let c_id = store.source_id("C").unwrap();
        let mut accs = vec![params.initial_accuracy; snap.num_sources()];
        accs[o_id.index()] = 0.95;
        accs[c_id.index()] = 0.55;
        let probs = weighted_vote(&snap, &accs, &DependenceMatrix::new(), &params);
        let dep = detect_pair(&snap, o_id, c_id, &probs, &accs, &params).unwrap();
        let p_c_on_o = if dep.a == c_id {
            dep.prob_a_on_b
        } else {
            1.0 - dep.prob_a_on_b
        };
        assert!(
            p_c_on_o > 0.5,
            "direction should favour the less accurate source copying: {dep:?}"
        );
    }

    #[test]
    fn probs_helpers_are_distributions() {
        let (pt, pf, pd) = independent_probs(0.8, 0.7, 10.0);
        assert!((pt + pf + pd - 1.0).abs() < 1e-9);
        let (ct, cf, cd) = copying_probs(0.8, 0.7, 0.8, 0.1, 10.0);
        assert!((ct + cf + cd - 1.0).abs() < 1e-9);
        assert!(ct > pt && cf > pf && cd < pd);
    }
}
