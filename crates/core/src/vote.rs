//! Naive voting — the baseline that source dependence defeats.
//!
//! "Simply using the information that is asserted by the largest number of
//! data sources is clearly inadequate" (Section 1): Table 1 shows naive
//! voting picking the copied false affiliations. This module implements that
//! baseline so experiments can demonstrate exactly that failure.

use std::collections::HashMap;

use sailing_model::{ObjectId, SnapshotView, ValueId};

/// Picks, for every covered object, the value asserted by the most sources.
///
/// Ties break toward the smallest [`ValueId`] so results are deterministic;
/// the paper's Example 2.1 notes that under a genuine three-way tie
/// ("remain unsure of the affiliation of Dong") any choice is arbitrary.
pub fn naive_vote(snapshot: &SnapshotView) -> HashMap<ObjectId, ValueId> {
    let mut decisions = HashMap::new();
    for idx in 0..snapshot.num_objects() {
        let object = ObjectId::from_index(idx);
        if let Some((value, _)) = snapshot.value_counts(object).into_iter().next() {
            decisions.insert(object, value);
        }
    }
    decisions
}

/// Vote shares per object: each observed value's fraction of the votes.
///
/// This is the naive "probability" a dependence-unaware system would attach
/// to each conflicting value.
pub fn naive_distribution(snapshot: &SnapshotView) -> HashMap<ObjectId, Vec<(ValueId, f64)>> {
    let mut out = HashMap::new();
    for idx in 0..snapshot.num_objects() {
        let object = ObjectId::from_index(idx);
        let counts = snapshot.value_counts(object);
        let total: usize = counts.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            continue;
        }
        out.insert(
            object,
            counts
                .into_iter()
                .map(|(v, c)| (v, c as f64 / total as f64))
                .collect(),
        );
    }
    out
}

/// Objects on which naive voting is *not* unanimous — the conflicts the
/// paper is about.
pub fn conflicted_objects(snapshot: &SnapshotView) -> Vec<ObjectId> {
    (0..snapshot.num_objects())
        .map(ObjectId::from_index)
        .filter(|&o| snapshot.distinct_values(o) > 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_model::fixtures;
    use sailing_model::Value;

    #[test]
    fn naive_vote_on_table1_follows_the_copiers() {
        // Example 2.1: with S4, S5 copying S3, naive voting selects S3's
        // values and is wrong on Halevy, Dalvi and Dong.
        let (store, truth) = fixtures::table1();
        let decisions = naive_vote(&store.snapshot());
        let uw = store.value_id(&Value::text("UW")).unwrap();
        for name in ["Halevy", "Dalvi", "Dong"] {
            let o = store.object_id(name).unwrap();
            assert_eq!(decisions[&o], uw, "naive vote should pick UW for {name}");
            assert!(!truth.is_true(o, decisions[&o]));
        }
        // Correct only on Suciu and Balazinska (2 of 5).
        let precision = truth.decision_precision(&decisions).unwrap();
        assert!((precision - 0.4).abs() < 1e-12);
    }

    #[test]
    fn naive_vote_on_independent_subset_gets_four_of_five() {
        // Example 2.1 first half: with S1..S3 only, naive voting finds the
        // correct affiliation for the first four researchers and a three-way
        // tie for Dong.
        let (store, truth) = fixtures::table1_independent_only();
        let decisions = naive_vote(&store.snapshot());
        for name in ["Suciu", "Halevy", "Balazinska", "Dalvi"] {
            let o = store.object_id(name).unwrap();
            assert!(truth.is_true(o, decisions[&o]), "{name} should be correct");
        }
        let dong = store.object_id("Dong").unwrap();
        assert_eq!(store.snapshot().distinct_values(dong), 3);
    }

    #[test]
    fn naive_distribution_sums_to_one() {
        let (store, _) = fixtures::table1();
        let dist = naive_distribution(&store.snapshot());
        assert_eq!(dist.len(), 5);
        for shares in dist.values() {
            let total: f64 = shares.iter().map(|&(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(shares.windows(2).all(|w| w[0].1 >= w[1].1));
        }
    }

    #[test]
    fn conflicted_objects_on_table1() {
        let (store, _) = fixtures::table1();
        let conflicts = conflicted_objects(&store.snapshot());
        // Balazinska is unanimous (UW everywhere); the other four conflict.
        assert_eq!(conflicts.len(), 4);
        let bal = store.object_id("Balazinska").unwrap();
        assert!(!conflicts.contains(&bal));
    }

    #[test]
    fn empty_snapshot() {
        let snap = SnapshotView::from_triples(0, 0, Vec::new());
        assert!(naive_vote(&snap).is_empty());
        assert!(naive_distribution(&snap).is_empty());
        assert!(conflicted_objects(&snap).is_empty());
    }
}
