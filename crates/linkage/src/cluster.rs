//! Clustering of alternative representations.
//!
//! When multiple sources spell one value differently, dependence detection
//! and fusion should treat the spellings as one value. [`cluster_values`]
//! groups values whose pairwise similarity crosses a threshold, using a
//! [`UnionFind`] over all candidate pairs.

/// A classic disjoint-set (union-find) structure with path compression and
/// union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// `true` when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Materialises the clusters, each sorted, ordered by smallest member.
    pub fn clusters(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        for c in &mut out {
            c.sort_unstable();
        }
        out.sort_by_key(|c| c[0]);
        out
    }
}

/// Groups `values` into clusters of alternative representations: two values
/// join the same cluster when `similarity(a, b) >= threshold`.
///
/// `O(n²)` comparisons; intended for per-object value sets (a handful of
/// spellings), not whole corpora.
pub fn cluster_values<T, F>(values: &[T], threshold: f64, similarity: F) -> Vec<Vec<usize>>
where
    F: Fn(&T, &T) -> f64,
{
    let mut uf = UnionFind::new(values.len());
    for i in 0..values.len() {
        for j in (i + 1)..values.len() {
            if similarity(&values[i], &values[j]) >= threshold {
                uf.union(i, j);
            }
        }
    }
    uf.clusters()
}

/// Picks a canonical representative per cluster: the index of the value most
/// similar to all others in its cluster (the medoid).
pub fn medoids<T, F>(values: &[T], clusters: &[Vec<usize>], similarity: F) -> Vec<usize>
where
    F: Fn(&T, &T) -> f64,
{
    clusters
        .iter()
        .map(|cluster| {
            *cluster
                .iter()
                .max_by(|&&i, &&j| {
                    let si: f64 = cluster
                        .iter()
                        .map(|&k| similarity(&values[i], &values[k]))
                        .sum();
                    let sj: f64 = cluster
                        .iter()
                        .map(|&k| similarity(&values[j], &values[k]))
                        .sum();
                    si.total_cmp(&sj).then(j.cmp(&i))
                })
                .unwrap()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::jaro_winkler;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        let clusters = uf.clusters();
        assert_eq!(clusters, vec![vec![0, 1, 2], vec![3], vec![4]]);
    }

    #[test]
    fn union_find_path_compression_is_consistent() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), root);
        }
        assert_eq!(uf.clusters().len(), 1);
    }

    #[test]
    fn cluster_spelling_variants() {
        let values = [
            "AT&T Labs-Research",
            "AT&T Labs Research",
            "at&t labs research",
            "Rutgers University",
            "Rutgers Univ.",
            "Stanford",
        ];
        let clusters = cluster_values(&values, 0.9, |a, b| {
            jaro_winkler(&crate::normalize(a), &crate::normalize(b))
        });
        // AT&T variants together, Rutgers variants together, Stanford alone.
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0], vec![0, 1, 2]);
        assert_eq!(clusters[1], vec![3, 4]);
        assert_eq!(clusters[2], vec![5]);
    }

    #[test]
    fn cluster_threshold_one_keeps_distinct() {
        let values = ["a", "b", "c"];
        let clusters = cluster_values(&values, 1.0, |a, b| if a == b { 1.0 } else { 0.0 });
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn cluster_transitive_merge() {
        // a~b and b~c but a!~c: single-link clustering merges all three.
        let sim = |a: &&str, b: &&str| match (*a, *b) {
            ("a", "b") | ("b", "a") | ("b", "c") | ("c", "b") => 0.95,
            _ if a == b => 1.0,
            _ => 0.0,
        };
        let values = ["a", "b", "c"];
        let clusters = cluster_values(&values, 0.9, sim);
        assert_eq!(clusters.len(), 1);
    }

    #[test]
    fn medoid_picks_central_value() {
        let values = ["color", "colour", "couleur"];
        let clusters = vec![vec![0, 1, 2]];
        let m = medoids(&values, &clusters, |a, b| jaro_winkler(a, b));
        assert_eq!(m.len(), 1);
        // The outlier spelling must not be the representative.
        assert_ne!(values[m[0]], "couleur");
    }

    #[test]
    fn empty_inputs() {
        let values: [&str; 0] = [];
        assert!(cluster_values(&values, 0.5, |_, _| 1.0).is_empty());
        let mut uf = UnionFind::new(0);
        assert!(uf.clusters().is_empty());
        assert!(uf.is_empty());
    }
}
