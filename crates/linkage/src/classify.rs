//! Representation-vs-wrong-value classification.
//!
//! "A challenge is that the boundary between a wrong value and an
//! alternative representation is often vague. For example, 'Luna Dong' is an
//! alternative representation of 'Xin Dong', while 'Xing Dong' is a wrong
//! value. How can one distinguish between them?" (Section 4).
//!
//! [`classify_pair`] combines three signals:
//!
//! 1. **formatting**: normalised equality → same representation;
//! 2. **surface similarity**: high n-gram/edit similarity with *structural*
//!    agreement (same token count, compatible initials) → alternative
//!    representation;
//! 3. **alias evidence**: a caller-provided alias table (e.g. learned from
//!    co-occurrence across sources) can promote dissimilar strings
//!    ("Luna" vs "Xin") to alternatives — pure string distance cannot know
//!    that, which is exactly the paper's point.

use serde::{Deserialize, Serialize};

use crate::metrics::{levenshtein, ngram_similarity};
use crate::normalize::normalize;

/// How two value strings relate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueRelation {
    /// Identical up to formatting ("AT&T Research" vs "at&t research").
    SameRepresentation,
    /// Different renderings of the same underlying value
    /// ("Xin Dong" vs "X. Dong", or a known alias like "Luna Dong").
    AlternativeRepresentation,
    /// Genuinely different values ("Xin Dong" vs "Xing Dong").
    DifferentValue,
}

/// Thresholds for [`classify_pair`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifyParams {
    /// Minimum full-string similarity for the alternative-representation
    /// verdict when the token structure agrees.
    pub alt_similarity: f64,
    /// Maximum edit distance, per token, still considered a formatting-level
    /// variation (e.g. "Ullman"/"Ullmann").
    pub token_edit_tolerance: usize,
}

impl Default for ClassifyParams {
    fn default() -> Self {
        Self {
            alt_similarity: 0.88,
            token_edit_tolerance: 1,
        }
    }
}

/// Classifies the relation between two strings, optionally consulting an
/// alias oracle (`is_alias(a_token, b_token) == true` means the tokens are
/// known alternative names).
pub fn classify_pair(
    a: &str,
    b: &str,
    params: &ClassifyParams,
    is_alias: impl Fn(&str, &str) -> bool,
) -> ValueRelation {
    let na = normalize(a);
    let nb = normalize(b);
    if na == nb {
        return ValueRelation::SameRepresentation;
    }
    let ta: Vec<&str> = na.split_whitespace().collect();
    let tb: Vec<&str> = nb.split_whitespace().collect();

    // Token-aligned comparison when structures are compatible.
    if tokens_compatible(&ta, &tb, params, &is_alias) {
        return ValueRelation::AlternativeRepresentation;
    }

    // Reordered tokens: "dong xin" vs "xin dong" are the same tokens in a
    // different order. Only exact multiset equality counts here — a fuzzy
    // whole-string fallback would wave "Xing Dong" through.
    let mut sa = ta.clone();
    let mut sb = tb.clone();
    sa.sort_unstable();
    sb.sort_unstable();
    if sa == sb {
        return ValueRelation::AlternativeRepresentation;
    }
    // Long single-token variants missed by the aligned pass (hyphenation
    // differences collapse token counts in odd ways).
    if ta.len() != tb.len() && ngram_similarity(&na, &nb, 2) >= params.alt_similarity.max(0.92) {
        return ValueRelation::AlternativeRepresentation;
    }
    ValueRelation::DifferentValue
}

fn tokens_compatible(
    ta: &[&str],
    tb: &[&str],
    params: &ClassifyParams,
    is_alias: &impl Fn(&str, &str) -> bool,
) -> bool {
    if ta.is_empty() || tb.is_empty() {
        return false;
    }
    // Same token count: align positionally.
    if ta.len() == tb.len() {
        return ta
            .iter()
            .zip(tb)
            .all(|(x, y)| token_variant(x, y, params, is_alias));
    }
    // Different counts: the shorter must be a subsequence of compatible
    // tokens of the longer (dropped middle names are fine, the *last* token
    // — usually the surname — must still match).
    let (short, long) = if ta.len() < tb.len() {
        (ta, tb)
    } else {
        (tb, ta)
    };
    if !token_variant(
        short.last().unwrap(),
        long.last().unwrap(),
        params,
        is_alias,
    ) {
        return false;
    }
    let mut it = long.iter();
    short[..short.len() - 1]
        .iter()
        .all(|x| it.by_ref().any(|y| token_variant(x, y, params, is_alias)))
}

fn token_variant(
    x: &str,
    y: &str,
    params: &ClassifyParams,
    is_alias: &impl Fn(&str, &str) -> bool,
) -> bool {
    if x == y || is_alias(x, y) || is_alias(y, x) {
        return true;
    }
    // Initial matching: "x" ↔ "xin".
    if (x.len() == 1 && y.starts_with(x)) || (y.len() == 1 && x.starts_with(y)) {
        return true;
    }
    // Small typo tolerance only for tokens long enough that one edit is
    // clearly formatting noise rather than a different name: "ullman" vs
    // "ullmann" yes, "xin" vs "xing" no.
    x.len().min(y.len()) >= 5 && levenshtein(x, y) <= params.token_edit_tolerance
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_alias(_: &str, _: &str) -> bool {
        false
    }

    fn classify(a: &str, b: &str) -> ValueRelation {
        classify_pair(a, b, &ClassifyParams::default(), no_alias)
    }

    #[test]
    fn formatting_variants_are_same() {
        assert_eq!(
            classify("AT&T Research", "at&t research"),
            ValueRelation::SameRepresentation
        );
        assert_eq!(
            classify("  Xin  Dong ", "xin dong"),
            ValueRelation::SameRepresentation
        );
    }

    #[test]
    fn initials_are_alternatives() {
        assert_eq!(
            classify("Xin Dong", "X. Dong"),
            ValueRelation::AlternativeRepresentation
        );
        assert_eq!(
            classify("Jeffrey D. Ullman", "Jeffrey Ullman"),
            ValueRelation::AlternativeRepresentation
        );
    }

    #[test]
    fn long_token_typos_are_alternatives() {
        assert_eq!(
            classify("Jeffrey Ullman", "Jeffrey Ullmann"),
            ValueRelation::AlternativeRepresentation
        );
    }

    #[test]
    fn the_papers_xing_dong_is_wrong() {
        // "Xing Dong" is a wrong value, not a representation of "Xin Dong":
        // short tokens get no typo tolerance.
        assert_eq!(
            classify("Xin Dong", "Xing Dong"),
            ValueRelation::DifferentValue
        );
    }

    #[test]
    fn the_papers_luna_dong_needs_alias_evidence() {
        // Pure string distance cannot see that "Luna" aliases "Xin"...
        assert_eq!(
            classify("Xin Dong", "Luna Dong"),
            ValueRelation::DifferentValue
        );
        // ...but alias evidence (e.g. learned from co-occurrence) can.
        let alias = |a: &str, b: &str| (a, b) == ("xin", "luna") || (a, b) == ("luna", "xin");
        assert_eq!(
            classify_pair("Xin Dong", "Luna Dong", &ClassifyParams::default(), alias),
            ValueRelation::AlternativeRepresentation
        );
    }

    #[test]
    fn reordered_tokens_are_alternatives() {
        assert_eq!(
            classify("Dong Xin", "Xin Dong"),
            ValueRelation::AlternativeRepresentation
        );
    }

    #[test]
    fn unrelated_values_differ() {
        assert_eq!(
            classify("Google", "Microsoft Research"),
            ValueRelation::DifferentValue
        );
        assert_eq!(classify("UW", "UWisc"), ValueRelation::DifferentValue);
    }

    #[test]
    fn dropped_middle_name_is_alternative_but_wrong_surname_is_not() {
        assert_eq!(
            classify("Hector Garcia-Molina", "H. Garcia-Molina"),
            ValueRelation::AlternativeRepresentation
        );
        assert_eq!(
            classify("Jeffrey Ullman", "Jeffrey Naughton"),
            ValueRelation::DifferentValue
        );
    }

    #[test]
    fn empty_strings() {
        assert_eq!(classify("", ""), ValueRelation::SameRepresentation);
        assert_eq!(classify("x", ""), ValueRelation::DifferentValue);
    }
}
