//! Value normalisation: collapse pure formatting differences before any
//! similarity computation.
//!
//! "The author lists are formatted in various ways" (Example 4.1):
//! `"BLOCH, Joshua"` and `"joshua bloch"` should normalise to the same key,
//! while genuinely different names should not.

/// Normalises a string value: Unicode-aware lowercasing, punctuation →
/// space, whitespace collapsed, common latin diacritics folded.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.chars() {
        let folded = fold_char(ch);
        for ch in folded.chars() {
            let ch = if ch.is_alphanumeric() {
                let mut lower = ch.to_lowercase();
                let first = lower.next().unwrap_or(ch);
                // Multi-char lowercase expansions are rare; keep the first.
                first
            } else {
                ' '
            };
            if ch == ' ' {
                if !last_space {
                    out.push(' ');
                    last_space = true;
                }
            } else {
                out.push(ch);
                last_space = false;
            }
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Folds common Latin-1/Latin Extended diacritics to their base letter.
fn fold_diacritic(ch: char) -> &'static str {
    match ch {
        'á' | 'à' | 'â' | 'ä' | 'ã' | 'å' | 'Á' | 'À' | 'Â' | 'Ä' | 'Ã' | 'Å' => "a",
        'é' | 'è' | 'ê' | 'ë' | 'É' | 'È' | 'Ê' | 'Ë' => "e",
        'í' | 'ì' | 'î' | 'ï' | 'Í' | 'Ì' | 'Î' | 'Ï' => "i",
        'ó' | 'ò' | 'ô' | 'ö' | 'õ' | 'Ó' | 'Ò' | 'Ô' | 'Ö' | 'Õ' => "o",
        'ú' | 'ù' | 'û' | 'ü' | 'Ú' | 'Ù' | 'Û' | 'Ü' => "u",
        'ç' | 'Ç' => "c",
        'ñ' | 'Ñ' => "n",
        'ý' | 'ÿ' | 'Ý' => "y",
        'ß' => "ss",
        'æ' | 'Æ' => "ae",
        'ø' | 'Ø' => "o",
        _ => {
            // Safety net: return the char itself via a static lookup is not
            // possible for arbitrary chars; handled by the caller loop.
            ""
        }
    }
}

/// Like [`normalize`] but preserves characters the diacritic table does not
/// know (the real entry point; `fold_diacritic` only handles known letters).
pub(crate) fn fold_char(ch: char) -> String {
    let folded = fold_diacritic(ch);
    if folded.is_empty() {
        ch.to_string()
    } else {
        folded.to_string()
    }
}

/// Normalised equality: `true` when two values differ only in formatting.
pub fn normalized_eq(a: &str, b: &str) -> bool {
    normalize(a) == normalize(b)
}

/// Initial of a (normalised) token, if any.
pub fn initial(token: &str) -> Option<char> {
    token.chars().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_collapses() {
        assert_eq!(normalize("  Joshua   BLOCH  "), "joshua bloch");
        assert_eq!(normalize("AT&T Labs--Research"), "at t labs research");
        assert_eq!(
            normalize("Effective Java, 2nd Ed."),
            "effective java 2nd ed"
        );
    }

    #[test]
    fn folds_diacritics() {
        assert_eq!(normalize("Berti-Équille"), "berti equille");
        assert_eq!(normalize("Ámélie"), "amelie");
        assert_eq!(normalize("Straße"), "strasse");
        assert_eq!(normalize("Ørsted"), "orsted");
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("---"), "");
        assert_eq!(normalize(" . , ; "), "");
    }

    #[test]
    fn normalized_eq_matches_formatting_variants() {
        assert!(normalized_eq("J. Ullman", "j ullman"));
        assert!(normalized_eq("BLOCH, Joshua", "bloch joshua"));
        assert!(!normalized_eq("Xin Dong", "Xing Dong"));
    }

    #[test]
    fn initial_extraction() {
        assert_eq!(initial("joshua"), Some('j'));
        assert_eq!(initial(""), None);
    }

    #[test]
    fn idempotent() {
        for s in ["Berti-Équille", "  A  B  ", "AT&T", "ß"] {
            let once = normalize(s);
            assert_eq!(normalize(&once), once);
        }
    }
}
