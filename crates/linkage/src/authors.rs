//! Author-list parsing and matching.
//!
//! Example 4.1's listings carry author lists that are "formatted in various
//! ways; there are misspellings, missing authors, misordered authors, and
//! wrong authors". This module parses raw author-list strings into
//! structured [`AuthorName`]s and scores whether two lists plausibly denote
//! the same set of people.

use serde::{Deserialize, Serialize};

use crate::metrics::jaro_winkler;
use crate::normalize::normalize;

/// One parsed author: normalised given-name tokens and surname.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AuthorName {
    /// Given names / initials, normalised, in order.
    pub given: Vec<String>,
    /// Family name, normalised.
    pub surname: String,
}

impl AuthorName {
    /// Parses a single name. Supports `"Last, First Middle"` and
    /// `"First Middle Last"`.
    pub fn parse(raw: &str) -> Option<Self> {
        let raw = raw.trim();
        if raw.is_empty() {
            return None;
        }
        if let Some((last, first)) = raw.split_once(',') {
            let surname = normalize(last);
            let given: Vec<String> = normalize(first)
                .split_whitespace()
                .map(str::to_string)
                .collect();
            if surname.is_empty() {
                return None;
            }
            return Some(Self { given, surname });
        }
        let norm = normalize(raw);
        let mut tokens: Vec<String> = norm.split_whitespace().map(str::to_string).collect();
        let surname = tokens.pop()?;
        Some(Self {
            given: tokens,
            surname,
        })
    }

    /// `true` when the two names are compatible: surnames match (exactly or
    /// within a small edit tolerance) and given names are compatible as full
    /// names or initials.
    pub fn matches(&self, other: &Self) -> bool {
        if !surname_match(&self.surname, &other.surname) {
            return false;
        }
        given_compatible(&self.given, &other.given)
    }

    /// Similarity in `[0, 1]` combining surname and given-name evidence.
    pub fn similarity(&self, other: &Self) -> f64 {
        let s = jaro_winkler(&self.surname, &other.surname);
        let g = if self.given.is_empty() || other.given.is_empty() {
            0.8 // unknown given names neither confirm nor deny
        } else if given_compatible(&self.given, &other.given) {
            1.0
        } else {
            jaro_winkler(&self.given.join(" "), &other.given.join(" "))
        };
        0.7 * s + 0.3 * g
    }

    /// Canonical display form `"given surname"`.
    pub fn display(&self) -> String {
        if self.given.is_empty() {
            self.surname.clone()
        } else {
            format!("{} {}", self.given.join(" "), self.surname)
        }
    }
}

fn surname_match(a: &str, b: &str) -> bool {
    a == b || jaro_winkler(a, b) >= 0.92
}

/// Given names are compatible when each aligned token matches fully or as an
/// initial ("j" vs "joshua").
fn given_compatible(a: &[String], b: &[String]) -> bool {
    if a.is_empty() || b.is_empty() {
        return true; // one side omits given names entirely
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    short.iter().zip(long).all(|(x, y)| token_compatible(x, y))
}

fn token_compatible(x: &str, y: &str) -> bool {
    if x == y {
        return true;
    }
    let (short, long) = if x.len() <= y.len() { (x, y) } else { (y, x) };
    if short.len() == 1 {
        return long.starts_with(short);
    }
    jaro_winkler(x, y) >= 0.9
}

/// A parsed author list.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AuthorList {
    /// Authors in listed order.
    pub authors: Vec<AuthorName>,
}

impl AuthorList {
    /// Number of authors.
    pub fn len(&self) -> usize {
        self.authors.len()
    }

    /// `true` when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.authors.is_empty()
    }

    /// Order-insensitive match score in `[0, 1]`: greedy best-match F1 over
    /// authors. Handles misordered lists (score 1), missing authors
    /// (recall < 1) and misspellings (fuzzy matches).
    pub fn match_score(&self, other: &Self) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 1.0;
        }
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let mut used = vec![false; other.authors.len()];
        let mut total = 0.0;
        for a in &self.authors {
            let mut best = 0.0;
            let mut best_j = None;
            for (j, b) in other.authors.iter().enumerate() {
                if used[j] {
                    continue;
                }
                let s = a.similarity(b);
                if s > best {
                    best = s;
                    best_j = Some(j);
                }
            }
            if let Some(j) = best_j {
                if best >= 0.75 {
                    used[j] = true;
                    total += best;
                }
            }
        }
        2.0 * total / (self.len() + other.len()) as f64
    }

    /// `true` when the two lists plausibly denote the same authors
    /// (match score ≥ 0.85).
    pub fn same_authors(&self, other: &Self) -> bool {
        self.match_score(other) >= 0.85
    }

    /// Canonical display form, `"; "`-separated.
    pub fn display(&self) -> String {
        self.authors
            .iter()
            .map(AuthorName::display)
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// Parses a raw author-list string.
///
/// Accepts `";"`-separated lists, `"and"`/`"&"` conjunctions, and
/// `","`-separated lists (disambiguating the `"Last, First"` comma by
/// pairing tokens when every comma-piece is a single word).
pub fn parse_author_list(raw: &str) -> AuthorList {
    let raw = raw.trim();
    if raw.is_empty() {
        return AuthorList::default();
    }
    // Unify conjunctions to ';'
    let mut unified = raw.replace(" & ", " ; ");
    for conj in [" and ", " AND ", " And "] {
        unified = unified.replace(conj, " ; ");
    }
    let pieces: Vec<&str> = if unified.contains(';') {
        unified.split(';').collect()
    } else {
        split_commas(&unified)
    };
    AuthorList {
        authors: pieces.iter().filter_map(|p| AuthorName::parse(p)).collect(),
    }
}

/// Splits on commas, except when the comma pattern looks like
/// `"Last, First"` pairs (alternating single pieces), in which case pairs are
/// rejoined.
fn split_commas(s: &str) -> Vec<&str> {
    if !s.contains(',') {
        return vec![s];
    }
    let pieces: Vec<&str> = s.split(',').map(str::trim).collect();
    // Heuristic: "Last, First Middle" lists have 2k pieces where pieces at
    // even index are single-token surnames. Full "A B, C D" lists have
    // multi-token pieces throughout.
    let looks_paired = pieces.len().is_multiple_of(2)
        && pieces
            .iter()
            .step_by(2)
            .all(|p| p.split_whitespace().count() == 1);
    if looks_paired {
        // Leak-free pair join: return slices of the original by re-splitting
        // is awkward; simplest is to allocate — but callers only need parsed
        // names, so rebuild via AuthorName::parse on joined strings.
        // Handled by the caller through `parse_paired`.
        Vec::new()
    } else {
        pieces
    }
}

impl AuthorList {
    /// Parses `"Last1, First1, Last2, First2"` pair-style lists.
    fn parse_paired(s: &str) -> Option<AuthorList> {
        let pieces: Vec<&str> = s.split(',').map(str::trim).collect();
        if !pieces.len().is_multiple_of(2) || pieces.is_empty() {
            return None;
        }
        let mut authors = Vec::with_capacity(pieces.len() / 2);
        for pair in pieces.chunks(2) {
            let joined = format!("{}, {}", pair[0], pair[1]);
            authors.push(AuthorName::parse(&joined)?);
        }
        Some(AuthorList { authors })
    }
}

/// Full parse entry point handling the paired-comma case.
pub fn parse_author_list_smart(raw: &str) -> AuthorList {
    let direct = parse_author_list(raw);
    if !direct.is_empty() {
        return direct;
    }
    let unified = raw.trim();
    AuthorList::parse_paired(unified).unwrap_or(direct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_names() {
        let n = AuthorName::parse("Joshua Bloch").unwrap();
        assert_eq!(n.surname, "bloch");
        assert_eq!(n.given, vec!["joshua"]);

        let n = AuthorName::parse("Bloch, Joshua").unwrap();
        assert_eq!(n.surname, "bloch");
        assert_eq!(n.given, vec!["joshua"]);

        let n = AuthorName::parse("J. D. Ullman").unwrap();
        assert_eq!(n.surname, "ullman");
        assert_eq!(n.given, vec!["j", "d"]);

        assert!(AuthorName::parse("").is_none());
        assert!(AuthorName::parse("   ").is_none());
    }

    #[test]
    fn name_matching_initials_and_typos() {
        let full = AuthorName::parse("Jeffrey Ullman").unwrap();
        let initial = AuthorName::parse("J. Ullman").unwrap();
        let typo = AuthorName::parse("Jefrey Ullman").unwrap();
        let other = AuthorName::parse("Jennifer Widom").unwrap();
        assert!(full.matches(&initial));
        assert!(full.matches(&typo));
        assert!(!full.matches(&other));
        assert!(full.similarity(&initial) > 0.9);
        assert!(full.similarity(&other) < 0.75);
    }

    #[test]
    fn display_forms() {
        let n = AuthorName::parse("Bloch, Joshua").unwrap();
        assert_eq!(n.display(), "joshua bloch");
        let solo = AuthorName::parse("Plato").unwrap();
        assert_eq!(solo.display(), "plato");
    }

    #[test]
    fn parse_semicolon_list() {
        let l = parse_author_list("Hector Garcia-Molina; Jeffrey Ullman; Jennifer Widom");
        assert_eq!(l.len(), 3);
        assert_eq!(l.authors[1].surname, "ullman");
    }

    #[test]
    fn parse_and_conjunction() {
        let l = parse_author_list("Joshua Bloch and Neal Gafter");
        assert_eq!(l.len(), 2);
        let l = parse_author_list("A. Silberschatz & H. Korth");
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn parse_comma_list() {
        let l = parse_author_list("Hector Garcia-Molina, Jeffrey Ullman, Jennifer Widom");
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn parse_paired_comma_list() {
        let l = parse_author_list_smart("Ullman, Jeffrey, Widom, Jennifer");
        assert_eq!(l.len(), 2);
        assert_eq!(l.authors[0].surname, "ullman");
        assert_eq!(l.authors[0].given, vec!["jeffrey"]);
    }

    #[test]
    fn empty_list() {
        assert!(parse_author_list("").is_empty());
        assert_eq!(parse_author_list("").len(), 0);
        assert_eq!(parse_author_list("").display(), "");
    }

    #[test]
    fn match_score_order_insensitive() {
        let a = parse_author_list("Joshua Bloch; Neal Gafter");
        let b = parse_author_list("Neal Gafter; Joshua Bloch");
        assert!((a.match_score(&b) - 1.0).abs() < 1e-9);
        assert!(a.same_authors(&b));
    }

    #[test]
    fn match_score_missing_author() {
        let full = parse_author_list("Hector Garcia-Molina; Jeffrey Ullman; Jennifer Widom");
        let partial = parse_author_list("Jeffrey Ullman; Jennifer Widom");
        let s = full.match_score(&partial);
        assert!(s > 0.6 && s < 0.9, "partial overlap: {s}");
        assert!(!full.same_authors(&partial));
    }

    #[test]
    fn match_score_misspelling_tolerated() {
        let a = parse_author_list("Jeffrey Ullman; Jennifer Widom");
        let b = parse_author_list("Jefrey Ullmann; Jennifer Widom");
        assert!(a.same_authors(&b), "score: {}", a.match_score(&b));
    }

    #[test]
    fn match_score_wrong_author_penalised() {
        let a = parse_author_list("Joshua Bloch");
        let b = parse_author_list("Herbert Schildt");
        assert!(a.match_score(&b) < 0.5);
        assert!(!a.same_authors(&b));
    }

    #[test]
    fn match_score_empty_cases() {
        let empty = AuthorList::default();
        let one = parse_author_list("Plato");
        assert_eq!(empty.match_score(&empty), 1.0);
        assert_eq!(empty.match_score(&one), 0.0);
        assert_eq!(one.match_score(&empty), 0.0);
    }

    #[test]
    fn match_score_symmetric() {
        let a = parse_author_list("Joshua Bloch; Neal Gafter");
        let b = parse_author_list("J. Bloch");
        assert!((a.match_score(&b) - b.match_score(&a)).abs() < 1e-9);
    }
}
