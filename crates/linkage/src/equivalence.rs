//! The normalized-string [`ValueEquivalence`] backend: two text values are
//! the same when they [`normalize`] to the same key.
//!
//! This is the linkage-flavoured answer to Example 4.1's "formatted in
//! various ways" problem, lifted into the quotient machinery of
//! `sailing-model`: `"BLOCH, Joshua"`-style case, punctuation, whitespace,
//! and diacritic variants collapse into one equivalence class, so truth
//! discovery and copy detection stop splitting votes across formattings of
//! the same underlying value. It lives here (not in `sailing-model`)
//! because the normalizer does.

use std::collections::HashMap;

use sailing_model::equivalence::ValueEquivalence;
use sailing_model::{fx_mix, Value};

use crate::normalize::normalize;

/// Text values are equivalent when their [`normalize`]d forms are equal
/// (the [`crate::normalize::normalized_eq`] relation); non-text values are
/// equivalent only to themselves.
///
/// The property tests in the root crate pin the contract this backend
/// leans on: `normalize` is idempotent, which makes `normalized_eq` a true
/// equivalence relation — reflexive, symmetric, and transitive — and the
/// quotient construction sound.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizedString;

impl ValueEquivalence for NormalizedString {
    fn name(&self) -> &'static str {
        "normalized-string"
    }

    fn digest(&self) -> u64 {
        fx_mix(0x6571_7569_765f, 1) // "equiv_" tag, variant 1
    }

    fn partition(&self, values: &[Value]) -> Vec<u32> {
        let mut classes: HashMap<String, u32> = HashMap::new();
        let mut labels = Vec::with_capacity(values.len());
        let mut next = 0u32;
        for value in values {
            match value.as_text() {
                Some(text) => {
                    let key = normalize(text);
                    let label = *classes.entry(key).or_insert_with(|| {
                        let l = next;
                        next += 1;
                        l
                    });
                    labels.push(label);
                }
                None => {
                    // Interned arenas hold each value once, so a fresh
                    // label per non-text slot is exact equivalence.
                    labels.push(next);
                    next += 1;
                }
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_model::equivalence::ValueQuotient;
    use sailing_model::ValueId;

    #[test]
    fn formatting_variants_share_a_class() {
        let values = vec![
            Value::text("John Smith"),
            Value::text("JOHN  SMITH"),
            Value::text("John-Smith"),
            Value::text("Jóhn Smith"),
            Value::text("Jane Doe"),
            Value::Int(3),
        ];
        let q = ValueQuotient::build(&NormalizedString, &values);
        assert_eq!(q.num_classes(), 3);
        for i in 1..4 {
            assert_eq!(q.representative_of(ValueId(i)), ValueId(0));
        }
        assert_eq!(q.representative_of(ValueId(4)), ValueId(4));
        assert_eq!(q.representative_of(ValueId(5)), ValueId(5));
        assert!(!q.is_identity());
    }

    #[test]
    fn distinct_names_stay_distinct() {
        let values = vec![
            Value::text("Luna Dong"),
            Value::text("Xin Dong"),
            Value::text("3.14"),
            Value::text("3.140"),
        ];
        let q = ValueQuotient::build(&NormalizedString, &values);
        // Normalization is about formatting, not numerics: "3.14" and
        // "3.140" normalize to different keys ("3 14" vs "3 140").
        assert!(q.is_identity());
    }
}
