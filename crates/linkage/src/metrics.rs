//! String similarity metrics.
//!
//! All similarities are in `[0, 1]` with 1 meaning identical. They operate on
//! `char`s, so multi-byte text is handled correctly (author names are not
//! ASCII-only: "Berti-Équille").

/// Levenshtein edit distance (insertions, deletions, substitutions).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Levenshtein similarity: `1 − dist / max_len`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(&b_used)
        .filter(|&(_, &used)| used)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(&matches_b)
        .filter(|&(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by a shared prefix (up to 4 chars),
/// the standard choice for person names.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    const PREFIX_SCALE: f64 = 0.1;
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * PREFIX_SCALE * (1.0 - j)
}

/// Jaccard similarity over whitespace-separated tokens.
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let ta: std::collections::HashSet<&str> = a.split_whitespace().collect();
    let tb: std::collections::HashSet<&str> = b.split_whitespace().collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count();
    let union = ta.union(&tb).count();
    inter as f64 / union as f64
}

/// Dice-style similarity over character n-grams (default bigram when `n = 2`).
pub fn ngram_similarity(a: &str, b: &str, n: usize) -> f64 {
    assert!(n > 0, "n-gram size must be positive");
    let grams = |s: &str| -> Vec<String> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() < n {
            if chars.is_empty() {
                Vec::new()
            } else {
                vec![chars.iter().collect()]
            }
        } else {
            chars.windows(n).map(|w| w.iter().collect()).collect()
        }
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let mut counts: std::collections::HashMap<&str, isize> = std::collections::HashMap::new();
    for g in &ga {
        *counts.entry(g.as_str()).or_insert(0) += 1;
    }
    let mut shared = 0usize;
    for g in &gb {
        if let Some(c) = counts.get_mut(g.as_str()) {
            if *c > 0 {
                *c -= 1;
                shared += 1;
            }
        }
    }
    2.0 * shared as f64 / (ga.len() + gb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "ab"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn levenshtein_unicode() {
        assert_eq!(levenshtein("Équille", "Equille"), 1);
        assert_eq!(levenshtein("Dong", "Đong"), 1);
    }

    #[test]
    fn levenshtein_similarity_range() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("Xin Dong", "Xing Dong");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("MARTHA", "MARHTA") - 0.944_444).abs() < 1e-5);
        assert!((jaro("DIXON", "DICKSONX") - 0.766_667).abs() < 1e-5);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        assert!((jaro_winkler("MARTHA", "MARHTA") - 0.961_111).abs() < 1e-5);
        assert!((jaro_winkler("DWAYNE", "DUANE") - 0.84).abs() < 1e-2);
        assert!(jaro_winkler("Dong", "Dong") == 1.0);
        // Prefix boost: names sharing a prefix score above plain Jaro.
        assert!(jaro_winkler("Ullman", "Ullmann") > jaro("Ullman", "Ullmann"));
    }

    #[test]
    fn jaccard_tokens_basics() {
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(jaccard_tokens("a b c", "a b c"), 1.0);
        assert_eq!(jaccard_tokens("a b", "c d"), 0.0);
        assert!((jaccard_tokens("joshua bloch", "bloch joshua") - 1.0).abs() < 1e-12);
        assert!((jaccard_tokens("a b c", "b c d") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ngram_similarity_basics() {
        assert_eq!(ngram_similarity("", "", 2), 1.0);
        assert_eq!(ngram_similarity("ab", "", 2), 0.0);
        assert_eq!(ngram_similarity("night", "night", 2), 1.0);
        let s = ngram_similarity("night", "nacht", 2);
        assert!(s > 0.0 && s < 0.5);
        // Short strings fall back to whole-string grams.
        assert_eq!(ngram_similarity("a", "a", 2), 1.0);
        assert_eq!(ngram_similarity("a", "b", 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "n-gram size")]
    fn ngram_zero_panics() {
        ngram_similarity("a", "b", 0);
    }

    #[test]
    fn metrics_are_symmetric() {
        let pairs = [
            ("Jeffrey Ullman", "Jefrey Ullmann"),
            ("AT&T Labs-Research", "AT&T Research"),
            ("Effective Java", "Efective Java"),
        ];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert!((jaro(a, b) - jaro(b, a)).abs() < 1e-12);
            assert!((jaro_winkler(a, b) - jaro_winkler(b, a)).abs() < 1e-12);
            assert!((jaccard_tokens(a, b) - jaccard_tokens(b, a)).abs() < 1e-12);
            assert!((ngram_similarity(a, b, 2) - ngram_similarity(b, a, 2)).abs() < 1e-12);
        }
    }
}
