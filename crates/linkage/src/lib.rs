//! # sailing-linkage
//!
//! The record-linkage substrate the paper's applications need (Section 4,
//! *Record linkage*): "in practice we often need to simultaneously conduct
//! truth discovery and record linkage to distinguish between alternative
//! representations and false values".
//!
//! The crate provides:
//!
//! * classic string similarity [`metrics`] (Levenshtein, Jaro/Jaro-Winkler,
//!   token Jaccard, character n-grams),
//! * value [`mod@normalize`]-ation (case folding, punctuation, whitespace),
//! * [`authors`]: parsing and matching of the messy author lists of
//!   Example 4.1 ("formatted in various ways; misspellings, missing authors,
//!   misordered authors"),
//! * [`cluster`]: union-find clustering of alternative representations, and
//! * [`classify`]: the paper's "Luna Dong" vs "Xing Dong" problem — decide
//!   whether two values are the *same representation*, *alternative
//!   representations* of one underlying value, or *different values*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authors;
pub mod classify;
pub mod cluster;
pub mod equivalence;
pub mod metrics;
pub mod normalize;

pub use authors::{parse_author_list, AuthorList, AuthorName};
pub use classify::{classify_pair, ClassifyParams, ValueRelation};
pub use cluster::{cluster_values, UnionFind};
pub use equivalence::NormalizedString;
pub use metrics::{jaccard_tokens, jaro, jaro_winkler, levenshtein, ngram_similarity};
pub use normalize::{normalize, normalized_eq};
