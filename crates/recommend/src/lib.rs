//! # sailing-recommend
//!
//! Source recommendation (Section 4, *Source recommendation*):
//! "recommendations of such sources can be based on many factors, such as
//! accuracy, coverage, freshness of provided data, and independence of
//! opinions". The paper also notes the goal matters: "if our goal is to find
//! the truth ... we might prefer to ignore dependent sources; if our goal is
//! to find diverse opinions, we might want to point out some sources that
//! have dissimilarity-dependence on other sources".
//!
//! * [`trust`] — the per-source trust score combining the four factors;
//! * [`recommend`] — goal-directed ranking (truth-seeking vs
//!   diversity-seeking).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recommend;
pub mod trust;

pub use recommend::{recommend_sources, Goal, Recommendation};
pub use trust::{trust_scores, TrustScore, TrustWeights};
