//! Goal-directed source recommendation.

use serde::{Deserialize, Serialize};

use sailing_core::report::{DependenceKind, PairDependence};
use sailing_model::SourceId;

use crate::trust::{TrustScore, TrustWeights};

/// What the user is after (the paper's "tricky decision").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Goal {
    /// Find the truth / avoid redundancy: ignore dependent sources.
    TruthSeeking,
    /// Find diverse opinions: deliberately surface sources that are
    /// dissimilarity-dependent on already-recommended ones.
    DiversitySeeking,
}

/// One recommended source with its score and rationale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The recommended source.
    pub source: SourceId,
    /// The goal-adjusted score it was ranked by.
    pub score: f64,
    /// Short human-readable rationale.
    pub rationale: String,
}

/// Ranks sources for a goal.
///
/// * `TruthSeeking`: trust score with full independence weighting; sources
///   that copy already-selected ones sink (greedy redundancy removal).
/// * `DiversitySeeking`: base trust ignores independence, and a bonus is
///   given to sources *dissimilarity*-dependent on an already-selected
///   source — they supply the dissenting view.
pub fn recommend_sources(
    scores: &[TrustScore],
    dependences: &[PairDependence],
    goal: Goal,
    weights: &TrustWeights,
    limit: usize,
) -> Vec<Recommendation> {
    let n = scores.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut chosen: Vec<Recommendation> = Vec::new();

    let dep_between = |x: usize, y: usize| -> Option<&PairDependence> {
        dependences.iter().find(|p| {
            (p.a.index() == x && p.b.index() == y) || (p.a.index() == y && p.b.index() == x)
        })
    };

    while chosen.len() < limit && !remaining.is_empty() {
        let (pos, best, rationale) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let base = match goal {
                    Goal::TruthSeeking => scores[i].combined(weights),
                    Goal::DiversitySeeking => {
                        // Independence is not a virtue for diversity.
                        let w = TrustWeights {
                            independence: 0.0,
                            ..*weights
                        };
                        scores[i].combined(&w)
                    }
                };
                let mut score = base;
                let mut rationale = format!("trust {base:.2}");
                for picked in &chosen {
                    if let Some(dep) = dep_between(i, picked.source.index()) {
                        if dep.probability < 0.5 {
                            continue;
                        }
                        match (goal, dep.kind) {
                            (Goal::TruthSeeking, _) => {
                                score *= 1.0 - dep.probability;
                                rationale = format!(
                                    "trust {base:.2}, discounted: dependent on already-selected {}",
                                    picked.source
                                );
                            }
                            (Goal::DiversitySeeking, DependenceKind::Dissimilarity) => {
                                score += 0.25 * dep.probability;
                                rationale = format!(
                                    "trust {base:.2}, boosted: dissenting view of {}",
                                    picked.source
                                );
                            }
                            (Goal::DiversitySeeking, DependenceKind::Similarity) => {
                                score *= 1.0 - dep.probability;
                                rationale = format!(
                                    "trust {base:.2}, discounted: copy of {}",
                                    picked.source
                                );
                            }
                        }
                    }
                }
                (pos, score, rationale)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("remaining non-empty");
        let source = SourceId::from_index(remaining.remove(pos));
        chosen.push(Recommendation {
            source,
            score: best,
            rationale,
        });
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_core::report::Direction;

    fn score(acc: f64) -> TrustScore {
        TrustScore {
            accuracy: acc,
            coverage: 1.0,
            freshness: 1.0,
            independence: 1.0,
        }
    }

    fn dep(a: u32, b: u32, kind: DependenceKind, p: f64) -> PairDependence {
        PairDependence {
            a: SourceId(a),
            b: SourceId(b),
            probability: p,
            prob_a_on_b: 0.9,
            kind,
            direction: Direction::AOnB,
            overlap: 10,
            diagnostic: 0.0,
        }
    }

    #[test]
    fn truth_seeking_skips_copies() {
        // Source 1 copies source 0; source 2 independent but less accurate.
        let scores = vec![score(0.95), score(0.94), score(0.8)];
        let deps = vec![dep(1, 0, DependenceKind::Similarity, 0.95)];
        let recs = recommend_sources(
            &scores,
            &deps,
            Goal::TruthSeeking,
            &TrustWeights::default(),
            2,
        );
        assert_eq!(recs[0].source, SourceId(0));
        assert_eq!(
            recs[1].source,
            SourceId(2),
            "the copy must be skipped in favour of the independent source: {recs:?}"
        );
        assert!(recs[1].score > 0.0);
    }

    #[test]
    fn diversity_seeking_boosts_dissenters() {
        // Source 1 dissents from source 0; source 2 independent, slightly
        // more trustworthy than 1.
        let scores = vec![score(0.95), score(0.7), score(0.75)];
        let deps = vec![dep(1, 0, DependenceKind::Dissimilarity, 0.9)];
        let recs = recommend_sources(
            &scores,
            &deps,
            Goal::DiversitySeeking,
            &TrustWeights::default(),
            2,
        );
        assert_eq!(recs[0].source, SourceId(0));
        assert_eq!(
            recs[1].source,
            SourceId(1),
            "the dissenting source should be surfaced for diversity: {recs:?}"
        );
        assert!(recs[1].rationale.contains("dissenting"));
    }

    #[test]
    fn diversity_seeking_still_skips_plain_copies() {
        let scores = vec![score(0.95), score(0.94), score(0.7)];
        let deps = vec![dep(1, 0, DependenceKind::Similarity, 0.95)];
        let recs = recommend_sources(
            &scores,
            &deps,
            Goal::DiversitySeeking,
            &TrustWeights::default(),
            2,
        );
        assert_eq!(recs[1].source, SourceId(2));
    }

    #[test]
    fn limit_and_empty_inputs() {
        let recs = recommend_sources(&[], &[], Goal::TruthSeeking, &TrustWeights::default(), 3);
        assert!(recs.is_empty());
        let scores = vec![score(0.9), score(0.8)];
        let recs = recommend_sources(
            &scores,
            &[],
            Goal::TruthSeeking,
            &TrustWeights::default(),
            10,
        );
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].source, SourceId(0));
    }

    #[test]
    fn weak_dependences_are_ignored() {
        let scores = vec![score(0.95), score(0.94)];
        let deps = vec![dep(1, 0, DependenceKind::Similarity, 0.3)];
        let recs = recommend_sources(
            &scores,
            &deps,
            Goal::TruthSeeking,
            &TrustWeights::default(),
            2,
        );
        // Below the 0.5 bar the dependence does not discount.
        assert!((recs[1].score - scores[1].combined(&TrustWeights::default())).abs() < 1e-9);
    }
}
