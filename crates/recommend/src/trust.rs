//! Per-source trust scoring.

use serde::{Deserialize, Serialize};

use sailing_core::truth::DependenceMatrix;
use sailing_model::{History, SnapshotView, SourceId, Timestamp};

/// The four trust factors of one source, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrustScore {
    /// Estimated accuracy (from the detection pipeline).
    pub accuracy: f64,
    /// Coverage relative to the best-covering source.
    pub coverage: f64,
    /// Freshness: how promptly the source publishes relative to the fastest
    /// source (1.0 when temporal data is unavailable).
    pub freshness: f64,
    /// Independence: probability the source is not a copy of anyone.
    pub independence: f64,
}

/// Relative weights for combining the factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrustWeights {
    /// Weight of the accuracy factor.
    pub accuracy: f64,
    /// Weight of the coverage factor.
    pub coverage: f64,
    /// Weight of the freshness factor.
    pub freshness: f64,
    /// Weight of the independence factor.
    pub independence: f64,
}

impl Default for TrustWeights {
    fn default() -> Self {
        Self {
            accuracy: 0.4,
            coverage: 0.2,
            freshness: 0.1,
            independence: 0.3,
        }
    }
}

impl TrustScore {
    /// Weighted combination of the four factors.
    pub fn combined(&self, weights: &TrustWeights) -> f64 {
        let total = weights.accuracy + weights.coverage + weights.freshness + weights.independence;
        if total <= 0.0 {
            return 0.0;
        }
        (weights.accuracy * self.accuracy
            + weights.coverage * self.coverage
            + weights.freshness * self.freshness
            + weights.independence * self.independence)
            / total
    }
}

/// Mean publication delay of each source against the earliest publisher of
/// each `(object, value)` update, inverted into a `[0, 1]` freshness score.
fn freshness_scores(history: &History) -> Vec<f64> {
    let n = history.num_sources();
    let mut delays: Vec<(f64, usize)> = vec![(0.0, 0); n];
    // Earliest assertion of each (object, value) across sources.
    let mut earliest: std::collections::HashMap<(u32, u32), Timestamp> =
        std::collections::HashMap::new();
    for (s, o, t, v) in history.all_updates() {
        let _ = s;
        let e = earliest.entry((o.0, v.0)).or_insert(t);
        if t < *e {
            *e = t;
        }
    }
    for (s, o, t, v) in history.all_updates() {
        let e = earliest[&(o.0, v.0)];
        delays[s.index()].0 += (t - e) as f64;
        delays[s.index()].1 += 1;
    }
    let mean: Vec<f64> = delays
        .iter()
        .map(|&(sum, k)| if k == 0 { 0.0 } else { sum / k as f64 })
        .collect();
    let max = mean.iter().copied().fold(0.0f64, f64::max);
    mean.iter()
        .map(|&d| if max <= 0.0 { 1.0 } else { 1.0 - d / max })
        .collect()
}

/// Computes every source's [`TrustScore`].
///
/// `history` is optional: snapshot-only corpora get freshness 1.0.
pub fn trust_scores(
    snapshot: &SnapshotView,
    accuracies: &[f64],
    deps: &DependenceMatrix,
    history: Option<&History>,
) -> Vec<TrustScore> {
    let n = snapshot.num_sources();
    let max_coverage = (0..n)
        .map(|s| snapshot.coverage(SourceId::from_index(s)))
        .max()
        .unwrap_or(0)
        .max(1) as f64;
    let freshness = history.map(freshness_scores);
    (0..n)
        .map(|idx| {
            let s = SourceId::from_index(idx);
            let mut independence = 1.0f64;
            for j in 0..n {
                if j != idx {
                    independence *= 1.0 - deps.dep_on(s, SourceId::from_index(j));
                }
            }
            TrustScore {
                accuracy: accuracies.get(idx).copied().unwrap_or(0.5),
                coverage: snapshot.coverage(s) as f64 / max_coverage,
                freshness: freshness
                    .as_ref()
                    .and_then(|f| f.get(idx).copied())
                    .unwrap_or(1.0),
                independence: independence.clamp(0.0, 1.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_core::AccuCopy;
    use sailing_model::fixtures;

    #[test]
    fn combined_is_weighted_mean() {
        let score = TrustScore {
            accuracy: 1.0,
            coverage: 0.0,
            freshness: 0.0,
            independence: 0.0,
        };
        let w = TrustWeights::default();
        assert!((score.combined(&w) - 0.4).abs() < 1e-12);
        let zero = TrustWeights {
            accuracy: 0.0,
            coverage: 0.0,
            freshness: 0.0,
            independence: 0.0,
        };
        assert_eq!(score.combined(&zero), 0.0);
    }

    #[test]
    fn table1_trust_ranks_s1_above_the_copiers() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let result = AccuCopy::with_defaults().run(&snap);
        let deps = result.dependence_matrix();
        let scores = trust_scores(&snap, &result.accuracies, &deps, None);
        let w = TrustWeights::default();
        let s1 = store.source_id("S1").unwrap();
        let s4 = store.source_id("S4").unwrap();
        assert!(
            scores[s1.index()].combined(&w) > scores[s4.index()].combined(&w),
            "S1 must out-trust the copier S4"
        );
        assert!(scores[s1.index()].independence > scores[s4.index()].independence);
        for s in &scores {
            for f in [s.accuracy, s.coverage, s.freshness, s.independence] {
                assert!((0.0..=1.0).contains(&f));
            }
        }
    }

    #[test]
    fn freshness_penalises_laggards() {
        let (store, history, _) = fixtures::table3();
        let snap = history.latest_snapshot();
        let scores = trust_scores(
            &snap,
            &[0.9, 0.8, 0.7],
            &DependenceMatrix::new(),
            Some(&history),
        );
        let s1 = store.source_id("S1").unwrap();
        let s3 = store.source_id("S3").unwrap();
        assert!(
            scores[s1.index()].freshness > scores[s3.index()].freshness,
            "the up-to-date source must be fresher than the lazy copier: {:?}",
            scores
        );
    }

    #[test]
    fn snapshot_only_defaults_freshness() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let scores = trust_scores(&snap, &[0.8; 5], &DependenceMatrix::new(), None);
        assert!(scores.iter().all(|s| s.freshness == 1.0));
    }
}
