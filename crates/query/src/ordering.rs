//! Source-visit orderings.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sailing_core::truth::DependenceMatrix;
use sailing_model::{SnapshotView, SourceId};

/// How to order source visits during online answering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OrderingPolicy {
    /// Uniform random order (the no-information baseline).
    Random(
        /// RNG seed.
        u64,
    ),
    /// Largest coverage first.
    ByCoverage,
    /// Highest estimated accuracy first.
    ByAccuracy,
    /// Greedy marginal gain: each step picks the source with the best
    /// `accuracy × coverage × independence-from-already-probed` score —
    /// the paper's "avoid going to sources dependent on ... the ones
    /// already visited".
    GreedyIndependent,
}

impl OrderingPolicy {
    /// Display name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            OrderingPolicy::Random(_) => "random",
            OrderingPolicy::ByCoverage => "coverage",
            OrderingPolicy::ByAccuracy => "accuracy",
            OrderingPolicy::GreedyIndependent => "greedy-independent",
        }
    }
}

/// Produces the complete visit order for a policy.
///
/// `accuracies` and `deps` typically come from a prior (or incremental)
/// run of the detection pipeline; passing uniform accuracies and an empty
/// matrix degrades gracefully.
pub fn order_sources(
    snapshot: &SnapshotView,
    accuracies: &[f64],
    deps: &DependenceMatrix,
    policy: &OrderingPolicy,
) -> Vec<SourceId> {
    let n = snapshot.num_sources();
    let all: Vec<SourceId> = (0..n).map(SourceId::from_index).collect();
    match policy {
        OrderingPolicy::Random(seed) => {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(*seed);
            let mut order = all;
            order.shuffle(&mut rng);
            order
        }
        OrderingPolicy::ByCoverage => {
            let mut order = all;
            order.sort_by_key(|&s| (std::cmp::Reverse(snapshot.coverage(s)), s));
            order
        }
        OrderingPolicy::ByAccuracy => {
            let mut order = all;
            order.sort_by(|&x, &y| {
                let ax = accuracies.get(x.index()).copied().unwrap_or(0.5);
                let ay = accuracies.get(y.index()).copied().unwrap_or(0.5);
                ay.total_cmp(&ax).then(x.cmp(&y))
            });
            order
        }
        OrderingPolicy::GreedyIndependent => {
            let mut remaining: Vec<SourceId> = all;
            let mut chosen: Vec<SourceId> = Vec::with_capacity(n);
            while !remaining.is_empty() {
                let (best_idx, _) = remaining
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| {
                        let acc = accuracies.get(s.index()).copied().unwrap_or(0.5);
                        let cov = snapshot.coverage(s) as f64;
                        let independence: f64 =
                            chosen.iter().map(|&p| 1.0 - deps.dependent(s, p)).product();
                        (i, acc * cov.max(1.0) * independence)
                    })
                    .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
                    .expect("remaining non-empty");
                chosen.push(remaining.remove(best_idx));
            }
            chosen
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_core::report::{DependenceKind, Direction, PairDependence};
    use sailing_model::fixtures;

    fn setup() -> (SnapshotView, Vec<f64>) {
        let (store, _) = fixtures::table1();
        (store.snapshot(), vec![0.95, 0.7, 0.4, 0.4, 0.4])
    }

    #[test]
    fn policies_are_permutations() {
        let (snap, accs) = setup();
        for policy in [
            OrderingPolicy::Random(7),
            OrderingPolicy::ByCoverage,
            OrderingPolicy::ByAccuracy,
            OrderingPolicy::GreedyIndependent,
        ] {
            let order = order_sources(&snap, &accs, &DependenceMatrix::new(), &policy);
            let mut sorted = order.clone();
            sorted.sort();
            assert_eq!(
                sorted,
                (0..5).map(SourceId::from_index).collect::<Vec<_>>(),
                "{} must be a permutation",
                policy.name()
            );
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let (snap, accs) = setup();
        let a = order_sources(
            &snap,
            &accs,
            &DependenceMatrix::new(),
            &OrderingPolicy::Random(3),
        );
        let b = order_sources(
            &snap,
            &accs,
            &DependenceMatrix::new(),
            &OrderingPolicy::Random(3),
        );
        let c = order_sources(
            &snap,
            &accs,
            &DependenceMatrix::new(),
            &OrderingPolicy::Random(4),
        );
        assert_eq!(a, b);
        assert!(a != c || a.len() <= 1);
    }

    #[test]
    fn by_accuracy_puts_best_first() {
        let (snap, accs) = setup();
        let order = order_sources(
            &snap,
            &accs,
            &DependenceMatrix::new(),
            &OrderingPolicy::ByAccuracy,
        );
        assert_eq!(order[0], SourceId(0));
        assert_eq!(order[1], SourceId(1));
    }

    #[test]
    fn greedy_defers_dependent_sources() {
        let (snap, _) = setup();
        // S3, S4, S5 mutually dependent; accuracies equal, coverage equal.
        let mk = |a: u32, b: u32| PairDependence {
            a: SourceId(a),
            b: SourceId(b),
            probability: 0.95,
            prob_a_on_b: 0.5,
            kind: DependenceKind::Similarity,
            direction: Direction::Unknown,
            overlap: 5,
            diagnostic: 0.0,
        };
        let deps = DependenceMatrix::from_pairs(&[mk(2, 3), mk(2, 4), mk(3, 4)]);
        let accs = vec![0.8; 5];
        let order = order_sources(&snap, &accs, &deps, &OrderingPolicy::GreedyIndependent);
        // After one cluster member is probed, the other two must sink to the
        // end, behind the two independents.
        let first_cluster = order
            .iter()
            .position(|s| s.index() >= 2)
            .expect("cluster member present");
        let independents_done = order.iter().take(3).filter(|s| s.index() < 2).count();
        assert_eq!(
            independents_done, 2,
            "both independents within first three probes: {order:?} (first cluster at {first_cluster})"
        );
        assert!(order[3].index() >= 2 && order[4].index() >= 2);
    }

    #[test]
    fn by_coverage_orders_by_size() {
        let mut b = sailing_model::ClaimStoreBuilder::new();
        b.add("big", "o1", "v")
            .add("big", "o2", "v")
            .add("big", "o3", "v");
        b.add("small", "o1", "v");
        let store = b.build();
        let snap = store.snapshot();
        let order = order_sources(
            &snap,
            &[0.5, 0.5],
            &DependenceMatrix::new(),
            &OrderingPolicy::ByCoverage,
        );
        assert_eq!(order[0], store.source_id("big").unwrap());
    }

    #[test]
    fn names() {
        assert_eq!(OrderingPolicy::Random(0).name(), "random");
        assert_eq!(OrderingPolicy::ByCoverage.name(), "coverage");
        assert_eq!(OrderingPolicy::ByAccuracy.name(), "accuracy");
        assert_eq!(
            OrderingPolicy::GreedyIndependent.name(),
            "greedy-independent"
        );
    }
}
