//! # sailing-query
//!
//! Online query answering (Section 4, *Query answering*): "rather than
//! necessarily going to all data sources and then combining the retrieved
//! answers, we want to visit the most promising sources and avoid going to
//! sources dependent on, or having been copied by, the ones already
//! visited".
//!
//! * [`ordering`] — source-visit orders: random, by coverage, by accuracy,
//!   and the dependence-aware greedy order that skips redundant sources;
//! * [`online`] — the incremental answering session: probe sources one at a
//!   time, keep per-object running answers, report the quality trajectory;
//! * [`topk`] — top-k answering with early termination once the remaining
//!   unprobed sources cannot change the top k.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod online;
pub mod ordering;
pub mod topk;

pub use online::{OnlineSession, StepSnapshot};
pub use ordering::{order_sources, OrderingPolicy};
pub use topk::{top_k_with_early_stop, TopKResult};
