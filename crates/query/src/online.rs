//! Incremental (online) query answering.
//!
//! "We might adopt an online query answering approach, where we first return
//! partially computed answers and then update probabilities of the answers
//! as we query more data sources" (Example 4.1). An [`OnlineSession`] probes
//! sources in a chosen order and re-derives the per-object answers after
//! every probe, so callers can plot answer quality against probing cost.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sailing_core::params::DetectionParams;
use sailing_core::truth::{weighted_vote, DependenceMatrix};
use sailing_model::{ObjectId, SnapshotView, SourceId, ValueId};

/// The answers visible after some number of probes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepSnapshot {
    /// How many sources have been probed.
    pub probed: usize,
    /// The source probed at this step.
    pub source: SourceId,
    /// Current best answer per object (objects seen so far only).
    pub decisions: HashMap<ObjectId, ValueId>,
    /// Fraction of all objects with at least one answer.
    pub coverage: f64,
}

/// An online answering session over a fixed snapshot.
#[derive(Debug, Clone)]
pub struct OnlineSession<'a> {
    snapshot: &'a SnapshotView,
    accuracies: Vec<f64>,
    deps: DependenceMatrix,
    params: DetectionParams,
    probed: Vec<SourceId>,
    /// Accumulated triples of every probed source — the reusable builder
    /// behind [`OnlineSession::restricted_view`]. Each `probe(s)` appends
    /// only `s`'s assertions, so a k-probe session scans every source's
    /// assertions from the base snapshot exactly once (O(k·A) total)
    /// instead of re-collecting all previously probed sources per step
    /// (O(k²·A)).
    triples: Vec<(SourceId, ObjectId, ValueId)>,
    /// Base-snapshot assertions scanned so far — the regression hook
    /// pinning that per-step work never re-reads already-probed sources.
    scanned: usize,
}

impl<'a> OnlineSession<'a> {
    /// Starts a session. `accuracies` and `deps` are the prior knowledge the
    /// planner has about the sources (possibly from a pilot pipeline run).
    pub fn new(
        snapshot: &'a SnapshotView,
        accuracies: Vec<f64>,
        deps: DependenceMatrix,
        params: DetectionParams,
    ) -> Self {
        Self {
            snapshot,
            accuracies,
            deps,
            params,
            probed: Vec::new(),
            triples: Vec::new(),
            scanned: 0,
        }
    }

    /// Sources probed so far, in order.
    pub fn probed(&self) -> &[SourceId] {
        &self.probed
    }

    /// Base-snapshot assertions scanned so far across all probes. Each
    /// probed source's assertions are read from the underlying snapshot
    /// exactly once, so after k probes of distinct sources this equals
    /// the plain sum of their assertion counts — the observable proof
    /// that probing cost is linear in the probed data, not quadratic in
    /// the probe count.
    pub fn scanned_assertions(&self) -> usize {
        self.scanned
    }

    /// Probes one more source and returns the refreshed answers.
    pub fn probe(&mut self, source: SourceId) -> StepSnapshot {
        self.probed.push(source);
        let before = self.triples.len();
        self.triples.extend(
            self.snapshot
                .assertions_of(source)
                .map(|(o, v)| (source, o, v)),
        );
        self.scanned += self.triples.len() - before;
        let decisions = self.current_decisions();
        let answered = decisions.len();
        StepSnapshot {
            probed: self.probed.len(),
            source,
            decisions,
            coverage: if self.snapshot.num_objects() == 0 {
                0.0
            } else {
                answered as f64 / self.snapshot.num_objects() as f64
            },
        }
    }

    /// Runs a whole order through the session, returning every step.
    pub fn run_order(&mut self, order: &[SourceId]) -> Vec<StepSnapshot> {
        order.iter().map(|&s| self.probe(s)).collect()
    }

    /// The current best answers from the probed subset: a dependence-damped
    /// weighted vote restricted to probed sources.
    pub fn current_decisions(&self) -> HashMap<ObjectId, ValueId> {
        let restricted = self.restricted_view();
        let probs = weighted_vote(&restricted, &self.accuracies, &self.deps, &self.params);
        probs.decisions()
    }

    /// A view containing only the probed sources' assertions. Source ids are
    /// preserved (unprobed sources simply assert nothing). Built from the
    /// incrementally accumulated triples — the base snapshot is never
    /// re-scanned here.
    fn restricted_view(&self) -> SnapshotView {
        SnapshotView::from_triples(
            self.snapshot.num_sources(),
            self.snapshot.num_objects(),
            self.triples.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::{order_sources, OrderingPolicy};
    use sailing_core::AccuCopy;
    use sailing_model::fixtures;

    fn pilot(snapshot: &SnapshotView) -> (Vec<f64>, DependenceMatrix) {
        let result = AccuCopy::with_defaults().run(snapshot);
        let deps = result.dependence_matrix();
        (result.accuracies, deps)
    }

    #[test]
    fn coverage_grows_monotonically() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let (accs, deps) = pilot(&snap);
        let order = order_sources(&snap, &accs, &deps, &OrderingPolicy::ByAccuracy);
        let mut session = OnlineSession::new(&snap, accs, deps, DetectionParams::default());
        let steps = session.run_order(&order);
        assert_eq!(steps.len(), 5);
        for w in steps.windows(2) {
            assert!(w[1].coverage >= w[0].coverage);
        }
        assert!((steps.last().unwrap().coverage - 1.0).abs() < 1e-12);
        assert_eq!(session.probed().len(), 5);
    }

    #[test]
    fn greedy_order_reaches_truth_quickly_on_table1() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let (accs, deps) = pilot(&snap);
        let order = order_sources(&snap, &accs, &deps, &OrderingPolicy::GreedyIndependent);
        let mut session = OnlineSession::new(
            &snap,
            accs.clone(),
            deps.clone(),
            DetectionParams::default(),
        );
        let steps = session.run_order(&order);
        // After two probes (S1 and S2 — the independents), the answers
        // should already be fully correct.
        let after_two = truth.decision_precision(&steps[1].decisions).unwrap();
        assert_eq!(
            after_two, 1.0,
            "greedy order should front-load the independent accurate sources: {order:?}"
        );
    }

    #[test]
    fn random_order_is_slower_than_greedy_on_average() {
        let (store, truth) = fixtures::table1();
        let snap = store.snapshot();
        let (accs, deps) = pilot(&snap);

        let quality_at_2 = |policy: &OrderingPolicy| {
            let order = order_sources(&snap, &accs, &deps, policy);
            let mut session = OnlineSession::new(
                &snap,
                accs.clone(),
                deps.clone(),
                DetectionParams::default(),
            );
            let steps = session.run_order(&order);
            truth.decision_precision(&steps[1].decisions).unwrap()
        };

        let greedy = quality_at_2(&OrderingPolicy::GreedyIndependent);
        let random_avg: f64 = (0..10)
            .map(|seed| quality_at_2(&OrderingPolicy::Random(seed)))
            .sum::<f64>()
            / 10.0;
        assert!(
            greedy > random_avg,
            "greedy {greedy} must beat average random {random_avg}"
        );
    }

    #[test]
    fn decisions_restricted_to_probed_sources() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let params = DetectionParams::default();
        let mut session = OnlineSession::new(&snap, vec![0.8; 5], DependenceMatrix::new(), params);
        let s2 = store.source_id("S2").unwrap();
        let step = session.probe(s2);
        // Only S2's values can be answers.
        for (&o, &v) in &step.decisions {
            assert_eq!(snap.value(s2, o), Some(v));
        }
        assert_eq!(step.probed, 1);
        assert_eq!(step.source, s2);
    }

    /// The quadratic-probing regression pin: a k-probe session reads each
    /// probed source's assertions from the base snapshot exactly once, so
    /// per-step work never re-scans previously probed sources. (The old
    /// `restricted_view` re-collected *all* probed sources' triples on
    /// every probe, making the tally below the k²-ish prefix-sum instead.)
    #[test]
    fn probing_scans_each_source_once_not_quadratically() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let order: Vec<SourceId> = (0..snap.num_sources()).map(SourceId::from_index).collect();
        let per_source: Vec<usize> = order
            .iter()
            .map(|&s| snap.assertions_of(s).count())
            .collect();
        let linear_total: usize = per_source.iter().sum();
        let quadratic_total: usize = per_source
            .iter()
            .scan(0usize, |acc, &n| {
                *acc += n;
                Some(*acc)
            })
            .sum();
        assert!(quadratic_total > linear_total, "fixture must discriminate");

        let mut session = OnlineSession::new(
            &snap,
            vec![0.8; snap.num_sources()],
            DependenceMatrix::new(),
            DetectionParams::default(),
        );
        let mut after_each = Vec::new();
        for &s in &order {
            session.probe(s);
            after_each.push(session.scanned_assertions());
        }
        // After every step the tally equals the probed sources' plain sum:
        // step k added exactly source k's assertions, nothing was re-read.
        let mut prefix = 0usize;
        for (k, &n) in per_source.iter().enumerate() {
            prefix += n;
            assert_eq!(
                after_each[k], prefix,
                "step {k} re-scanned previously probed sources"
            );
        }
        assert_eq!(session.scanned_assertions(), linear_total);
    }

    /// The incremental accumulator must answer identically to a session
    /// rebuilt from scratch at every step.
    #[test]
    fn incremental_view_matches_fresh_rebuild_per_step() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let (accs, deps) = pilot(&snap);
        let order = order_sources(&snap, &accs, &deps, &OrderingPolicy::ByAccuracy);

        let mut incremental = OnlineSession::new(
            &snap,
            accs.clone(),
            deps.clone(),
            DetectionParams::default(),
        );
        for k in 0..order.len() {
            let step = incremental.probe(order[k]);
            // A fresh session probing the same prefix must agree exactly.
            let mut fresh = OnlineSession::new(
                &snap,
                accs.clone(),
                deps.clone(),
                DetectionParams::default(),
            );
            let fresh_last = fresh.run_order(&order[..=k]).pop().unwrap();
            assert_eq!(step.decisions, fresh_last.decisions, "step {k}");
            assert_eq!(step.coverage, fresh_last.coverage, "step {k}");
        }
    }

    #[test]
    fn empty_session() {
        let snap = SnapshotView::from_triples(0, 0, Vec::new());
        let session = OnlineSession::new(
            &snap,
            Vec::new(),
            DependenceMatrix::new(),
            DetectionParams::default(),
        );
        assert!(session.current_decisions().is_empty());
    }
}
