//! Top-k answering with early termination.
//!
//! For queries like the paper's Query 4 ("who is the most productive
//! publisher in the Database field?") the caller wants the k best-supported
//! answers, not every answer. Probing sources is the expensive operation, so
//! the session stops as soon as the unprobed sources can no longer change
//! the top k: each answer's support has a *lower bound* (votes already seen)
//! and an *upper bound* (plus everything still unseen).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sailing_model::{SnapshotView, SourceId, ValueId};

/// Outcome of a top-k run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopKResult {
    /// The top-k values with their final (weighted) support, descending.
    pub top: Vec<(ValueId, f64)>,
    /// How many sources were probed before the result stabilised.
    pub probed: usize,
    /// Whether the run stopped early (before probing everything).
    pub early_stopped: bool,
}

/// Runs a weighted top-k count over one *categorical* question: each source
/// contributes `weight(source)` support to the value it asserts for the
/// designated object(s).
///
/// `support_of` maps a source to `(value, weight)` pairs — typically the
/// values the source asserts for the query's object(s), weighted by accuracy
/// and independence. Sources are probed in `order`; the run stops when the
/// k-th answer's lower bound beats every other answer's upper bound.
pub fn top_k_with_early_stop<F>(
    order: &[SourceId],
    k: usize,
    max_weight_per_source: f64,
    mut support_of: F,
) -> TopKResult
where
    F: FnMut(SourceId) -> Vec<(ValueId, f64)>,
{
    assert!(k > 0, "k must be positive");
    let mut support: HashMap<ValueId, f64> = HashMap::new();
    let mut probed = 0usize;

    for (i, &source) in order.iter().enumerate() {
        for (value, weight) in support_of(source) {
            *support.entry(value).or_insert(0.0) += weight.max(0.0);
        }
        probed = i + 1;

        // Remaining mass any single answer could still gain.
        let remaining = (order.len() - probed) as f64 * max_weight_per_source;
        if remaining <= 0.0 {
            break;
        }
        let mut ranked: Vec<(ValueId, f64)> = support.iter().map(|(&v, &s)| (v, s)).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        if ranked.len() >= k {
            let kth_lower = ranked[k - 1].1;
            let challenger_upper = ranked
                .get(k)
                .map(|&(_, s)| s + remaining)
                .unwrap_or(remaining);
            if kth_lower > challenger_upper {
                let mut top = ranked;
                top.truncate(k);
                return TopKResult {
                    top,
                    probed,
                    early_stopped: true,
                };
            }
        }
    }

    let mut ranked: Vec<(ValueId, f64)> = support.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    TopKResult {
        top: ranked,
        probed,
        early_stopped: false,
    }
}

/// Like [`top_k_with_early_stop`] but with an exact remaining-support bound:
/// `remaining_after[i]` is the total support the sources after position `i`
/// could still contribute. Much tighter than the per-source maximum when
/// support is skewed (most sources do not cover a given object at all).
pub fn top_k_with_exact_bound<F>(
    order: &[SourceId],
    k: usize,
    remaining_after: &[f64],
    mut support_of: F,
) -> TopKResult
where
    F: FnMut(SourceId) -> Vec<(ValueId, f64)>,
{
    assert!(k > 0, "k must be positive");
    assert_eq!(order.len(), remaining_after.len());
    let mut support: HashMap<ValueId, f64> = HashMap::new();
    let mut probed = 0usize;

    for (i, &source) in order.iter().enumerate() {
        for (value, weight) in support_of(source) {
            *support.entry(value).or_insert(0.0) += weight.max(0.0);
        }
        probed = i + 1;
        let remaining = remaining_after[i];
        if remaining <= 0.0 {
            break;
        }
        let mut ranked: Vec<(ValueId, f64)> = support.iter().map(|(&v, &s)| (v, s)).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        if ranked.len() >= k {
            let kth_lower = ranked[k - 1].1;
            let challenger_upper = ranked
                .get(k)
                .map(|&(_, s)| s + remaining)
                .unwrap_or(remaining);
            if kth_lower > challenger_upper {
                let mut top = ranked;
                top.truncate(k);
                return TopKResult {
                    top,
                    probed,
                    early_stopped: true,
                };
            }
        }
    }

    let mut ranked: Vec<(ValueId, f64)> = support.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    TopKResult {
        top: ranked,
        probed,
        early_stopped: false,
    }
}

/// Convenience: top-k over one object's values in a snapshot, each source
/// contributing `weights[source]` (e.g. accuracy × independence). Uses the
/// exact remaining-support bound: only sources that actually cover the
/// object count toward the challenger's potential.
pub fn top_k_values_for_object(
    snapshot: &SnapshotView,
    object: sailing_model::ObjectId,
    order: &[SourceId],
    weights: &[f64],
    k: usize,
) -> TopKResult {
    let contribution = |s: SourceId| -> f64 {
        if snapshot.value(s, object).is_some() {
            weights.get(s.index()).copied().unwrap_or(0.0).max(0.0)
        } else {
            0.0
        }
    };
    // Suffix sums of the real contributions.
    let mut remaining_after = vec![0.0f64; order.len()];
    let mut acc = 0.0;
    for i in (0..order.len()).rev() {
        remaining_after[i] = acc;
        acc += contribution(order[i]);
    }
    top_k_with_exact_bound(order, k, &remaining_after, |s| {
        snapshot
            .value(s, object)
            .map(|v| vec![(v, weights.get(s.index()).copied().unwrap_or(0.0))])
            .unwrap_or_default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sailing_model::fixtures;
    use sailing_model::ObjectId;

    #[test]
    fn finds_the_majority_value() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let order: Vec<SourceId> = (0..5).map(SourceId::from_index).collect();
        let weights = vec![1.0; 5];
        let halevy = store.object_id("Halevy").unwrap();
        let result = top_k_values_for_object(&snap, halevy, &order, &weights, 1);
        let uw = store.value_id(&sailing_model::Value::text("UW")).unwrap();
        assert_eq!(result.top[0].0, uw);
        assert_eq!(result.top.len(), 1);
    }

    #[test]
    fn early_stop_triggers_when_margin_is_unbeatable() {
        // 10 sources, the first 6 all assert value 1 with weight 1; the rest
        // could contribute at most 1 each — after 6 probes value 1 leads by
        // 6 with 4 remaining, and any challenger can reach at most 4.
        let order: Vec<SourceId> = (0..10).map(SourceId::from_index).collect();
        let result = top_k_with_early_stop(&order, 1, 1.0, |s| {
            if s.index() < 6 {
                vec![(ValueId(1), 1.0)]
            } else {
                vec![(ValueId(s.0 + 10), 1.0)]
            }
        });
        assert!(result.early_stopped, "{result:?}");
        assert!(result.probed < 10);
        assert_eq!(result.top[0].0, ValueId(1));
    }

    #[test]
    fn no_early_stop_on_tight_race() {
        let order: Vec<SourceId> = (0..4).map(SourceId::from_index).collect();
        let result = top_k_with_early_stop(&order, 1, 1.0, |s| vec![(ValueId(s.0 % 2), 1.0)]);
        assert!(!result.early_stopped);
        assert_eq!(result.probed, 4);
    }

    #[test]
    fn k_larger_than_answers() {
        let order: Vec<SourceId> = (0..2).map(SourceId::from_index).collect();
        let result = top_k_with_early_stop(&order, 5, 1.0, |_| vec![(ValueId(0), 1.0)]);
        assert_eq!(result.top.len(), 1);
        assert!(!result.early_stopped);
    }

    #[test]
    fn weighted_sources_change_the_winner() {
        let (store, _) = fixtures::table1();
        let snap = store.snapshot();
        let order: Vec<SourceId> = (0..5).map(SourceId::from_index).collect();
        // Weight the accurate independents heavily, the copier cluster at
        // nearly zero — the paper's dependence-aware query answering.
        let weights = vec![3.0, 2.0, 0.1, 0.1, 0.1];
        let halevy = store.object_id("Halevy").unwrap();
        let result = top_k_values_for_object(&snap, halevy, &order, &weights, 1);
        let google = store
            .value_id(&sailing_model::Value::text("Google"))
            .unwrap();
        assert_eq!(result.top[0].0, google);
    }

    #[test]
    fn object_without_values() {
        let snap = SnapshotView::from_triples(2, 1, Vec::new());
        let order: Vec<SourceId> = (0..2).map(SourceId::from_index).collect();
        let result = top_k_values_for_object(&snap, ObjectId(0), &order, &[1.0, 1.0], 1);
        assert!(result.top.is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        top_k_with_early_stop(&[], 0, 1.0, |_| Vec::new());
    }
}
