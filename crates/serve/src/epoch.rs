//! The epoch pointer: atomically published `Arc` snapshots of "the
//! current value", with a generation counter that lets readers revalidate
//! a cached clone without locking.
//!
//! The serving tier's contract is *readers never take a lock on the hot
//! path*. The classic shape for that is an arc-swap: writers atomically
//! replace an `Arc<T>`, readers clone it wait-free. Without `unsafe` (the
//! whole workspace is `#![forbid(unsafe_code)]`) a true lock-free
//! `Arc` load isn't expressible, so this pointer splits the cost
//! asymmetrically instead:
//!
//! * the pointer itself is a `Mutex<Arc<T>>` plus an atomic **generation**
//!   that is bumped on every publication;
//! * readers hold a cached `Arc<T>` tagged with the generation they last
//!   saw ([`ServeReader`](crate::ServeReader)); each request costs one
//!   `Acquire` load of the generation — no shared-cacheline write, no
//!   lock, perfectly scalable across cores — and only the first request
//!   *after a swap* takes the mutex once to refresh the cached `Arc`.
//!
//! Epoch swaps are rare (one per corpus update) and reads are millions
//! per second, so the steady-state read path is exactly the atomic load;
//! the mutex is touched `O(readers)` times *per swap*, not per read.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// An atomically published `Arc<T>` with a generation counter.
///
/// See the [module docs](self) for the read-path design. `T` is the
/// published payload — the serving tier publishes
/// [`Analysis`](sailing::Analysis) values, but the pointer is generic and
/// self-contained.
#[derive(Debug)]
pub struct EpochPointer<T> {
    current: Mutex<Arc<T>>,
    generation: AtomicU64,
}

impl<T> EpochPointer<T> {
    /// Publishes `initial` as generation 1.
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            current: Mutex::new(initial),
            generation: AtomicU64::new(1),
        }
    }

    /// The current generation. Bumped on every [`EpochPointer::publish`]
    /// that actually changes the pointer, so a reader holding a clone
    /// tagged with this value knows the clone is still current.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Locks the pointer, recovering from poison: the protected state is
    /// just an `Arc` swap, which cannot be left half-done, so a panic on
    /// some other thread while it held this lock must not take the whole
    /// serving tier down with it.
    fn lock_current(&self) -> MutexGuard<'_, Arc<T>> {
        self.current.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Clones the current `Arc` (takes the mutex briefly). Hot read loops
    /// should prefer a generation-validated cached clone — see
    /// [`ServeReader`](crate::ServeReader) — and call this only when
    /// [`EpochPointer::generation`] says the cache is stale.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.lock_current())
    }

    /// The current `Arc` plus the generation it was published under, read
    /// consistently (one critical section): the returned generation is
    /// never newer than the returned value.
    pub fn load_tagged(&self) -> (Arc<T>, u64) {
        let current = self.lock_current();
        let value = Arc::clone(&current);
        // Read under the lock: publish() bumps the generation while
        // holding the same lock, so this pairing cannot tear.
        let generation = self.generation.load(Ordering::Acquire);
        (value, generation)
    }

    /// Atomically publishes `next` as the new current epoch. Returns
    /// `true` when the pointer actually changed; publishing the `Arc`
    /// that is already current is a no-op (and keeps readers' cached
    /// clones valid — a thundering herd of identical admissions bumps the
    /// generation once, not once per admitter).
    pub fn publish(&self, next: Arc<T>) -> bool {
        let mut current = self.lock_current();
        if Arc::ptr_eq(&current, &next) {
            return false;
        }
        let old = std::mem::replace(&mut *current, next);
        // Release-publish under the lock so `load_tagged` observes
        // generation and value in lockstep.
        self.generation.fetch_add(1, Ordering::Release);
        drop(current);
        // The displaced epoch is released only after the lock: if this
        // publisher held the last reference and the payload's Drop
        // panics, the panic stays on the publisher thread with the
        // pointer already coherent, instead of poisoning the mutex every
        // reader shares.
        drop(old);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_generation_and_load_tagged_pairs_them() {
        let ptr = EpochPointer::new(Arc::new(1u32));
        assert_eq!(ptr.generation(), 1);
        let (v, g) = ptr.load_tagged();
        assert_eq!((*v, g), (1, 1));

        let two = Arc::new(2u32);
        assert!(ptr.publish(Arc::clone(&two)));
        assert_eq!(ptr.generation(), 2);
        assert_eq!(*ptr.load(), 2);

        // Republishing the identical Arc is a no-op.
        assert!(!ptr.publish(two));
        assert_eq!(ptr.generation(), 2);
    }

    #[test]
    fn a_panicking_writer_does_not_take_down_the_pointer() {
        // A payload whose Drop panics — the nastiest thing a publisher
        // thread can do while the pointer is mid-swap.
        struct Grenade(bool);
        impl Drop for Grenade {
            fn drop(&mut self) {
                if self.0 {
                    panic!("armed payload dropped");
                }
            }
        }

        let ptr = Arc::new(EpochPointer::new(Arc::new(Grenade(true))));
        let publisher = Arc::clone(&ptr);
        let joined = std::thread::spawn(move || publisher.publish(Arc::new(Grenade(false)))).join();
        assert!(joined.is_err(), "dropping the armed epoch must panic");

        // The swap landed before the panic: readers keep going, see the
        // new value at the new generation, and later publishes work.
        assert_eq!(ptr.generation(), 2);
        let (value, generation) = ptr.load_tagged();
        assert!(!value.0, "the disarmed payload is current");
        assert_eq!(generation, 2);
        assert!(ptr.publish(Arc::new(Grenade(false))));
        assert_eq!(ptr.generation(), 3);
    }

    #[test]
    fn concurrent_readers_always_see_a_published_value() {
        let ptr = Arc::new(EpochPointer::new(Arc::new(0u64)));
        let writes = 500u64;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ptr = Arc::clone(&ptr);
                scope.spawn(move || {
                    let mut last_gen = 0;
                    for _ in 0..2000 {
                        let (value, generation) = ptr.load_tagged();
                        // Values are published in order, so generation
                        // (and the value riding on it) is monotone per
                        // reader, and every value is one that was
                        // actually published whole.
                        assert!(*value <= writes);
                        assert!(generation >= last_gen, "generation went backwards");
                        last_gen = generation;
                    }
                });
            }
            let ptr = Arc::clone(&ptr);
            scope.spawn(move || {
                for i in 1..=writes {
                    ptr.publish(Arc::new(i));
                }
            });
        });
        assert_eq!(*ptr.load(), writes);
        assert_eq!(ptr.generation(), 1 + writes);
    }
}
