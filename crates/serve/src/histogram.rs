//! Fixed-bucket latency histograms: lock-free to record, cheap to
//! snapshot, good enough to quote p50/p99.
//!
//! Buckets are powers of two in **nanoseconds**: bucket `i` covers
//! `[2^i, 2^(i+1))` ns (bucket 0 also absorbs 0 ns). Forty buckets reach
//! `2^40` ns ≈ 18 minutes — far beyond any sane request latency — so no
//! request is ever dropped; the last bucket clamps. Recording is one
//! relaxed `fetch_add`; quantiles walk the 40 counters and interpolate
//! linearly inside the winning bucket. The error bound is the bucket
//! width (≤ 2× the true value), which is the standard trade for a
//! histogram whose record path must cost nanoseconds and whose memory
//! must not grow with the number of requests.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// Number of power-of-two buckets. `2^40` ns ≈ 18 minutes.
pub const NUM_BUCKETS: usize = 40;

/// A fixed-bucket latency histogram with lock-free recording.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    /// Total recorded nanoseconds — exact, for mean latency.
    total_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            // `Default` for arrays stops at 32 elements; build the 40
            // explicitly.
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `nanos` nanoseconds.
    pub fn record(&self, nanos: u64) {
        self.buckets[Self::bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    fn bucket_of(nanos: u64) -> usize {
        if nanos < 2 {
            return 0;
        }
        ((63 - nanos.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds, linearly
    /// interpolated inside the winning bucket; `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile(q)
    }

    /// A consistent-enough copy of the counters (individual loads are
    /// atomic; a record racing the snapshot lands in one or the other).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            total_nanos: self.total_nanos.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An owned copy of a [`LatencyHistogram`]'s counters.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    /// Exact sum of all recorded durations, in nanoseconds.
    pub total_nanos: u64,
    /// Per-bucket observation counts; bucket `i` covers `[2^i, 2^(i+1))`
    /// nanoseconds.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean latency in nanoseconds; `None` while empty.
    pub fn mean_nanos(&self) -> Option<f64> {
        let count = self.count();
        (count > 0).then(|| self.total_nanos as f64 / count as f64)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds, linearly
    /// interpolated inside the winning bucket; `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if seen + count >= rank {
                let lower = if i == 0 { 0u64 } else { 1u64 << i };
                let upper = 1u64 << (i + 1);
                let into = (rank - seen) as f64 / count as f64;
                return Some(lower as f64 + into * (upper - lower) as f64);
            }
            seen += count;
        }
        unreachable!("rank {rank} <= total {total} must land in a bucket");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(4), 2);
        assert_eq!(LatencyHistogram::bucket_of(1023), 9);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_interpolate_and_bound_the_truth() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        for nanos in 1..=1000u64 {
            h.record(nanos);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).unwrap();
        // True median is 500; the bucket [512, 1024) below it means the
        // estimate can be off by at most one bucket width.
        assert!((256.0..=1024.0).contains(&p50), "{p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((512.0..=1024.0).contains(&p99), "{p99}");
        assert!(p50 <= p99);
        // The mean is exact.
        let snap = h.snapshot();
        assert!((snap.mean_nanos().unwrap() - 500.5).abs() < 1e-9);
        // Quantiles are monotone in q.
        let mut last = 0.0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
    }
}
